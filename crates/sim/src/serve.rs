//! Open-system serving: mid-run request injection.
//!
//! PR 4's serving mixes are a *closed* system — every request is
//! pre-tagged into the [`Program`] with a fixed arrival cycle. This
//! module opens the system: a [`RequestInjector`] holds the request
//! arrival schedule (drawn from a seeded arrival process upstream) and
//! a [`ServePolicy`] — the third policy axis beside arbitration ×
//! throttling — and decides, mid-run, when each request's thread
//! blocks become visible to the [`TbScheduler`].
//!
//! ## Injection contract (never-late, like every other wake bound)
//!
//! The fast-forward engine may only skip a cycle range if no component
//! changes state inside it. Admission changes scheduler state, so the
//! injector exports a wake bound with the same discipline as the NoC
//! queues and the throttle sampler:
//!
//! * **queue empty** → no bound (the injector is drained);
//! * **admission capacity available** → the front request's arrival
//!   cycle: nothing can be admitted earlier, and the bound cannot move
//!   earlier because the schedule is fixed up front;
//! * **capacity-blocked** → no bound from the injector itself; the
//!   *completion* that frees capacity is a retirement event the engine
//!   already executes, and the system re-arms the injector wake to
//!   `now + 1` at that retirement.
//!
//! Admissions run as **phase 0** of the tick (before NoC delivery), so
//! a block admitted at cycle `t` is fetchable by its core's phase-4
//! tick of the same cycle — in both step modes, at the same cycles,
//! which is what keeps `StepMode::Skip` byte-identical to `Cycle`.
//!
//! ## Determinism
//!
//! The admission queue is statically sorted by `(arrival, request id)`,
//! so two requests landing on the same cycle are admitted in request-id
//! order — there is no tie to break at run time.

use std::collections::VecDeque;

use crate::prog::{Program, RequestId, TbId};
use crate::sched::TbScheduler;
use crate::types::{CoreId, Cycle, WindowId};

/// Serving-scheduler admission policy: when does a queued request's
/// work become visible to the thread-block scheduler?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Admit every request the cycle it arrives, onto its home cores.
    /// The machine is time-shared by the thread-block scheduler alone.
    Fcfs,
    /// Admit in FCFS order but keep at most `max` requests in flight;
    /// later arrivals wait in the admission queue until a completion
    /// frees a slot.
    MaxConcurrency { max: usize },
    /// Continuous batching: the cores are split into `slots` contiguous
    /// groups; each admitted request owns one group until it completes,
    /// and a completion immediately hands the freed group to the next
    /// queued request (lowest-numbered free slot, FCFS order).
    ContinuousBatching { slots: usize },
}

impl ServePolicy {
    /// Stable name (labels, JSONL).
    pub fn label(&self) -> String {
        match self {
            ServePolicy::Fcfs => "fcfs".into(),
            ServePolicy::MaxConcurrency { max } => format!("maxc{max}"),
            ServePolicy::ContinuousBatching { slots } => format!("cb{slots}"),
        }
    }
}

/// Per-block injection target: `(block, relative home core, window)`,
/// precomputed at construction so admission allocates nothing.
type InjectPlan = Vec<(TbId, CoreId, WindowId)>;

/// The open-system request injector: arrival schedule + admission
/// queue + serving policy.
///
/// Built against an *open* program — request-tagged, arrival-free,
/// home cores relative to `0..cores_per_request()` (see
/// `llamcat_trace::mix::generate_serve_set`). Attach to a system with
/// `System::attach_injector` before running.
#[derive(Clone)]
pub struct RequestInjector {
    policy: ServePolicy,
    /// Arrival cycle per request (the open-system schedule).
    arrivals: Vec<Cycle>,
    /// Requests not yet admitted, sorted by `(arrival, request id)`.
    queue: VecDeque<RequestId>,
    /// Injection plan per request, in `TbId` order.
    plan: Vec<InjectPlan>,
    /// Width of the relative home-core range each request was traced on.
    cores_per_request: usize,
    /// Requests admitted but not yet completed.
    in_flight: usize,
    /// Continuous batching: which request owns each core group (empty
    /// for the other policies).
    slots: Vec<Option<RequestId>>,
    /// Continuous batching: the slot each request was admitted into.
    slot_of: Vec<usize>,
}

impl RequestInjector {
    /// Builds the injector for `program` with the given arrival
    /// schedule. `num_cores` / `num_windows` must match the system the
    /// injector will attach to; the per-request chunking mirrors
    /// [`TbScheduler::new`] so an FCFS-admitted request is queued
    /// exactly as a closed program would queue it.
    pub fn new(
        program: &Program,
        arrivals: Vec<Cycle>,
        policy: ServePolicy,
        num_cores: usize,
        num_windows: usize,
    ) -> Result<Self, String> {
        let n = program.num_requests();
        if arrivals.len() != n {
            return Err(format!(
                "arrival schedule covers {} requests, program has {n}",
                arrivals.len()
            ));
        }
        if !program.arrivals.is_empty() {
            return Err("open-system programs must not carry per-block arrivals".into());
        }
        let cores_per_request = match policy {
            ServePolicy::Fcfs => num_cores,
            ServePolicy::MaxConcurrency { max } => {
                if max == 0 {
                    return Err("max-concurrency policy needs max >= 1".into());
                }
                num_cores
            }
            ServePolicy::ContinuousBatching { slots } => {
                if slots == 0 || slots > num_cores {
                    return Err(format!(
                        "continuous batching needs 1 <= slots <= num_cores ({num_cores}), got {slots}"
                    ));
                }
                num_cores / slots
            }
        };
        // Group each request's blocks per relative home core, then
        // split each core's list into `num_windows` contiguous chunks —
        // the same strided-window layout TbScheduler::new builds.
        let mut per_core: Vec<Vec<Vec<TbId>>> = vec![vec![Vec::new(); cores_per_request]; n];
        for (tb, &core) in program.assignment.iter().enumerate() {
            if core >= cores_per_request {
                return Err(format!(
                    "block {tb} homes on relative core {core}, policy {} allows 0..{cores_per_request}",
                    policy.label()
                ));
            }
            per_core[program.request_of(tb) as usize][core].push(tb);
        }
        let mut plan: Vec<InjectPlan> = Vec::with_capacity(n);
        for (r, cores) in per_core.into_iter().enumerate() {
            let mut p = InjectPlan::new();
            for (core, list) in cores.into_iter().enumerate() {
                let len = list.len();
                let chunk = len.div_ceil(num_windows).max(1);
                for (i, tb) in list.into_iter().enumerate() {
                    p.push((tb, core, (i / chunk).min(num_windows - 1)));
                }
            }
            if p.is_empty() {
                return Err(format!("request {r} contributed no thread blocks"));
            }
            plan.push(p);
        }
        let mut order: Vec<RequestId> = (0..n as RequestId).collect();
        order.sort_by_key(|&r| (arrivals[r as usize], r));
        let slot_count = match policy {
            ServePolicy::ContinuousBatching { slots } => slots,
            _ => 0,
        };
        Ok(RequestInjector {
            policy,
            arrivals,
            queue: order.into(),
            plan,
            cores_per_request,
            in_flight: 0,
            slots: vec![None; slot_count],
            slot_of: vec![0; n],
        })
    }

    /// The arrival schedule, indexed by request id.
    pub fn arrivals(&self) -> &[Cycle] {
        &self.arrivals
    }

    pub fn num_requests(&self) -> usize {
        self.plan.len()
    }

    /// Whether every request has been admitted (not necessarily
    /// completed — in-flight work lives in the scheduler and cores).
    pub fn drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the policy could admit one more request right now.
    fn has_capacity(&self) -> bool {
        match self.policy {
            ServePolicy::Fcfs => true,
            ServePolicy::MaxConcurrency { max } => self.in_flight < max,
            ServePolicy::ContinuousBatching { .. } => self.slots.iter().any(|s| s.is_none()),
        }
    }

    /// Admits every due request at cycle `now`, pushing its blocks into
    /// the scheduler and stamping `admitted_at[request]`. Returns
    /// whether anything was admitted (the caller must then re-arm core
    /// wake bounds — newly injected work is fetchable *this* cycle).
    pub fn run_admissions(
        &mut self,
        now: Cycle,
        sched: &mut TbScheduler,
        admitted_at: &mut [Cycle],
    ) -> bool {
        let mut any = false;
        while let Some(&r) = self.queue.front() {
            if self.arrivals[r as usize] > now {
                break;
            }
            let base_core = match self.policy {
                ServePolicy::Fcfs => 0,
                ServePolicy::MaxConcurrency { max } => {
                    if self.in_flight >= max {
                        break;
                    }
                    0
                }
                ServePolicy::ContinuousBatching { .. } => {
                    let Some(slot) = self.slots.iter().position(|s| s.is_none()) else {
                        break;
                    };
                    self.slots[slot] = Some(r);
                    self.slot_of[r as usize] = slot;
                    slot * self.cores_per_request
                }
            };
            self.queue.pop_front();
            self.in_flight += 1;
            admitted_at[r as usize] = now;
            for &(tb, core, window) in &self.plan[r as usize] {
                sched.inject(tb, base_core + core, window);
            }
            any = true;
        }
        any
    }

    /// Records the completion of request `r`, freeing its admission
    /// capacity (and, for continuous batching, its core group).
    pub fn note_completion(&mut self, r: RequestId) {
        self.in_flight = self.in_flight.saturating_sub(1);
        if matches!(self.policy, ServePolicy::ContinuousBatching { .. }) {
            let slot = self.slot_of[r as usize];
            if self.slots[slot] == Some(r) {
                self.slots[slot] = None;
            }
        }
    }

    /// Never-late wake bound: the earliest future cycle (>= `now`) at
    /// which an admission could happen, or `None` when the injector is
    /// drained or capacity-blocked (a completion event re-arms the
    /// bound in the latter case).
    pub fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        let &front = self.queue.front()?;
        self.has_capacity()
            .then(|| self.arrivals[front as usize].max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::ThreadBlock;

    /// 2 requests x 2 blocks each, relative core 0..2, arrival-free.
    fn open_program(requests: usize, blocks_per: usize, cores: usize) -> Program {
        let n = requests * blocks_per;
        let blocks = vec![ThreadBlock::default(); n];
        let assignment = (0..n).map(|i| i % cores).collect();
        let tags = (0..n).map(|i| (i / blocks_per) as RequestId).collect();
        Program::with_requests(blocks, assignment, tags, Vec::new())
    }

    fn sched_of(p: &Program, cores: usize, windows: usize) -> TbScheduler {
        let mut s = TbScheduler::new(p, cores, windows);
        s.withhold_all();
        s
    }

    #[test]
    fn fcfs_admits_on_arrival_in_id_order() {
        let p = open_program(3, 2, 4);
        let mut inj =
            RequestInjector::new(&p, vec![100, 100, 400], ServePolicy::Fcfs, 4, 2).unwrap();
        let mut sched = sched_of(&p, 4, 2);
        let mut admitted = vec![Cycle::MAX; 3];
        assert_eq!(inj.next_wake(0), Some(100));
        assert!(!inj.run_admissions(50, &mut sched, &mut admitted));
        // Both cycle-100 requests admitted together, id order is the
        // queue order; request 2 stays queued.
        assert!(inj.run_admissions(100, &mut sched, &mut admitted));
        assert_eq!(admitted, vec![100, 100, Cycle::MAX]);
        assert_eq!(sched.remaining(), 4);
        assert_eq!(inj.next_wake(101), Some(400));
        assert!(inj.run_admissions(400, &mut sched, &mut admitted));
        assert!(inj.drained());
        assert_eq!(inj.next_wake(401), None);
    }

    #[test]
    fn max_concurrency_blocks_until_completion() {
        let p = open_program(3, 1, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 0, 0],
            ServePolicy::MaxConcurrency { max: 2 },
            2,
            1,
        )
        .unwrap();
        let mut sched = sched_of(&p, 2, 1);
        let mut admitted = vec![Cycle::MAX; 3];
        inj.run_admissions(0, &mut sched, &mut admitted);
        assert_eq!(admitted, vec![0, 0, Cycle::MAX]);
        // Capacity-blocked: no wake bound of its own.
        assert_eq!(inj.next_wake(1), None);
        inj.note_completion(0);
        assert_eq!(inj.next_wake(5), Some(5));
        inj.run_admissions(5, &mut sched, &mut admitted);
        assert_eq!(admitted[2], 5);
    }

    #[test]
    fn continuous_batching_reassigns_freed_slots() {
        // 4 cores, 2 slots of 2 cores; blocks on relative cores 0..2.
        let p = open_program(3, 2, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 0, 0],
            ServePolicy::ContinuousBatching { slots: 2 },
            4,
            1,
        )
        .unwrap();
        let mut sched = sched_of(&p, 4, 1);
        let mut admitted = vec![Cycle::MAX; 3];
        inj.run_admissions(0, &mut sched, &mut admitted);
        // Requests 0, 1 take slots 0, 1; request 2 waits.
        assert_eq!(admitted, vec![0, 0, Cycle::MAX]);
        assert_eq!(sched.queue_len(0) + sched.queue_len(1), 2, "slot 0");
        assert_eq!(sched.queue_len(2) + sched.queue_len(3), 2, "slot 1");
        // Request 1 completes: its slot (cores 2..4) goes to request 2.
        inj.note_completion(1);
        inj.run_admissions(7, &mut sched, &mut admitted);
        assert_eq!(admitted[2], 7);
        assert_eq!(sched.queue_len(2) + sched.queue_len(3), 4, "reused slot 1");
    }

    #[test]
    fn construction_rejects_degenerate_setups() {
        let p = open_program(2, 1, 2);
        assert!(
            RequestInjector::new(&p, vec![0], ServePolicy::Fcfs, 2, 1).is_err(),
            "short arrival schedule"
        );
        assert!(
            RequestInjector::new(&p, vec![0, 0], ServePolicy::MaxConcurrency { max: 0 }, 2, 1)
                .is_err()
        );
        assert!(RequestInjector::new(
            &p,
            vec![0, 0],
            ServePolicy::ContinuousBatching { slots: 8 },
            4,
            1
        )
        .is_err());
        // CB with 2 slots over 4 cores leaves relative cores 0..2: a
        // block homed on core 3 cannot fit a slot.
        let wide = open_program(2, 4, 4);
        assert!(RequestInjector::new(
            &wide,
            vec![0, 0],
            ServePolicy::ContinuousBatching { slots: 2 },
            4,
            1
        )
        .is_err());
        let gated = Program::with_requests(
            vec![ThreadBlock::default(); 2],
            vec![0, 1],
            vec![0, 1],
            vec![0, 50],
        );
        assert!(
            RequestInjector::new(&gated, vec![0, 50], ServePolicy::Fcfs, 2, 1).is_err(),
            "pre-tagged arrivals must be rejected"
        );
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(ServePolicy::Fcfs.label(), "fcfs");
        assert_eq!(ServePolicy::MaxConcurrency { max: 4 }.label(), "maxc4");
        assert_eq!(ServePolicy::ContinuousBatching { slots: 8 }.label(), "cb8");
    }
}
