//! Batched multi-cell execution: advance N forked [`System`]s in
//! lockstep through one shared scenario.
//!
//! A policy study runs the *same* scenario — same trace, same program
//! mapping, same arrival schedule — once per policy cell. Straight-line
//! campaigns pay the scenario's immutable state once per cell in both
//! time (decode, mapping, preallocation) and cache footprint (each cell
//! streams its own copy of the instruction stream). A [`SystemBatch`]
//! instead holds N forks of one pre-tick base system: the `Arc`-shared
//! scenario state ([`crate::prog::Program`], its
//! [`crate::prog::FlatProgram`] issue view, the injector's arrival
//! schedule and inject plans) is built once, and the batch advances
//! every live cell through the same cycle window before moving to the
//! next, so the shared read-only data a window touches is pulled into
//! cache once and reused by every cell instead of streamed N times.
//!
//! ## The lockstep contract
//!
//! Lockstep is a *scheduling* choice, not a semantic one. Each cell is
//! advanced with [`System::advance_with_mode`] — the plain run loop
//! minus per-chunk stats assembly — against monotonically increasing
//! horizons; no state is shared between cells except the immutable
//! `Arc`s, and nothing a cell does can reorder or perturb another
//! cell's events. Pausing at an arbitrary cycle `T` and resuming is
//! byte-identical to an uninterrupted run in **both** step modes
//! (`tests/snapshot_equiv.rs` pins the engine property;
//! `tests/batch_equiv.rs` pins the batch on top of it). In particular
//! the Skip engine re-derives every per-component wake bound from live
//! component state at each entry, so chunking can never make a
//! never-late bound late — bounds are recomputed, not carried across
//! chunks, and certainly not merged across cells.
//!
//! Cells retire from the batch the moment they complete or exhaust
//! their own budget: a finished cell's stats are assembled exactly once
//! and its lane simply stops being advanced, leaving the remaining
//! cells' schedules untouched.

use crate::arb::{RequestArbiter, ThrottleController};
use crate::stats::SimStats;
use crate::system::{RunOutcome, StepMode, System};
use crate::types::Cycle;

/// How many cycles each lockstep window spans.
///
/// Small windows maximize shared-state cache reuse across cells but pay
/// the Skip engine's wake-bound re-derivation per window; large windows
/// amortize that at the cost of streaming the shared trace window more
/// than once. The default is a compromise measured on the 20-cell fig7
/// matrix; callers with unusual cell counts can tune it.
pub const DEFAULT_STRIDE: Cycle = 131_072;

/// Advances N forked [`System`]s in lockstep over one shared scenario.
///
/// Build one via [`SystemBatch::new`], [`SystemBatch::push`] each
/// pre-forked cell with its own budget and [`StepMode`], then
/// [`SystemBatch::run`]. Results come back in push order and are
/// byte-identical to each cell's straight-line
/// [`System::run_with_mode`] run.
pub struct SystemBatch<A, T>
where
    A: RequestArbiter,
    T: ThrottleController,
{
    /// Per-lane mutable machine state, indexed by lane id (push
    /// order). SoA with the arrays below: the lockstep loop walks one
    /// array per concern instead of one struct per lane.
    lanes: Vec<System<A, T>>,
    /// Per-lane cycle budget (the `max_cycles` of a straight-line run).
    budgets: Vec<Cycle>,
    /// Per-lane step mode — lanes of one batch may mix `Cycle` and
    /// `Skip`.
    modes: Vec<StepMode>,
    /// Per-lane final result, filled in the moment a lane retires.
    results: Vec<Option<(SimStats, RunOutcome)>>,
    stride: Cycle,
}

impl<A, T> Default for SystemBatch<A, T>
where
    A: RequestArbiter,
    T: ThrottleController,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<A, T> SystemBatch<A, T>
where
    A: RequestArbiter,
    T: ThrottleController,
{
    /// An empty batch with the default lockstep stride.
    pub fn new() -> Self {
        Self::with_stride(DEFAULT_STRIDE)
    }

    /// An empty batch advancing `stride` cycles per lockstep window.
    pub fn with_stride(stride: Cycle) -> Self {
        assert!(stride > 0, "lockstep stride must be positive");
        SystemBatch {
            lanes: Vec::new(),
            budgets: Vec::new(),
            modes: Vec::new(),
            results: Vec::new(),
            stride,
        }
    }

    /// Adds a cell to the batch and returns its lane id (results come
    /// back in push order). The system is typically a fork of one
    /// shared pre-tick base with this cell's policies swapped in via
    /// [`System::replace_policies`], but any independent system works —
    /// lanes never interact.
    pub fn push(&mut self, system: System<A, T>, budget: Cycle, mode: StepMode) -> usize {
        self.lanes.push(system);
        self.budgets.push(budget);
        self.modes.push(mode);
        self.results.push(None);
        self.lanes.len() - 1
    }

    /// Number of cells in the batch (retired lanes included).
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Runs every lane to completion or its budget, in lockstep, and
    /// returns `(stats, outcome)` per lane in push order.
    ///
    /// Each window advances every live lane to the same horizon (the
    /// minimum live-lane cycle plus the stride, clamped per lane to its
    /// own budget); lanes that complete or exhaust their budget retire
    /// from the batch immediately. The per-lane results are
    /// byte-identical to `system.run_with_mode(budget, mode)` on the
    /// same starting state.
    pub fn run(mut self) -> Vec<(SimStats, RunOutcome)> {
        let mut live: Vec<usize> = (0..self.lanes.len()).collect();
        while !live.is_empty() {
            // Shared horizon: the slowest live lane plus one stride.
            // Lanes paused mid-window by an earlier, smaller horizon
            // catch up before anyone moves on — that is the lockstep.
            let base = live
                .iter()
                .map(|&i| self.lanes[i].cycle())
                .min()
                .expect("live is non-empty");
            let horizon = base.saturating_add(self.stride);
            let budgets = &self.budgets;
            let modes = &self.modes;
            let lanes = &mut self.lanes;
            let results = &mut self.results;
            live.retain(|&i| {
                let target = horizon.min(budgets[i]);
                let outcome = lanes[i].advance_with_mode(target, modes[i]);
                // `CycleLimit` against a mid-run horizon only means
                // "window over"; against the lane's own budget it is
                // the straight-line run's terminal outcome.
                let done = outcome == RunOutcome::Completed || target == budgets[i];
                if done {
                    results[i] = Some((lanes[i].collect_stats(), outcome));
                }
                !done
            });
        }
        self.results
            .into_iter()
            .map(|r| r.expect("every lane retired"))
            .collect()
    }
}
