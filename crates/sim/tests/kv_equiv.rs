//! Differential suite for the tiered KV cache.
//!
//! Three contracts, on top of the closed-set and open-system
//! equivalences that `step_mode_equiv.rs`, `mix_equiv.rs` and
//! `serve_equiv.rs` pin:
//!
//! 1. **Mode equivalence with the tier attached.** The canonical
//!    prefix-reuse mix (three tenants sharing a system-prompt KV
//!    window) under a tight prefix-pinning warm tier produces
//!    byte-identical `RunReport`s and `SimStats` — including the
//!    per-request KV hit/miss/merge/eviction counters — across the
//!    full 20-cell policy matrix plus the KV-aware `PFA` compositions.
//! 2. **Budget edges.** Both modes agree on the exact `CycleLimit`
//!    report at budgets landing mid-promotion.
//! 3. **Determinism and accounting.** Proptests pin that the tier's
//!    eviction sequence is a pure function of its input sequence, that
//!    the warm set never exceeds its capacity, and that the per-request
//!    KV counters exactly partition the tier totals.
//!
//! `GOLDEN_KV` pins one row of the tiered table: any drift is a
//! semantic change to the KV path (classification, promotion timing,
//! eviction order or counter attribution) and must be deliberate.

use proptest::prelude::*;

use llamcat::experiment::Experiment;
use llamcat::spec::{KvSpec, MixSpec, PolicySpec};
use llamcat_sim::kv::{KvClass, KvEviction, KvTier, KvTierConfig, SHARED_KV_BASE};
use llamcat_trace::workloads::WorkloadSpec;

const SEQ_LEN: usize = 128;
const TENANTS: usize = 3;

/// The canonical prefix-reuse scenario: three shared-prefix decode
/// tenants (half their context is the common system prompt),
/// co-scheduled on an interleaved machine.
fn canonical_kv_mix() -> MixSpec {
    let mut mix = MixSpec::interleaved();
    for _ in 0..TENANTS {
        mix = mix.request(
            WorkloadSpec::SharedPrefix {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                prefix_len: SEQ_LEN / 2,
            },
            SEQ_LEN,
            0,
        );
    }
    mix
}

/// A warm tier tight enough that private context forces continuous
/// eviction while the pinned shared window stays resident.
fn canonical_kv() -> KvSpec {
    KvSpec::prefix_pin(16)
}

/// The 5 × 4 policy matrix, compositional registry names.
fn policy_matrix() -> Vec<PolicySpec> {
    let mut out = Vec::with_capacity(20);
    for arb in ["fifo", "B", "MA", "BMA", "cobrra"] {
        for thr in ["none", "dyncta", "lcs", "dynmg"] {
            out.push(PolicySpec::from_name(&format!("{thr}+{arb}")).expect("matrix name"));
        }
    }
    out
}

/// Runs the canonical KV scenario under one policy in both modes and
/// asserts full observational equivalence: `RunReport` (per-request KV
/// counters included), `SimStats`, consistency.
fn assert_kv_mode_equivalent(
    policy: PolicySpec,
    budget: Option<u64>,
) -> llamcat::experiment::RunReport {
    use llamcat_sim::system::StepMode;
    let label = policy.label();
    let run = |mode| {
        let mut e = Experiment::with_mix(canonical_kv_mix().instantiate())
            .kv(canonical_kv())
            .policy(policy.clone())
            .step_mode(mode);
        e.max_cycles = budget;
        e.try_run().expect("kv scenario runs")
    };
    let cycle = run(StepMode::Cycle);
    let skip = run(StepMode::Skip);
    assert_eq!(
        serde_json::to_string(&cycle).unwrap(),
        serde_json::to_string(&skip).unwrap(),
        "{label}: RunReport (incl. per-request KV counters) diverged (budget {budget:?})"
    );
    let stats_cycle = serde_json::to_string(cycle.stats.as_ref().unwrap()).unwrap();
    let stats_skip = serde_json::to_string(skip.stats.as_ref().unwrap()).unwrap();
    assert_eq!(
        stats_cycle, stats_skip,
        "{label}: SimStats diverged between step modes (budget {budget:?})"
    );
    cycle
        .stats
        .as_ref()
        .unwrap()
        .check_consistency()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    if budget.is_none() {
        assert!(cycle.completed, "{label}: canonical scenario completes");
        let kv = cycle.kv.as_ref().expect("tier attached");
        assert!(kv.promotions > 0, "{label}: the tier must see traffic");
        assert!(kv.evictions > 0, "{label}: capacity 16 must force eviction");
    }
    cycle
}

/// The canonical prefix-reuse mix across the whole 20-cell policy
/// matrix (the CI release-mode gate for the KV tier).
#[test]
fn canonical_kv_mix_is_mode_equivalent_across_policy_matrix() {
    for policy in policy_matrix() {
        assert_kv_mode_equivalent(policy, None);
    }
}

/// The KV-aware arbiter compositions ride the same contract.
#[test]
fn prefix_aware_arbiter_is_mode_equivalent_with_tier() {
    for name in ["PFA", "dyncta+PFA", "lcs+PFA", "dynmg+PFA"] {
        let policy = PolicySpec::from_name(name).expect("PFA composes");
        assert_kv_mode_equivalent(policy, None);
    }
}

/// Budget edges: both modes agree on the exact `CycleLimit` report at
/// budgets landing mid-promotion, mid-drain and around the end.
#[test]
fn kv_budget_edges_agree() {
    let full = Experiment::with_mix(canonical_kv_mix().instantiate())
        .kv(canonical_kv())
        .run();
    assert!(full.completed);
    let end = full.cycles;
    for budget in [1, 301, end / 4, end / 2, end - 1, end, end + 1] {
        assert_kv_mode_equivalent(PolicySpec::unoptimized(), Some(budget));
    }
}

/// The tier counters of one pinned row: `(lookups, hits, misses,
/// merges, promotions, evictions)`.
type KvCounters = (u64, u64, u64, u64, u64, u64);

/// GOLDEN_KV: one pinned row of the tiered table —
/// `(policy, cycles, counters)` for the canonical scenario. Any change
/// is a semantic change to the KV path and must be deliberate.
const GOLDEN_KV: (&str, u64, KvCounters) =
    ("dynmg+BMA", 113_865, (8_202, 1_340, 415, 6_447, 415, 399));

#[test]
fn golden_kv_row_is_pinned() {
    let report = Experiment::with_mix(canonical_kv_mix().instantiate())
        .kv(canonical_kv())
        .policy(PolicySpec::from_name(GOLDEN_KV.0).unwrap())
        .run();
    assert!(report.completed);
    let kv = report.kv.as_ref().expect("tier attached");
    let observed = (
        kv.lookups,
        kv.hits,
        kv.misses,
        kv.merges,
        kv.promotions,
        kv.evictions,
    );
    assert_eq!(
        (report.cycles, observed),
        (GOLDEN_KV.1, GOLDEN_KV.2),
        "GOLDEN_KV drifted — run cycles {} kv {:?}",
        report.cycles,
        observed
    );
}

// ---------------------------------------------------------------------
// Proptests: tier determinism and counter partitioning.
// ---------------------------------------------------------------------

const K0: u64 = 1 << 32; // K-window base: always classified as KV

/// Drives a tier through one op sequence: each op advances time, then
/// touches an address from a small pool (hit / merge / promote as the
/// tier dictates), then drains whatever became ready. Returns the
/// serialized observable state.
fn drive(cfg: KvTierConfig, ops: &[(u8, u8)]) -> (String, String) {
    let mut kv = KvTier::new(cfg);
    kv.reserve_requests(4);
    let mut now = 0u64;
    for &(addr_sel, gap) in ops {
        now += u64::from(gap);
        kv.advance(now);
        while kv.ready_front().is_some() {
            kv.pop_ready();
        }
        // A pool of 8 per-request blocks plus 2 shared-prefix blocks.
        let line = if addr_sel % 10 < 8 {
            K0 + u64::from(addr_sel % 10) * cfg.block_bytes
        } else {
            SHARED_KV_BASE + u64::from(addr_sel % 2) * cfg.block_bytes
        };
        let request = u32::from(addr_sel % 3);
        match kv.classify(line) {
            KvClass::Warm => kv.note_hit(line, request),
            KvClass::Inflight => kv.merge_wait(line, request, 0),
            KvClass::Cold if kv.can_start() => kv.start_promotion(line, request, 0, now),
            KvClass::Cold => {}
            KvClass::Bypass => unreachable!("pool addresses are KV"),
        }
    }
    // Drain everything.
    now += 1_000_000;
    kv.advance(now);
    while kv.ready_front().is_some() {
        kv.pop_ready();
    }
    assert!(kv.is_idle());
    // The observable state: totals, per-request counters, and the warm
    // set as seen through `classify` over the whole pool.
    let warm: Vec<u8> = (0..10u8)
        .map(|i| {
            let line = if i < 8 {
                K0 + u64::from(i) * cfg.block_bytes
            } else {
                SHARED_KV_BASE + u64::from(i % 2) * cfg.block_bytes
            };
            u8::from(kv.classify(line) == KvClass::Warm)
        })
        .collect();
    assert!(
        warm.iter().map(|&w| usize::from(w)).sum::<usize>() <= cfg.warm_capacity_blocks,
        "warm set exceeds capacity"
    );
    let totals = serde_json::to_string(&kv.total).unwrap();
    let reqs = serde_json::to_string(&kv.req_stats).unwrap();
    (format!("{totals}|{warm:?}"), reqs)
}

proptest! {
    // The tier is a pure function of its input sequence: replaying the
    // same ops yields identical totals, per-request counters and warm
    // set — under both eviction policies — and the accounting
    // invariants hold (every miss starts exactly one promotion; the
    // warm set respects capacity, asserted inside `drive`).
    #[test]
    fn tier_eviction_is_deterministic(
        ops in proptest::collection::vec((0u8..255, 0u8..41), 1..60),
        capacity in 1usize..6,
        pin in any::<bool>(),
    ) {
        let cfg = KvTierConfig {
            warm_capacity_blocks: capacity,
            block_bytes: 256,
            slow_latency: 10,
            slow_bytes_per_cycle: 64,
            max_inflight: 3,
            eviction: if pin { KvEviction::PrefixPin } else { KvEviction::Lru },
        };
        let a = drive(cfg, &ops);
        let b = drive(cfg, &ops);
        prop_assert_eq!(a, b, "replay diverged");
    }

    // Per-request KV counters exactly partition the tier totals, and
    // the partition is identical in both step modes.
    #[test]
    fn kv_counters_partition_across_requests(
        tenants in 2usize..4,
        prefix_frac in 0u8..3,
        capacity in 8usize..48,
        pin in any::<bool>(),
    ) {
        use llamcat_sim::system::StepMode;
        let prefix_len = SEQ_LEN * usize::from(prefix_frac) / 2; // 0, 64, 128
        let mut mix = MixSpec::interleaved();
        for _ in 0..tenants {
            mix = mix.request(
                WorkloadSpec::SharedPrefix {
                    heads: 8,
                    group_size: 8,
                    head_dim: 128,
                    prefix_len,
                },
                SEQ_LEN,
                0,
            );
        }
        let kv_spec = if pin { KvSpec::prefix_pin(capacity) } else { KvSpec::lru(capacity) };
        let run = |mode| {
            Experiment::with_mix(mix.instantiate())
                .kv(kv_spec)
                .step_mode(mode)
                .try_run()
                .expect("kv mix runs")
        };
        let cycle = run(StepMode::Cycle);
        let skip = run(StepMode::Skip);
        prop_assert_eq!(
            serde_json::to_string(&cycle).unwrap(),
            serde_json::to_string(&skip).unwrap(),
            "modes diverged"
        );
        prop_assert!(cycle.completed);
        let kv = cycle.kv.as_ref().expect("tier attached");
        let sum = |f: fn(&llamcat::experiment::RequestReport) -> u64| -> u64 {
            cycle.requests.iter().map(f).sum()
        };
        prop_assert_eq!(sum(|r| r.kv_lookups), kv.lookups, "lookups partition");
        prop_assert_eq!(sum(|r| r.kv_hits), kv.hits, "hits partition");
        prop_assert_eq!(sum(|r| r.kv_misses), kv.misses, "misses partition");
        prop_assert_eq!(sum(|r| r.kv_merges), kv.merges, "merges partition");
        prop_assert_eq!(sum(|r| r.kv_evictions), kv.evictions, "evictions partition");
        prop_assert_eq!(kv.lookups, kv.hits + kv.misses + kv.merges);
        prop_assert_eq!(kv.promotions, kv.misses, "every miss promotes once");
    }
}
