//! Serde round-trip property tests for the open experiment API: policy
//! specs (with embedded configurations), workload specs and run
//! reports must survive JSON → value → JSON losslessly, because
//! campaign definitions and JSONL result streams are the system's
//! interchange format.

use proptest::prelude::*;

use llamcat::experiment::{Experiment, Model, Policy};
use llamcat::spec::{ArbSpec, PolicySpec, ThrottleSpec};
use llamcat::throttle::{DynMgConfig, DynctaConfig, InCoreConfig};
use llamcat_trace::workloads::WorkloadSpec;

fn arb_from_index(i: usize) -> ArbSpec {
    match i % 5 {
        0 => ArbSpec::Fifo,
        1 => ArbSpec::Balanced,
        2 => ArbSpec::MshrAware,
        3 => ArbSpec::BalancedMshrAware,
        _ => ArbSpec::Cobrra,
    }
}

fn throttle_from_index(i: usize, period: u64, threshold: u64) -> ThrottleSpec {
    match i % 4 {
        0 => ThrottleSpec::None,
        1 => ThrottleSpec::Dyncta {
            config: DynctaConfig {
                period,
                idle_threshold: threshold,
                mem_high: threshold * 8,
                mem_low: threshold * 4,
            },
        },
        2 => ThrottleSpec::Lcs,
        _ => ThrottleSpec::DynMg {
            config: DynMgConfig {
                sampling_period: period,
                sub_period: (period / 5).max(1),
                max_gear: (threshold % 4 + 1) as usize,
                gear_fractions: vec![0.0, 0.125, 0.25, 0.5, 0.75],
                in_core: InCoreConfig {
                    c_idle_upper: threshold,
                    c_mem_upper: threshold * 3,
                    c_mem_lower: threshold * 2,
                },
            },
        },
    }
}

proptest! {
    #[test]
    fn policy_specs_round_trip(
        kinds in (0usize..5, 0usize..4),
        period in 1u64..100_000,
        threshold in 1u64..1000,
    ) {
        let (arb_i, thr_i) = kinds;
        let spec = PolicySpec::new(
            arb_from_index(arb_i),
            throttle_from_index(thr_i, period, threshold),
        );
        let json = serde_json::to_string(&spec).unwrap();
        let back: PolicySpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &spec);
        // Stability: re-serialization is byte-identical (JSONL relies
        // on this).
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn workload_specs_round_trip(
        shape in (0usize..3, 1usize..32, 1usize..32),
        extras in (1usize..8, 1usize..16),
    ) {
        let (kind, heads, group_size) = shape;
        let (head_dim_lines, query_tokens) = extras;
        let head_dim = head_dim_lines * 32; // whole cache lines
        let spec = match kind {
            0 => WorkloadSpec::Logit { heads, group_size, head_dim },
            1 => WorkloadSpec::AttnOutput { heads, group_size, head_dim },
            _ => WorkloadSpec::PrefillLogit { heads, group_size, head_dim, query_tokens },
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn registry_specs_round_trip(idx in 0usize..9) {
        let name = PolicySpec::registry_names()[idx];
        let spec = PolicySpec::from_name(name).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: PolicySpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.label(), name);
        prop_assert_eq!(back, spec);
    }
}

#[test]
fn run_report_round_trips_through_json() {
    let report = Experiment::new(Model::Llama3_70b, 128)
        .policy(Policy::dynmg_bma())
        .run();
    let json = serde_json::to_string(&report).unwrap();
    let back: llamcat::experiment::RunReport = serde_json::from_str(&json).unwrap();
    // `stats` is #[serde(skip)]; everything else must survive exactly,
    // which re-serialization equality pins (including f64 metrics —
    // the JSON emitter prints shortest-round-trip floats).
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
    assert_eq!(back.cycles, report.cycles);
    assert_eq!(back.policy_label, "dynmg+BMA");
    assert_eq!(back.workload_label, "llama3 70b");
    assert!(back.stats.is_none(), "skipped field defaults to None");
}
