//! Two-level dynamic multi-gear throttling — "dynmg" (Section 4.2, the
//! paper's throttling contribution).
//!
//! **Global level** (every `sampling_period` cycles): the proportion of
//! LLC stall cycles `t_cs` classifies system contention (Table 3); the
//! gear moves per Algorithm 1 (+1 on high, −1 on low, +2 on extreme);
//! the gear determines *how many* cores are throttled (Table 1:
//! 0, 1/8, 1/4, 1/2, 3/4 of the cores) and the *fastest* cores — largest
//! progress counters — are the ones throttled, for load balance.
//!
//! **In-core level** (every `sub_period` cycles): each throttled core
//! runs a DYNCTA-like rule on its own C_mem / C_idle deltas (Table 4
//! thresholds) to pick its block limit; unthrottled cores run
//! unrestricted. The two-level split is the paper's innovation: spatial
//! selection globally, degree selection locally, on different timescales
//! (Table 2: 2000-cycle periods, 400-cycle sub-periods).

use llamcat_sim::arb::{ThrottleController, ThrottleInputs};
use serde::{Deserialize, Serialize};

/// Contention classification (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Contention {
    Low,
    Normal,
    High,
    Extreme,
}

impl Contention {
    /// Classifies a cache-stall proportion per Table 3:
    /// [0, 0.1) low, [0.1, 0.2) normal, [0.2, 0.375) high,
    /// [0.375, 1] extremely high.
    pub fn classify(t_cs: f64) -> Self {
        if t_cs < 0.1 {
            Contention::Low
        } else if t_cs < 0.2 {
            Contention::Normal
        } else if t_cs < 0.375 {
            Contention::High
        } else {
            Contention::Extreme
        }
    }
}

/// In-core controller thresholds (Table 4), applied per sub-period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InCoreConfig {
    /// C_idle upper bound: more idling than this raises the limit.
    pub c_idle_upper: u64,
    /// C_mem upper bound: more memory stalling lowers the limit.
    pub c_mem_upper: u64,
    /// C_mem lower bound: less memory stalling raises the limit.
    pub c_mem_lower: u64,
}

impl Default for InCoreConfig {
    fn default() -> Self {
        // Table 4 values.
        InCoreConfig {
            c_idle_upper: 4,
            c_mem_upper: 250,
            c_mem_lower: 180,
        }
    }
}

/// Full dynmg configuration (Tables 1–4 defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynMgConfig {
    /// Global sampling period (Table 2: 2000 cycles).
    pub sampling_period: u64,
    /// In-core sub-period (Table 2: 400 cycles).
    pub sub_period: u64,
    /// Maximum gear (Table 2: gear 4).
    pub max_gear: usize,
    /// Fraction of cores throttled per gear (Table 1).
    pub gear_fractions: Vec<f64>,
    pub in_core: InCoreConfig,
}

impl Default for DynMgConfig {
    fn default() -> Self {
        // Parameters re-swept for this substrate (`table_sweeps` bench),
        // mirroring how the paper obtained Table 2 by sweeping on its
        // own simulator. `paper_table2()` gives the paper's literal
        // values.
        DynMgConfig {
            sampling_period: 6000,
            sub_period: 1200,
            max_gear: 4,
            gear_fractions: vec![0.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 3.0 / 4.0],
            in_core: InCoreConfig::default(),
        }
    }
}

impl DynMgConfig {
    /// The paper's literal Table 2 configuration (sampling period 2000,
    /// sub-period 400, max gear 4).
    pub fn paper_table2() -> Self {
        DynMgConfig {
            sampling_period: 2000,
            sub_period: 400,
            ..Default::default()
        }
    }
}

impl DynMgConfig {
    /// Cores throttled at `gear` for an `n`-core system (Table 1).
    pub fn throttled_at(&self, gear: usize, n: usize) -> usize {
        let frac = self.gear_fractions[gear.min(self.gear_fractions.len() - 1)];
        (frac * n as f64).round() as usize
    }
}

/// The two-level dynamic multi-gear throttle controller.
#[derive(Clone)]
pub struct DynMg {
    cfg: DynMgConfig,
    gear: usize,
    next_sample: u64,
    next_sub: u64,
    prev_stall: u64,
    prev_mem: Vec<u64>,
    prev_idle: Vec<u64>,
    /// Progress counters at the last global sample (for velocity).
    prev_progress: Vec<u64>,
    /// Persistent per-core in-core block limit.
    in_core_limit: Vec<usize>,
    throttled: Vec<bool>,
    /// Scratch for the per-sample velocity sort (reused; sampling never
    /// allocates).
    order_scratch: Vec<usize>,
    /// Most recent classification (exposed for tests / reports).
    pub last_contention: Contention,
}

impl DynMg {
    pub fn new(cfg: DynMgConfig) -> Self {
        assert_eq!(
            cfg.gear_fractions.len(),
            cfg.max_gear + 1,
            "one fraction per gear"
        );
        DynMg {
            next_sample: cfg.sampling_period,
            next_sub: cfg.sub_period,
            cfg,
            gear: 0,
            prev_stall: 0,
            prev_mem: Vec::new(),
            prev_idle: Vec::new(),
            prev_progress: Vec::new(),
            in_core_limit: Vec::new(),
            throttled: Vec::new(),
            order_scratch: Vec::new(),
            last_contention: Contention::Low,
        }
    }

    /// Current gear (for reports).
    pub fn gear(&self) -> usize {
        self.gear
    }

    /// Algorithm 1: gear transition for one sampling period.
    fn adjust_gear(gear: usize, max_gear: usize, contention: Contention) -> usize {
        match contention {
            Contention::High => (gear + 1).min(max_gear),
            Contention::Low => gear.saturating_sub(1),
            Contention::Extreme => {
                if gear + 2 <= max_gear {
                    gear + 2
                } else {
                    max_gear
                }
            }
            Contention::Normal => gear,
        }
    }

    fn sample_global(&mut self, inputs: &ThrottleInputs<'_>) {
        let d_stall = inputs.llc_stall_cycles.saturating_sub(self.prev_stall);
        self.prev_stall = inputs.llc_stall_cycles;
        let denom = (self.cfg.sampling_period * inputs.num_slices as u64) as f64;
        let t_cs = d_stall as f64 / denom;
        self.last_contention = Contention::classify(t_cs);
        self.gear = Self::adjust_gear(self.gear, self.cfg.max_gear, self.last_contention);

        // Throttle the fastest cores: largest progress-counter advance
        // over the sampling period (recent velocity tracks who is
        // currently racing ahead; cumulative counts lag role swaps).
        let n = inputs.progress.len();
        let k = self.cfg.throttled_at(self.gear, n);
        self.order_scratch.clear();
        self.order_scratch.extend(0..n);
        let prev = &self.prev_progress;
        self.order_scratch.sort_by_key(|&c| {
            let v = inputs.progress[c].saturating_sub(prev[c]);
            std::cmp::Reverse((v, std::cmp::Reverse(c)))
        });
        for c in 0..n {
            self.prev_progress[c] = inputs.progress[c];
        }
        for t in self.throttled.iter_mut() {
            *t = false;
        }
        for &c in self.order_scratch.iter().take(k) {
            self.throttled[c] = true;
        }
    }

    fn sample_sub(&mut self, inputs: &ThrottleInputs<'_>) {
        let ic = self.cfg.in_core;
        for c in 0..self.in_core_limit.len() {
            let d_mem = inputs.c_mem[c].saturating_sub(self.prev_mem[c]);
            let d_idle = inputs.c_idle[c].saturating_sub(self.prev_idle[c]);
            self.prev_mem[c] = inputs.c_mem[c];
            self.prev_idle[c] = inputs.c_idle[c];
            let lim = &mut self.in_core_limit[c];
            if d_idle > ic.c_idle_upper {
                *lim = (*lim + 1).min(inputs.num_windows);
            } else if d_mem > ic.c_mem_upper {
                *lim = lim.saturating_sub(1).max(1);
            } else if d_mem < ic.c_mem_lower {
                *lim = (*lim + 1).min(inputs.num_windows);
            }
        }
    }
}

impl Default for DynMg {
    fn default() -> Self {
        Self::new(DynMgConfig::default())
    }
}

impl ThrottleController for DynMg {
    fn tick(&mut self, inputs: &ThrottleInputs<'_>, max_tb: &mut [usize]) {
        let n = max_tb.len();
        if self.in_core_limit.len() != n {
            self.reset(n);
        }
        // Lazy clamp of the "start from maximum" sentinel now that the
        // window count is known.
        for l in self.in_core_limit.iter_mut() {
            *l = (*l).min(inputs.num_windows);
        }
        if inputs.cycle >= self.next_sub {
            self.next_sub = inputs.cycle + self.cfg.sub_period;
            self.sample_sub(inputs);
        }
        if inputs.cycle >= self.next_sample {
            self.next_sample = inputs.cycle + self.cfg.sampling_period;
            self.sample_global(inputs);
        }
        for (c, tb) in max_tb.iter_mut().enumerate() {
            *tb = if self.throttled[c] {
                // A throttled core always gives up at least one window;
                // the in-core controller sets the degree below that.
                let cap = inputs.num_windows.saturating_sub(1).max(1);
                self.in_core_limit[c].clamp(1, cap)
            } else {
                inputs.num_windows
            };
        }
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        // Between sampling boundaries the controller's state and its
        // max_tb output are fixed; the next state change is the nearer
        // of the in-core sub-period and the global sampling period.
        Some(self.next_sub.min(self.next_sample))
    }

    fn reset(&mut self, num_cores: usize) {
        self.gear = 0;
        self.prev_stall = 0;
        self.prev_mem = vec![0; num_cores];
        self.prev_idle = vec![0; num_cores];
        self.prev_progress = vec![0; num_cores];
        self.in_core_limit = vec![usize::MAX; num_cores];
        self.throttled = vec![false; num_cores];
        self.next_sample = self.cfg.sampling_period;
        self.next_sub = self.cfg.sub_period;
        self.last_contention = Contention::Low;
    }

    fn name(&self) -> &'static str {
        "dynmg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_classification() {
        assert_eq!(Contention::classify(0.0), Contention::Low);
        assert_eq!(Contention::classify(0.0999), Contention::Low);
        assert_eq!(Contention::classify(0.1), Contention::Normal);
        assert_eq!(Contention::classify(0.1999), Contention::Normal);
        assert_eq!(Contention::classify(0.2), Contention::High);
        assert_eq!(Contention::classify(0.374), Contention::High);
        assert_eq!(Contention::classify(0.375), Contention::Extreme);
        assert_eq!(Contention::classify(1.0), Contention::Extreme);
    }

    #[test]
    fn table1_gear_fractions() {
        let cfg = DynMgConfig::default();
        assert_eq!(cfg.throttled_at(0, 16), 0);
        assert_eq!(cfg.throttled_at(1, 16), 2); // 1/8
        assert_eq!(cfg.throttled_at(2, 16), 4); // 1/4
        assert_eq!(cfg.throttled_at(3, 16), 8); // 1/2
        assert_eq!(cfg.throttled_at(4, 16), 12); // 3/4
    }

    #[test]
    fn algorithm1_transitions() {
        use Contention::*;
        assert_eq!(DynMg::adjust_gear(0, 4, High), 1);
        assert_eq!(DynMg::adjust_gear(4, 4, High), 4);
        assert_eq!(DynMg::adjust_gear(2, 4, Low), 1);
        assert_eq!(DynMg::adjust_gear(0, 4, Low), 0);
        assert_eq!(DynMg::adjust_gear(1, 4, Extreme), 3);
        assert_eq!(DynMg::adjust_gear(3, 4, Extreme), 4);
        assert_eq!(DynMg::adjust_gear(2, 4, Normal), 2);
    }

    fn inputs<'a>(
        cycle: u64,
        stall: u64,
        progress: &'a [u64],
        c_mem: &'a [u64],
        c_idle: &'a [u64],
        active: &'a [usize],
        tbs: &'a [u64],
    ) -> ThrottleInputs<'a> {
        ThrottleInputs {
            cycle,
            num_windows: 4,
            num_slices: 8,
            progress,
            c_mem,
            c_idle,
            llc_stall_cycles: stall,
            active_tbs: active,
            tbs_completed: tbs,
        }
    }

    #[test]
    fn throttles_fastest_cores_under_contention() {
        let mut d = DynMg::new(DynMgConfig::paper_table2());
        let mut max_tb = vec![4usize; 4];
        let c_mem = [0u64; 4];
        let c_idle = [0u64; 4];
        let active = [4usize; 4];
        let tbs = [0u64; 4];
        // Extreme contention: stalls = 0.5 * period * slices.
        let stall = 2000 * 8 / 2;
        let progress = [100u64, 50, 80, 10];
        d.tick(
            &inputs(2000, stall, &progress, &c_mem, &c_idle, &active, &tbs),
            &mut max_tb,
        );
        // Gear jumped 0 -> 2 (extreme): throttle 1/4 of 4 cores = 1 core,
        // the fastest (core 0).
        assert_eq!(d.gear(), 2);
        assert_eq!(d.last_contention, Contention::Extreme);
        assert!(max_tb[0] < 4, "fastest core throttled");
        assert_eq!(&max_tb[1..], &[4, 4, 4], "others unthrottled");
    }

    #[test]
    fn gear_relaxes_when_contention_clears() {
        let mut d = DynMg::new(DynMgConfig::paper_table2());
        let mut max_tb = vec![4usize; 4];
        let c_mem = [0u64; 4];
        let c_idle = [0u64; 4];
        let active = [4usize; 4];
        let tbs = [0u64; 4];
        let progress = [1u64, 2, 3, 4];
        let heavy = 2000 * 8 / 2;
        d.tick(
            &inputs(2000, heavy, &progress, &c_mem, &c_idle, &active, &tbs),
            &mut max_tb,
        );
        assert_eq!(d.gear(), 2);
        // Next period: no additional stalls -> Low -> gear down.
        d.tick(
            &inputs(4000, heavy, &progress, &c_mem, &c_idle, &active, &tbs),
            &mut max_tb,
        );
        assert_eq!(d.gear(), 1);
        d.tick(
            &inputs(6000, heavy, &progress, &c_mem, &c_idle, &active, &tbs),
            &mut max_tb,
        );
        assert_eq!(d.gear(), 0);
        assert_eq!(max_tb, vec![4, 4, 4, 4], "no throttling at gear 0");
    }

    #[test]
    fn in_core_limit_follows_sub_period_memory_signal() {
        let mut d = DynMg::new(DynMgConfig::paper_table2());
        let mut max_tb = vec![4usize; 2];
        let active = [4usize; 2];
        let tbs = [0u64; 2];
        let c_idle = [0u64; 2];
        let progress = [10u64, 0];
        // Establish extreme contention so core 0 is throttled.
        let stall = 2000 * 8;
        // Sub-period ticks accumulate C_mem > upper bound (250/400).
        let mut mem = [0u64; 2];
        for k in 1..=5u64 {
            mem = [300 * k, 300 * k];
            d.tick(
                &inputs(400 * k, stall, &progress, &mem, &c_idle, &active, &tbs),
                &mut max_tb,
            );
        }
        // After the 2000-cycle sample, core 0 throttled with reduced limit.
        assert!(max_tb[0] < 4, "in-core limit reduced, got {}", max_tb[0]);
        assert_eq!(max_tb[1], 4);
        let _ = mem;
    }

    #[test]
    fn gear_never_exceeds_bounds() {
        let mut d = DynMg::new(DynMgConfig::paper_table2());
        let mut max_tb = vec![4usize; 4];
        let c_mem = [0u64; 4];
        let c_idle = [0u64; 4];
        let active = [4usize; 4];
        let tbs = [0u64; 4];
        let progress = [0u64; 4];
        let mut stall = 0;
        for k in 1..10u64 {
            stall += 2000 * 8; // always extreme
            d.tick(
                &inputs(2000 * k, stall, &progress, &c_mem, &c_idle, &active, &tbs),
                &mut max_tb,
            );
            assert!(d.gear() <= 4);
        }
        assert_eq!(d.gear(), 4, "saturates at max gear");
    }
}
