//! Interconnect between cores and LLC slices.
//!
//! The paper's target machines (Fig 3) connect cores and LLC slices
//! through a mesh NoC. Latency therefore depends on *placement*: each
//! (core, slice) pair has its own hop count. This asymmetry matters for
//! the workload dynamics — it is one of the physical reasons concurrent
//! cores streaming the same data drift out of lockstep, which is the
//! de-synchronization LLaMCAT's balanced arbitration and throttling
//! fight. A uniform-latency mode is kept for controlled experiments.
//!
//! Topology: cores occupy a `W x H` grid (row-major); slices sit in a
//! row below the core grid, spread evenly. Latency = base + hops (XY
//! routing).

use std::collections::VecDeque;

use crate::config::NocConfig;
use crate::pool::{ReqHandle, ReqPool};
use crate::types::{Cycle, MemResp, SliceId};

/// One direction of lanes in structure-of-arrays form: a ring buffer of
/// arrival cycles (sorted, because every sorted-insert decision reads
/// only this array) parallel to a ring buffer of payloads. The seed's
/// `VecDeque<(Cycle, MemReq)>` moved 48-byte tuples on every sorted
/// insert; here the scan and the shift touch the dense `Cycle` ring,
/// and the payload shift moves 4-byte handles (requests) or 24-byte
/// responses.
#[derive(Debug, Clone)]
struct Lane<P: Copy> {
    at: VecDeque<Cycle>,
    payload: VecDeque<P>,
}

impl<P: Copy> Default for Lane<P> {
    fn default() -> Self {
        // Preallocated to the realistic in-flight high-water mark so
        // steady-state sends never grow the rings.
        Lane {
            at: VecDeque::with_capacity(128),
            payload: VecDeque::with_capacity(128),
        }
    }
}

impl<P: Copy> Lane<P> {
    /// Inserts keeping `at` sorted, stable on ties (FIFO among equal
    /// arrivals — the order the seed's `partition_point` insert
    /// produced).
    #[inline]
    fn insert_sorted(&mut self, at: Cycle, payload: P) {
        let pos = self.at.partition_point(|&t| t <= at);
        self.at.insert(pos, at);
        self.payload.insert(pos, payload);
    }

    #[inline]
    fn front_at(&self) -> Option<Cycle> {
        self.at.front().copied()
    }

    #[inline]
    fn pop_due(&mut self, now: Cycle) -> Option<P> {
        if *self.at.front()? <= now {
            self.at.pop_front();
            self.payload.pop_front()
        } else {
            None
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.at.is_empty()
    }
}

/// Delay pipe carrying requests to slices and responses to cores.
#[derive(Clone)]
pub struct Noc {
    to_slice: Vec<Lane<ReqHandle>>,
    to_core: Vec<Lane<MemResp>>,
    /// Request latency per (core, slice) pair (row-major by core).
    req_lat: Vec<u64>,
    /// Response latency per (core, slice) pair.
    resp_lat: Vec<u64>,
    num_slices: usize,
}

impl Noc {
    pub fn new(cfg: NocConfig, num_cores: usize, num_slices: usize) -> Self {
        let mut req_lat = vec![0; num_cores * num_slices];
        let mut resp_lat = vec![0; num_cores * num_slices];
        for c in 0..num_cores {
            for s in 0..num_slices {
                let hops = if cfg.mesh {
                    Self::hops(c, s, num_cores, num_slices)
                } else {
                    0
                };
                req_lat[c * num_slices + s] = cfg.req_base + cfg.hop_latency * hops;
                resp_lat[c * num_slices + s] = cfg.resp_base + cfg.hop_latency * hops;
            }
        }
        Noc {
            to_slice: vec![Lane::default(); num_slices],
            to_core: vec![Lane::default(); num_cores],
            req_lat,
            resp_lat,
            num_slices,
        }
    }

    /// XY hop count between core `c` (on a square-ish grid) and slice `s`
    /// (in a row below the grid, spread evenly).
    fn hops(c: usize, s: usize, num_cores: usize, num_slices: usize) -> u64 {
        let w = (num_cores as f64).sqrt().ceil() as usize;
        let h = num_cores.div_ceil(w);
        let (cx, cy) = (c % w, c / w);
        let sx = if num_slices >= w {
            s * w / num_slices
        } else {
            s * w / num_slices + w / (2 * num_slices.max(1))
        };
        let sy = h; // one row below the cores
        (cx.abs_diff(sx) + cy.abs_diff(sy)) as u64
    }

    /// Request latency for a (core, slice) pair.
    pub fn req_latency(&self, core: usize, slice: SliceId) -> u64 {
        self.req_lat[core * self.num_slices + slice]
    }

    /// Response latency for a (core, slice) pair.
    pub fn resp_latency(&self, core: usize, slice: SliceId) -> u64 {
        self.resp_lat[core * self.num_slices + slice]
    }

    /// Sends a pooled request towards `slice`, arriving after the pair
    /// latency. Returns the arrival cycle (the event-driven scheduler
    /// uses it to wake the receiving slice).
    pub fn send_req(&mut self, slice: SliceId, h: ReqHandle, now: Cycle, pool: &ReqPool) -> Cycle {
        let at = now + self.req_latency(pool.get(h).core, slice);
        // Distances differ per sender, so arrival times are not
        // monotonic in send order; keep sorted (stable on ties).
        self.to_slice[slice].insert_sorted(at, h);
        at
    }

    /// Sends a response towards its core, arriving after the pair
    /// latency beyond `ready_at` (which already includes data latency).
    /// Returns the arrival cycle.
    pub fn send_resp(&mut self, slice: SliceId, resp: MemResp, ready_at: Cycle) -> Cycle {
        let at = ready_at + self.resp_latency(resp.core, slice);
        self.to_core[resp.core].insert_sorted(at, resp);
        at
    }

    /// Earliest pending request arrival for `slice` (lanes are sorted
    /// by arrival time, so the front is the minimum).
    pub fn next_req_arrival(&self, slice: SliceId) -> Option<Cycle> {
        self.to_slice[slice].front_at()
    }

    /// Earliest pending response arrival for `core`.
    pub fn next_resp_arrival(&self, core: usize) -> Option<Cycle> {
        self.to_core[core].front_at()
    }

    /// Pops every request due for `slice` at `now` into `out`.
    pub fn drain_reqs(&mut self, slice: SliceId, now: Cycle, out: &mut Vec<ReqHandle>) {
        while let Some(h) = self.to_slice[slice].pop_due(now) {
            out.push(h);
        }
    }

    /// Pops the next request due for `slice` at `now`, if any (the
    /// scratch-free drain the system loop uses).
    #[inline]
    pub fn pop_due_req(&mut self, slice: SliceId, now: Cycle) -> Option<ReqHandle> {
        self.to_slice[slice].pop_due(now)
    }

    /// Pops every response due for `core` at `now` into `out`.
    pub fn drain_resps(&mut self, core: usize, now: Cycle, out: &mut Vec<MemResp>) {
        while let Some(resp) = self.to_core[core].pop_due(now) {
            out.push(resp);
        }
    }

    /// Pops the next response due for `core` at `now`, if any.
    #[inline]
    pub fn pop_due_resp(&mut self, core: usize, now: Cycle) -> Option<MemResp> {
        self.to_core[core].pop_due(now)
    }

    /// True when no messages are in flight.
    pub fn is_idle(&self) -> bool {
        self.to_slice.iter().all(|q| q.is_empty()) && self.to_core.iter().all(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MemReq;

    fn cfg_uniform(lat: u64) -> NocConfig {
        NocConfig {
            req_base: lat,
            resp_base: lat,
            hop_latency: 1,
            mesh: false,
        }
    }

    fn req(pool: &mut ReqPool, id: u64, core: usize) -> ReqHandle {
        pool.alloc(MemReq {
            id,
            core,
            request: 0,
            line_addr: 0,
            is_write: false,
            issued_at: 0,
        })
    }

    #[test]
    fn request_arrives_after_latency() {
        let mut pool = ReqPool::default();
        let mut noc = Noc::new(cfg_uniform(6), 1, 2);
        let h = req(&mut pool, 42, 0);
        noc.send_req(1, h, 10, &pool);
        let mut out = Vec::new();
        noc.drain_reqs(1, 15, &mut out);
        assert!(out.is_empty());
        noc.drain_reqs(1, 16, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(pool.get(out[0]).id, 42);
        assert!(noc.is_idle());
    }

    #[test]
    fn order_is_preserved_for_equal_latency() {
        let mut pool = ReqPool::default();
        let mut noc = Noc::new(cfg_uniform(3), 1, 1);
        for (id, at) in [(1, 0), (2, 0), (3, 1)] {
            let h = req(&mut pool, id, 0);
            noc.send_req(0, h, at, &pool);
        }
        let mut out = Vec::new();
        noc.drain_reqs(0, 100, &mut out);
        assert_eq!(
            out.iter().map(|&h| pool.get(h).id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn responses_route_to_core() {
        let mut noc = Noc::new(cfg_uniform(5), 2, 1);
        noc.send_resp(
            0,
            MemResp {
                id: 9,
                core: 1,
                line_addr: 64,
            },
            20,
        );
        let mut out = Vec::new();
        noc.drain_resps(0, 100, &mut out);
        assert!(out.is_empty());
        noc.drain_resps(1, 24, &mut out);
        assert!(out.is_empty());
        noc.drain_resps(1, 25, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn mesh_latencies_differ_by_placement() {
        let cfg = NocConfig {
            req_base: 2,
            resp_base: 2,
            hop_latency: 1,
            mesh: true,
        };
        let noc = Noc::new(cfg, 16, 8);
        // Core 0 (top-left) is closer to slice 0 (below-left) than to
        // slice 7 (below-right).
        assert!(noc.req_latency(0, 0) < noc.req_latency(0, 7));
        // And symmetric for the far corner core.
        assert!(noc.req_latency(15, 7) < noc.req_latency(15, 0));
        // All latencies at least the base.
        for c in 0..16 {
            for s in 0..8 {
                assert!(noc.req_latency(c, s) >= 3, "base + >=1 hop");
            }
        }
    }

    #[test]
    fn mesh_out_of_order_arrivals_are_sorted() {
        let cfg = NocConfig {
            req_base: 2,
            resp_base: 2,
            hop_latency: 2,
            mesh: true,
        };
        let mut pool = ReqPool::default();
        let mut noc = Noc::new(cfg, 16, 8);
        // Core 3 sits at (3,0): 7 hops from slice 0. Core 12 sits at
        // (0,3): 1 hop. The far core sends first but arrives second.
        assert!(noc.req_latency(3, 0) > noc.req_latency(12, 0));
        let far = req(&mut pool, 1, 3);
        noc.send_req(0, far, 0, &pool);
        let near = req(&mut pool, 2, 12);
        noc.send_req(0, near, 0, &pool);
        let mut out = Vec::new();
        noc.drain_reqs(0, 1000, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(pool.get(out[0]).id, 2, "nearer sender arrives first");
    }
}
