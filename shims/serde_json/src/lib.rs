//! Offline stand-in for `serde_json`: JSON text to and from the serde
//! shim's [`serde::Value`] model.
//!
//! Numbers are emitted with Rust's `Display`, which for floats prints
//! the shortest digit string that round-trips exactly; integral floats
//! therefore serialize without a decimal point and deserialize back
//! through the numeric coercions in the serde shim. Non-finite floats
//! serialize as `null` (as real serde_json does).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------

fn emit(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(val, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a low surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-7i64).unwrap()).unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        let f = 0.12345678901234567f64;
        assert_eq!(from_str::<f64>(&to_string(&f).unwrap()).unwrap(), f);
        let g = 2.0f64; // integral float: emitted without a decimal point
        assert_eq!(from_str::<f64>(&to_string(&g).unwrap()).unwrap(), g);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\\slash\tand unicode \u{1F600}".to_string();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, true), (2, false)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, bool)>>(&s).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
