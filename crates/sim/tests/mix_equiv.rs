//! Differential suite for multi-tenant serving mixes.
//!
//! Two contracts, on top of the solo-trace equivalence that
//! `step_mode_equiv.rs` pins:
//!
//! 1. **Mode equivalence with tags.** For every mix — both composition
//!    disciplines, staggered arrivals, the full 20-cell policy matrix —
//!    `StepMode::Skip` produces byte-identical `SimStats` *including
//!    the per-request breakdowns* and the same `RunOutcome` (which now
//!    carries per-request completion counts at a cycle limit).
//! 2. **Attribution is a partition.** Per-request LLC counters and
//!    stall cycles always sum to the untagged totals, and per-request
//!    block counters sum to the machine's completed thread blocks —
//!    checked over randomly tagged programs with random arrivals
//!    (proptest, case count capped by `PROPTEST_CASES`).

use proptest::prelude::*;

use llamcat::experiment::Experiment;
use llamcat::spec::{MixSpec, PolicySpec};
use llamcat_sim::arb::{FifoArbiter, NoThrottle};
use llamcat_sim::config::SystemConfig;
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::stats::SimStats;
use llamcat_sim::system::{RunOutcome, StepMode, System};
use llamcat_trace::workloads::WorkloadSpec;

fn prefill(seq_len: usize, arrival: u64) -> (WorkloadSpec, usize, u64) {
    (
        WorkloadSpec::PrefillLogit {
            heads: 8,
            group_size: 8,
            head_dim: 128,
            query_tokens: 4,
        },
        seq_len,
        arrival,
    )
}

fn decode(seq_len: usize, arrival: u64) -> (WorkloadSpec, usize, u64) {
    (WorkloadSpec::llama3_70b(), seq_len, arrival)
}

fn mix_of(base: MixSpec, requests: &[(WorkloadSpec, usize, u64)]) -> MixSpec {
    requests
        .iter()
        .fold(base, |m, &(w, s, a)| m.request(w, s, a))
}

/// The canonical 2-request decode + prefill mix of the golden table.
fn canonical_mix() -> MixSpec {
    mix_of(MixSpec::interleaved(), &[decode(128, 0), prefill(128, 0)])
}

/// The 5 × 4 policy matrix, compositional registry names.
fn policy_matrix() -> Vec<PolicySpec> {
    let mut out = Vec::with_capacity(20);
    for arb in ["fifo", "B", "MA", "BMA", "cobrra"] {
        for thr in ["none", "dyncta", "lcs", "dynmg"] {
            out.push(PolicySpec::from_name(&format!("{thr}+{arb}")).expect("matrix name"));
        }
    }
    out
}

/// Runs one mix cell in both modes and asserts full observational
/// equivalence: outcome, per-request reports, serialized `SimStats`.
fn assert_mix_mode_equivalent(mix: &MixSpec, policy: PolicySpec, budget: Option<u64>) {
    let label = format!("{} / {}", mix.label(), policy.label());
    let run = |mode| {
        let mut e = Experiment::from_mix_spec(mix)
            .expect("valid mix")
            .policy(policy.clone())
            .step_mode(mode);
        e.max_cycles = budget;
        e.try_run().expect("mix runs")
    };
    let cycle = run(StepMode::Cycle);
    let skip = run(StepMode::Skip);
    assert_eq!(
        serde_json::to_string(&cycle).unwrap(),
        serde_json::to_string(&skip).unwrap(),
        "{label}: RunReport (incl. per-request breakdowns) diverged (budget {budget:?})"
    );
    let stats_cycle = serde_json::to_string(cycle.stats.as_ref().unwrap()).unwrap();
    let stats_skip = serde_json::to_string(skip.stats.as_ref().unwrap()).unwrap();
    assert_eq!(
        stats_cycle, stats_skip,
        "{label}: SimStats diverged between step modes (budget {budget:?})"
    );
    cycle
        .stats
        .as_ref()
        .unwrap()
        .check_consistency()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// The canonical mix across the whole 20-cell policy matrix, run to
/// completion in both step modes (the CI release-mode gate).
#[test]
fn canonical_mix_is_mode_equivalent_across_policy_matrix() {
    let mix = canonical_mix();
    for policy in policy_matrix() {
        assert_mix_mode_equivalent(&mix, policy, None);
    }
}

/// Composition disciplines and staggered arrivals, on the interesting
/// policy corners (the mechanisms the solo grid already covers in
/// depth).
#[test]
fn mix_shapes_are_mode_equivalent() {
    let shapes = [
        mix_of(MixSpec::partitioned(), &[decode(128, 0), decode(128, 0)]),
        mix_of(
            MixSpec::partitioned(),
            &[decode(256, 0), prefill(128, 2_000)],
        ),
        mix_of(
            MixSpec::interleaved(),
            &[decode(128, 0), prefill(128, 10_000)],
        ),
        mix_of(
            MixSpec::interleaved(),
            &[decode(128, 0), decode(256, 500), prefill(128, 30_000)],
        ),
    ];
    for mix in &shapes {
        for policy in [PolicySpec::unoptimized(), PolicySpec::dynmg_bma()] {
            assert_mix_mode_equivalent(mix, policy, None);
        }
    }
}

/// Budget edges: both modes report the same `RunOutcome` — including
/// the per-request completion counts a `CycleLimit` now carries — at
/// every budget.
#[test]
fn mix_budget_edges_agree_on_per_request_completion() {
    let mix = mix_of(
        MixSpec::partitioned(),
        &[decode(128, 0), prefill(128, 4_000)],
    );
    // Find the completion cycle, then probe budgets around and below.
    let full = Experiment::from_mix_spec(&mix).unwrap().run();
    assert!(full.completed);
    let end = full.cycles;
    for budget in [1, 100, 4_001, end / 2, end - 1, end, end + 1] {
        let run = |mode| {
            Experiment::from_mix_spec(&mix)
                .unwrap()
                .step_mode(mode)
                .max_cycles(budget)
                .run()
        };
        let c = run(StepMode::Cycle);
        let s = run(StepMode::Skip);
        assert_eq!(
            serde_json::to_string(&c).unwrap(),
            serde_json::to_string(&s).unwrap(),
            "budget {budget}: reports diverged"
        );
        // Per-request completion flags match the completion cycles.
        for r in &c.requests {
            assert_eq!(
                r.completed,
                r.cycles > 0,
                "budget {budget}: completion flag inconsistent"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Proptests: random request-tagged programs at the simulator level.
// ---------------------------------------------------------------------

fn small_cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::table5();
    cfg.num_cores = cores;
    cfg.dram.refresh = false;
    cfg
}

/// (address selector, shape selector, request tag) -> one block.
fn decode_block(addr_sel: u64, kind: u8) -> ThreadBlock {
    let addr = addr_sel * 128;
    let instrs = match kind % 4 {
        0 => vec![Instr::Load { addr, bytes: 128 }, Instr::Barrier],
        1 => vec![
            Instr::Compute { cycles: 17 },
            Instr::Load { addr, bytes: 128 },
            Instr::Barrier,
        ],
        2 => vec![
            Instr::Store { addr, bytes: 64 },
            Instr::Compute { cycles: 5 },
        ],
        _ => vec![
            Instr::Load { addr, bytes: 128 },
            Instr::Load {
                addr: addr + 4096,
                bytes: 128,
            },
            Instr::Barrier,
        ],
    };
    ThreadBlock { instrs }
}

/// Builds a randomly tagged, randomly staggered program. Tenants get
/// disjoint address windows (bit 30+) like real mixes.
fn tagged_program(blocks: &[(u64, u8, u8, u8)], cores: usize, num_requests: u32) -> Program {
    let mut bs = Vec::with_capacity(blocks.len());
    let mut tags = Vec::with_capacity(blocks.len());
    let mut arrivals = Vec::with_capacity(blocks.len());
    for &(addr_sel, kind, tag, arr) in blocks {
        let request = tag as u32 % num_requests;
        bs.push(decode_block(
            (addr_sel % 512) + ((request as u64) << 23),
            kind,
        ));
        tags.push(request);
        // Arrivals in 0, 100, 200, 300: short enough to complete, long
        // enough to gate scheduling.
        arrivals.push((arr as u64 % 4) * 100);
    }
    let assignment = (0..bs.len()).map(|i| i % cores).collect();
    Program::with_requests(bs, assignment, tags, arrivals)
}

fn run_mode(cfg: SystemConfig, p: Program, mode: StepMode) -> (SimStats, RunOutcome) {
    let mut sys = System::new(cfg, p, &|_| Box::new(FifoArbiter), Box::new(NoThrottle));
    sys.run_with_mode(2_000_000, mode)
}

proptest! {
    // Random tagged programs: byte-identical per-request stats across
    // modes, and per-request counters partition the untagged totals.
    #[test]
    fn random_tagged_programs_partition_and_match(
        blocks in proptest::collection::vec(
            (0u64..4096, 0u8..8, 0u8..8, 0u8..8), 1..24),
        cores in 1usize..5,
        num_requests in 1u32..4,
    ) {
        let p = tagged_program(&blocks, cores, num_requests);
        let (sc, oc) = run_mode(small_cfg(cores), p.clone(), StepMode::Cycle);
        let (ss, os) = run_mode(small_cfg(cores), p.clone(), StepMode::Skip);
        prop_assert_eq!(oc, os, "outcome diverged");
        prop_assert_eq!(
            serde_json::to_string(&sc).unwrap(),
            serde_json::to_string(&ss).unwrap(),
            "SimStats (incl. per-request) diverged"
        );
        prop_assert_eq!(oc, RunOutcome::Completed);
        // The partition property: per-request cycle/stall/event
        // counters sum to the untagged totals.
        if let Err(e) = sc.check_consistency() {
            prop_assert!(false, "consistency: {}", e);
        }
        let total_tbs: u64 = sc.cores.iter().map(|c| c.tbs_completed).sum();
        let tagged_tbs: u64 = sc.requests.iter().map(|r| r.blocks_completed).sum();
        prop_assert_eq!(total_tbs, tagged_tbs, "blocks not partitioned");
        prop_assert_eq!(sc.requests.len(), p.num_requests());
        let merges: u64 = sc.requests.iter().map(|r| r.llc.mshr_merges).sum();
        let total_merges: u64 = sc.slices.iter().map(|s| s.mshr_merges).sum();
        prop_assert_eq!(merges, total_merges, "merges not partitioned");
        // Every request completed no earlier than it arrived.
        for r in &sc.requests {
            if r.completed && r.blocks_total > 0 {
                prop_assert!(r.completion_cycle >= r.arrival);
            }
        }
    }
}
