//! Simulation statistics.
//!
//! The counters here are exactly the quantities the paper's evaluation
//! plots: execution cycles (performance), L2 hit rate, MSHR hit rate
//! (merges / cache misses), MSHR `numEntry` occupancy ("MSHR entry util"),
//! cache stall proportion `t_cs` (drives the dynmg contention classifier,
//! Table 3) and DRAM bandwidth (Fig 8).

use serde::{Deserialize, Serialize};

use crate::types::{Cycle, LINE_BYTES};

/// Counters for one LLC slice.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SliceStats {
    /// Requests that completed tag lookup.
    pub lookups: u64,
    /// Tag hits.
    pub hits: u64,
    /// Tag misses (merged + newly allocated).
    pub misses: u64,
    /// Misses merged into an existing MSHR entry ("MSHR hits").
    pub mshr_merges: u64,
    /// Misses that allocated a new MSHR entry.
    pub mshr_allocs: u64,
    /// Cycles the slice pipeline was stalled on MSHR reservation failure.
    pub stall_cycles: u64,
    /// Stalls caused by entry exhaustion specifically.
    pub stall_entry_full: u64,
    /// Stalls caused by target exhaustion specifically.
    pub stall_target_full: u64,
    /// Cycles the tag-pipe head was blocked on the busy data port
    /// (hit-bandwidth starvation; also counted in `stall_cycles`).
    pub stall_data_port: u64,
    /// Sum over cycles of occupied MSHR entries (for mean occupancy).
    pub mshr_occupancy_integral: u64,
    /// Sum over cycles of request-queue occupancy.
    pub req_q_occupancy_integral: u64,
    /// Sum over cycles of response-queue occupancy.
    pub resp_q_occupancy_integral: u64,
    /// Requests refused at the ingress because the request queue was full.
    pub req_q_rejects: u64,
    /// Lines written into storage from the response path.
    pub fills: u64,
    /// Dirty victims written back to DRAM.
    pub writebacks: u64,
    /// Cycles the storage port was spent serving the response path.
    pub resp_port_cycles: u64,
    /// Cycles the storage port was spent serving the request path.
    pub req_port_cycles: u64,
}

/// Counters for one core.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreStats {
    /// Thread blocks completed.
    pub tbs_completed: u64,
    /// Instructions issued (vector ops).
    pub instrs_issued: u64,
    /// Vector loads issued.
    pub loads: u64,
    /// Vector stores issued.
    pub stores: u64,
    /// L1 line lookups.
    pub l1_lookups: u64,
    /// L1 line hits.
    pub l1_hits: u64,
    /// L1 misses merged into a pending entry.
    pub l1_merges: u64,
    /// Cycles with no thread block resident at all (idle).
    pub idle_cycles: u64,
    /// Cycles where every resident thread block was waiting on memory.
    pub mem_stall_cycles: u64,
    /// Cycles the core issued at least one instruction.
    pub active_cycles: u64,
    /// Sum of load round-trip latencies (issue to data return).
    pub load_latency_sum: u64,
    /// Number of completed loads (for mean latency).
    pub load_count: u64,
}

/// Counters for one DRAM channel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    pub reads: u64,
    pub writes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
    pub activates: u64,
    pub precharges: u64,
    pub refreshes: u64,
    /// DRAM cycles the data bus carried a burst.
    pub data_bus_busy: u64,
    /// Sum of read-queue residency times in DRAM cycles.
    pub read_latency_sum: u64,
}

/// LLC-side counters attributed to one serving request (tenant).
///
/// Every increment mirrors an untagged [`SliceStats`] increment at the
/// exact same point of the pipeline, so per-request counters always sum
/// to the untagged totals (a proptest in `crates/sim/tests/mix_equiv.rs`
/// pins this), and the fast-forward engine accrues them in the same
/// closed forms — per-request stats are byte-identical across step
/// modes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestLlcStats {
    /// Requests of this tenant that completed tag lookup.
    pub lookups: u64,
    /// Tag hits.
    pub hits: u64,
    /// Tag misses (merged + newly allocated).
    pub misses: u64,
    /// Misses merged into an existing MSHR entry.
    pub mshr_merges: u64,
    /// Misses that allocated a new MSHR entry.
    pub mshr_allocs: u64,
    /// Pipeline stall cycles charged to this tenant (the tenant whose
    /// request sat at the blocked pipeline head).
    pub stall_cycles: u64,
}

impl RequestLlcStats {
    /// Accumulates another tenant-attributed counter set (used to merge
    /// per-slice attributions into the run-level per-request view).
    pub fn merge(&mut self, other: &RequestLlcStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.mshr_merges += other.mshr_merges;
        self.mshr_allocs += other.mshr_allocs;
        self.stall_cycles += other.stall_cycles;
    }
}

/// Aggregate counters for the tiered KV store (see [`crate::kv`]).
///
/// `hits + misses + merges == lookups` — every KV-classified DRAM read
/// is exactly one of warm-hit, promotion-starting miss, or a merge into
/// an in-flight promotion ([`SimStats::check_consistency`] pins this).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvTierStats {
    /// KV-classified DRAM reads that consulted the warm tier.
    pub lookups: u64,
    /// Lookups whose KV block was already warm.
    pub hits: u64,
    /// Lookups that started a promotion from the slow tier.
    pub misses: u64,
    /// Lookups merged into an already in-flight promotion.
    pub merges: u64,
    /// Promotions whose transfer completed (≤ `misses`; a run cut off
    /// by the cycle budget can leave transfers in flight).
    pub promotions: u64,
    /// Warm blocks evicted to make room for a completed promotion.
    pub evictions: u64,
}

/// KV-tier counters attributed to one serving request (tenant).
///
/// Mirrors [`KvTierStats`] increment-for-increment (evictions are
/// charged to the request whose promotion forced them), so per-request
/// counters always sum to the tier totals — and byte-identically across
/// step modes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestKvStats {
    /// KV-classified DRAM reads of this tenant.
    pub lookups: u64,
    /// Warm-tier hits.
    pub hits: u64,
    /// Promotions this tenant started.
    pub misses: u64,
    /// Reads merged into an in-flight promotion.
    pub merges: u64,
    /// Evictions forced by this tenant's completed promotions.
    pub evictions: u64,
}

impl RequestKvStats {
    /// Accumulates another tenant-attributed counter set.
    pub fn merge(&mut self, other: &RequestKvStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.merges += other.merges;
        self.evictions += other.evictions;
    }
}

/// Per-request (tenant) breakdown of a run: completion progress plus
/// the LLC interference profile of the request's traffic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Thread blocks the request contributed to the trace.
    pub blocks_total: u64,
    /// Thread blocks of the request that retired.
    pub blocks_completed: u64,
    /// Cycle at which the request's blocks became schedulable.
    pub arrival: Cycle,
    /// Whether every block of the request retired within the budget.
    pub completed: bool,
    /// Cycle during which the request's last block retired (only
    /// meaningful when `completed`).
    pub completion_cycle: Cycle,
    /// Cycle at which the serving scheduler admitted the request —
    /// equal to `arrival` for closed (pre-tagged) runs, later under an
    /// open-system admission queue. `None` while still queued.
    #[serde(default)]
    pub admitted: Option<Cycle>,
    /// Cycle during which the request's *first* block retired. `None`
    /// until then.
    #[serde(default)]
    pub first_retire: Option<Cycle>,
    /// Cycle at which the serving scheduler terminally rejected or
    /// deadline-dropped the request (see
    /// [`crate::serve::ServePolicy::RejectAboveQueue`] and
    /// [`crate::serve::ServePolicy::DeadlineDrop`]). A rejected request
    /// never admits and never completes. `None` everywhere else.
    #[serde(default)]
    pub rejected: Option<Cycle>,
    /// Times the request was preempted — its unissued blocks withdrawn
    /// back to the admission queue by a higher-class arrival (see
    /// [`crate::serve::ServePolicy::PriorityPreempt`]).
    #[serde(default)]
    pub preemptions: u32,
    /// Serving priority class (higher = more urgent; 0 for closed runs
    /// and classless serve sets).
    #[serde(default)]
    pub class: u8,
    /// LLC counters attributed to this request, summed over slices.
    pub llc: RequestLlcStats,
    /// KV-tier counters attributed to this request (all zero when no
    /// tier is attached; defaulted so pre-tier archives deserialize).
    #[serde(default)]
    pub kv: RequestKvStats,
}

impl RequestStats {
    /// Cycles from arrival to completion (0 when not completed, and 0
    /// for a trivially-complete request that contributed no blocks).
    /// Completion during the tick of cycle `c` counts `c + 1` elapsed
    /// cycles, matching the run-level `SimStats::cycles` convention.
    pub fn cycles_to_completion(&self) -> Cycle {
        if self.completed && self.blocks_total > 0 {
            self.completion_cycle + 1 - self.arrival
        } else {
            0
        }
    }

    /// Time-to-first-token proxy: cycles from *arrival* to the first
    /// retired block (inclusive of the retiring cycle, like
    /// [`RequestStats::cycles_to_completion`]). Queueing delay under an
    /// open-system admission policy is included — that is the latency a
    /// client would see. `None` until a block retires.
    pub fn ttft(&self) -> Option<Cycle> {
        self.first_retire.map(|c| c + 1 - self.arrival)
    }

    /// Mean time-between-tokens proxy: average cycles between
    /// consecutive block retirements after the first. `None` unless
    /// the request completed with at least two blocks.
    pub fn mean_tbt(&self) -> Option<f64> {
        if self.completed && self.blocks_total >= 2 {
            let first = self.first_retire?;
            Some((self.completion_cycle - first) as f64 / (self.blocks_total - 1) as f64)
        } else {
            None
        }
    }

    /// Cycles the request waited in the admission queue (0 for closed
    /// runs, where admission *is* arrival). `None` while still queued.
    pub fn queue_delay(&self) -> Option<Cycle> {
        self.admitted.map(|a| a - self.arrival)
    }

    /// Classifies the request against an SLO: `Rejected` if the
    /// admission policy terminally rejected or deadline-dropped it,
    /// `Met` if it completed with TTFT within `ttft_deadline` cycles
    /// and (when a TBT deadline is given and the request has ≥ 2
    /// blocks) mean TBT within `tbt_deadline`, `Missed` otherwise —
    /// including requests still queued or in flight when the cycle
    /// budget ran out. Only `Met` requests count toward goodput.
    pub fn slo_outcome(&self, ttft_deadline: Cycle, tbt_deadline: Option<Cycle>) -> SloOutcome {
        if self.rejected.is_some() {
            return SloOutcome::Rejected;
        }
        let ttft_ok = self.completed && self.ttft().is_some_and(|t| t <= ttft_deadline);
        let tbt_ok = match (tbt_deadline, self.mean_tbt()) {
            (Some(d), Some(tbt)) => tbt <= d as f64,
            // No deadline, or a 0/1-block request with no TBT to judge.
            _ => true,
        };
        if ttft_ok && tbt_ok {
            SloOutcome::Met
        } else {
            SloOutcome::Missed
        }
    }
}

/// Per-request verdict against a serving SLO (see
/// [`RequestStats::slo_outcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloOutcome {
    /// Completed within every configured deadline; counts toward goodput.
    Met,
    /// Admitted (or still queued) but failed a deadline or never finished.
    Missed,
    /// Terminally rejected or deadline-dropped by the admission policy.
    Rejected,
}

/// Aggregated statistics for a full simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Total execution time in core cycles (operator completion).
    pub cycles: Cycle,
    /// Core clock frequency used for wall-time conversion, GHz.
    pub freq_ghz: f64,
    pub slices: Vec<SliceStats>,
    pub cores: Vec<CoreStats>,
    pub channels: Vec<ChannelStats>,
    /// Per-core progress counters (requests served at the LLC) at the end
    /// of the run.
    pub progress: Vec<u64>,
    /// Thread blocks migrated between cores by the global scheduler.
    pub tb_migrations: u64,
    /// Per-request (tenant) breakdowns, indexed by request id. Solo
    /// runs report exactly one entry; legacy constructors leave it
    /// empty until [`crate::system::System::collect_stats`] fills it.
    #[serde(default)]
    pub requests: Vec<RequestStats>,
    /// Tiered KV store totals (`None` when no tier was attached).
    #[serde(default)]
    pub kv: Option<KvTierStats>,
}

impl SimStats {
    pub fn new(num_slices: usize, num_cores: usize, num_channels: usize) -> Self {
        SimStats {
            cycles: 0,
            freq_ghz: 0.0,
            slices: vec![SliceStats::default(); num_slices],
            cores: vec![CoreStats::default(); num_cores],
            channels: vec![ChannelStats::default(); num_channels],
            progress: vec![0; num_cores],
            tb_migrations: 0,
            requests: Vec::new(),
            kv: None,
        }
    }

    /// Total L2 lookups across slices.
    pub fn l2_lookups(&self) -> u64 {
        self.slices.iter().map(|s| s.lookups).sum()
    }

    /// L2 hit rate: hits / lookups.
    pub fn l2_hit_rate(&self) -> f64 {
        let lookups = self.l2_lookups();
        if lookups == 0 {
            return 0.0;
        }
        self.slices.iter().map(|s| s.hits).sum::<u64>() as f64 / lookups as f64
    }

    /// MSHR hit rate as the paper defines it: requests merged into an
    /// existing entry divided by the number of cache misses.
    pub fn mshr_hit_rate(&self) -> f64 {
        let misses: u64 = self.slices.iter().map(|s| s.misses).sum();
        if misses == 0 {
            return 0.0;
        }
        self.slices.iter().map(|s| s.mshr_merges).sum::<u64>() as f64 / misses as f64
    }

    /// Mean MSHR `numEntry` occupancy as a fraction of capacity.
    pub fn mshr_entry_util(&self, entries_per_slice: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let integral: u64 = self.slices.iter().map(|s| s.mshr_occupancy_integral).sum();
        integral as f64 / (self.cycles as f64 * self.slices.len() as f64 * entries_per_slice as f64)
    }

    /// Proportion of cache-stall cycles, `t_cs` (Table 3 input), averaged
    /// over slices.
    pub fn t_cs(&self) -> f64 {
        if self.cycles == 0 || self.slices.is_empty() {
            return 0.0;
        }
        let stalls: u64 = self.slices.iter().map(|s| s.stall_cycles).sum();
        stalls as f64 / (self.cycles as f64 * self.slices.len() as f64)
    }

    /// Bytes moved to/from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| (c.reads + c.writes) * LINE_BYTES)
            .sum()
    }

    /// Number of DRAM line accesses (reads + writes).
    pub fn dram_accesses(&self) -> u64 {
        self.channels.iter().map(|c| c.reads + c.writes).sum()
    }

    /// Average DRAM bandwidth over the run in GB/s.
    pub fn dram_bandwidth_gbs(&self) -> f64 {
        if self.cycles == 0 || self.freq_ghz == 0.0 {
            return 0.0;
        }
        let seconds = self.cycles as f64 / (self.freq_ghz * 1e9);
        self.dram_bytes() as f64 / seconds / 1e9
    }

    /// DRAM row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        let total: u64 = self
            .channels
            .iter()
            .map(|c| c.row_hits + c.row_misses + c.row_conflicts)
            .sum();
        if total == 0 {
            return 0.0;
        }
        self.channels.iter().map(|c| c.row_hits).sum::<u64>() as f64 / total as f64
    }

    /// Mean load latency observed by cores, in cycles.
    pub fn mean_load_latency(&self) -> f64 {
        let n: u64 = self.cores.iter().map(|c| c.load_count).sum();
        if n == 0 {
            return 0.0;
        }
        self.cores.iter().map(|c| c.load_latency_sum).sum::<u64>() as f64 / n as f64
    }

    /// Aggregate L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        let lookups: u64 = self.cores.iter().map(|c| c.l1_lookups).sum();
        if lookups == 0 {
            return 0.0;
        }
        self.cores.iter().map(|c| c.l1_hits).sum::<u64>() as f64 / lookups as f64
    }

    /// Consistency check used by integration tests: hits + misses must
    /// equal lookups, and merges + allocs must equal misses, per slice.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, s) in self.slices.iter().enumerate() {
            if s.hits + s.misses != s.lookups {
                return Err(format!(
                    "slice {i}: hits {} + misses {} != lookups {}",
                    s.hits, s.misses, s.lookups
                ));
            }
            if s.mshr_merges + s.mshr_allocs != s.misses {
                return Err(format!(
                    "slice {i}: merges {} + allocs {} != misses {}",
                    s.mshr_merges, s.mshr_allocs, s.misses
                ));
            }
        }
        for (i, c) in self.cores.iter().enumerate() {
            if c.l1_hits + c.l1_merges > c.l1_lookups {
                return Err(format!("core {i}: L1 hits+merges exceed lookups"));
            }
        }
        if !self.requests.is_empty() {
            // Per-request attribution must partition the untagged
            // totals: every event and every attributed stall cycle is
            // charged to exactly one request.
            let sums: [(&str, u64, u64); 4] = [
                (
                    "lookups",
                    self.requests.iter().map(|r| r.llc.lookups).sum(),
                    self.slices.iter().map(|s| s.lookups).sum(),
                ),
                (
                    "hits",
                    self.requests.iter().map(|r| r.llc.hits).sum(),
                    self.slices.iter().map(|s| s.hits).sum(),
                ),
                (
                    "misses",
                    self.requests.iter().map(|r| r.llc.misses).sum(),
                    self.slices.iter().map(|s| s.misses).sum(),
                ),
                (
                    "stall cycles",
                    self.requests.iter().map(|r| r.llc.stall_cycles).sum(),
                    self.slices.iter().map(|s| s.stall_cycles).sum(),
                ),
            ];
            for (what, tagged, total) in sums {
                if tagged != total {
                    return Err(format!(
                        "per-request {what} sum {tagged} != untagged total {total}"
                    ));
                }
            }
            for (r, req) in self.requests.iter().enumerate() {
                if req.llc.hits + req.llc.misses != req.llc.lookups {
                    return Err(format!("request {r}: hits + misses != lookups"));
                }
                if req.llc.mshr_merges + req.llc.mshr_allocs != req.llc.misses {
                    return Err(format!("request {r}: merges + allocs != misses"));
                }
                if req.completed && req.blocks_completed != req.blocks_total {
                    return Err(format!("request {r}: completed with blocks outstanding"));
                }
                if req.rejected.is_some() && (req.completed || req.admitted.is_some()) {
                    return Err(format!(
                        "request {r}: terminally rejected yet admitted/completed"
                    ));
                }
            }
        }
        if let Some(kv) = &self.kv {
            if kv.hits + kv.misses + kv.merges != kv.lookups {
                return Err(format!(
                    "kv: hits {} + misses {} + merges {} != lookups {}",
                    kv.hits, kv.misses, kv.merges, kv.lookups
                ));
            }
            if kv.promotions > kv.misses {
                return Err(format!(
                    "kv: {} promotions completed but only {} started",
                    kv.promotions, kv.misses
                ));
            }
            if !self.requests.is_empty() {
                // KV attribution must partition the tier totals, exactly
                // like the LLC counters above.
                let sums: [(&str, u64, u64); 5] = [
                    (
                        "lookups",
                        self.requests.iter().map(|r| r.kv.lookups).sum(),
                        kv.lookups,
                    ),
                    (
                        "hits",
                        self.requests.iter().map(|r| r.kv.hits).sum(),
                        kv.hits,
                    ),
                    (
                        "misses",
                        self.requests.iter().map(|r| r.kv.misses).sum(),
                        kv.misses,
                    ),
                    (
                        "merges",
                        self.requests.iter().map(|r| r.kv.merges).sum(),
                        kv.merges,
                    ),
                    (
                        "evictions",
                        self.requests.iter().map(|r| r.kv.evictions).sum(),
                        kv.evictions,
                    ),
                ];
                for (what, tagged, total) in sums {
                    if tagged != total {
                        return Err(format!(
                            "per-request kv {what} sum {tagged} != tier total {total}"
                        ));
                    }
                }
                for (r, req) in self.requests.iter().enumerate() {
                    if req.kv.hits + req.kv.misses + req.kv.merges != req.kv.lookups {
                        return Err(format!("request {r}: kv hits + misses + merges != lookups"));
                    }
                }
            }
        } else if self
            .requests
            .iter()
            .any(|r| r.kv != RequestKvStats::default())
        {
            return Err("per-request kv counters without a kv tier".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(cycles: u64) -> SimStats {
        let mut s = SimStats::new(2, 2, 2);
        s.cycles = cycles;
        s.freq_ghz = 2.0;
        s
    }

    #[test]
    fn hit_rates_empty_run() {
        let s = stats_with(0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.mshr_hit_rate(), 0.0);
        assert_eq!(s.t_cs(), 0.0);
        assert_eq!(s.dram_bandwidth_gbs(), 0.0);
    }

    #[test]
    fn l2_hit_rate_aggregates_slices() {
        let mut s = stats_with(100);
        s.slices[0].lookups = 10;
        s.slices[0].hits = 5;
        s.slices[0].misses = 5;
        s.slices[1].lookups = 10;
        s.slices[1].hits = 10;
        assert!((s.l2_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mshr_hit_rate_definition() {
        // Paper definition: merges / cache misses.
        let mut s = stats_with(100);
        s.slices[0].misses = 8;
        s.slices[0].mshr_merges = 6;
        s.slices[0].mshr_allocs = 2;
        assert!((s.mshr_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_math() {
        let mut s = stats_with(2_000_000_000); // 1 second at 2 GHz
        s.channels[0].reads = 1_000_000;
        // 1e6 lines * 64B = 64 MB over 1 s = 0.064 GB/s.
        assert!((s.dram_bandwidth_gbs() - 0.064).abs() < 1e-9);
    }

    #[test]
    fn t_cs_is_per_slice_proportion() {
        let mut s = stats_with(1000);
        s.slices[0].stall_cycles = 500;
        s.slices[1].stall_cycles = 0;
        assert!((s.t_cs() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn request_cycles_to_completion() {
        let mut r = RequestStats {
            arrival: 100,
            blocks_total: 4,
            ..Default::default()
        };
        assert_eq!(r.cycles_to_completion(), 0, "incomplete request");
        r.completed = true;
        r.completion_cycle = 499;
        assert_eq!(r.cycles_to_completion(), 400);
        // A trivially-complete zero-block request did no work.
        r.blocks_total = 0;
        assert_eq!(r.cycles_to_completion(), 0);
    }

    #[test]
    fn request_latency_metrics() {
        let mut r = RequestStats {
            arrival: 100,
            blocks_total: 5,
            ..Default::default()
        };
        assert_eq!(r.ttft(), None, "no block retired yet");
        assert_eq!(r.queue_delay(), None, "still queued");
        r.admitted = Some(160);
        r.first_retire = Some(199);
        assert_eq!(r.queue_delay(), Some(60));
        assert_eq!(r.ttft(), Some(100), "arrival -> first retire, inclusive");
        assert_eq!(r.mean_tbt(), None, "not completed yet");
        r.completed = true;
        r.completion_cycle = 599;
        assert_eq!(r.mean_tbt(), Some(100.0), "(599 - 199) / 4 blocks");
        // Closed runs: admission is arrival, queue delay 0.
        r.admitted = Some(r.arrival);
        assert_eq!(r.queue_delay(), Some(0));
    }

    #[test]
    fn slo_outcome_classification() {
        let mut r = RequestStats {
            arrival: 100,
            blocks_total: 5,
            ..Default::default()
        };
        // Still queued / in flight when the budget ran out.
        assert_eq!(r.slo_outcome(1_000, None), SloOutcome::Missed);
        r.admitted = Some(100);
        r.first_retire = Some(199);
        r.completed = true;
        r.blocks_completed = 5;
        r.completion_cycle = 599;
        // TTFT 100, mean TBT 100.
        assert_eq!(r.slo_outcome(100, None), SloOutcome::Met);
        assert_eq!(r.slo_outcome(99, None), SloOutcome::Missed);
        assert_eq!(r.slo_outcome(100, Some(100)), SloOutcome::Met);
        assert_eq!(r.slo_outcome(100, Some(99)), SloOutcome::Missed);
        // Rejection dominates everything else.
        let dropped = RequestStats {
            arrival: 100,
            blocks_total: 5,
            rejected: Some(150),
            ..Default::default()
        };
        assert_eq!(dropped.slo_outcome(1_000, None), SloOutcome::Rejected);
        // A single-block request has no TBT to judge.
        let single = RequestStats {
            blocks_total: 1,
            blocks_completed: 1,
            completed: true,
            first_retire: Some(9),
            completion_cycle: 9,
            ..Default::default()
        };
        assert_eq!(single.slo_outcome(10, Some(1)), SloOutcome::Met);
    }

    #[test]
    fn consistency_rejects_rejected_yet_admitted() {
        let mut s = stats_with(10);
        s.requests = vec![RequestStats {
            blocks_total: 1,
            rejected: Some(5),
            ..Default::default()
        }];
        s.check_consistency().unwrap();
        s.requests[0].admitted = Some(5);
        assert!(s.check_consistency().is_err());
    }

    #[test]
    fn consistency_checks_request_partition() {
        let mut s = stats_with(10);
        s.slices[0].lookups = 4;
        s.slices[0].hits = 1;
        s.slices[0].misses = 3;
        s.slices[0].mshr_allocs = 3;
        s.requests = vec![RequestStats {
            blocks_total: 1,
            blocks_completed: 1,
            completed: true,
            llc: RequestLlcStats {
                lookups: 4,
                hits: 1,
                misses: 3,
                mshr_allocs: 3,
                ..Default::default()
            },
            ..Default::default()
        }];
        s.check_consistency().unwrap();
        // A lost lookup attribution is caught.
        s.requests[0].llc.lookups = 3;
        s.requests[0].llc.hits = 0;
        assert!(s.check_consistency().is_err());
    }

    #[test]
    fn consistency_detects_mismatch() {
        let mut s = stats_with(10);
        s.slices[0].lookups = 3;
        s.slices[0].hits = 1;
        s.slices[0].misses = 1;
        assert!(s.check_consistency().is_err());
        s.slices[0].misses = 2;
        s.slices[0].mshr_allocs = 2;
        assert!(s.check_consistency().is_ok());
    }
}
