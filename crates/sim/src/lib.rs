//! # llamcat-sim — cycle-level simulator substrate for LLaMCAT
//!
//! A from-scratch, trace-driven, cycle-level simulator of an LLC-based
//! accelerator (GPU-class or AI-SoC-class), reproducing the simulation
//! substrate of *LLaMCAT: Optimizing Large Language Model Inference with
//! Cache Arbitration and Throttling* (ICPP 2025):
//!
//! * **Vector cores** with multiple instruction windows, runtime
//!   thread-block scheduling and cross-core migration ([`core_model`],
//!   [`sched`]);
//! * **Private L1s** (write-through, streaming) and a **sliced shared
//!   L2** with MSHRs, request/response queues and a pluggable arbiter
//!   ([`l1`], [`llc`], [`mshr`]);
//! * **DDR5 DRAM** with FR-FCFS scheduling, banks/ranks/channels,
//!   refresh and row-buffer accounting ([`dram`]);
//! * Policy interfaces for request arbitration and thread throttling
//!   ([`arb`]) — the paper's CAT policies and its baselines live in the
//!   companion `llamcat` crate;
//! * **Open-system serving** ([`serve`]) — a request injector that
//!   admits work mid-run under a pluggable serving policy (FCFS,
//!   max-concurrency, continuous batching), with a never-late wake
//!   bound so fast-forwarding stays exact;
//! * A **tiered KV store** ([`kv`]) — a capacity-modeled warm KV tier
//!   below the LLC backed by a CXL/NVMe-like slow tier, gating KV
//!   traffic at the DRAM dispatch boundary with LRU or prefix-pinning
//!   eviction.
//!
//! The simulator is deterministic: identical configuration and program
//! yield identical cycle counts and statistics.
//!
//! ## Quick start
//!
//! ```
//! use llamcat_sim::prelude::*;
//!
//! // Two thread blocks, each loading 256 bytes then synchronizing.
//! let blocks: Vec<ThreadBlock> = (0..2)
//!     .map(|b| ThreadBlock {
//!         instrs: vec![
//!             Instr::Load { addr: b * 4096, bytes: 128 },
//!             Instr::Load { addr: b * 4096 + 128, bytes: 128 },
//!             Instr::Barrier,
//!         ],
//!     })
//!     .collect();
//! let cfg = SystemConfig::table5();
//! let program = Program::round_robin(blocks, cfg.num_cores);
//! let mut system = System::new(
//!     cfg,
//!     program,
//!     &|_slice| Box::new(FifoArbiter) as Box<dyn RequestArbiter>,
//!     Box::new(NoThrottle),
//! );
//! let (stats, outcome) = system.run(1_000_000);
//! assert_eq!(outcome, RunOutcome::Completed);
//! assert!(stats.cycles > 0);
//! ```

pub mod arb;
pub mod batch;
pub mod cache;
pub mod config;
pub mod core_model;
pub mod dram;
pub mod hash;
pub mod kv;
pub mod l1;
pub mod llc;
pub mod mshr;
pub mod noc;
pub mod pool;
pub mod prog;
pub mod sched;
pub mod serve;
pub mod stats;
pub mod system;
pub mod types;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::arb::{
        ArbiterCtx, FifoArbiter, NoThrottle, PortPreference, RequestArbiter, ThrottleController,
        ThrottleInputs,
    };
    pub use crate::batch::SystemBatch;
    pub use crate::config::{
        CacheGeometry, CoreConfig, DramConfig, DramTiming, L1Config, L2Config, NocConfig,
        ReqRespPolicy, SystemConfig,
    };
    pub use crate::kv::{KvEviction, KvTier, KvTierConfig, SHARED_KV_BASE};
    pub use crate::mshr::{MshrSnapshot, SnapshotEntry};
    pub use crate::pool::{ReqHandle, ReqPool};
    pub use crate::prog::{Instr, Program, TbId, ThreadBlock};
    pub use crate::serve::{RequestInjector, ServePolicy};
    pub use crate::stats::SimStats;
    pub use crate::system::{RunOutcome, System};
    pub use crate::types::{Addr, CoreId, Cycle, MemReq, MemResp, SliceId, LINE_BYTES};
}
