//! fig_mix: multi-tenant serving mixes across the full policy matrix.
//!
//! The paper evaluates every policy on one operator in isolation — the
//! regime where inter-core interference at the shared LLC is mildest.
//! This target opens the contended regime: decode/prefill serving
//! mixes, co-scheduled under both composition disciplines (core
//! partitioning and interleaving), swept across the same 20
//! ArbPolicy × ThrottlePolicy cells the golden table pins.
//!
//! For every (mix, policy) cell the campaign engine also runs each
//! request solo under the same policy and reports per-request fairness:
//! slowdown vs the solo run, and the min/max/geomean per-request
//! speedup. The JSONL stream on stdout-adjacent files is deterministic
//! (byte-identical across runs) and each record carries its step mode.
//!
//! Scale via `LLAMCAT_SCALE` as usual (full | half | quick).

use llamcat::spec::{MixSpec, PolicySpec};
use llamcat_bench::{scale_divisor, scale_label, Campaign};
use llamcat_trace::workloads::WorkloadSpec;

/// The 5 × 4 policy matrix of the golden table, ladder order.
fn policy_matrix() -> Vec<PolicySpec> {
    let arbs = ["fifo", "B", "MA", "BMA", "cobrra"];
    let throttles = ["none", "dyncta", "lcs", "dynmg"];
    let mut out = Vec::with_capacity(20);
    for arb in arbs {
        for thr in throttles {
            let name = format!("{thr}+{arb}");
            out.push(
                PolicySpec::from_name(&name)
                    .unwrap_or_else(|| panic!("matrix cell `{name}` must resolve")),
            );
        }
    }
    out
}

fn prefill(seq_len: usize, arrival: u64) -> (WorkloadSpec, usize, u64) {
    (
        WorkloadSpec::PrefillLogit {
            heads: 8,
            group_size: 8,
            head_dim: 128,
            query_tokens: 4,
        },
        seq_len,
        arrival,
    )
}

fn decode(seq_len: usize, arrival: u64) -> (WorkloadSpec, usize, u64) {
    (WorkloadSpec::llama3_70b(), seq_len, arrival)
}

fn mix_of(base: MixSpec, requests: &[(WorkloadSpec, usize, u64)]) -> MixSpec {
    requests
        .iter()
        .fold(base, |m, &(w, s, a)| m.request(w, s, a))
}

fn main() {
    let div = scale_divisor();
    let long = 4096 / div;
    let short = 1024 / div;
    println!(
        "# fig_mix — decode/prefill serving mixes across the 20-cell policy matrix \
         (scale: {}, seqs {short}/{long})",
        scale_label()
    );

    // The serving-mix scenario axis: homogeneous decode, decode+prefill
    // under both disciplines, and a staggered late prefill arrival.
    let mixes = vec![
        mix_of(MixSpec::partitioned(), &[decode(long, 0), decode(long, 0)]),
        mix_of(
            MixSpec::partitioned(),
            &[decode(long, 0), prefill(short, 0)],
        ),
        mix_of(
            MixSpec::interleaved(),
            &[decode(long, 0), prefill(short, 0)],
        ),
        mix_of(
            MixSpec::interleaved(),
            &[decode(long, 0), prefill(short, (short * 40) as u64)],
        ),
    ];

    let report = Campaign::new("fig_mix")
        .mixes(mixes)
        .policies(policy_matrix())
        .baseline(PolicySpec::unoptimized())
        .run()
        .expect("fig_mix campaign");

    let n_pol = report.campaign.policies.len();
    let labels = report.campaign.scenario_labels();
    for (s, label) in labels.iter().enumerate() {
        println!("\n### {label}");
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "policy", "perf", "min-spd", "geo-spd", "max-slow", "worst-tenant"
        );
        for p in 0..n_pol {
            let rec = &report.records[s * n_pol + p];
            let perf = rec.speedup.expect("baseline set");
            // Fairness is absent when the cell (or a solo reference)
            // hit its cycle budget; report the cell rather than abort
            // the sweep.
            match &rec.fairness {
                Some(f) => {
                    let worst = f
                        .per_request
                        .iter()
                        .max_by(|a, b| a.slowdown.total_cmp(&b.slowdown))
                        .expect("non-empty mix");
                    println!(
                        "{:<14} {:>9.3}x {:>10.3} {:>10.3} {:>9.3}x {:>12}",
                        rec.report.policy_label,
                        perf,
                        f.min_speedup,
                        f.geomean_speedup,
                        f.max_slowdown,
                        worst.label,
                    );
                }
                None => println!(
                    "{:<14} {:>9.3}x {:>10} {:>10} {:>10} {:>12}",
                    rec.report.policy_label, perf, "n/a", "n/a", "n/a", "(incomplete)"
                ),
            }
        }
    }

    // The archived artifact: deterministic JSONL, one self-describing
    // record per cell (mix spec, policy, step mode, per-request stats,
    // fairness).
    let jsonl = report.jsonl();
    println!(
        "\n[fig_mix] {} JSONL records, {} bytes (deterministic)",
        report.records.len(),
        jsonl.len()
    );
}
