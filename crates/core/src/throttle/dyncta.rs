//! DYNCTA baseline (Kayıran et al., PACT 2013).
//!
//! Every core independently monitors its idle cycles (C_idle) and
//! memory-contention stall cycles (C_mem) over a fixed sampling period
//! and nudges its own thread-block limit by ±1:
//!
//! * very idle → it is starved of work: raise the limit;
//! * heavy memory waiting → contention: lower the limit;
//! * light memory waiting → headroom: raise the limit.
//!
//! DYNCTA throttles *all* cores with the same rule and has no global
//! (spatial) coordination — the gap the paper's dynmg controller fills.
//! Threshold defaults follow the parameter sweep run for this
//! reproduction (`table_sweeps` bench), mirroring the paper's "for a
//! fair comparison" re-sweep.

use llamcat_sim::arb::{ThrottleController, ThrottleInputs};
use serde::{Deserialize, Serialize};

/// DYNCTA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynctaConfig {
    /// Sampling period in cycles.
    pub period: u64,
    /// ΔC_idle above which the limit is raised.
    pub idle_threshold: u64,
    /// ΔC_mem above which the limit is lowered.
    pub mem_high: u64,
    /// ΔC_mem below which the limit is raised.
    pub mem_low: u64,
}

impl Default for DynctaConfig {
    fn default() -> Self {
        // PACT'13-style operating point: long adjustment period and a
        // narrow high/low band near the top of the range, which makes
        // the controller cautious — it oscillates around a moderate
        // block count rather than driving to the minimum. This mirrors
        // the behaviour the paper reports for DYNCTA on these workloads
        // ("MSHR entry utilization remains almost unchanged"); the
        // `table_sweeps` bench explores the alternatives.
        DynctaConfig {
            period: 8192,
            idle_threshold: 64,
            mem_high: 8028,
            mem_low: 7372,
        }
    }
}

/// Per-core dynamic CTA throttling.
#[derive(Clone)]
pub struct Dyncta {
    cfg: DynctaConfig,
    next_sample: u64,
    prev_mem: Vec<u64>,
    prev_idle: Vec<u64>,
    limit: Vec<usize>,
}

impl Dyncta {
    pub fn new(cfg: DynctaConfig) -> Self {
        Dyncta {
            cfg,
            next_sample: cfg.period,
            prev_mem: Vec::new(),
            prev_idle: Vec::new(),
            limit: Vec::new(),
        }
    }
}

impl Default for Dyncta {
    fn default() -> Self {
        Self::new(DynctaConfig::default())
    }
}

impl ThrottleController for Dyncta {
    fn tick(&mut self, inputs: &ThrottleInputs<'_>, max_tb: &mut [usize]) {
        let n = max_tb.len();
        if self.limit.len() != n {
            self.reset(n);
        }
        // Lazy clamp of the "start from maximum" sentinel now that the
        // window count is known.
        for l in self.limit.iter_mut() {
            *l = (*l).min(inputs.num_windows);
        }
        if inputs.cycle >= self.next_sample {
            self.next_sample = inputs.cycle + self.cfg.period;
            for c in 0..n {
                let d_mem = inputs.c_mem[c].saturating_sub(self.prev_mem[c]);
                let d_idle = inputs.c_idle[c].saturating_sub(self.prev_idle[c]);
                self.prev_mem[c] = inputs.c_mem[c];
                self.prev_idle[c] = inputs.c_idle[c];
                if d_idle > self.cfg.idle_threshold {
                    self.limit[c] = (self.limit[c] + 1).min(inputs.num_windows);
                } else if d_mem > self.cfg.mem_high {
                    self.limit[c] = self.limit[c].saturating_sub(1).max(1);
                } else if d_mem < self.cfg.mem_low {
                    self.limit[c] = (self.limit[c] + 1).min(inputs.num_windows);
                }
            }
        }
        for (tb, &limit) in max_tb.iter_mut().zip(&self.limit) {
            *tb = limit.clamp(1, inputs.num_windows);
        }
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        // Limits only move at sampling boundaries.
        Some(self.next_sample)
    }

    fn reset(&mut self, num_cores: usize) {
        self.prev_mem = vec![0; num_cores];
        self.prev_idle = vec![0; num_cores];
        // DYNCTA starts from the maximum and backs off.
        self.limit = vec![usize::MAX; num_cores];
        self.next_sample = self.cfg.period;
    }

    fn name(&self) -> &'static str {
        "dyncta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs<'a>(
        cycle: u64,
        c_mem: &'a [u64],
        c_idle: &'a [u64],
        progress: &'a [u64],
        tbs: &'a [u64],
        active: &'a [usize],
    ) -> ThrottleInputs<'a> {
        ThrottleInputs {
            cycle,
            num_windows: 4,
            num_slices: 8,
            progress,
            c_mem,
            c_idle,
            llc_stall_cycles: 0,
            active_tbs: active,
            tbs_completed: tbs,
        }
    }

    fn test_cfg() -> DynctaConfig {
        DynctaConfig {
            period: 2048,
            idle_threshold: 16,
            mem_high: 1024,
            mem_low: 410,
        }
    }

    #[test]
    fn backs_off_under_memory_pressure() {
        let mut d = Dyncta::new(test_cfg());
        let mut max_tb = vec![4usize; 2];
        let progress = [0u64; 2];
        let tbs = [0u64; 2];
        let active = [4usize; 2];
        // Period 1: both cores heavily memory stalled.
        let c_mem = [2000u64, 2000];
        let c_idle = [0u64, 0];
        d.tick(
            &inputs(2048, &c_mem, &c_idle, &progress, &tbs, &active),
            &mut max_tb,
        );
        assert_eq!(max_tb, vec![3, 3]);
        // Period 2: still stalled — backs off further.
        let c_mem = [4000u64, 4000];
        d.tick(
            &inputs(4096, &c_mem, &c_idle, &progress, &tbs, &active),
            &mut max_tb,
        );
        assert_eq!(max_tb, vec![2, 2]);
    }

    #[test]
    fn recovers_when_contention_clears() {
        let mut d = Dyncta::new(test_cfg());
        let mut max_tb = vec![4usize; 1];
        let progress = [0u64];
        let tbs = [0u64];
        let active = [4usize];
        let c_idle = [0u64];
        d.tick(
            &inputs(2048, &[2000], &c_idle, &progress, &tbs, &active),
            &mut max_tb,
        );
        assert_eq!(max_tb, vec![3]);
        // Contention gone (delta below mem_low): raise again.
        d.tick(
            &inputs(4096, &[2100], &c_idle, &progress, &tbs, &active),
            &mut max_tb,
        );
        assert_eq!(max_tb, vec![4]);
    }

    #[test]
    fn idleness_overrides_memory_signal() {
        let mut d = Dyncta::new(test_cfg());
        let mut max_tb = vec![4usize; 1];
        let progress = [0u64];
        let tbs = [0u64];
        let active = [4usize];
        d.tick(
            &inputs(2048, &[2000], &[0], &progress, &tbs, &active),
            &mut max_tb,
        );
        assert_eq!(max_tb, vec![3]);
        // Both high idle and high memory: idle wins (starved core).
        d.tick(
            &inputs(4096, &[4000], &[100], &progress, &tbs, &active),
            &mut max_tb,
        );
        assert_eq!(max_tb, vec![4]);
    }

    #[test]
    fn limit_stays_in_bounds() {
        let mut d = Dyncta::new(test_cfg());
        let mut max_tb = vec![4usize; 1];
        let progress = [0u64];
        let tbs = [0u64];
        let active = [4usize];
        let mut mem = 0;
        for k in 1..20 {
            mem += 2000;
            d.tick(
                &inputs(2048 * k, &[mem], &[0], &progress, &tbs, &active),
                &mut max_tb,
            );
            assert!(max_tb[0] >= 1);
        }
        assert_eq!(max_tb, vec![1], "saturates at one block");
    }

    #[test]
    fn no_change_between_samples() {
        let mut d = Dyncta::new(test_cfg());
        let mut max_tb = vec![4usize; 1];
        let progress = [0u64];
        let tbs = [0u64];
        let active = [4usize];
        d.tick(
            &inputs(100, &[90], &[0], &progress, &tbs, &active),
            &mut max_tb,
        );
        assert_eq!(max_tb, vec![4], "before the first period ends");
    }
}
