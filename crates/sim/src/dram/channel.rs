//! One DRAM channel: request queues, FR-FCFS command scheduling, refresh
//! and data-bus modelling.
//!
//! The controller issues at most one command per DRAM cycle (shared
//! command bus). Reads are prioritized over writes; writes drain in
//! batches governed by high/low watermarks, the standard technique to
//! amortize bus turnarounds. FR-FCFS: column commands to open rows go
//! first (row hits), otherwise the oldest request makes progress through
//! PRE/ACT.

use std::collections::VecDeque;

use crate::config::DramConfig;
use crate::stats::ChannelStats;
use crate::types::{Addr, SliceId};

use super::bank::{Bank, DramCycle, RankTiming};
use super::mapping::DramCoord;

/// A queued DRAM request.
#[derive(Debug, Clone, Copy)]
struct DramQueued {
    line_addr: Addr,
    coord: DramCoord,
    flat_bank: usize,
    slice: SliceId,
    enqueued_at: DramCycle,
    /// An ACT was issued on behalf of this request (row miss).
    saw_act: bool,
    /// A PRE was issued on behalf of this request (row conflict).
    saw_pre: bool,
}

/// A completed read waiting to be handed back to the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReturn {
    pub ready_at: DramCycle,
    pub line_addr: Addr,
    pub slice: SliceId,
}

/// Scheduling mode of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Read,
    WriteDrain,
}

/// One DRAM channel with its banks, queues and timing state.
#[derive(Clone)]
pub struct Channel {
    cfg: DramConfig,
    now: DramCycle,
    banks: Vec<Bank>,
    ranks: Vec<RankTiming>,
    read_q: VecDeque<DramQueued>,
    write_q: VecDeque<DramQueued>,
    returns: VecDeque<ReadReturn>,
    mode: Mode,
    /// Earliest cycle the next READ column command may issue.
    next_rd_cmd: DramCycle,
    /// Earliest cycle the next WRITE column command may issue.
    next_wr_cmd: DramCycle,
    /// Cycle-mode fast path: a tick that did nothing computes
    /// [`Channel::next_event`] (never late) and the controller skips
    /// the FR-FCFS scans until that bound. Cleared on every enqueue
    /// (external state change). Pure wall-clock optimization — skipped
    /// ticks are exactly the ticks that would have done nothing.
    quiet_until: DramCycle,
    pub stats: ChannelStats,
}

impl Channel {
    pub fn new(cfg: DramConfig, channel_index: usize) -> Self {
        let banks = (0..cfg.banks_per_channel())
            .map(|_| Bank::default())
            .collect();
        // Stagger refresh across ranks and channels so refreshes do not
        // synchronize system-wide.
        let ranks = (0..cfg.ranks)
            .map(|r| {
                let offset = cfg.timing.trefi * (r + channel_index) as u64 / cfg.ranks as u64;
                RankTiming::new(cfg.timing.trefi + offset)
            })
            .collect();
        Channel {
            cfg,
            now: 0,
            banks,
            ranks,
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            returns: VecDeque::new(),
            mode: Mode::Read,
            next_rd_cmd: 0,
            next_wr_cmd: 0,
            quiet_until: 0,
            stats: ChannelStats::default(),
        }
    }

    /// Whether the read queue can accept another request.
    pub fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.cfg.read_q_size
    }

    /// Whether the write queue can accept another request.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.cfg.write_q_size
    }

    /// Enqueues a read. Returns false if the queue is full.
    ///
    /// If a write to the same line is pending, the read is serviced by
    /// write-queue forwarding: data returns after a fixed short latency
    /// and no DRAM access is made.
    pub fn enqueue_read(&mut self, line_addr: Addr, coord: DramCoord, slice: SliceId) -> bool {
        if self.write_q.iter().any(|w| w.line_addr == line_addr) {
            self.returns.push_back(ReadReturn {
                ready_at: self.now + 4,
                line_addr,
                slice,
            });
            self.quiet_until = 0;
            return true;
        }
        if !self.can_accept_read() {
            return false;
        }
        self.quiet_until = 0;
        let flat_bank = coord.flat_bank(&self.cfg);
        self.read_q.push_back(DramQueued {
            line_addr,
            coord,
            flat_bank,
            slice,
            enqueued_at: self.now,
            saw_act: false,
            saw_pre: false,
        });
        true
    }

    /// Enqueues a write-back. Returns false if the queue is full.
    pub fn enqueue_write(&mut self, line_addr: Addr, coord: DramCoord) -> bool {
        if !self.can_accept_write() {
            return false;
        }
        self.quiet_until = 0;
        let flat_bank = coord.flat_bank(&self.cfg);
        self.write_q.push_back(DramQueued {
            line_addr,
            coord,
            flat_bank,
            slice: usize::MAX,
            enqueued_at: self.now,
            saw_act: false,
            saw_pre: false,
        });
        true
    }

    /// Advances the channel one DRAM cycle, pushing any completed reads
    /// into `out`.
    pub fn tick(&mut self, out: &mut Vec<ReadReturn>) {
        self.now += 1;
        if self.now < self.quiet_until {
            // A previous do-nothing tick proved (via the `next_event`
            // bound, which is never late) that no command, refresh,
            // mode flip or return can happen before `quiet_until`;
            // enqueues in between cleared the gate.
            return;
        }
        let before = (
            self.stats.reads,
            self.stats.writes,
            self.stats.activates,
            self.stats.precharges,
            self.stats.refreshes,
            self.returns.len(),
            self.mode,
        );
        self.drain_returns(out);
        let acted = if self.cfg.refresh && self.try_refresh() {
            true // refresh consumed the command slot
        } else {
            self.update_mode();
            match self.mode {
                Mode::Read => self.try_issue(true),
                // Opportunistic write issue would complicate turnaround
                // accounting; idle cycles are left idle as real
                // read-priority controllers mostly do outside drains.
                Mode::WriteDrain => self.try_issue(false),
            }
        };
        let after = (
            self.stats.reads,
            self.stats.writes,
            self.stats.activates,
            self.stats.precharges,
            self.stats.refreshes,
            self.returns.len(),
            self.mode,
        );
        if !acted && before == after {
            self.quiet_until = self.next_event().unwrap_or(DramCycle::MAX);
        }
    }

    /// Current DRAM cycle.
    pub fn now(&self) -> DramCycle {
        self.now
    }

    pub fn read_q_len(&self) -> usize {
        self.read_q.len()
    }

    pub fn write_q_len(&self) -> usize {
        self.write_q.len()
    }

    /// True when no request, return or queued write remains.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.returns.is_empty()
    }

    /// Whether the next tick's `update_mode` would switch scheduling
    /// mode given current queue occupancies.
    fn would_flip_mode(&self) -> bool {
        match self.mode {
            Mode::Read => {
                self.write_q.len() >= self.cfg.write_high_watermark
                    || (self.read_q.is_empty() && !self.write_q.is_empty())
            }
            Mode::WriteDrain => {
                self.write_q.len() <= self.cfg.write_low_watermark
                    && (!self.read_q.is_empty() || self.write_q.is_empty())
            }
        }
    }

    /// Lower bound on the cycle at which a command could issue for
    /// `req` (ignoring competition from other requests, which can only
    /// delay — never advance — the actual issue).
    fn issue_bound(&self, req: &DramQueued, reads: bool) -> DramCycle {
        let t = &self.cfg.timing;
        let bank = &self.banks[req.flat_bank];
        match bank.open_row {
            Some(open) if open == req.coord.row => {
                if reads {
                    self.next_rd_cmd.max(bank.next_rd)
                } else {
                    self.next_wr_cmd.max(bank.next_wr)
                }
            }
            Some(_) => bank.next_pre,
            None => bank
                .next_act
                .max(self.ranks[req.coord.rank].earliest_activate(t)),
        }
    }

    /// Event bound for the fast-forward engine, in DRAM cycles.
    ///
    /// Returns the first DRAM cycle `> now()` whose tick could do
    /// anything other than advance the clock: drain a due return, issue
    /// a refresh, flip the scheduling mode, or issue a command for a
    /// queued request. `None` means the channel is fully drained.
    /// Bounds may be early (the tick then does nothing and a new bound
    /// is computed) but never late.
    pub fn next_event(&self) -> Option<DramCycle> {
        let lb = self.now + 1;
        let mut ev: Option<DramCycle> = None;
        let mut merge = |at: DramCycle| {
            let at = at.max(lb);
            ev = Some(ev.map_or(at, |e: DramCycle| e.min(at)));
        };
        if let Some(r) = self.returns.front() {
            merge(r.ready_at);
        }
        if self.cfg.refresh {
            for rank in &self.ranks {
                merge(rank.next_refresh);
            }
        }
        if self.would_flip_mode() {
            merge(lb);
        }
        let (queue, reads) = match self.mode {
            Mode::Read => (&self.read_q, true),
            Mode::WriteDrain => (&self.write_q, false),
        };
        for req in queue {
            merge(self.issue_bound(req, reads));
        }
        ev
    }

    /// Fast-forwards `ticks` DRAM cycles during which (per
    /// [`Channel::next_event`]) every tick is a pure clock advance.
    pub fn skip(&mut self, ticks: DramCycle) {
        debug_assert!(
            self.next_event().is_none_or(|e| e > self.now + ticks),
            "channel skip window crosses an event"
        );
        self.now += ticks;
    }

    fn drain_returns(&mut self, out: &mut Vec<ReadReturn>) {
        while let Some(front) = self.returns.front() {
            if front.ready_at <= self.now {
                out.push(*front);
                self.returns.pop_front();
            } else {
                break;
            }
        }
    }

    fn update_mode(&mut self) {
        match self.mode {
            Mode::Read => {
                if self.write_q.len() >= self.cfg.write_high_watermark
                    || (self.read_q.is_empty() && !self.write_q.is_empty())
                {
                    self.mode = Mode::WriteDrain;
                }
            }
            Mode::WriteDrain => {
                if self.write_q.len() <= self.cfg.write_low_watermark
                    && (!self.read_q.is_empty() || self.write_q.is_empty())
                {
                    self.mode = Mode::Read;
                }
            }
        }
    }

    /// Refresh handling: when a rank is due and all of its banks can
    /// precharge, close them all for tRFC. Returns true if a refresh
    /// command was issued this cycle.
    fn try_refresh(&mut self) -> bool {
        let t = self.cfg.timing;
        let banks_per_rank = self.cfg.bank_groups * self.cfg.banks_per_group;
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if self.now < rank.next_refresh {
                continue;
            }
            let bank_range = r * banks_per_rank..(r + 1) * banks_per_rank;
            let all_ready = self.banks[bank_range.clone()]
                .iter()
                .all(|b| b.open_row.is_none() || self.now >= b.next_pre);
            if !all_ready {
                continue; // wait for tRAS/tWR to elapse
            }
            for b in &mut self.banks[bank_range] {
                if b.open_row.is_some() {
                    b.precharge(self.now.max(b.next_pre), &t);
                }
                b.refresh_close(self.now + t.trfc);
            }
            rank.next_refresh += t.trefi;
            self.stats.refreshes += 1;
            return true;
        }
        false
    }

    /// FR-FCFS issue for the given direction. Returns true if any command
    /// was issued.
    fn try_issue(&mut self, reads: bool) -> bool {
        let t = self.cfg.timing;
        let now = self.now;
        let next_col = if reads {
            self.next_rd_cmd
        } else {
            self.next_wr_cmd
        };
        let queue = if reads { &self.read_q } else { &self.write_q };
        if queue.is_empty() {
            return false;
        }

        // Pass 1: oldest row-hit request whose column command is ready.
        let mut col_candidate: Option<usize> = None;
        if now >= next_col {
            for (i, req) in queue.iter().enumerate() {
                let bank = &self.banks[req.flat_bank];
                let bank_ready = if reads { bank.next_rd } else { bank.next_wr };
                if bank.open_row == Some(req.coord.row) && now >= bank_ready {
                    col_candidate = Some(i);
                    break;
                }
            }
        }
        if let Some(i) = col_candidate {
            let req = if reads {
                self.read_q.remove(i).expect("index valid")
            } else {
                self.write_q.remove(i).expect("index valid")
            };
            self.issue_column(req, reads);
            return true;
        }

        // Pass 2: progress the oldest request that needs ACT or PRE.
        let queue = if reads { &self.read_q } else { &self.write_q };
        let mut act_target: Option<(usize, usize, u64)> = None; // (qi, bank, row)
        let mut pre_target: Option<usize> = None; // bank
        for req in queue.iter() {
            let bank = &self.banks[req.flat_bank];
            match bank.open_row {
                None => {
                    let rank = &self.ranks[req.coord.rank];
                    if now >= bank.next_act && rank.can_activate(now, &t) {
                        act_target = Some((req.flat_bank, req.coord.rank, req.coord.row));
                        break;
                    }
                }
                Some(open)
                    if open != req.coord.row && now >= bank.next_pre && pre_target.is_none() =>
                {
                    pre_target = Some(req.flat_bank);
                }
                // Keep scanning: an ACT for a younger request beats a
                // PRE for an older one only if no PRE is possible, so
                // do not break here.
                _ => {}
            }
        }
        if let Some((flat_bank, rank, row)) = act_target {
            self.banks[flat_bank].activate(now, row, &t);
            self.ranks[rank].record_activate(now, &t);
            self.stats.activates += 1;
            self.mark_row_transition(flat_bank, row, reads);
            return true;
        }
        if let Some(flat_bank) = pre_target {
            self.banks[flat_bank].precharge(now, &t);
            self.stats.precharges += 1;
            self.mark_pre(flat_bank, reads);
            return true;
        }
        false
    }

    /// Marks `saw_act` on the oldest unmarked request targeting
    /// (bank, row) — the request the ACTIVATE was issued for. Younger
    /// requests to the same row will issue against the now-open row and
    /// are correctly classified as row hits.
    fn mark_row_transition(&mut self, flat_bank: usize, row: u64, reads: bool) {
        let queue = if reads {
            &mut self.read_q
        } else {
            &mut self.write_q
        };
        for req in queue.iter_mut() {
            if req.flat_bank == flat_bank && req.coord.row == row && !req.saw_act {
                req.saw_act = true;
                return;
            }
        }
    }

    fn mark_pre(&mut self, flat_bank: usize, reads: bool) {
        let queue = if reads {
            &mut self.read_q
        } else {
            &mut self.write_q
        };
        for req in queue.iter_mut() {
            if req.flat_bank == flat_bank {
                req.saw_pre = true;
            }
        }
    }

    fn issue_column(&mut self, req: DramQueued, reads: bool) {
        let t = self.cfg.timing;
        let now = self.now;
        let bank = &mut self.banks[req.flat_bank];
        if reads {
            bank.read(now, &t);
            // Column spacing and read->write turnaround.
            self.next_rd_cmd = self.next_rd_cmd.max(now + t.tccd_l.max(t.tbl));
            self.next_wr_cmd = self
                .next_wr_cmd
                .max(now + t.cl + t.tbl.saturating_sub(t.cwl) + 2);
            self.returns.push_back(ReadReturn {
                ready_at: now + t.cl + t.tbl,
                line_addr: req.line_addr,
                slice: req.slice,
            });
            self.stats.reads += 1;
            self.stats.read_latency_sum += now + t.cl + t.tbl - req.enqueued_at;
        } else {
            bank.write(now, &t);
            self.next_wr_cmd = self.next_wr_cmd.max(now + t.tccd_l.max(t.tbl));
            // Write->read turnaround.
            self.next_rd_cmd = self.next_rd_cmd.max(now + t.cwl + t.tbl + t.twtr);
            self.stats.writes += 1;
        }
        self.stats.data_bus_busy += t.tbl;
        if req.saw_pre {
            self.stats.row_conflicts += 1;
        } else if req.saw_act {
            self.stats.row_misses += 1;
        } else {
            self.stats.row_hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::mapping::{AddressMapping, MappingScheme};
    use crate::types::LINE_BYTES;

    fn channel() -> (Channel, AddressMapping) {
        let mut cfg = DramConfig::table5();
        cfg.refresh = false;
        let m = AddressMapping::new(&cfg, MappingScheme::RoBaRaCoCh);
        (Channel::new(cfg, 0), m)
    }

    fn run_until_returns(ch: &mut Channel, n: usize, max_cycles: u64) -> Vec<ReadReturn> {
        let mut out = Vec::new();
        for _ in 0..max_cycles {
            ch.tick(&mut out);
            if out.len() >= n {
                break;
            }
        }
        out
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_bl() {
        let (mut ch, m) = channel();
        let t = DramConfig::table5().timing;
        let addr = 0u64; // channel 0
        assert!(ch.enqueue_read(addr, m.decode(addr), 0));
        let out = run_until_returns(&mut ch, 1, 1000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line_addr, addr);
        // ACT at cycle 1, RD at 1+tRCD, data at +CL+tBL, drained next tick.
        let expected = 1 + t.trcd + t.cl + t.tbl;
        assert!(
            out[0].ready_at >= expected && out[0].ready_at <= expected + 2,
            "ready_at {} expected about {}",
            out[0].ready_at,
            expected
        );
        assert_eq!(ch.stats.reads, 1);
        assert_eq!(ch.stats.row_misses, 1);
        assert_eq!(ch.stats.row_hits, 0);
    }

    #[test]
    fn sequential_reads_hit_open_row() {
        let (mut ch, m) = channel();
        // Lines 0, 4, 8, 12 are channel 0, same row, consecutive columns.
        for i in 0..4u64 {
            let a = i * 4 * LINE_BYTES;
            assert!(ch.enqueue_read(a, m.decode(a), 0));
        }
        let out = run_until_returns(&mut ch, 4, 2000);
        assert_eq!(out.len(), 4);
        assert_eq!(ch.stats.row_misses, 1, "first access opens the row");
        assert_eq!(ch.stats.row_hits, 3, "rest are row hits");
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let (mut ch, m) = channel();
        let cfg = DramConfig::table5();
        // Two addresses in the same bank, different rows.
        let lines_per_row = cfg.row_bytes / LINE_BYTES; // 32
        let banks = cfg.banks_per_channel() as u64;
        let a = 0u64;
        let b = a + lines_per_row * banks * cfg.channels as u64 * LINE_BYTES;
        let ca = m.decode(a);
        let cb = m.decode(b);
        assert_eq!(ca.flat_bank(&cfg), cb.flat_bank(&cfg));
        assert_ne!(ca.row, cb.row);
        assert!(ch.enqueue_read(a, ca, 0));
        let _ = run_until_returns(&mut ch, 1, 1000);
        assert!(ch.enqueue_read(b, cb, 0));
        let _ = run_until_returns(&mut ch, 1, 1000);
        assert_eq!(ch.stats.precharges, 1);
        assert_eq!(ch.stats.row_conflicts, 1);
    }

    #[test]
    fn write_queue_forwarding_serves_reads() {
        let (mut ch, m) = channel();
        let a = 0u64;
        assert!(ch.enqueue_write(a, m.decode(a)));
        assert!(ch.enqueue_read(a, m.decode(a), 3));
        let out = run_until_returns(&mut ch, 1, 100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slice, 3);
        assert!(out[0].ready_at <= 10, "forwarded reads are fast");
        assert_eq!(ch.stats.reads, 0, "no DRAM read performed");
    }

    #[test]
    fn writes_drain_on_watermark() {
        let (mut ch, m) = channel();
        let cfg = DramConfig::table5();
        for i in 0..cfg.write_high_watermark as u64 {
            let a = i * LINE_BYTES * cfg.channels as u64;
            assert!(ch.enqueue_write(a, m.decode(a)));
        }
        let mut out = Vec::new();
        for _ in 0..5000 {
            ch.tick(&mut out);
            if ch.write_q_len() <= cfg.write_low_watermark {
                break;
            }
        }
        assert!(ch.write_q_len() <= cfg.write_low_watermark);
        assert!(ch.stats.writes > 0);
    }

    #[test]
    fn queue_capacity_respected() {
        let (mut ch, m) = channel();
        let cfg = DramConfig::table5();
        let mut accepted = 0;
        for i in 0..(cfg.read_q_size as u64 + 8) {
            let a = i * LINE_BYTES * cfg.channels as u64;
            if ch.enqueue_read(a, m.decode(a), 0) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, cfg.read_q_size);
        assert!(!ch.can_accept_read());
    }

    #[test]
    fn refresh_happens_periodically() {
        let mut cfg = DramConfig::table5();
        cfg.refresh = true;
        let mut ch = Channel::new(cfg, 0);
        let mut out = Vec::new();
        for _ in 0..(cfg.timing.trefi * 3) {
            ch.tick(&mut out);
        }
        // 4 ranks refreshed roughly every tREFI over ~2-3 intervals each.
        assert!(
            ch.stats.refreshes >= 8,
            "expected several refreshes, got {}",
            ch.stats.refreshes
        );
    }

    #[test]
    fn bandwidth_saturates_near_peak_for_streaming() {
        let (mut ch, m) = channel();
        let cfg = DramConfig::table5();
        // Stream 64 sequential lines of channel 0.
        let mut sent = 0u64;
        let mut out = Vec::new();
        let mut cycles = 0u64;
        while out.len() < 64 {
            if sent < 64 {
                let a = sent * cfg.channels as u64 * LINE_BYTES;
                if ch.enqueue_read(a, m.decode(a), 0) {
                    sent += 1;
                }
            }
            ch.tick(&mut out);
            cycles += 1;
            assert!(cycles < 20_000, "streaming reads did not complete");
        }
        // 64 lines * 8 tCK/line = 512 busy cycles minimum; allow overheads.
        assert!(
            cycles < 1100,
            "streaming should approach one line per tBL, took {cycles} cycles"
        );
        assert!(ch.stats.row_hits as f64 >= 0.8 * 64.0);
    }
}
