//! Slab arena for in-flight memory requests.
//!
//! The seed moved `MemReq` structs *by value* through five queues (NoC
//! lane → slice ingress → request queue → tag pipe → MSHR pipe): every
//! hop memmoved 40 bytes, and the NoC's sorted inserts shifted whole
//! payloads. The arena inverts that: a request is written into a pool
//! slot **once**, when the core issues it, and every queue downstream
//! carries only the 4-byte [`ReqHandle`]. The slot is recycled the
//! moment the request resolves (cache hit, MSHR merge/allocate — the
//! points where the seed dropped its by-value copy).
//!
//! Slot reuse is LIFO through a free-list, which keeps hot slots in
//! cache. Handles have no generation bits: the simulator's ownership
//! discipline is strictly linear (exactly one queue holds a handle at
//! any time), and debug builds verify it with a liveness mask.

use crate::types::MemReq;

/// Index of a pooled in-flight request (4 bytes — what the queues and
/// NoC lanes actually move).
pub type ReqHandle = u32;

/// The request arena. One per [`crate::system::System`]; sized by the
/// natural in-flight bound (cores × L1 miss entries, plus posted
/// stores) and grown on demand if a workload exceeds it.
#[derive(Debug, Clone, Default)]
pub struct ReqPool {
    slots: Vec<MemReq>,
    free: Vec<ReqHandle>,
    #[cfg(debug_assertions)]
    live_mask: Vec<bool>,
}

impl ReqPool {
    /// A pool with `capacity` preallocated slots.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut pool = ReqPool::default();
        pool.reserve(capacity);
        pool
    }

    /// Preallocates up to `capacity` total slots.
    pub fn reserve(&mut self, capacity: usize) {
        while self.slots.len() < capacity {
            let h = self.slots.len() as ReqHandle;
            self.slots.push(MemReq {
                id: 0,
                core: 0,
                request: 0,
                line_addr: 0,
                is_write: false,
                issued_at: 0,
            });
            self.free.push(h);
            #[cfg(debug_assertions)]
            self.live_mask.push(false);
        }
    }

    /// Stores `req` in a slot and returns its handle.
    #[inline]
    pub fn alloc(&mut self, req: MemReq) -> ReqHandle {
        let h = match self.free.pop() {
            Some(h) => h,
            None => {
                let h = self.slots.len() as ReqHandle;
                self.slots.push(req);
                #[cfg(debug_assertions)]
                self.live_mask.push(false);
                h
            }
        };
        self.slots[h as usize] = req;
        #[cfg(debug_assertions)]
        {
            debug_assert!(!self.live_mask[h as usize], "double alloc of slot {h}");
            self.live_mask[h as usize] = true;
        }
        h
    }

    /// The request behind `h`.
    #[inline]
    pub fn get(&self, h: ReqHandle) -> &MemReq {
        #[cfg(debug_assertions)]
        debug_assert!(self.live_mask[h as usize], "read of freed handle {h}");
        &self.slots[h as usize]
    }

    /// Recycles `h`'s slot.
    #[inline]
    pub fn release(&mut self, h: ReqHandle) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live_mask[h as usize], "double free of handle {h}");
            self.live_mask[h as usize] = false;
        }
        self.free.push(h);
    }

    /// Handles currently live (allocated and not yet released).
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> MemReq {
        MemReq {
            id,
            core: 0,
            request: 0,
            line_addr: id * 64,
            is_write: false,
            issued_at: 0,
        }
    }

    #[test]
    fn alloc_get_release_roundtrip() {
        let mut p = ReqPool::with_capacity(2);
        let a = p.alloc(req(1));
        let b = p.alloc(req(2));
        assert_eq!(p.get(a).id, 1);
        assert_eq!(p.get(b).id, 2);
        assert_eq!(p.live(), 2);
        p.release(a);
        assert_eq!(p.live(), 1);
        let c = p.alloc(req(3));
        assert_eq!(c, a, "LIFO slot reuse");
        assert_eq!(p.get(c).id, 3);
    }

    #[test]
    fn grows_past_preallocation_on_demand() {
        let mut p = ReqPool::with_capacity(1);
        let handles: Vec<_> = (0..10).map(|i| p.alloc(req(i))).collect();
        for (i, &h) in handles.iter().enumerate() {
            assert_eq!(p.get(h).id, i as u64);
        }
        assert_eq!(p.live(), 10);
        assert!(p.capacity() >= 10);
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_is_caught_in_debug() {
        let mut p = ReqPool::with_capacity(1);
        let h = p.alloc(req(1));
        p.release(h);
        p.release(h);
    }
}
