//! Full-system wiring and the main simulation loop.
//!
//! Tick order within one core cycle is fixed (and documented) so that
//! runs are bit-reproducible:
//!
//! 0. (open-system runs) admit due requests from the injector, making
//!    their thread blocks visible to the scheduler this cycle;
//! 1. deliver due interconnect requests to slices;
//! 2. tick every LLC slice, then flush its outbound responses, DRAM
//!    reads and write-backs;
//! 3. advance the DRAM clock domain (fractional ratio: 1.96 GHz core vs
//!    1.6 GHz DDR5-3200 command clock) and deliver fills to slices;
//! 4. deliver due responses to cores and tick every core, flushing its
//!    new requests into the interconnect;
//! 5. run the throttle controller and apply its `max_tb` decisions.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::arb::{RequestArbiter, ThrottleController, ThrottleInputs};
use crate::config::SystemConfig;
use crate::core_model::VectorCore;
use crate::dram::{DramSystem, MappingScheme};
use crate::kv::{KvClass, KvTier, KvTierConfig};
use crate::llc::LlcSlice;
use crate::noc::Noc;
use crate::pool::ReqPool;
use crate::prog::{FlatProgram, Program};
use crate::sched::TbScheduler;
use crate::serve::RequestInjector;
use crate::stats::SimStats;
use crate::types::{line_index, Addr, Cycle, SliceId};

/// Outcome of [`System::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All thread blocks (of every serving request) completed and the
    /// machine drained.
    Completed,
    /// The cycle budget was exhausted first; reports how many of the
    /// trace's serving requests had fully completed by then (solo
    /// traces have exactly one request).
    CycleLimit {
        requests_completed: usize,
        requests_total: usize,
    },
}

impl RunOutcome {
    /// Whether the run drained completely.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

/// How [`System::run_with_mode`] advances simulated time.
///
/// `Skip` is observationally equivalent to `Cycle`: every component
/// reports a `next_event` lower bound on when it can next change state,
/// and the run loop jumps straight to the minimum of those bounds while
/// accruing per-cycle statistics (idle cycles, `C_mem`, stall counters,
/// occupancy integrals, the fractional DRAM clock crossing) in closed
/// form. `SimStats` and [`RunOutcome`] are byte-identical between the
/// two modes — `tests/step_mode_equiv.rs` pins this over the whole
/// policy grid. See `DESIGN.md`, "The event-bound contract".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StepMode {
    /// One `tick()` per core cycle (the cycle-accurate reference).
    #[default]
    Cycle,
    /// Fast-forward across provably idle cycles.
    Skip,
}

/// The simulated machine.
///
/// Generic over its policy types so the experiment layer can
/// monomorphize the whole tick loop (enum dispatch, zero virtual calls
/// on the hot path); the defaults keep the seed's open-world
/// `Box<dyn ...>` API working unchanged for tests and external users.
///
/// `Clone` is a deep copy of the whole machine — see
/// [`System::snapshot`] for the supported checkpoint/fork workflow.
#[derive(Clone)]
pub struct System<A = Box<dyn RequestArbiter>, T = Box<dyn ThrottleController>>
where
    A: RequestArbiter,
    T: ThrottleController,
{
    cfg: SystemConfig,
    /// The scenario's instruction streams and mapping. Shared: cloning
    /// (and therefore [`System::snapshot`] / [`SystemState::fork`])
    /// bumps a refcount instead of copying — every fork of one scenario
    /// reads the same decoded trace, which is what lets
    /// [`crate::batch::SystemBatch`] run a policy grid over one shared
    /// trace instead of N private copies.
    program: Arc<Program>,
    /// Dense issue-path view of `program` (see [`FlatProgram`]).
    /// Shared across forks like `program`.
    flat: Arc<FlatProgram>,
    cores: Vec<VectorCore>,
    slices: Vec<LlcSlice<A>>,
    noc: Noc,
    dram: DramSystem,
    sched: TbScheduler,
    throttle: T,
    /// Arena for in-flight requests: allocated once at core issue,
    /// recycled at LLC resolution; every queue in between moves 4-byte
    /// handles.
    pool: ReqPool,
    cycle: Cycle,
    /// Picosecond accumulators for the clock-domain crossing.
    core_time_ps: u64,
    dram_time_ps: u64,
    core_period_ps: u64,
    dram_period_ps: u64,
    max_tb: Vec<usize>,
    /// Cycle-mode throttle gate: the next cycle at which the controller
    /// could change state or output (its `next_event` bound). Between
    /// boundaries `run_throttle` — and its whole-machine input sweep —
    /// is skipped, exactly as the Skip engine's phase 5 does.
    throttle_wake: Cycle,
    /// Set by [`System::note_retirements`] when a thread block retired
    /// this tick (the LCS-style discrete throttle trigger).
    tb_retired: bool,
    /// Instrumentation: real ticks executed and cycles fast-forwarded
    /// (Skip mode only; both zero in Cycle mode).
    ticks_executed: u64,
    cycles_skipped: u64,
    /// Tiered KV store gating the slice→DRAM read path (None = no
    /// tier, the pre-PR-7 memory hierarchy).
    kv: Option<KvTier>,
    /// Open-system request injector (None for closed/pre-tagged runs).
    injector: Option<RequestInjector>,
    /// The injector's never-late wake bound: the next cycle at which an
    /// admission could happen (`Cycle::MAX` when drained,
    /// capacity-blocked, or closed). Re-armed after every admission
    /// sweep and at every request completion.
    inject_wake: Cycle,
    /// Per-serving-request completion tracking (indexed by request id).
    req_blocks_total: Vec<u64>,
    req_blocks_done: Vec<u64>,
    req_arrivals: Vec<Cycle>,
    req_completed: Vec<bool>,
    req_completion: Vec<Cycle>,
    /// Admission cycle per request (`Cycle::MAX` = not yet admitted;
    /// closed runs admit at arrival by definition).
    req_admitted: Vec<Cycle>,
    /// Cycle of each request's first block retirement (`Cycle::MAX`
    /// until one retires) — the TTFT numerator.
    req_first_retire: Vec<Cycle>,
    /// Terminal rejection/drop cycle per request (`Cycle::MAX` = never
    /// rejected). Stamped by the injector's admission sweep under
    /// [`crate::serve::ServePolicy::RejectAboveQueue`] and
    /// [`crate::serve::ServePolicy::DeadlineDrop`].
    req_rejected: Vec<Cycle>,
    /// Times each request was preempted (its unissued blocks withdrawn
    /// back to the admission queue) under
    /// [`crate::serve::ServePolicy::PriorityPreempt`].
    req_preemptions: Vec<u32>,
    /// Thread blocks in the program, total and retired so far. Together
    /// with the injector's shed count these give [`System::is_done`] an
    /// O(1) reject path: the machine cannot have drained while a block
    /// that will ever retire has not yet retired, so the full
    /// every-component idle sweep only runs once the counters balance.
    blocks_total: u64,
    blocks_retired: u64,
    progress_scratch: Vec<u64>,
    c_mem_scratch: Vec<u64>,
    c_idle_scratch: Vec<u64>,
    tbs_done_scratch: Vec<u64>,
    active_tbs_scratch: Vec<usize>,
    fill_scratch: Vec<crate::dram::ReadReturn>,
}

/// An owned, self-contained copy of a [`System`] frozen mid-run.
///
/// Captures every component — cores, scheduler, L1 miss tables, NoC
/// lanes, LLC slices with their MSHR files and arbiter state, DRAM
/// timing registers, the KV tier, the request injector, the throttle
/// controller, and the request arena — so that a forked system resumed
/// with [`System::run_with_mode`] is byte-identical to the straight-line
/// run, in both [`StepMode`]s (`tests/snapshot_equiv.rs` pins this).
///
/// Obtain one with [`System::snapshot`]; rewind a live system with
/// [`System::restore`]; spawn independent continuations with
/// [`SystemState::fork`].
#[derive(Clone)]
pub struct SystemState<A = Box<dyn RequestArbiter>, T = Box<dyn ThrottleController>>
where
    A: RequestArbiter,
    T: ThrottleController,
{
    state: Box<System<A, T>>,
}

impl<A, T> SystemState<A, T>
where
    A: RequestArbiter + Clone,
    T: ThrottleController + Clone,
{
    /// The cycle at which this snapshot was taken.
    pub fn cycle(&self) -> Cycle {
        self.state.cycle
    }

    /// Builds an independent system resuming from this snapshot. The
    /// snapshot stays valid; call repeatedly to fan out one
    /// continuation per experiment arm.
    pub fn fork(&self) -> System<A, T> {
        (*self.state).clone()
    }

    /// Consumes the snapshot into a system without the defensive copy
    /// (for the last — or only — fork).
    pub fn into_system(self) -> System<A, T> {
        *self.state
    }
}

impl<A, T> From<System<A, T>> for SystemState<A, T>
where
    A: RequestArbiter,
    T: ThrottleController,
{
    /// Freezes a system by moving it into a snapshot (no copy; use
    /// [`System::snapshot`] to keep the live system).
    fn from(system: System<A, T>) -> Self {
        SystemState {
            state: Box::new(system),
        }
    }
}

impl<A, T> System<A, T>
where
    A: RequestArbiter + Clone,
    T: ThrottleController + Clone,
{
    /// Freezes the complete machine state at the current cycle.
    pub fn snapshot(&self) -> SystemState<A, T> {
        SystemState {
            state: Box::new(self.clone()),
        }
    }

    /// Rewinds this system to a previously taken snapshot. After the
    /// call the system is byte-identical to the machine the snapshot
    /// was taken from, and resuming it replays the exact same future.
    pub fn restore(&mut self, snap: &SystemState<A, T>) {
        *self = (*snap.state).clone();
    }
}

impl<A: RequestArbiter, T: ThrottleController> System<A, T> {
    /// Builds a system running `program` with the given policies.
    ///
    /// `make_arbiter` is invoked once per slice so each slice owns an
    /// independent arbiter instance.
    pub fn new(
        cfg: SystemConfig,
        program: Program,
        make_arbiter: &dyn Fn(SliceId) -> A,
        mut throttle: T,
    ) -> Self {
        cfg.validate().expect("invalid system configuration");
        let cores = (0..cfg.num_cores)
            .map(|i| VectorCore::new(i, cfg.core, cfg.l1))
            .collect::<Vec<_>>();
        let mut slices = (0..cfg.l2.num_slices)
            .map(|i| LlcSlice::new(i, cfg.l2, cfg.num_cores, make_arbiter(i)))
            .collect::<Vec<_>>();
        for s in &mut slices {
            s.start_operator();
        }
        throttle.reset(cfg.num_cores);
        let sched = TbScheduler::new(&program, cfg.num_cores, cfg.core.num_inst_windows);
        let noc = Noc::new(cfg.noc, cfg.num_cores, cfg.l2.num_slices);
        let dram = DramSystem::new(cfg.dram, MappingScheme::RoBaRaCoCh);
        let n = cfg.num_cores;
        let req_blocks_total = program.blocks_per_request();
        let req_arrivals = program.request_arrivals();
        // A request with no blocks (possible in sparse tags) is
        // trivially complete from the start.
        let req_completed: Vec<bool> = req_blocks_total.iter().map(|&b| b == 0).collect();
        let n_req = req_blocks_total.len();
        // In-flight requests are bounded by the per-core L1 miss
        // tables (loads) plus posted stores in transit through the NoC
        // and slice queues; 2x headroom keeps the arena from growing
        // mid-run (pinned by `tests/alloc_regression.rs`). A single hot
        // slice's ingress can buffer most of that window, so each
        // slice's ring is preallocated to the same bound.
        let in_flight_bound = 2 * n * cfg.l1.miss_entries + 256;
        let pool = ReqPool::with_capacity(in_flight_bound);
        for s in &mut slices {
            s.reserve_ingress(in_flight_bound);
        }
        let flat = Arc::new(FlatProgram::new(&program));
        let blocks_total: u64 = req_blocks_total.iter().sum();
        System {
            core_period_ps: cfg.core_period_ps(),
            dram_period_ps: cfg.dram.timing.tck_ps,
            cfg,
            program: Arc::new(program),
            flat,
            cores,
            slices,
            noc,
            dram,
            sched,
            throttle,
            pool,
            cycle: 0,
            core_time_ps: 0,
            dram_time_ps: 0,
            max_tb: vec![cfg.core.num_inst_windows; n],
            throttle_wake: 0,
            tb_retired: false,
            ticks_executed: 0,
            cycles_skipped: 0,
            kv: None,
            injector: None,
            inject_wake: Cycle::MAX,
            req_admitted: req_arrivals.clone(),
            req_first_retire: vec![Cycle::MAX; n_req],
            req_rejected: vec![Cycle::MAX; n_req],
            req_preemptions: vec![0; n_req],
            blocks_total,
            blocks_retired: 0,
            req_blocks_total,
            req_blocks_done: vec![0; n_req],
            req_arrivals,
            req_completed,
            req_completion: vec![0; n_req],
            progress_scratch: vec![0; n],
            c_mem_scratch: vec![0; n],
            c_idle_scratch: vec![0; n],
            tbs_done_scratch: vec![0; n],
            active_tbs_scratch: vec![0; n],
            fill_scratch: Vec::with_capacity(64),
        }
    }

    /// Replaces the per-slice arbiters and the throttle controller with
    /// fresh instances, on a system that has not ticked yet.
    ///
    /// This is the policy half of the campaign warm-up-and-fork fast
    /// path: scenario construction (trace generation, program mapping,
    /// [`FlatProgram`] build, component preallocation) is policy
    /// independent, so cells sharing a scenario fork one pre-tick base
    /// snapshot and swap in their own policies. Each slice's arbiter is
    /// reset exactly as construction would reset it, so the forked
    /// system is byte-identical to one built fresh with these policies
    /// (`crates/bench` pins this across the golden matrix).
    ///
    /// Policies affect behaviour from cycle 0 (the throttle's phase-5
    /// sweep runs on the very first tick), which is why the swap is
    /// only allowed before any tick — there is no policy-neutral
    /// *simulated* prefix to share.
    pub fn replace_policies(&mut self, make_arbiter: &dyn Fn(SliceId) -> A, mut throttle: T) {
        assert_eq!(
            self.cycle, 0,
            "replace_policies requires an unticked system (policies diverge from cycle 0)"
        );
        for (i, s) in self.slices.iter_mut().enumerate() {
            s.replace_arbiter(make_arbiter(i));
        }
        throttle.reset(self.cfg.num_cores);
        self.throttle = throttle;
        self.throttle_wake = 0;
        self.tb_retired = false;
    }

    /// Switches the run to **open-system serving**: withholds every
    /// thread block from the scheduler and hands release authority to
    /// `injector`, which admits requests mid-run under its serving
    /// policy. Request arrivals (for stats and TTFT) become the
    /// injector's schedule. Must be called before the first tick.
    ///
    /// The program must be an *open* serve set — request-tagged,
    /// arrival-free, with home cores relative to the injector's slot
    /// width (see `llamcat_trace::mix::generate_serve_set`).
    pub fn attach_injector(&mut self, injector: RequestInjector) {
        assert_eq!(self.cycle, 0, "attach the injector before running");
        assert_eq!(
            injector.num_requests(),
            self.req_blocks_total.len(),
            "injector and program disagree on the request count"
        );
        self.sched.withhold_all();
        self.req_arrivals = injector.arrivals().to_vec();
        for a in self.req_admitted.iter_mut() {
            *a = Cycle::MAX;
        }
        self.inject_wake = 0;
        self.injector = Some(injector);
    }

    /// Runs the injector's admission sweep at cycle `now` and re-arms
    /// `inject_wake`. Returns whether anything was admitted (Skip mode
    /// must then re-arm core wake bounds — newly injected blocks are
    /// fetchable this very cycle).
    fn run_injector(&mut self, now: Cycle) -> bool {
        let Some(inj) = self.injector.as_mut() else {
            self.inject_wake = Cycle::MAX;
            return false;
        };
        let mut ledger = crate::serve::AdmissionLedger {
            admitted: &mut self.req_admitted,
            rejected: &mut self.req_rejected,
            preemptions: &mut self.req_preemptions,
        };
        let admitted = inj.run_admissions(now, &mut self.sched, &mut ledger);
        // Next arrival-driven admission opportunity; a capacity-blocked
        // queue re-arms at the completion that frees the capacity.
        self.inject_wake = inj.next_wake(now + 1).unwrap_or(Cycle::MAX);
        admitted
    }

    /// Attaches a tiered KV store (see [`crate::kv`]): from now on a
    /// DRAM read for a KV line only dispatches once its KV block is
    /// warm; cold blocks are promoted from the slow tier first. Must be
    /// called before the first tick.
    pub fn attach_kv(&mut self, cfg: KvTierConfig) {
        assert_eq!(self.cycle, 0, "attach the KV tier before running");
        let mut tier = KvTier::new(cfg);
        tier.reserve_requests(self.req_blocks_total.len().max(1));
        self.kv = Some(tier);
    }

    /// Republishes the tier's per-request busy view to every slice when
    /// it changed (arbiters read it through [`crate::arb::ArbiterCtx`]).
    /// Must run before a slice ticks so the same-cycle arbitration sees
    /// the same view in both step modes.
    fn sync_kv_busy(&mut self) {
        let Some(kv) = &mut self.kv else { return };
        if !kv.busy_dirty {
            return;
        }
        kv.busy_dirty = false;
        for s in &mut self.slices {
            kv.publish_busy(&mut s.kv_busy);
        }
    }

    /// Drains slice `s`'s pending DRAM reads through the KV tier (when
    /// attached): non-KV lines and warm KV lines dispatch to DRAM under
    /// channel backpressure; cold KV lines start (or merge into) a
    /// promotion and wait inside the tier. Returns whether any read
    /// reached the DRAM queues.
    fn dispatch_dram_reads(&mut self, s: SliceId, now: Cycle) -> bool {
        let mut touched = false;
        while let Some(&(line, req)) = self.slices[s].dram_reads.front() {
            let class = match &self.kv {
                None => KvClass::Bypass,
                Some(kv) => kv.classify(line),
            };
            match class {
                KvClass::Bypass | KvClass::Warm => {
                    if !self.dram.enqueue_read(line, s) {
                        break; // channel backpressure: retry next cycle
                    }
                    self.slices[s].dram_reads.pop_front();
                    touched = true;
                    if class == KvClass::Warm {
                        // Count the hit (and freshen LRU) only once the
                        // read actually dispatched.
                        self.kv
                            .as_mut()
                            .expect("warm needs a tier")
                            .note_hit(line, req);
                    }
                }
                KvClass::Inflight => {
                    self.slices[s].dram_reads.pop_front();
                    self.kv
                        .as_mut()
                        .expect("inflight needs a tier")
                        .merge_wait(line, req, s);
                }
                KvClass::Cold => {
                    let kv = self.kv.as_mut().expect("cold needs a tier");
                    if !kv.can_start() {
                        break; // transfer queue full: retry next cycle
                    }
                    self.slices[s].dram_reads.pop_front();
                    kv.start_promotion(line, req, s, now);
                }
            }
        }
        touched
    }

    /// KV-tier phase, between the slice and DRAM phases in both step
    /// modes: completes due promotions and releases their waiting reads
    /// into the DRAM queues (FIFO, under channel backpressure). Returns
    /// whether any read reached DRAM.
    fn kv_phase(&mut self, now: Cycle) -> bool {
        let Some(kv) = &mut self.kv else {
            return false;
        };
        kv.advance(now);
        let mut touched = false;
        while let Some((line, slice)) = kv.ready_front() {
            if !self.dram.enqueue_read(line, slice) {
                break;
            }
            kv.pop_ready();
            touched = true;
        }
        touched
    }

    /// The KV tier's wake bound (`Cycle::MAX` when absent or idle).
    fn kv_wake_of(&self, now: Cycle) -> Cycle {
        self.kv
            .as_ref()
            .and_then(|kv| kv.next_event(now))
            .map_or(Cycle::MAX, |at| at.max(now))
    }

    /// Slice that owns `line_addr` (slices interleave on low line bits,
    /// i.e. the LLC is sliced across the cache-set dimension).
    #[inline]
    pub fn slice_of(&self, line_addr: Addr) -> SliceId {
        (line_index(line_addr) % self.cfg.l2.num_slices as u64) as usize
    }

    /// Runs until completion or `max_cycles`, returning statistics
    /// (cycle-accurate [`StepMode::Cycle`] path).
    pub fn run(&mut self, max_cycles: Cycle) -> (SimStats, RunOutcome) {
        self.run_with_mode(max_cycles, StepMode::Cycle)
    }

    /// Runs until completion or `max_cycles` under the given step mode.
    ///
    /// Both modes execute exactly the same sequence of *event* cycles in
    /// the same 5-phase order; `Skip` replaces provably idle stretches
    /// between events with closed-form statistic accrual. The budget is
    /// honoured exactly: no mode ever advances `cycle` past
    /// `max_cycles`, and both report [`RunOutcome::CycleLimit`] at the
    /// same cycle count.
    pub fn run_with_mode(&mut self, max_cycles: Cycle, mode: StepMode) -> (SimStats, RunOutcome) {
        let outcome = self.advance_with_mode(max_cycles, mode);
        (self.collect_stats(), outcome)
    }

    /// Advances the machine to completion or `max_cycles` **without**
    /// assembling statistics.
    ///
    /// This is [`System::run_with_mode`] minus the final
    /// [`System::collect_stats`] — the machine is left in exactly the
    /// state the full run would leave it in, so a later `collect_stats`
    /// (or further `advance_with_mode` calls with a larger budget)
    /// observes byte-identical results. [`crate::batch::SystemBatch`]
    /// drives its lockstep chunks through this entry point so stats
    /// assembly is paid once per cell, not once per chunk.
    pub fn advance_with_mode(&mut self, max_cycles: Cycle, mode: StepMode) -> RunOutcome {
        if mode == StepMode::Skip {
            return self.skip_to(max_cycles);
        }
        while self.cycle < max_cycles {
            self.tick();
            self.ticks_executed += 1;
            if self.is_done() {
                return RunOutcome::Completed;
            }
        }
        self.cycle_limit_outcome()
    }

    /// The budget-exhausted outcome, carrying per-request completion.
    pub(crate) fn cycle_limit_outcome(&self) -> RunOutcome {
        RunOutcome::CycleLimit {
            requests_completed: self.req_completed.iter().filter(|&&c| c).count(),
            requests_total: self.req_completed.len(),
        }
    }

    /// Maps this tick's retired thread blocks (drained from `core`) to
    /// their serving requests; a request completes the cycle its last
    /// block retires. Runs in both step modes at the same cycles —
    /// retirement is an event, never skipped over.
    fn note_retirements(&mut self, core: usize, now: Cycle) {
        while let Some(tb) = self.cores[core].retired.pop() {
            self.tb_retired = true;
            self.blocks_retired += 1;
            let r = self.program.request_of(tb) as usize;
            self.req_blocks_done[r] += 1;
            if self.req_first_retire[r] == Cycle::MAX {
                self.req_first_retire[r] = now;
            }
            if self.req_blocks_done[r] == self.req_blocks_total[r] {
                self.req_completed[r] = true;
                self.req_completion[r] = now;
                if let Some(inj) = self.injector.as_mut() {
                    // The completion frees admission capacity; the
                    // earliest cycle the freed capacity can admit is the
                    // next one (this cycle's phase 0 already ran).
                    inj.note_completion(r as u32);
                    if !inj.drained() {
                        self.inject_wake = self.inject_wake.min(now + 1);
                    }
                }
            }
        }
    }

    /// (real ticks executed, cycles fast-forwarded) — instrumentation
    /// for the `sim_speed` bench and skip-efficiency diagnostics.
    pub fn step_counts(&self) -> (u64, u64) {
        (self.ticks_executed, self.cycles_skipped)
    }

    /// A slice's wake cycle: the earlier of its own event bound and its
    /// next NoC request arrival, clamped to the future.
    fn slice_wake_of(
        slice: &LlcSlice<A>,
        noc: &Noc,
        pool: &ReqPool,
        s: SliceId,
        now: Cycle,
    ) -> Cycle {
        let own = slice
            .next_event(now, pool)
            .map_or(Cycle::MAX, |at| at.max(now));
        let arrival = noc.next_req_arrival(s).map_or(Cycle::MAX, |at| at.max(now));
        own.min(arrival)
    }

    /// A core's wake cycle: the earlier of its own event bound and its
    /// next NoC response arrival, clamped to the future.
    fn core_wake_of(
        core: &VectorCore,
        sched: &TbScheduler,
        noc: &Noc,
        c: usize,
        now: Cycle,
    ) -> Cycle {
        let own = core
            .next_event(now, sched)
            .map_or(Cycle::MAX, |at| at.max(now));
        let arrival = noc
            .next_resp_arrival(c)
            .map_or(Cycle::MAX, |at| at.max(now));
        own.min(arrival)
    }

    /// Converts the DRAM subsystem's next event (in DRAM cycles) into
    /// the core cycle whose clock-domain crossing executes that DRAM
    /// tick.
    fn dram_event_cycle(&self) -> Option<Cycle> {
        let event = self.dram.next_event()?;
        // `dram_time_ps == executed_dram_ticks * dram_period_ps` is an
        // invariant of both run modes. The m-th future DRAM tick runs
        // during the first core cycle c with
        // (c + 1) * core_period >= dram_time + m * dram_period.
        let now_dram = self.dram_time_ps / self.dram_period_ps;
        debug_assert!(event > now_dram, "DRAM event bound must be in the future");
        let target_ps = self.dram_time_ps + (event - now_dram) * self.dram_period_ps;
        Some(target_ps.div_ceil(self.core_period_ps) - 1)
    }

    /// Fast-forwards the DRAM clock domain to `target_ps` with
    /// provably-idle ticks only (validated upstream: the next DRAM
    /// event lies at or beyond `target_ps`).
    fn dram_sync_quiet(&mut self, target_ps: u64) {
        let ticks = target_ps.saturating_sub(self.dram_time_ps) / self.dram_period_ps;
        if ticks > 0 {
            self.dram.skip(ticks);
            self.dram_time_ps += ticks * self.dram_period_ps;
        }
    }

    /// Event-driven fast-forward loop ([`StepMode::Skip`]).
    ///
    /// Each component carries its own wake cycle — the earliest cycle
    /// at which its per-cycle tick could do anything beyond closed-form
    /// accrual — plus a `synced` watermark recording how far its
    /// accrual has been materialized. The loop jumps straight to the
    /// minimum wake cycle and executes *only the due components*, in
    /// the exact 5-phase order of [`System::tick`]:
    ///
    /// 1. due slices drain their NoC arrivals and tick (flushing
    ///    responses and DRAM traffic, which in turn wakes cores and the
    ///    DRAM);
    /// 2. the DRAM clock domain advances — quiet DRAM ticks in closed
    ///    form, event ticks for real — delivering fills (waking
    ///    slices);
    /// 3. due cores drain responses and tick (flushing requests, which
    ///    wakes slices); a thread-block completion wakes the throttle
    ///    (the LCS-style trigger);
    /// 4. when the throttle is due, every core and slice is synced so
    ///    the controller reads exactly the cumulative counters cycle
    ///    mode would hand it, then its decision re-arms the core wakes.
    ///
    /// Quiescent components never tick; their statistics are accrued in
    /// one multiplication when they next wake (or at exit). This is
    /// what makes the fast path fast on event-dense workloads: a NoC
    /// arrival at one slice no longer costs 16 core ticks, 7 idle slice
    /// ticks, a throttle sweep and 4 DRAM channel scans.
    fn skip_to(&mut self, max_cycles: Cycle) -> RunOutcome {
        const NEVER: Cycle = Cycle::MAX;
        let num_cores = self.cores.len();
        let num_slices = self.slices.len();
        // Everything is due at the current cycle: the first iteration
        // behaves exactly like a full `tick()`.
        let mut wake_core = vec![self.cycle; num_cores];
        let mut wake_slice = vec![self.cycle; num_slices];
        let mut wake_dram = self.cycle;
        let mut wake_throttle = self.cycle;
        let mut wake_kv = if self.kv.is_some() { self.cycle } else { NEVER };
        let mut synced_core = vec![self.cycle; num_cores];
        let mut synced_slice = vec![self.cycle; num_slices];

        let outcome = loop {
            let mut now = wake_dram
                .min(wake_throttle)
                .min(self.inject_wake)
                .min(wake_kv);
            for &w in &wake_core {
                now = now.min(w);
            }
            for &w in &wake_slice {
                now = now.min(w);
            }
            if now >= max_cycles {
                // Budget exhausted before the next event: burn the
                // remaining cycles in closed form, never past the
                // budget.
                for (i, core) in self.cores.iter_mut().enumerate() {
                    let pending = max_cycles - synced_core[i].min(max_cycles);
                    core.skip(synced_core[i], pending);
                }
                for (s, slice) in self.slices.iter_mut().enumerate() {
                    let pending = max_cycles - synced_slice[s].min(max_cycles);
                    slice.skip(synced_slice[s], pending, &self.pool);
                }
                // Saturate: astronomically large budgets (e.g. u64::MAX)
                // would overflow the picosecond clock; the DRAM domain
                // simply stops advancing past the representable horizon.
                self.dram_sync_quiet(max_cycles.saturating_mul(self.core_period_ps));
                self.cycles_skipped += max_cycles - self.cycle;
                self.cycle = max_cycles;
                break self.cycle_limit_outcome();
            }
            self.cycles_skipped += now - self.cycle;
            self.ticks_executed += 1;
            self.cycle = now;

            // Pre-sync the DRAM clock to the start of this cycle
            // (cycle-mode ticks for earlier cycles all ran before this
            // cycle's phase 2; they are quiet by the wake bound).
            self.dram_sync_quiet(now * self.core_period_ps);

            // Phase 0: open-system request injection. Admission changes
            // scheduler state, so every core's wake bound — computed
            // before these blocks existed — must be re-armed: an idle
            // core can fetch injected work this very cycle.
            if self.inject_wake <= now && self.run_injector(now) {
                for (c, wake) in wake_core.iter_mut().enumerate() {
                    *wake = (*wake).min(Self::core_wake_of(
                        &self.cores[c],
                        &self.sched,
                        &self.noc,
                        c,
                        now,
                    ));
                }
            }

            // Phases 1+2: due slices — deliver due arrivals, tick,
            // flush.
            let mut dram_touched = false;
            for s in 0..num_slices {
                if wake_slice[s] > now {
                    continue;
                }
                let pending = now - synced_slice[s];
                self.slices[s].skip(synced_slice[s], pending, &self.pool);
                while let Some(h) = self.noc.pop_due_req(s, now) {
                    self.slices[s].deliver(h);
                }
                // Same-cycle ordering as the per-cycle path: an earlier
                // slice's KV transfer start is visible here.
                self.sync_kv_busy();
                self.slices[s].tick(now, &mut self.pool);
                while let Some(o) = self.slices[s].outbound.pop_front() {
                    let at = self.noc.send_resp(s, o.resp, o.at.max(now));
                    wake_core[o.resp.core] = wake_core[o.resp.core].min(at.max(now + 1));
                }
                dram_touched |= self.dispatch_dram_reads(s, now);
                while let Some(&line) = self.slices[s].dram_writes.front() {
                    if self.dram.enqueue_write(line) {
                        self.slices[s].dram_writes.pop_front();
                        dram_touched = true;
                    } else {
                        break;
                    }
                }
                synced_slice[s] = now + 1;
                wake_slice[s] =
                    Self::slice_wake_of(&self.slices[s], &self.noc, &self.pool, s, now + 1);
            }

            // Phase 2½: KV tier — complete due promotions and release
            // waiting reads into DRAM, exactly as the per-cycle path
            // does between the slice and DRAM phases. Transfers started
            // during phase 2 re-arm the wake bound.
            if self.kv.is_some() {
                if self.kv_wake_of(now) <= now {
                    dram_touched |= self.kv_phase(now);
                }
                wake_kv = self.kv_wake_of(now + 1);
            }

            if dram_touched {
                // Fresh requests can pull the next DRAM command earlier
                // — possibly into this very cycle's crossing window.
                wake_dram = self.dram_event_cycle().unwrap_or(NEVER);
            }

            // Phase 3: DRAM clock domain. Only executed when an event
            // tick falls inside this cycle's crossing window; the
            // window then runs for real (at most two ticks at this
            // clock ratio).
            if wake_dram <= now {
                let end_ps = (now + 1) * self.core_period_ps;
                while self.dram_time_ps + self.dram_period_ps <= end_ps {
                    self.dram_time_ps += self.dram_period_ps;
                    self.fill_scratch.clear();
                    self.fill_scratch.extend_from_slice(self.dram.tick());
                    for f in &self.fill_scratch {
                        let s = f.slice;
                        // Sync the slice *before* the delivery mutates
                        // it (its quiet accrual basis is the pre-fill
                        // state, exactly as in cycle mode where the
                        // slice ticked in phase 2).
                        let pending = (now + 1) - synced_slice[s].min(now + 1);
                        self.slices[s].skip(synced_slice[s], pending, &self.pool);
                        synced_slice[s] = now + 1;
                        self.slices[s].deliver_fill(f.line_addr);
                        wake_slice[s] = now + 1;
                    }
                }
                wake_dram = self.dram_event_cycle().unwrap_or(NEVER);
            }

            // Phase 4: due cores — deliver responses, tick, flush.
            for c in 0..num_cores {
                if wake_core[c] > now {
                    continue;
                }
                let pending = now - synced_core[c];
                self.cores[c].skip(synced_core[c], pending);
                while let Some(resp) = self.noc.pop_due_resp(c, now) {
                    self.cores[c].on_resp(resp, now);
                }
                let tbs_before = self.cores[c].stats.tbs_completed;
                self.cores[c].tick(now, &self.flat, &mut self.sched, &mut self.pool);
                self.note_retirements(c, now);
                while let Some(h) = self.cores[c].outbound.pop_front() {
                    let slice = self.slice_of(self.pool.get(h).line_addr);
                    let at = self.noc.send_req(slice, h, now, &self.pool);
                    wake_slice[slice] = wake_slice[slice].min(at.max(now + 1));
                }
                if self.cores[c].stats.tbs_completed != tbs_before {
                    // Thread-block completions are the one discrete
                    // input a quiescent-between-boundaries controller
                    // may react to (LCS); run the throttle this cycle.
                    wake_throttle = now;
                }
                synced_core[c] = now + 1;
                wake_core[c] =
                    Self::core_wake_of(&self.cores[c], &self.sched, &self.noc, c, now + 1);
            }

            // Phase 5: throttle, on its schedule or on a completion.
            if wake_throttle <= now {
                for (i, core) in self.cores.iter_mut().enumerate() {
                    let pending = (now + 1) - synced_core[i].min(now + 1);
                    core.skip(synced_core[i], pending);
                    synced_core[i] = now + 1;
                }
                for (s, slice) in self.slices.iter_mut().enumerate() {
                    let pending = (now + 1) - synced_slice[s].min(now + 1);
                    slice.skip(synced_slice[s], pending, &self.pool);
                    synced_slice[s] = now + 1;
                }
                self.run_throttle(now);
                wake_throttle = match self.throttle.next_event(now + 1) {
                    Some(at) => at.max(now + 1),
                    None => NEVER,
                };
                // The decision may have freed (or capped) window
                // capacity: re-arm every core's wake against its new
                // max_tb.
                for (c, wake) in wake_core.iter_mut().enumerate() {
                    *wake = (*wake).min(Self::core_wake_of(
                        &self.cores[c],
                        &self.sched,
                        &self.noc,
                        c,
                        now + 1,
                    ));
                }
            }

            self.cycle = now + 1;
            if self.is_done() {
                // Materialize every deferred accrual up to the final
                // cycle (cycle mode ticked all components through
                // `now`, idle ones included).
                for (i, core) in self.cores.iter_mut().enumerate() {
                    let pending = (now + 1) - synced_core[i].min(now + 1);
                    core.skip(synced_core[i], pending);
                }
                for (s, slice) in self.slices.iter_mut().enumerate() {
                    let pending = (now + 1) - synced_slice[s].min(now + 1);
                    slice.skip(synced_slice[s], pending, &self.pool);
                }
                self.dram_sync_quiet((now + 1) * self.core_period_ps);
                break RunOutcome::Completed;
            }
        };
        // Keep the clock-domain invariant for anyone stepping the
        // system further after a fast-forwarded run.
        self.core_time_ps = self.cycle.saturating_mul(self.core_period_ps);
        outcome
    }

    /// Single-cycle step (public for fine-grained tests).
    pub fn tick(&mut self) {
        let now = self.cycle;
        self.tb_retired = false;

        // 0. Open-system request injection — before anything else, so a
        // request admitted at cycle t is fetchable by its core's phase-4
        // tick of the same cycle (the Skip engine runs this phase at the
        // same cycles via `inject_wake`).
        if now >= self.inject_wake {
            self.run_injector(now);
        }

        // 1. Interconnect -> slice request queues (scratch-free: the
        // NoC pops due handles straight into the slice's ingress).
        for s in 0..self.slices.len() {
            while let Some(h) = self.noc.pop_due_req(s, now) {
                self.slices[s].deliver(h);
            }
        }

        // 2. Slices.
        for s in 0..self.slices.len() {
            // A transfer start/merge in an earlier slice's dispatch
            // must be visible to this slice's arbitration.
            self.sync_kv_busy();
            self.slices[s].tick(now, &mut self.pool);
            // Outbound responses into the NoC.
            while let Some(o) = self.slices[s].outbound.pop_front() {
                self.noc.send_resp(s, o.resp, o.at.max(now));
            }
            // DRAM dispatch with channel backpressure, gated by the KV
            // tier when one is attached.
            self.dispatch_dram_reads(s, now);
            while let Some(&line) = self.slices[s].dram_writes.front() {
                if self.dram.enqueue_write(line) {
                    self.slices[s].dram_writes.pop_front();
                } else {
                    break;
                }
            }
        }

        // 2½. KV tier: complete due promotions, release waiting reads.
        self.kv_phase(now);

        // 3. DRAM clock domain.
        self.core_time_ps += self.core_period_ps;
        while self.dram_time_ps + self.dram_period_ps <= self.core_time_ps {
            self.dram_time_ps += self.dram_period_ps;
            self.fill_scratch.clear();
            self.fill_scratch.extend_from_slice(self.dram.tick());
            for f in &self.fill_scratch {
                self.slices[f.slice].deliver_fill(f.line_addr);
            }
        }

        // 4. Cores.
        for c in 0..self.cores.len() {
            while let Some(resp) = self.noc.pop_due_resp(c, now) {
                self.cores[c].on_resp(resp, now);
            }
            self.cores[c].tick(now, &self.flat, &mut self.sched, &mut self.pool);
            self.note_retirements(c, now);
            while let Some(h) = self.cores[c].outbound.pop_front() {
                let slice = self.slice_of(self.pool.get(h).line_addr);
                self.noc.send_req(slice, h, now, &self.pool);
            }
        }

        // 5. Throttling — event-gated, mirroring the Skip engine's
        // phase 5: controllers promise (via `next_event`) that between
        // boundaries their state and `max_tb` output are frozen, and the
        // one discrete input they may react to is a thread-block
        // completion. Skipping the call also skips the whole-machine
        // input sweep, which the per-cycle path paid even for
        // `NoThrottle`.
        if now >= self.throttle_wake || self.tb_retired {
            self.run_throttle(now);
            self.throttle_wake = match self.throttle.next_event(now + 1) {
                Some(at) => at.max(now + 1),
                None => Cycle::MAX,
            };
        }

        self.cycle += 1;
    }

    fn run_throttle(&mut self, now: Cycle) {
        for p in self.progress_scratch.iter_mut() {
            *p = 0;
        }
        for s in &self.slices {
            for (c, v) in s.served().iter().enumerate() {
                self.progress_scratch[c] += v;
            }
        }
        let mut llc_stalls = 0;
        for s in &self.slices {
            llc_stalls += s.stats.stall_cycles;
        }
        for (c, core) in self.cores.iter().enumerate() {
            self.c_mem_scratch[c] = core.stats.mem_stall_cycles;
            self.c_idle_scratch[c] = core.stats.idle_cycles;
            self.tbs_done_scratch[c] = core.stats.tbs_completed;
            self.active_tbs_scratch[c] = core.resident_tbs();
        }
        let inputs = ThrottleInputs {
            cycle: now,
            num_windows: self.cfg.core.num_inst_windows,
            num_slices: self.cfg.l2.num_slices,
            progress: &self.progress_scratch,
            c_mem: &self.c_mem_scratch,
            c_idle: &self.c_idle_scratch,
            llc_stall_cycles: llc_stalls,
            active_tbs: &self.active_tbs_scratch,
            tbs_completed: &self.tbs_done_scratch,
        };
        self.throttle.tick(&inputs, &mut self.max_tb);
        for (core, &m) in self.cores.iter_mut().zip(self.max_tb.iter()) {
            debug_assert!(
                (1..=self.cfg.core.num_inst_windows).contains(&m),
                "throttle produced max_tb {m} outside 1..={}",
                self.cfg.core.num_inst_windows
            );
            core.max_tb = m.clamp(1, self.cfg.core.num_inst_windows);
        }
    }

    /// True when every component has drained — including the request
    /// injector: an open-system run is not done while requests are
    /// still waiting for admission, however idle the machine is.
    ///
    /// The counter guard is an O(1) reject path for the per-cycle
    /// caller: the machine cannot have drained while a block that will
    /// ever retire has not retired. Rejected/dropped requests
    /// ([`crate::serve::ServePolicy::RejectAboveQueue`] /
    /// [`crate::serve::ServePolicy::DeadlineDrop`]) never inject their
    /// blocks, so the injector's shed count makes up the difference.
    /// The guard is necessary, not sufficient — retired blocks can
    /// leave write-backs in flight — so the full idle sweep still
    /// decides.
    pub fn is_done(&self) -> bool {
        let shed = self.injector.as_ref().map_or(0, |i| i.blocks_shed());
        if self.blocks_retired + shed < self.blocks_total {
            return false;
        }
        self.injector.as_ref().is_none_or(|i| i.drained())
            && self.sched.is_empty()
            && self.cores.iter().all(|c| c.is_idle())
            && self.noc.is_idle()
            && self.slices.iter().all(|s| s.is_idle())
            && self.kv.as_ref().is_none_or(|k| k.is_idle())
            && self.dram.is_idle()
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Assembles statistics from all components.
    pub fn collect_stats(&self) -> SimStats {
        let mut st = SimStats::new(
            self.slices.len(),
            self.cores.len(),
            self.dram.num_channels(),
        );
        st.cycles = self.cycle;
        st.freq_ghz = self.cfg.freq_ghz;
        for (i, s) in self.slices.iter().enumerate() {
            st.slices[i] = s.stats.clone();
        }
        for (i, c) in self.cores.iter().enumerate() {
            st.cores[i] = c.stats.clone();
        }
        st.channels = self.dram.stats();
        for p in st.progress.iter_mut() {
            *p = 0;
        }
        for s in &self.slices {
            for (c, v) in s.served().iter().enumerate() {
                st.progress[c] += v;
            }
        }
        st.tb_migrations = self.sched.migrations();
        let classes = self.injector.as_ref().map(|i| i.classes());
        st.requests = (0..self.req_blocks_total.len())
            .map(|r| crate::stats::RequestStats {
                blocks_total: self.req_blocks_total[r],
                blocks_completed: self.req_blocks_done[r],
                arrival: self.req_arrivals[r],
                completed: self.req_completed[r],
                completion_cycle: self.req_completion[r],
                admitted: (self.req_admitted[r] != Cycle::MAX).then_some(self.req_admitted[r]),
                first_retire: (self.req_first_retire[r] != Cycle::MAX)
                    .then_some(self.req_first_retire[r]),
                rejected: (self.req_rejected[r] != Cycle::MAX).then_some(self.req_rejected[r]),
                preemptions: self.req_preemptions[r],
                class: classes.map_or(0, |c| c[r]),
                llc: crate::stats::RequestLlcStats::default(),
                kv: crate::stats::RequestKvStats::default(),
            })
            .collect();
        for s in &self.slices {
            for (r, rs) in s.request_stats.iter().enumerate() {
                st.requests[r].llc.merge(rs);
            }
        }
        if let Some(kv) = &self.kv {
            st.kv = Some(kv.total.clone());
            for (r, ks) in kv.req_stats.iter().enumerate() {
                if r < st.requests.len() {
                    st.requests[r].kv.merge(ks);
                }
            }
        }
        st
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arb::{FifoArbiter, NoThrottle};
    use crate::prog::{Instr, ThreadBlock};

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::table5();
        cfg.num_cores = 4;
        cfg.dram.refresh = false;
        cfg
    }

    fn build(cfg: SystemConfig, program: Program) -> System {
        System::new(
            cfg,
            program,
            &|_| Box::new(FifoArbiter),
            Box::new(NoThrottle),
        )
    }

    fn streaming_program(num_blocks: usize, loads_per_block: usize, cores: usize) -> Program {
        let mut blocks = Vec::new();
        for b in 0..num_blocks {
            let mut instrs = Vec::new();
            for l in 0..loads_per_block {
                let addr = ((b * loads_per_block + l) as u64) * 128;
                instrs.push(Instr::Load { addr, bytes: 128 });
            }
            instrs.push(Instr::Barrier);
            blocks.push(ThreadBlock { instrs });
        }
        Program::round_robin(blocks, cores)
    }

    #[test]
    fn completes_and_is_deterministic() {
        let p = streaming_program(8, 8, 4);
        let (s1, o1) = build(small_cfg(), p.clone()).run(1_000_000);
        let (s2, o2) = build(small_cfg(), p).run(1_000_000);
        assert_eq!(o1, RunOutcome::Completed);
        assert_eq!(o2, RunOutcome::Completed);
        assert_eq!(s1.cycles, s2.cycles, "simulation must be deterministic");
        assert_eq!(s1.dram_accesses(), s2.dram_accesses());
        s1.check_consistency().unwrap();
    }

    #[test]
    fn all_blocks_complete() {
        let p = streaming_program(12, 4, 4);
        let (stats, outcome) = build(small_cfg(), p).run(1_000_000);
        assert_eq!(outcome, RunOutcome::Completed);
        let tbs: u64 = stats.cores.iter().map(|c| c.tbs_completed).sum();
        assert_eq!(tbs, 12);
    }

    #[test]
    fn distinct_lines_reach_dram_once() {
        // 4 blocks x 4 disjoint 128B loads = 32 distinct lines.
        let p = streaming_program(4, 4, 4);
        let (stats, _) = build(small_cfg(), p).run(1_000_000);
        let reads: u64 = stats.channels.iter().map(|c| c.reads).sum();
        assert_eq!(reads, 32, "no reuse => one DRAM read per line");
        assert_eq!(stats.l2_hit_rate(), 0.0);
    }

    #[test]
    fn shared_lines_merge_or_hit() {
        // All four cores read the same 2 lines.
        let mk = || ThreadBlock {
            instrs: vec![
                Instr::Load {
                    addr: 0,
                    bytes: 128,
                },
                Instr::Barrier,
            ],
        };
        let p = Program::round_robin((0..4).map(|_| mk()).collect(), 4);
        let (stats, _) = build(small_cfg(), p).run(1_000_000);
        let reads: u64 = stats.channels.iter().map(|c| c.reads).sum();
        assert_eq!(reads, 2, "sharing collapses into one fetch per line");
        let merges: u64 = stats.slices.iter().map(|s| s.mshr_merges).sum();
        let hits: u64 = stats.slices.iter().map(|s| s.hits).sum();
        assert_eq!(merges + hits, 6, "3 extra requesters per line");
    }

    #[test]
    fn cycle_limit_reported() {
        let p = streaming_program(64, 32, 4);
        let (_, outcome) = build(small_cfg(), p).run(10);
        assert_eq!(
            outcome,
            RunOutcome::CycleLimit {
                requests_completed: 0,
                requests_total: 1
            }
        );
        assert!(!outcome.is_complete());
    }

    #[test]
    fn stores_write_back_eventually() {
        // Write one line; it allocates in L2 (write-allocate) dirty, and
        // with an empty rest-of-run it stays resident: writebacks may be
        // zero. Force eviction via many conflicting fills is heavyweight;
        // here we just check the store flowed to DRAM as a fill read.
        let tb = ThreadBlock {
            instrs: vec![Instr::Store { addr: 0, bytes: 64 }],
        };
        let p = Program::round_robin(vec![tb], 4);
        let (stats, outcome) = build(small_cfg(), p).run(1_000_000);
        assert_eq!(outcome, RunOutcome::Completed);
        let reads: u64 = stats.channels.iter().map(|c| c.reads).sum();
        assert_eq!(reads, 1, "write-allocate fetches the line");
        stats.check_consistency().unwrap();
    }

    /// Byte-identical Cycle vs Skip equivalence on one program/config
    /// (the cross-policy grid lives in `tests/step_mode_equiv.rs`).
    fn assert_modes_equivalent(cfg: SystemConfig, p: Program, budget: Cycle) {
        let (sc, oc) = build(cfg, p.clone()).run_with_mode(budget, StepMode::Cycle);
        let (ss, os) = build(cfg, p).run_with_mode(budget, StepMode::Skip);
        assert_eq!(oc, os, "outcome diverged");
        assert_eq!(
            serde_json::to_string(&sc).unwrap(),
            serde_json::to_string(&ss).unwrap(),
            "SimStats diverged between step modes"
        );
    }

    #[test]
    fn skip_mode_matches_cycle_mode_streaming() {
        assert_modes_equivalent(small_cfg(), streaming_program(8, 8, 4), 1_000_000);
    }

    #[test]
    fn skip_mode_matches_cycle_mode_with_refresh() {
        let mut cfg = small_cfg();
        cfg.dram.refresh = true;
        assert_modes_equivalent(cfg, streaming_program(16, 8, 4), 1_000_000);
    }

    #[test]
    fn skip_mode_matches_cycle_mode_with_compute() {
        let mut blocks = Vec::new();
        for b in 0..8u64 {
            blocks.push(ThreadBlock {
                instrs: vec![
                    Instr::Compute { cycles: 37 },
                    Instr::Load {
                        addr: b * 4096,
                        bytes: 128,
                    },
                    Instr::Compute { cycles: 11 },
                    Instr::Barrier,
                    Instr::Store {
                        addr: b * 4096 + 2048,
                        bytes: 64,
                    },
                ],
            });
        }
        let p = Program::round_robin(blocks, 4);
        assert_modes_equivalent(small_cfg(), p, 1_000_000);
    }

    #[test]
    fn skip_mode_respects_cycle_budget_exactly() {
        let p = streaming_program(64, 32, 4);
        for budget in [1, 7, 10, 97, 500, 4096] {
            let (sc, oc) = build(small_cfg(), p.clone()).run_with_mode(budget, StepMode::Cycle);
            let (ss, os) = build(small_cfg(), p.clone()).run_with_mode(budget, StepMode::Skip);
            assert_eq!(oc, os, "outcome diverged at budget {budget}");
            assert_eq!(
                sc.cycles, ss.cycles,
                "cycle count diverged at budget {budget}"
            );
            assert!(ss.cycles <= budget, "skip mode ran past the budget");
        }
    }

    #[test]
    fn skip_mode_jumps_over_long_compute() {
        // One long-compute block, nothing else in the machine: the fast
        // path must cross the whole compute region in one jump and the
        // idle cores must accrue the same idle-cycle statistics.
        let p = Program::round_robin(
            vec![ThreadBlock {
                instrs: vec![Instr::Compute { cycles: 100_000 }],
            }],
            4,
        );
        let (sc, oc) = build(small_cfg(), p.clone()).run_with_mode(1_000_000, StepMode::Cycle);
        let (ss, os) = build(small_cfg(), p).run_with_mode(1_000_000, StepMode::Skip);
        assert_eq!(oc, RunOutcome::Completed);
        assert_eq!(oc, os);
        assert_eq!(
            serde_json::to_string(&sc).unwrap(),
            serde_json::to_string(&ss).unwrap()
        );
        assert!(sc.cycles > 100_000);
    }

    /// Arrival-free, request-tagged program: `requests` x `blocks_per`
    /// streaming blocks homed on relative cores `0..cores`.
    fn open_program(requests: usize, blocks_per: usize, cores: usize) -> Program {
        let mut blocks = Vec::new();
        let mut tags = Vec::new();
        for r in 0..requests {
            for b in 0..blocks_per {
                let addr = ((r as u64) << 40) + (b as u64) * 256;
                blocks.push(ThreadBlock {
                    instrs: vec![
                        Instr::Load { addr, bytes: 128 },
                        Instr::Load {
                            addr: addr + 128,
                            bytes: 128,
                        },
                        Instr::Barrier,
                    ],
                });
                tags.push(r as u32);
            }
        }
        let assignment = (0..blocks.len()).map(|i| i % cores).collect();
        Program::with_requests(blocks, assignment, tags, Vec::new())
    }

    fn build_open(
        cfg: SystemConfig,
        p: &Program,
        policy: crate::serve::ServePolicy,
        arrivals: Vec<Cycle>,
    ) -> System {
        let inj = RequestInjector::new(
            p,
            arrivals,
            policy,
            cfg.num_cores,
            cfg.core.num_inst_windows,
        )
        .expect("valid injector");
        let mut sys = build(cfg, p.clone());
        sys.attach_injector(inj);
        sys
    }

    #[test]
    fn open_serving_completes_and_tracks_latencies() {
        use crate::serve::ServePolicy;
        let cfg = small_cfg();
        let p = open_program(3, 4, 4);
        let arrivals = vec![0, 1_000, 1_000];
        let mut sys = build_open(cfg, &p, ServePolicy::Fcfs, arrivals.clone());
        let (stats, outcome) = sys.run(1_000_000);
        assert_eq!(outcome, RunOutcome::Completed);
        stats.check_consistency().unwrap();
        assert_eq!(stats.requests.len(), 3);
        for (r, rs) in stats.requests.iter().enumerate() {
            assert!(rs.completed, "request {r} must complete");
            assert_eq!(rs.arrival, arrivals[r]);
            assert_eq!(rs.admitted, Some(arrivals[r]), "FCFS admits on arrival");
            assert!(rs.ttft().unwrap() >= 1);
            assert!(rs.first_retire.unwrap() <= rs.completion_cycle);
            assert!(rs.mean_tbt().unwrap() >= 0.0);
        }
    }

    #[test]
    fn open_serving_modes_are_byte_identical() {
        use crate::serve::ServePolicy;
        // Same-cycle duplicate arrivals included on purpose.
        let arrivals = vec![0, 500, 500, 20_000];
        for policy in [
            ServePolicy::Fcfs,
            ServePolicy::MaxConcurrency { max: 1 },
            ServePolicy::ContinuousBatching { slots: 2 },
        ] {
            // A request's trace is homed on its policy's slot width:
            // the full machine for FCFS/max-concurrency, one core per
            // slot under 2-way continuous batching on 2 cores.
            let width = match policy {
                ServePolicy::ContinuousBatching { slots } => 2 / slots,
                _ => 2,
            };
            let p = open_program(4, 3, width);
            let run = |mode| {
                let mut cfg = small_cfg();
                cfg.num_cores = 2;
                let mut sys = build_open(cfg, &p, policy, arrivals.clone());
                sys.run_with_mode(2_000_000, mode)
            };
            let (sc, oc) = run(StepMode::Cycle);
            let (ss, os) = run(StepMode::Skip);
            assert_eq!(oc, os, "{}: outcome diverged", policy.label());
            assert_eq!(oc, RunOutcome::Completed);
            assert_eq!(
                serde_json::to_string(&sc).unwrap(),
                serde_json::to_string(&ss).unwrap(),
                "{}: SimStats diverged between step modes",
                policy.label()
            );
            // Capacity-gated policies admit the same-cycle pair in
            // request-id order; the serialized equality above already
            // pins admission cycles, this pins the order is usable.
            let a1 = sc.requests[1].admitted.unwrap();
            let a2 = sc.requests[2].admitted.unwrap();
            assert!(a1 <= a2, "{}: id order broken", policy.label());
        }
    }

    #[test]
    fn capacity_blocked_injector_still_drains() {
        use crate::serve::ServePolicy;
        // One slot, three requests all arriving at cycle 0: the machine
        // serializes them, and the idle gaps between completions and
        // re-admissions must fast-forward without stalling the loop.
        let mut cfg = small_cfg();
        cfg.num_cores = 2;
        let p = open_program(3, 2, 2);
        let mut sys = build_open(cfg, &p, ServePolicy::MaxConcurrency { max: 1 }, vec![0; 3]);
        let (stats, outcome) = sys.run_with_mode(2_000_000, StepMode::Skip);
        assert_eq!(outcome, RunOutcome::Completed);
        // Strictly serialized: each admission waits for the previous
        // completion.
        assert!(stats.requests[1].admitted.unwrap() > stats.requests[0].completion_cycle);
        assert!(stats.requests[2].admitted.unwrap() > stats.requests[1].completion_cycle);
        assert!(stats.requests[0].queue_delay().unwrap() == 0);
        assert!(stats.requests[2].queue_delay().unwrap() > 0);
    }

    #[test]
    fn progress_counters_cover_all_requests() {
        let p = streaming_program(8, 8, 4);
        let (stats, _) = build(small_cfg(), p).run(1_000_000);
        let served: u64 = stats.progress.iter().sum();
        let lookups: u64 = stats.slices.iter().map(|s| s.lookups).sum();
        assert_eq!(served, lookups);
    }
}
