//! Executable trace representation: thread blocks of vector instructions.
//!
//! The hybrid framework (Section 5 of the paper) drives each simulated
//! vector core with a memory trace: "cycles of each non-memory
//! operations, memory access addresses, R/W". A trace is partitioned
//! into *thread blocks* — the unit the runtime scheduler assigns to
//! instruction windows and migrates between cores.

use serde::{Deserialize, Serialize};

use crate::types::{Addr, Cycle};

/// One vector instruction of a thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Non-memory work occupying the vector unit for `cycles`.
    Compute { cycles: u32 },
    /// Vector load of `bytes` starting at `addr` (split into line
    /// requests by the L1).
    Load { addr: Addr, bytes: u32 },
    /// Vector store of `bytes` at `addr` (posted; write-through).
    Store { addr: Addr, bytes: u32 },
    /// Wait until all outstanding loads of this thread block returned
    /// (reduction barrier before dependent stores).
    Barrier,
}

/// A schedulable unit: a short sequence of instructions covering 1–2
/// output cache lines (Section 6.2.2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadBlock {
    pub instrs: Vec<Instr>,
}

impl ThreadBlock {
    /// Number of vector loads in the block.
    pub fn num_loads(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count()
    }

    /// Number of vector stores in the block.
    pub fn num_stores(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count()
    }

    /// Total bytes loaded.
    pub fn bytes_loaded(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Load { bytes, .. } => *bytes as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes stored.
    pub fn bytes_stored(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Store { bytes, .. } => *bytes as u64,
                _ => 0,
            })
            .sum()
    }
}

/// Identifier of a thread block within a [`Program`].
pub type TbId = usize;

/// Flattened, cache-dense view of a [`Program`] for the per-cycle issue
/// path: all instructions in one contiguous array with per-block
/// offsets and request tags in parallel arrays. The nested
/// `Vec<ThreadBlock>` costs two dependent pointer loads per
/// instruction fetch — paid by every window evaluation of every awake
/// core tick; the flat view costs one load from a dense offset table.
/// Built once by the system at construction; the serde-facing
/// [`Program`] is unchanged.
#[derive(Debug, Clone)]
pub struct FlatProgram {
    instrs: Vec<Instr>,
    /// `start[tb]..start[tb + 1]` is block `tb`'s instruction range.
    start: Vec<u32>,
    /// Per-block serving-request tag (resolved; never empty).
    request: Vec<RequestId>,
}

impl FlatProgram {
    pub fn new(p: &Program) -> Self {
        let total: usize = p.blocks.iter().map(|b| b.instrs.len()).sum();
        let mut instrs = Vec::with_capacity(total);
        let mut start = Vec::with_capacity(p.blocks.len() + 1);
        for b in &p.blocks {
            start.push(instrs.len() as u32);
            instrs.extend_from_slice(&b.instrs);
        }
        start.push(instrs.len() as u32);
        let request = (0..p.blocks.len()).map(|tb| p.request_of(tb)).collect();
        FlatProgram {
            instrs,
            start,
            request,
        }
    }

    /// Block `tb`'s instructions.
    #[inline]
    pub fn block(&self, tb: TbId) -> &[Instr] {
        &self.instrs[self.start[tb] as usize..self.start[tb + 1] as usize]
    }

    /// Serving request of block `tb`.
    #[inline]
    pub fn request_of(&self, tb: TbId) -> RequestId {
        self.request[tb]
    }
}

/// Identifier of a serving request (tenant) within a [`Program`].
///
/// Solo traces are request 0 throughout; multi-tenant mixes tag every
/// thread block with the request that produced it so the simulator can
/// attribute completion and LLC behavior per request.
pub type RequestId = u32;

/// A complete operator trace: thread blocks plus their initial
/// assignment to cores.
///
/// `assignment[i]` is the home core of block `i`; the runtime scheduler
/// may migrate blocks to other cores when their home core falls behind.
///
/// `request_tags[i]` / `arrivals[i]` tag block `i` with the serving
/// request it belongs to and the cycle at which that request arrives
/// (blocks are not schedulable before their arrival). Both vectors are
/// optional: empty means "one request, present from cycle 0" — the
/// solo-trace legacy encoding, byte-compatible with pre-mix programs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    pub blocks: Vec<ThreadBlock>,
    pub assignment: Vec<usize>,
    /// Per-block request id; empty = all blocks belong to request 0.
    #[serde(default)]
    pub request_tags: Vec<RequestId>,
    /// Per-block release cycle; empty = all blocks available at cycle 0.
    #[serde(default)]
    pub arrivals: Vec<Cycle>,
}

impl Program {
    pub fn new(blocks: Vec<ThreadBlock>, assignment: Vec<usize>) -> Self {
        assert_eq!(blocks.len(), assignment.len());
        Program {
            blocks,
            assignment,
            request_tags: Vec::new(),
            arrivals: Vec::new(),
        }
    }

    /// A fully tagged multi-tenant program. `request_tags` and
    /// `arrivals` must either match `blocks` in length or be empty
    /// (the solo defaults).
    pub fn with_requests(
        blocks: Vec<ThreadBlock>,
        assignment: Vec<usize>,
        request_tags: Vec<RequestId>,
        arrivals: Vec<Cycle>,
    ) -> Self {
        assert_eq!(blocks.len(), assignment.len());
        assert!(request_tags.is_empty() || request_tags.len() == blocks.len());
        assert!(arrivals.is_empty() || arrivals.len() == blocks.len());
        Program {
            blocks,
            assignment,
            request_tags,
            arrivals,
        }
    }

    /// Round-robin assignment of `blocks` over `num_cores` cores, in
    /// block order (consecutive blocks land on consecutive cores, which
    /// is what keeps GQA-sharing blocks temporally close).
    pub fn round_robin(blocks: Vec<ThreadBlock>, num_cores: usize) -> Self {
        let assignment = (0..blocks.len()).map(|i| i % num_cores).collect();
        Program::new(blocks, assignment)
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Request that thread block `tb` belongs to (0 for solo traces).
    #[inline]
    pub fn request_of(&self, tb: TbId) -> RequestId {
        self.request_tags.get(tb).copied().unwrap_or(0)
    }

    /// Cycle at which thread block `tb` becomes schedulable.
    #[inline]
    pub fn arrival_of(&self, tb: TbId) -> Cycle {
        self.arrivals.get(tb).copied().unwrap_or(0)
    }

    /// Number of requests in the trace: `max(tag) + 1`, or 1 for an
    /// untagged (solo) program.
    pub fn num_requests(&self) -> usize {
        self.request_tags
            .iter()
            .map(|&r| r as usize + 1)
            .max()
            .unwrap_or(1)
    }

    /// Thread blocks belonging to each request, indexed by request id.
    pub fn blocks_per_request(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_requests()];
        if self.request_tags.is_empty() {
            counts[0] = self.blocks.len() as u64;
        } else {
            for &r in &self.request_tags {
                counts[r as usize] += 1;
            }
        }
        counts
    }

    /// Arrival cycle of each request (the minimum arrival over its
    /// blocks; 0 for requests without blocks).
    pub fn request_arrivals(&self) -> Vec<Cycle> {
        let mut arrivals = vec![Cycle::MAX; self.num_requests()];
        for tb in 0..self.blocks.len() {
            let r = self.request_of(tb) as usize;
            arrivals[r] = arrivals[r].min(self.arrival_of(tb));
        }
        for a in arrivals.iter_mut() {
            if *a == Cycle::MAX {
                *a = 0;
            }
        }
        arrivals
    }

    /// Total bytes of load traffic in the program.
    pub fn total_load_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes_loaded()).sum()
    }

    /// Total bytes of store traffic in the program.
    pub fn total_store_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes_stored()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_accounting() {
        let tb = ThreadBlock {
            instrs: vec![
                Instr::Load {
                    addr: 0,
                    bytes: 128,
                },
                Instr::Compute { cycles: 4 },
                Instr::Load {
                    addr: 128,
                    bytes: 128,
                },
                Instr::Barrier,
                Instr::Store {
                    addr: 4096,
                    bytes: 64,
                },
            ],
        };
        assert_eq!(tb.num_loads(), 2);
        assert_eq!(tb.num_stores(), 1);
        assert_eq!(tb.bytes_loaded(), 256);
        assert_eq!(tb.bytes_stored(), 64);
    }

    #[test]
    fn round_robin_assignment() {
        let blocks = vec![ThreadBlock::default(); 5];
        let p = Program::round_robin(blocks, 2);
        assert_eq!(p.assignment, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn untagged_program_is_one_request_from_cycle_zero() {
        let p = Program::round_robin(vec![ThreadBlock::default(); 3], 2);
        assert_eq!(p.num_requests(), 1);
        assert_eq!(p.request_of(2), 0);
        assert_eq!(p.arrival_of(2), 0);
        assert_eq!(p.blocks_per_request(), vec![3]);
        assert_eq!(p.request_arrivals(), vec![0]);
    }

    #[test]
    fn tagged_program_tracks_requests_and_arrivals() {
        let p = Program::with_requests(
            vec![ThreadBlock::default(); 4],
            vec![0, 1, 0, 1],
            vec![0, 1, 1, 0],
            vec![0, 500, 500, 0],
        );
        assert_eq!(p.num_requests(), 2);
        assert_eq!(p.request_of(1), 1);
        assert_eq!(p.arrival_of(2), 500);
        assert_eq!(p.blocks_per_request(), vec![2, 2]);
        assert_eq!(p.request_arrivals(), vec![0, 500]);
    }

    #[test]
    fn tagged_serde_round_trip() {
        let p = Program::with_requests(
            vec![ThreadBlock::default(); 2],
            vec![0, 1],
            vec![0, 1],
            vec![0, 64],
        );
        let s = serde_json::to_string(&p).unwrap();
        let q: Program = serde_json::from_str(&s).unwrap();
        assert_eq!(q.request_tags, p.request_tags);
        assert_eq!(q.arrivals, p.arrivals);
    }

    #[test]
    fn legacy_json_without_tags_parses() {
        let legacy = r#"{"blocks": [{"instrs": []}], "assignment": [0]}"#;
        let p: Program = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.num_requests(), 1);
        assert!(p.request_tags.is_empty());
        assert!(p.arrivals.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let p = Program::round_robin(
            vec![ThreadBlock {
                instrs: vec![
                    Instr::Load {
                        addr: 64,
                        bytes: 64,
                    },
                    Instr::Barrier,
                ],
            }],
            1,
        );
        let s = serde_json::to_string(&p).unwrap();
        let q: Program = serde_json::from_str(&s).unwrap();
        assert_eq!(p.blocks, q.blocks);
        assert_eq!(p.assignment, q.assignment);
    }
}
