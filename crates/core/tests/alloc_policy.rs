//! Allocation-regression gate for the *policy* hot paths.
//!
//! `crates/sim/tests/alloc_regression.rs` pins the substrate's
//! zero-alloc steady state under FIFO + no throttling; this companion
//! covers the paths that configuration exercises nowhere — the MSHR
//! snapshot rebuild, the MSHR-aware arbiter's speculation machinery
//! (hit buffer, `sent_reqs`, candidate scratch, balanced tie-break)
//! and DynMg's sampling-period work — by running the headline
//! `dynmg+BMA` cell through the same counting-allocator window.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use llamcat::spec::PolicySpec;
use llamcat_sim::config::SystemConfig;
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::system::System;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Same fig7-shaped memory-bound decode program as the substrate gate.
fn fig7_shaped_program(cores: usize, blocks_per_core: usize, rows: usize) -> Program {
    let mut blocks = Vec::new();
    for b in 0..(cores * blocks_per_core) as u64 {
        let base = b * (rows as u64) * 128;
        let mut instrs = Vec::new();
        for r in 0..rows as u64 {
            instrs.push(Instr::Load {
                addr: base + r * 128,
                bytes: 128,
            });
            instrs.push(Instr::Compute { cycles: 1 });
        }
        instrs.push(Instr::Barrier);
        instrs.push(Instr::Store {
            addr: base,
            bytes: 64,
        });
        blocks.push(ThreadBlock { instrs });
    }
    Program::round_robin(blocks, cores)
}

#[test]
fn dynmg_bma_steady_state_ticks_are_allocation_free() {
    let mut cfg = SystemConfig::table5();
    cfg.dram.refresh = true;
    let program = fig7_shaped_program(cfg.num_cores, 24, 64);
    let spec = PolicySpec::dynmg_bma();
    let mut system = System::new(
        cfg,
        program,
        &|_| spec.arb.build_kind(),
        spec.throttle.build_kind(),
    );

    // Warm-up must span several DynMg sampling periods (default 6000
    // cycles) so the controller's scratch and the throttled machine's
    // queue shapes all reach steady state.
    for _ in 0..40_000 {
        system.tick();
    }
    assert!(!system.is_done(), "warm-up consumed the whole program");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..20_000 {
        system.tick();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(!system.is_done(), "window drained the program");
    assert_eq!(
        after - before,
        0,
        "dynmg+BMA steady-state ticks allocated {} times",
        after - before
    );
}
