//! Determinism regression tests.
//!
//! The simulator's contract (and the precondition for trusting the
//! rayon-parallel sweeps in `llamcat-bench`) is that identical
//! configuration and program yield *identical* results — not merely the
//! same cycle count, but byte-identical serialized statistics. These
//! tests run the same `Experiment` twice and compare the full
//! `SimStats` and `RunReport` serializations.

use llamcat::experiment::{Experiment, Model, Policy};
use llamcat::spec::MixSpec;
use llamcat_sim::system::StepMode;
use llamcat_trace::workloads::WorkloadSpec;

/// Runs one experiment twice per step mode and asserts byte-identical
/// results — within each mode (determinism) and across the two modes
/// (the fast-forward engine's observational-equivalence contract).
fn assert_deterministic(model: Model, seq_len: usize, policy: Policy) {
    let run = |mode| {
        Experiment::new(model, seq_len)
            .policy(policy)
            .step_mode(mode)
            .run()
    };
    let mut serialized = Vec::new();
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let a = run(mode);
        let b = run(mode);

        assert_eq!(
            a.cycles,
            b.cycles,
            "cycle count diverged for {} ({mode:?})",
            policy.label()
        );
        assert!(a.completed && b.completed);

        // Byte-identical full statistics: every counter in every component.
        let stats_a = serde_json::to_string(a.stats.as_ref().expect("stats recorded")).unwrap();
        let stats_b = serde_json::to_string(b.stats.as_ref().expect("stats recorded")).unwrap();
        assert_eq!(
            stats_a,
            stats_b,
            "SimStats serialization diverged for {} ({mode:?})",
            policy.label()
        );

        // And the derived report (hit rates, bandwidth, latencies).
        let report_a = serde_json::to_string(&a).unwrap();
        let report_b = serde_json::to_string(&b).unwrap();
        assert_eq!(
            report_a,
            report_b,
            "RunReport diverged for {} ({mode:?})",
            policy.label()
        );
        serialized.push((stats_a, report_a));
    }
    let (cycle, skip) = (&serialized[0], &serialized[1]);
    assert_eq!(
        cycle.0,
        skip.0,
        "SimStats diverged between step modes for {}",
        policy.label()
    );
    assert_eq!(
        cycle.1,
        skip.1,
        "RunReport diverged between step modes for {}",
        policy.label()
    );
}

#[test]
fn unoptimized_is_deterministic() {
    assert_deterministic(Model::Llama3_70b, 256, Policy::unoptimized());
}

#[test]
fn full_policy_stack_is_deterministic() {
    // dynmg+BMA exercises every mechanism at once: hit buffer,
    // sent_reqs FIFO, MSHR snapshot, two-level throttling.
    assert_deterministic(Model::Llama3_70b, 256, Policy::dynmg_bma());
}

#[test]
fn baselines_are_deterministic() {
    assert_deterministic(Model::Llama3_405b, 128, Policy::dyncta());
    assert_deterministic(Model::Llama3_405b, 128, Policy::dynmg_cobrra());
}

/// The mix analogue of [`assert_deterministic`]: identical mix, policy
/// and step mode ⇒ byte-identical `SimStats` (including the per-request
/// breakdowns) and `RunReport`, within each mode and across the modes.
fn assert_mix_deterministic(mix: &MixSpec, policy: Policy) {
    let run = |mode| {
        Experiment::from_mix_spec(mix)
            .expect("valid mix")
            .policy(policy)
            .step_mode(mode)
            .run()
    };
    let mut serialized = Vec::new();
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let a = run(mode);
        let b = run(mode);
        assert!(a.completed && b.completed);
        assert_eq!(a.requests.len(), b.requests.len());
        let stats_a = serde_json::to_string(a.stats.as_ref().unwrap()).unwrap();
        let stats_b = serde_json::to_string(b.stats.as_ref().unwrap()).unwrap();
        assert_eq!(stats_a, stats_b, "mix SimStats diverged within {mode:?}");
        let report_a = serde_json::to_string(&a).unwrap();
        let report_b = serde_json::to_string(&b).unwrap();
        assert_eq!(report_a, report_b, "mix RunReport diverged within {mode:?}");
        serialized.push((stats_a, report_a));
    }
    assert_eq!(
        serialized[0], serialized[1],
        "mix run diverged between step modes (per-request stats included)"
    );
}

#[test]
fn interleaved_mix_is_deterministic_in_both_modes() {
    let mix = MixSpec::interleaved()
        .request(WorkloadSpec::llama3_70b(), 128, 0)
        .request(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 4,
            },
            128,
            0,
        );
    assert_mix_deterministic(&mix, Policy::unoptimized());
    assert_mix_deterministic(&mix, Policy::dynmg_bma());
}

#[test]
fn staggered_partitioned_mix_is_deterministic_in_both_modes() {
    let mix = MixSpec::partitioned()
        .request(WorkloadSpec::llama3_70b(), 128, 0)
        .request(WorkloadSpec::llama3_70b(), 128, 20_000);
    assert_mix_deterministic(&mix, Policy::dynmg());
}
