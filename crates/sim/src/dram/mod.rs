//! DDR5 DRAM subsystem: address mapping, banks, channels.
//!
//! The organisation follows Table 5: 4 channels of DDR5-3200 with 4 ranks
//! of 8 Gb x16 devices. Each channel is modelled as a 32-bit subchannel
//! whose BL16 burst moves exactly one 64 B cache line, so peak bandwidth
//! is 12.8 GB/s per channel (51.2 GB/s system) — the envelope within
//! which the paper's MSHR-throughput bottleneck forms.

pub mod bank;
pub mod channel;
pub mod mapping;

pub use bank::DramCycle;
pub use channel::{Channel, ReadReturn};
pub use mapping::{AddressMapping, DramCoord, MappingScheme};

use crate::config::DramConfig;
use crate::stats::ChannelStats;
use crate::types::{Addr, SliceId};

/// The full multi-channel DRAM system.
///
/// The caller (the `System`) is responsible for clock-domain crossing:
/// it calls [`DramSystem::tick`] once per DRAM clock period.
#[derive(Clone)]
pub struct DramSystem {
    channels: Vec<Channel>,
    mapping: AddressMapping,
    returns_scratch: Vec<ReadReturn>,
}

impl DramSystem {
    pub fn new(cfg: DramConfig, scheme: MappingScheme) -> Self {
        let mapping = AddressMapping::new(&cfg, scheme);
        DramSystem {
            channels: (0..cfg.channels).map(|i| Channel::new(cfg, i)).collect(),
            mapping,
            returns_scratch: Vec::with_capacity(64),
        }
    }

    /// Channel index that will service `line_addr`.
    pub fn channel_of(&self, line_addr: Addr) -> usize {
        self.mapping.decode(line_addr).channel
    }

    /// Attempts to enqueue a fill read. Returns false when the channel
    /// read queue is full (the caller must retry later).
    pub fn enqueue_read(&mut self, line_addr: Addr, slice: SliceId) -> bool {
        let coord = self.mapping.decode(line_addr);
        self.channels[coord.channel].enqueue_read(line_addr, coord, slice)
    }

    /// Attempts to enqueue a write-back.
    pub fn enqueue_write(&mut self, line_addr: Addr) -> bool {
        let coord = self.mapping.decode(line_addr);
        self.channels[coord.channel].enqueue_write(line_addr, coord)
    }

    /// Whether the channel owning `line_addr` can accept a read now.
    pub fn can_accept_read(&self, line_addr: Addr) -> bool {
        self.channels[self.channel_of(line_addr)].can_accept_read()
    }

    /// Whether the channel owning `line_addr` can accept a write now.
    pub fn can_accept_write(&self, line_addr: Addr) -> bool {
        self.channels[self.channel_of(line_addr)].can_accept_write()
    }

    /// Advances every channel one DRAM cycle; returns completed reads.
    pub fn tick(&mut self) -> &[ReadReturn] {
        self.returns_scratch.clear();
        for ch in &mut self.channels {
            ch.tick(&mut self.returns_scratch);
        }
        &self.returns_scratch
    }

    /// True when all queues and pending returns are empty.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    /// Event bound for the fast-forward engine, in DRAM cycles: the
    /// earliest [`Channel::next_event`] over all channels (they share
    /// one command clock). `None` when every channel is drained and
    /// refresh-free.
    pub fn next_event(&self) -> Option<DramCycle> {
        self.channels.iter().filter_map(|c| c.next_event()).min()
    }

    /// Fast-forwards all channels `ticks` pure-clock-advance DRAM
    /// cycles (validated against [`DramSystem::next_event`] by the
    /// caller).
    pub fn skip(&mut self, ticks: DramCycle) {
        if ticks == 0 {
            return;
        }
        for ch in &mut self.channels {
            ch.skip(ticks);
        }
    }

    /// Copies per-channel statistics out.
    pub fn stats(&self) -> Vec<ChannelStats> {
        self.channels.iter().map(|c| c.stats.clone()).collect()
    }

    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LINE_BYTES;

    #[test]
    fn reads_route_to_decoded_channel() {
        let mut cfg = DramConfig::table5();
        cfg.refresh = false;
        let mut d = DramSystem::new(cfg, MappingScheme::RoBaRaCoCh);
        for line in 0..8u64 {
            let addr = line * LINE_BYTES;
            assert_eq!(d.channel_of(addr), (line % 4) as usize);
            assert!(d.enqueue_read(addr, 0));
        }
        let mut got = Vec::new();
        for _ in 0..2000 {
            got.extend_from_slice(d.tick());
            if got.len() == 8 {
                break;
            }
        }
        assert_eq!(got.len(), 8);
        assert!(d.is_idle());
    }

    #[test]
    fn four_channels_run_in_parallel() {
        let mut cfg = DramConfig::table5();
        cfg.refresh = false;
        let mut d = DramSystem::new(cfg, MappingScheme::RoBaRaCoCh);
        // One read per channel: total completion time should be about the
        // single-read latency, not 4x it.
        for line in 0..4u64 {
            assert!(d.enqueue_read(line * LINE_BYTES, 0));
        }
        let mut cycles = 0;
        let mut got = 0;
        while got < 4 {
            got += d.tick().len();
            cycles += 1;
            assert!(cycles < 500);
        }
        let t = cfg.timing;
        let single = 1 + t.trcd + t.cl + t.tbl + 2;
        assert!(
            cycles as u64 <= single + 4,
            "parallel channels took {cycles} cycles vs single {single}"
        );
    }
}
