//! Fig 9 (a)/(b): throttling and arbitration policies under cache-size
//! pressure — 32K sequences with L2 of 16 / 32 / 64 MB, normalized
//! against the unoptimized configuration at 32 MB.
//!
//! One [`Campaign`] per model: the L2-capacity axis crossed with the
//! policy set (unoptimized swept alongside, since the figure's
//! reference point is a *specific cell* — unoptimized @ 32 MB — rather
//! than a per-scenario baseline).

use llamcat::experiment::Model;
use llamcat::spec::PolicySpec;
use llamcat_bench::{fig9_policies, print_speedup_table, scale_divisor, scale_label, Campaign};

fn main() {
    let seq = 32768 / scale_divisor();
    let sizes = [16u64, 32, 64];
    println!(
        "# Fig 9 — cache-size sweep @ {}K (scale: {})",
        seq / 1024,
        scale_label()
    );

    for model in [Model::Llama3_70b, Model::Llama3_405b] {
        let mut policies = vec![PolicySpec::unoptimized()];
        policies.extend(fig9_policies());
        let report = Campaign::new("fig9")
            .workload(model.spec())
            .seq_lens([seq])
            .l2_sizes_mb(sizes)
            .policies(policies)
            .run()
            .expect("fig9 campaign");

        // Reference cell: unoptimized (policy column 0) @ 32 MB.
        let unopt = report.policy_records(0);
        let ref_cycles = unopt
            .iter()
            .find(|r| r.cell.l2_mb == 32)
            .expect("32 MB scenario present")
            .report
            .cycles;

        let xlabels: Vec<String> = sizes.iter().map(|s| format!("{s}MB")).collect();
        let rows: Vec<(String, Vec<f64>)> = (0..report.campaign.policies.len())
            .map(|p| {
                let recs = report.policy_records(p);
                (
                    report.campaign.policies[p].label(),
                    recs.iter()
                        .map(|r| ref_cycles as f64 / r.report.cycles as f64)
                        .collect(),
                )
            })
            .collect();
        print_speedup_table(
            &format!("Fig 9 {} @ {}K", model.label(), seq / 1024),
            &xlabels,
            &rows,
            "normalized against unoptimized @ 32MB",
        );
    }
    println!(
        "\nPaper reference: @32MB dynmg+BMA reaches 1.50-1.66x (geomean \
         1.58x) over unoptimized and 1.18-1.35x (geomean 1.26x) over the \
         best baseline (dyncta); unoptimized degrades sharply at 16MB \
         while dynmg+BMA nearly saturates."
    );
}
