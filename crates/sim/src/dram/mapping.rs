//! Physical address to DRAM coordinate mapping.
//!
//! The mapping determines how a stream of line addresses spreads over
//! channels, banks and rows — and therefore how much bank-level
//! parallelism and row-buffer locality a workload sees. We implement the
//! two schemes most common in Ramulator-style simulators; the default
//! (`RoBaRaCoCh`) interleaves consecutive lines across channels first,
//! then across columns of an open row, which is what GPU-class memory
//! subsystems use for streaming bandwidth.

use serde::{Deserialize, Serialize};

use crate::config::DramConfig;
use crate::types::{Addr, LINE_BYTES};

/// Decoded DRAM coordinates of a line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    pub channel: usize,
    pub rank: usize,
    pub bank_group: usize,
    pub bank: usize,
    pub row: u64,
    pub column: u64,
}

impl DramCoord {
    /// Flat bank index within the channel (rank-major).
    pub fn flat_bank(&self, cfg: &DramConfig) -> usize {
        (self.rank * cfg.bank_groups + self.bank_group) * cfg.banks_per_group + self.bank
    }
}

/// Supported bit orderings (listed most-significant first, as is
/// conventional: e.g. `RoBaRaCoCh` = Row : Bank : Rank : Column : Channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MappingScheme {
    /// Row : Bank(group+bank) : Rank : Column : Channel.
    /// Channel bits lowest — consecutive lines stripe channels; a stream
    /// then walks columns of one open row per channel.
    #[default]
    RoBaRaCoCh,
    /// Row : Column(high) : Rank : Bank : Column(low=lines-in-burst-group) : Channel.
    /// Spreads consecutive row-sized chunks over banks for more BLP at the
    /// cost of shorter row bursts.
    RoCoRaBaCh,
}

/// Address mapper for a fixed [`DramConfig`].
#[derive(Debug, Clone, Copy)]
pub struct AddressMapping {
    scheme: MappingScheme,
    channels: usize,
    ranks: usize,
    bank_groups: usize,
    banks_per_group: usize,
    lines_per_row: u64,
}

impl AddressMapping {
    pub fn new(cfg: &DramConfig, scheme: MappingScheme) -> Self {
        assert!(cfg.channels.is_power_of_two());
        assert!(cfg.ranks.is_power_of_two());
        assert!(cfg.bank_groups.is_power_of_two());
        assert!(cfg.banks_per_group.is_power_of_two());
        let lines_per_row = cfg.row_bytes / LINE_BYTES;
        assert!(lines_per_row.is_power_of_two());
        AddressMapping {
            scheme,
            channels: cfg.channels,
            ranks: cfg.ranks,
            bank_groups: cfg.bank_groups,
            banks_per_group: cfg.banks_per_group,
            lines_per_row,
        }
    }

    /// Decodes a byte address (line-aligned or not) into DRAM coordinates.
    pub fn decode(&self, addr: Addr) -> DramCoord {
        let mut line = addr >> LINE_BYTES.trailing_zeros();
        let mut take = |n: u64| -> u64 {
            let v = line & (n - 1);
            line >>= n.trailing_zeros();
            v
        };
        match self.scheme {
            MappingScheme::RoBaRaCoCh => {
                let channel = take(self.channels as u64) as usize;
                let column = take(self.lines_per_row);
                let rank = take(self.ranks as u64) as usize;
                let bank = take(self.banks_per_group as u64) as usize;
                let bank_group = take(self.bank_groups as u64) as usize;
                let row = line;
                DramCoord {
                    channel,
                    rank,
                    bank_group,
                    bank,
                    row,
                    column,
                }
            }
            MappingScheme::RoCoRaBaCh => {
                let channel = take(self.channels as u64) as usize;
                // Keep 4 lines (256 B) contiguous per bank before hopping.
                let col_low = take(4.min(self.lines_per_row));
                let bank = take(self.banks_per_group as u64) as usize;
                let bank_group = take(self.bank_groups as u64) as usize;
                let rank = take(self.ranks as u64) as usize;
                let col_high = take(self.lines_per_row / 4.min(self.lines_per_row));
                let row = line;
                DramCoord {
                    channel,
                    rank,
                    bank_group,
                    bank,
                    row,
                    column: col_high * 4.min(self.lines_per_row) + col_low,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(&DramConfig::table5(), MappingScheme::RoBaRaCoCh)
    }

    #[test]
    fn consecutive_lines_stripe_channels() {
        let m = mapping();
        let coords: Vec<_> = (0..8u64).map(|i| m.decode(i * LINE_BYTES)).collect();
        assert_eq!(
            coords.iter().map(|c| c.channel).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 0, 1, 2, 3]
        );
        // Lines 0 and 4 land in the same channel, consecutive columns.
        assert_eq!(coords[0].column + 1, coords[4].column);
        assert_eq!(coords[0].row, coords[4].row);
    }

    #[test]
    fn row_advances_after_all_columns() {
        let cfg = DramConfig::table5();
        let m = mapping();
        // One row holds 32 lines. Within one channel, after
        // lines_per_row lines the rank bit flips (Co is below Ra), and
        // the row advances only after exhausting rank/bank/bank-group
        // bits.
        let lines_per_row = cfg.row_bytes / LINE_BYTES;
        let a = m.decode(0);
        let b = m.decode(lines_per_row * 4 * LINE_BYTES); // same channel 0
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.row, b.row);
        assert_ne!(
            (a.rank, a.bank_group, a.bank),
            (b.rank, b.bank_group, b.bank)
        );
    }

    #[test]
    fn decode_is_injective_over_a_window() {
        let m = mapping();
        let mut seen = std::collections::HashSet::new();
        for i in 0..(1u64 << 14) {
            let c = m.decode(i * LINE_BYTES);
            assert!(
                seen.insert((c.channel, c.rank, c.bank_group, c.bank, c.row, c.column)),
                "duplicate coordinate for line {i}"
            );
        }
    }

    #[test]
    fn flat_bank_is_dense() {
        let cfg = DramConfig::table5();
        let m = mapping();
        let mut banks = std::collections::HashSet::new();
        for i in 0..(1u64 << 14) {
            let c = m.decode(i * LINE_BYTES);
            let fb = c.flat_bank(&cfg);
            assert!(fb < cfg.banks_per_channel());
            banks.insert(fb);
        }
        assert_eq!(banks.len(), cfg.banks_per_channel());
    }

    #[test]
    fn alternative_scheme_spreads_banks_sooner() {
        let cfg = DramConfig::table5();
        let m = AddressMapping::new(&cfg, MappingScheme::RoCoRaBaCh);
        // Lines 0, 4, 8... in channel 0 (stride 4 lines = one per channel
        // group). After 4 contiguous lines per bank, the bank changes.
        let a = m.decode(0);
        let b = m.decode(16 * LINE_BYTES); // line 16 = channel 0, col_low wrapped
        assert_eq!(a.channel, b.channel);
        assert_ne!(a.flat_bank(&cfg), b.flat_bank(&cfg));
    }
}
