//! Policies as data: the serde-round-trippable [`PolicySpec`] and the
//! registry of canonical policy names.
//!
//! The seed API kept policy construction closed: `ArbPolicy` /
//! `ThrottlePolicy` hid their `build()` methods, and DynMg tuning
//! leaked in through `LLAMCAT_DYNMG_*` environment variables. This
//! module makes the policy layer open and declarative:
//!
//! * [`ArbSpec`] / [`ThrottleSpec`] — one variant per policy family,
//!   with the family's *configuration embedded in the spec* (DynMg's
//!   Tables 1–4 parameters, DYNCTA's thresholds). A spec serializes to
//!   JSON and back losslessly, so policies and their parameters travel
//!   as data — through campaign files, over the wire, into JSONL logs.
//! * [`PolicySpec`] — an (arbitration, throttling) pair with the
//!   paper's figure labels, public factories for every named point, and
//!   [`PolicySpec::build_arbiter`] / [`PolicySpec::build_throttle`] as
//!   the *only* construction path the experiment layer uses.
//! * [`PolicySpec::registry_names`] / [`PolicySpec::from_name`] — the
//!   stable-name registry ("dynmg+BMA", "cobrra", …) mapping the labels
//!   pinned by the paper's figures (and `tests/golden.rs`) to specs
//!   with default configurations. Compositional names assemble the rest
//!   of the 5 × 4 matrix: `"<throttle>+<arb>"`, e.g. `"dyncta+B"`.
//!
//! The `LLAMCAT_DYNMG_PERIOD` / `LLAMCAT_DYNMG_SUB` environment
//! variables are gone: embed a [`DynMgConfig`] via
//! [`PolicySpec::dynmg_with`] instead.

use llamcat_sim::arb::{FifoArbiter, NoThrottle, RequestArbiter, ThrottleController};
use llamcat_sim::kv::{KvEviction, KvTierConfig};
use llamcat_sim::serve::ServePolicy;
use llamcat_sim::types::Cycle;
pub use llamcat_trace::arrivals::ArrivalSpec;
use llamcat_trace::mix::{MixAssignment, WorkloadMix};
use llamcat_trace::workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::arbiter::{
    ArbiterKind, BalancedArbiter, CobrraArbiter, MshrAwareArbiter, PrefixAwareArbiter,
};
use crate::throttle::{DynMg, DynMgConfig, Dyncta, DynctaConfig, Lcs, ThrottleKind};

/// Request-arbitration policy with its configuration embedded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArbSpec {
    /// Default FIFO (unoptimized).
    Fifo,
    /// Balanced ("B").
    Balanced,
    /// MSHR-aware with FIFO tie-break ("MA").
    MshrAware,
    /// MSHR-aware with balanced tie-break ("BMA").
    BalancedMshrAware,
    /// COBRRA baseline.
    Cobrra,
    /// Prefix-cache-aware ("PFA"): deprioritize tenants whose KV blocks
    /// are mid-promotion from the slow tier (no-op without a [`KvSpec`]).
    PrefixAware,
}

impl ArbSpec {
    /// Figure-style component label.
    pub fn label(&self) -> &'static str {
        match self {
            ArbSpec::Fifo => "fifo",
            ArbSpec::Balanced => "B",
            ArbSpec::MshrAware => "MA",
            ArbSpec::BalancedMshrAware => "BMA",
            ArbSpec::Cobrra => "cobrra",
            ArbSpec::PrefixAware => "PFA",
        }
    }

    /// Instantiates the arbiter for one LLC slice (type-erased; the
    /// hot path uses [`ArbSpec::build_kind`]).
    pub fn build(&self) -> Box<dyn RequestArbiter> {
        match self {
            ArbSpec::Fifo => Box::new(FifoArbiter),
            ArbSpec::Balanced => Box::new(BalancedArbiter),
            ArbSpec::MshrAware => Box::new(MshrAwareArbiter::ma()),
            ArbSpec::BalancedMshrAware => Box::new(MshrAwareArbiter::bma()),
            ArbSpec::Cobrra => Box::new(CobrraArbiter::new()),
            ArbSpec::PrefixAware => Box::new(PrefixAwareArbiter),
        }
    }

    /// Instantiates the arbiter as the closed-world [`ArbiterKind`]
    /// enum — the monomorphized construction path the experiment layer
    /// uses so the simulator tick loop is free of virtual dispatch.
    pub fn build_kind(&self) -> ArbiterKind {
        match self {
            ArbSpec::Fifo => ArbiterKind::Fifo(FifoArbiter),
            ArbSpec::Balanced => ArbiterKind::Balanced(BalancedArbiter),
            ArbSpec::MshrAware => ArbiterKind::MshrAware(MshrAwareArbiter::ma()),
            ArbSpec::BalancedMshrAware => ArbiterKind::MshrAware(MshrAwareArbiter::bma()),
            ArbSpec::Cobrra => ArbiterKind::Cobrra(CobrraArbiter::new()),
            ArbSpec::PrefixAware => ArbiterKind::PrefixAware(PrefixAwareArbiter),
        }
    }

    /// Resolves a component name (`"B"`, `"cobrra"`, …).
    pub fn from_name(name: &str) -> Option<ArbSpec> {
        Some(match name {
            "fifo" => ArbSpec::Fifo,
            "B" => ArbSpec::Balanced,
            "MA" => ArbSpec::MshrAware,
            "BMA" => ArbSpec::BalancedMshrAware,
            "cobrra" => ArbSpec::Cobrra,
            "PFA" => ArbSpec::PrefixAware,
            _ => return None,
        })
    }
}

/// Thread-throttling policy with its configuration embedded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThrottleSpec {
    /// No throttling (unoptimized).
    None,
    /// DYNCTA baseline.
    Dyncta { config: DynctaConfig },
    /// LCS baseline.
    Lcs,
    /// The paper's two-level dynamic multi-gear controller.
    DynMg { config: DynMgConfig },
}

impl ThrottleSpec {
    /// DYNCTA with the re-swept default thresholds.
    pub fn dyncta() -> Self {
        ThrottleSpec::Dyncta {
            config: DynctaConfig::default(),
        }
    }

    /// DynMg with the re-swept Table 2–4 defaults.
    pub fn dynmg() -> Self {
        ThrottleSpec::DynMg {
            config: DynMgConfig::default(),
        }
    }

    /// Figure-style component label.
    pub fn label(&self) -> &'static str {
        match self {
            ThrottleSpec::None => "none",
            ThrottleSpec::Dyncta { .. } => "dyncta",
            ThrottleSpec::Lcs => "lcs",
            ThrottleSpec::DynMg { .. } => "dynmg",
        }
    }

    /// Instantiates the throttle controller (type-erased; the hot path
    /// uses [`ThrottleSpec::build_kind`]).
    pub fn build(&self) -> Box<dyn ThrottleController> {
        match self {
            ThrottleSpec::None => Box::new(NoThrottle),
            ThrottleSpec::Dyncta { config } => Box::new(Dyncta::new(*config)),
            ThrottleSpec::Lcs => Box::new(Lcs::new()),
            ThrottleSpec::DynMg { config } => Box::new(DynMg::new(config.clone())),
        }
    }

    /// Instantiates the controller as the closed-world
    /// [`ThrottleKind`] enum (see [`ArbSpec::build_kind`]).
    pub fn build_kind(&self) -> ThrottleKind {
        match self {
            ThrottleSpec::None => ThrottleKind::None(NoThrottle),
            ThrottleSpec::Dyncta { config } => ThrottleKind::Dyncta(Dyncta::new(*config)),
            ThrottleSpec::Lcs => ThrottleKind::Lcs(Lcs::new()),
            ThrottleSpec::DynMg { config } => ThrottleKind::DynMg(DynMg::new(config.clone())),
        }
    }

    /// Resolves a component name (`"dynmg"`, `"lcs"`, …) with default
    /// configuration.
    pub fn from_name(name: &str) -> Option<ThrottleSpec> {
        Some(match name {
            "none" => ThrottleSpec::None,
            "dyncta" => ThrottleSpec::dyncta(),
            "lcs" => ThrottleSpec::Lcs,
            "dynmg" => ThrottleSpec::dynmg(),
            _ => return None,
        })
    }
}

/// A complete policy — arbitration and throttling with their
/// configurations — as serializable data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySpec {
    pub arb: ArbSpec,
    pub throttle: ThrottleSpec,
}

/// One registry entry: a canonical name and the factory producing its
/// default-configured spec.
pub type RegistryEntry = (&'static str, fn() -> PolicySpec);

/// The canonical names of the paper's figures, in ladder order. Each
/// resolves through [`PolicySpec::from_name`] to a spec whose
/// [`PolicySpec::label`] round-trips to the same name.
pub const REGISTRY: &[RegistryEntry] = &[
    ("unoptimized", PolicySpec::unoptimized),
    ("dyncta", PolicySpec::dyncta),
    ("lcs", PolicySpec::lcs),
    ("cobrra", PolicySpec::cobrra),
    ("dynmg", PolicySpec::dynmg),
    ("dynmg+B", PolicySpec::dynmg_b),
    ("dynmg+MA", PolicySpec::dynmg_ma),
    ("dynmg+BMA", PolicySpec::dynmg_bma),
    ("dynmg+cobrra", PolicySpec::dynmg_cobrra),
];

impl PolicySpec {
    pub fn new(arb: ArbSpec, throttle: ThrottleSpec) -> Self {
        PolicySpec { arb, throttle }
    }

    /// The unoptimized baseline (FIFO, no throttling).
    pub fn unoptimized() -> Self {
        PolicySpec::new(ArbSpec::Fifo, ThrottleSpec::None)
    }

    pub fn dyncta() -> Self {
        PolicySpec::new(ArbSpec::Fifo, ThrottleSpec::dyncta())
    }

    pub fn lcs() -> Self {
        PolicySpec::new(ArbSpec::Fifo, ThrottleSpec::Lcs)
    }

    pub fn cobrra() -> Self {
        PolicySpec::new(ArbSpec::Cobrra, ThrottleSpec::None)
    }

    pub fn dynmg() -> Self {
        PolicySpec::new(ArbSpec::Fifo, ThrottleSpec::dynmg())
    }

    pub fn dynmg_b() -> Self {
        PolicySpec::new(ArbSpec::Balanced, ThrottleSpec::dynmg())
    }

    pub fn dynmg_ma() -> Self {
        PolicySpec::new(ArbSpec::MshrAware, ThrottleSpec::dynmg())
    }

    /// The paper's final policy.
    pub fn dynmg_bma() -> Self {
        PolicySpec::new(ArbSpec::BalancedMshrAware, ThrottleSpec::dynmg())
    }

    pub fn dynmg_cobrra() -> Self {
        PolicySpec::new(ArbSpec::Cobrra, ThrottleSpec::dynmg())
    }

    /// DynMg with an explicit configuration (replaces the removed
    /// `LLAMCAT_DYNMG_*` environment variables).
    pub fn dynmg_with(config: DynMgConfig) -> Self {
        PolicySpec::new(ArbSpec::Fifo, ThrottleSpec::DynMg { config })
    }

    /// Figure-style label, e.g. `"dynmg+BMA"`. Labels identify the
    /// policy *family*; embedded configurations do not change them.
    pub fn label(&self) -> String {
        match (&self.throttle, &self.arb) {
            (ThrottleSpec::None, ArbSpec::Fifo) => "unoptimized".to_string(),
            (ThrottleSpec::None, arb) => arb.label().to_string(),
            (thr, ArbSpec::Fifo) => thr.label().to_string(),
            (thr, arb) => format!("{}+{}", thr.label(), arb.label()),
        }
    }

    /// The registry's canonical names, in ladder order.
    pub fn registry_names() -> Vec<&'static str> {
        REGISTRY.iter().map(|(name, _)| *name).collect()
    }

    /// Resolves a stable name to a spec with default configurations.
    ///
    /// Canonical registry names resolve first; any other cell of the
    /// policy matrix is reachable compositionally as
    /// `"<throttle>+<arb>"` (e.g. `"dyncta+B"`), a bare arbitration
    /// name (`"B"`), or a bare throttle name.
    pub fn from_name(name: &str) -> Option<PolicySpec> {
        if let Some((_, ctor)) = REGISTRY.iter().find(|(n, _)| *n == name) {
            return Some(ctor());
        }
        if let Some((thr, arb)) = name.split_once('+') {
            return Some(PolicySpec::new(
                ArbSpec::from_name(arb)?,
                ThrottleSpec::from_name(thr)?,
            ));
        }
        if let Some(arb) = ArbSpec::from_name(name) {
            return Some(PolicySpec::new(arb, ThrottleSpec::None));
        }
        ThrottleSpec::from_name(name).map(|thr| PolicySpec::new(ArbSpec::Fifo, thr))
    }

    /// Instantiates the arbiter for one LLC slice.
    pub fn build_arbiter(&self) -> Box<dyn RequestArbiter> {
        self.arb.build()
    }

    /// Instantiates the throttle controller.
    pub fn build_throttle(&self) -> Box<dyn ThrottleController> {
        self.throttle.build()
    }

    /// Instantiates both policies as closed-world enums for the
    /// monomorphized `System<ArbiterKind, ThrottleKind>` hot path.
    pub fn build_kinds(&self) -> (ArbiterKind, ThrottleKind) {
        (self.arb.build_kind(), self.throttle.build_kind())
    }
}

/// Slow-tier (second tier) parameters of a [`KvSpec`]; the default is
/// the CXL-class tier of [`KvTierConfig::cxl`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvSlowTierSpec {
    /// KV block size in bytes (promotion granularity).
    pub block_bytes: u64,
    /// Slow-tier access latency in core cycles.
    pub latency: Cycle,
    /// Slow-tier link bandwidth in bytes per core cycle.
    pub bytes_per_cycle: u64,
    /// Bound on concurrent in-flight promotions.
    pub max_inflight: usize,
}

impl Default for KvSlowTierSpec {
    fn default() -> Self {
        let cxl = KvTierConfig::cxl(1, KvEviction::Lru);
        KvSlowTierSpec {
            block_bytes: cxl.block_bytes,
            latency: cxl.slow_latency,
            bytes_per_cycle: cxl.slow_bytes_per_cycle,
            max_inflight: cxl.max_inflight,
        }
    }
}

/// A tiered KV store as data: the serde counterpart of
/// [`KvTierConfig`], usable as a fourth policy axis (beside
/// arbitration x throttling x serving) of an experiment or campaign.
/// Eviction and the slow tier default to LRU over a CXL-class second
/// tier, so a hand-written doc only needs
/// `{"warm_capacity_blocks": 256}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvSpec {
    /// Warm-tier capacity in KV blocks.
    pub warm_capacity_blocks: usize,
    /// Eviction policy ([`KvEviction::Lru`] is the serde default).
    #[serde(default)]
    pub eviction: KvEviction,
    /// Second-tier latency/bandwidth model (CXL-class serde default).
    #[serde(default)]
    pub slow: KvSlowTierSpec,
}

impl KvSpec {
    /// A CXL-class tier with LRU eviction.
    pub fn lru(warm_capacity_blocks: usize) -> Self {
        KvSpec {
            warm_capacity_blocks,
            eviction: KvEviction::Lru,
            slow: KvSlowTierSpec::default(),
        }
    }

    /// A CXL-class tier that pins shared-prefix blocks.
    pub fn prefix_pin(warm_capacity_blocks: usize) -> Self {
        KvSpec {
            eviction: KvEviction::PrefixPin,
            ..KvSpec::lru(warm_capacity_blocks)
        }
    }

    /// The simulator-side configuration.
    pub fn to_config(&self) -> KvTierConfig {
        KvTierConfig {
            warm_capacity_blocks: self.warm_capacity_blocks,
            block_bytes: self.slow.block_bytes,
            slow_latency: self.slow.latency,
            slow_bytes_per_cycle: self.slow.bytes_per_cycle,
            max_inflight: self.slow.max_inflight,
            eviction: self.eviction,
        }
    }

    /// Rejects degenerate tiers (zero capacity, zero-byte blocks, …).
    pub fn validate(&self) -> Result<(), String> {
        self.to_config().validate()
    }

    /// Stable label, e.g. `kv:pin@256`.
    pub fn label(&self) -> String {
        let ev = match self.eviction {
            KvEviction::Lru => "lru",
            KvEviction::PrefixPin => "pin",
        };
        format!("kv:{ev}@{}", self.warm_capacity_blocks)
    }
}

/// One request of a serde-round-trippable serving mix: a workload
/// family instantiated at one sequence length, optionally arriving
/// mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSpec {
    pub workload: WorkloadSpec,
    pub seq_len: usize,
    /// Cycle at which the request arrives (0 = present from the start).
    #[serde(default)]
    pub arrival: Cycle,
    /// Serving priority class (higher = more urgent; 0 = best-effort,
    /// the serde default).
    #[serde(default)]
    pub class: u8,
}

impl RequestSpec {
    /// A request present from cycle 0.
    pub fn new(workload: WorkloadSpec, seq_len: usize) -> Self {
        RequestSpec {
            workload,
            seq_len,
            arrival: 0,
            class: 0,
        }
    }

    /// Staggers the request's arrival.
    pub fn arriving_at(mut self, cycle: Cycle) -> Self {
        self.arrival = cycle;
        self
    }

    /// Assigns a priority class.
    pub fn with_class(mut self, class: u8) -> Self {
        self.class = class;
        self
    }
}

/// A multi-tenant serving mix as data: the serde counterpart of
/// [`WorkloadMix`], usable as a
/// campaign scenario axis next to solo workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixSpec {
    pub requests: Vec<RequestSpec>,
    /// Core-assignment discipline ([`MixAssignment::Partitioned`] is
    /// the serde default).
    #[serde(default)]
    pub assignment: MixAssignment,
}

impl MixSpec {
    /// An empty partitioned mix; populate with [`MixSpec::request`].
    pub fn partitioned() -> Self {
        MixSpec {
            requests: Vec::new(),
            assignment: MixAssignment::Partitioned,
        }
    }

    /// An empty interleaved mix; populate with [`MixSpec::request`].
    pub fn interleaved() -> Self {
        MixSpec {
            requests: Vec::new(),
            assignment: MixAssignment::Interleaved,
        }
    }

    /// Adds a best-effort (class 0) request to the mix.
    pub fn request(mut self, workload: WorkloadSpec, seq_len: usize, arrival: Cycle) -> Self {
        self.requests.push(RequestSpec {
            workload,
            seq_len,
            arrival,
            class: 0,
        });
        self
    }

    /// Rejects degenerate mixes: zero requests, a zero sequence length,
    /// or an invalid workload family.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests.is_empty() {
            return Err("mix has no requests".into());
        }
        for (i, r) in self.requests.iter().enumerate() {
            if r.seq_len == 0 {
                return Err(format!("mix request {i}: zero seq_len"));
            }
            r.workload
                .validate()
                .map_err(|e| format!("mix request {i}: {e}"))?;
        }
        self.instantiate().validate()
    }

    /// Builds the runnable [`WorkloadMix`].
    pub fn instantiate(&self) -> WorkloadMix {
        let mut mix = WorkloadMix::new(self.assignment);
        for r in &self.requests {
            mix = mix.classed_request(r.workload.instantiate(r.seq_len), r.arrival, r.class);
        }
        mix
    }

    /// The label the instantiated mix reports (stable; carries every
    /// request's family, sequence length and staggered arrival).
    pub fn label(&self) -> String {
        self.instantiate().label()
    }
}

/// Serving-scheduler admission policy as serde data — the third policy
/// axis (beside arbitration x throttling) of an open-system run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ServePolicySpec {
    /// Admit every request the cycle it arrives.
    #[default]
    Fcfs,
    /// FCFS admission capped at `max` requests in flight.
    MaxConcurrency { max: usize },
    /// Continuous batching over `slots` contiguous core groups: a
    /// completion immediately hands the freed group to the next queued
    /// request.
    ContinuousBatching { slots: usize },
    /// Continuous batching with overload admission control: an arrival
    /// that finds `depth` requests already waiting is terminally
    /// rejected (reported, not silently stalled).
    RejectAboveQueue { slots: usize, depth: usize },
    /// Continuous batching that sheds queued requests whose waiting age
    /// has already blown the TTFT deadline — they could no longer meet
    /// the SLO, so serving them only hurts goodput.
    DeadlineDrop { slots: usize, ttft_deadline: Cycle },
    /// Class-priority continuous batching: a higher-class arrival
    /// preempts the lowest-class running request by withdrawing its
    /// *unissued* blocks back to the admission queue (no mid-block
    /// rollback; the victim re-admits later and resumes its remainder).
    PriorityPreempt { slots: usize },
}

impl ServePolicySpec {
    /// Stable name (labels, JSONL).
    pub fn label(&self) -> String {
        self.to_sim().label()
    }

    /// The simulator-side policy.
    pub fn to_sim(&self) -> ServePolicy {
        match *self {
            ServePolicySpec::Fcfs => ServePolicy::Fcfs,
            ServePolicySpec::MaxConcurrency { max } => ServePolicy::MaxConcurrency { max },
            ServePolicySpec::ContinuousBatching { slots } => {
                ServePolicy::ContinuousBatching { slots }
            }
            ServePolicySpec::RejectAboveQueue { slots, depth } => {
                ServePolicy::RejectAboveQueue { slots, depth }
            }
            ServePolicySpec::DeadlineDrop {
                slots,
                ttft_deadline,
            } => ServePolicy::DeadlineDrop {
                slots,
                ttft_deadline,
            },
            ServePolicySpec::PriorityPreempt { slots } => ServePolicy::PriorityPreempt { slots },
        }
    }

    /// The slot count of a slot-partitioned (continuous-batching
    /// family) policy, `None` for whole-machine admission.
    fn slots(&self) -> Option<usize> {
        match *self {
            ServePolicySpec::Fcfs | ServePolicySpec::MaxConcurrency { .. } => None,
            ServePolicySpec::ContinuousBatching { slots }
            | ServePolicySpec::RejectAboveQueue { slots, .. }
            | ServePolicySpec::DeadlineDrop { slots, .. }
            | ServePolicySpec::PriorityPreempt { slots } => Some(slots),
        }
    }
}

/// A serving-level objective: deadlines a request must meet to count
/// toward *goodput* (SLO-met completions per Mcycle) rather than raw
/// throughput. Deadlines are in core cycles; convert from wall time
/// with the config's frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloSpec {
    /// TTFT deadline: arrival to first retired block, inclusive
    /// (matches `RequestStats::ttft`), queueing delay included.
    pub ttft_deadline: Cycle,
    /// Optional mean time-between-tokens deadline (cycles per block
    /// after the first); `None` judges TTFT only.
    #[serde(default)]
    pub tbt_deadline: Option<Cycle>,
}

impl SloSpec {
    /// A TTFT-only SLO.
    pub fn ttft(ttft_deadline: Cycle) -> Self {
        SloSpec {
            ttft_deadline,
            tbt_deadline: None,
        }
    }

    /// Adds a mean-TBT deadline.
    pub fn tbt(mut self, tbt_deadline: Cycle) -> Self {
        self.tbt_deadline = Some(tbt_deadline);
        self
    }

    /// Rejects degenerate deadlines (0 cycles can never be met).
    pub fn validate(&self) -> Result<(), String> {
        if self.ttft_deadline == 0 {
            return Err("slo: ttft_deadline must be >= 1".into());
        }
        if self.tbt_deadline == Some(0) {
            return Err("slo: tbt_deadline must be >= 1".into());
        }
        Ok(())
    }

    /// Stable name (labels, JSONL), e.g. `t50000` or `t50000b2000`.
    pub fn label(&self) -> String {
        match self.tbt_deadline {
            Some(b) => format!("t{}b{b}", self.ttft_deadline),
            None => format!("t{}", self.ttft_deadline),
        }
    }
}

/// An open-system serving scenario as data: `num_requests` copies of
/// one workload family, arrival cycles drawn from a seeded
/// [`ArrivalSpec`], admitted mid-run by a [`ServePolicySpec`]. The
/// serde counterpart of the simulator's request injector, usable as a
/// campaign scenario axis next to solo workloads and closed mixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSpec {
    pub workload: WorkloadSpec,
    pub seq_len: usize,
    pub num_requests: usize,
    pub arrivals: ArrivalSpec,
    /// Admission policy ([`ServePolicySpec::Fcfs`] is the serde
    /// default).
    #[serde(default)]
    pub scheduler: ServePolicySpec,
    /// Serving objective: when set, per-request SLO outcomes and
    /// goodput are reported beside the raw latency percentiles.
    #[serde(default)]
    pub slo: Option<SloSpec>,
    /// Per-request priority classes (higher = more urgent), indexed by
    /// request id; shorter-than-`num_requests` vectors pad with class
    /// 0. Only [`ServePolicySpec::PriorityPreempt`] acts on classes,
    /// but they are reported under every policy.
    #[serde(default)]
    pub classes: Vec<u8>,
}

impl ServeSpec {
    /// An FCFS serve scenario; override the scheduler with
    /// [`ServeSpec::scheduler`].
    pub fn new(
        workload: WorkloadSpec,
        seq_len: usize,
        num_requests: usize,
        arrivals: ArrivalSpec,
    ) -> Self {
        ServeSpec {
            workload,
            seq_len,
            num_requests,
            arrivals,
            scheduler: ServePolicySpec::Fcfs,
            slo: None,
            classes: Vec::new(),
        }
    }

    /// Sets the admission policy.
    pub fn scheduler(mut self, scheduler: ServePolicySpec) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the serving objective.
    pub fn slo(mut self, slo: SloSpec) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Sets per-request priority classes (see [`ServeSpec::classes`]).
    pub fn classes(mut self, classes: Vec<u8>) -> Self {
        self.classes = classes;
        self
    }

    /// The per-request class vector padded to `num_requests` (class 0
    /// for requests beyond the configured prefix).
    pub fn padded_classes(&self) -> Vec<u8> {
        let mut c = self.classes.clone();
        c.resize(self.num_requests, 0);
        c
    }

    /// Relative home-core range each request's trace is generated on,
    /// for a machine of `num_cores` cores: the full machine for
    /// FCFS/max-concurrency, one slot's group for the
    /// continuous-batching family.
    pub fn cores_per_request(&self, num_cores: usize) -> usize {
        match self.scheduler.slots() {
            Some(slots) if slots > 0 => (num_cores / slots).max(1),
            _ => num_cores,
        }
    }

    /// Rejects degenerate scenarios: zero requests, zero seq_len, an
    /// invalid workload family, arrival schedule or scheduler shape.
    pub fn validate(&self, num_cores: usize) -> Result<(), String> {
        if self.num_requests == 0 {
            return Err("serve scenario has no requests".into());
        }
        if self.seq_len == 0 {
            return Err("serve scenario: zero seq_len".into());
        }
        self.workload
            .validate()
            .map_err(|e| format!("serve scenario: {e}"))?;
        self.arrivals.validate(self.num_requests)?;
        if let Some(slo) = &self.slo {
            slo.validate().map_err(|e| format!("serve scenario: {e}"))?;
        }
        if self.classes.len() > self.num_requests {
            return Err(format!(
                "serve scenario: {} classes for {} requests",
                self.classes.len(),
                self.num_requests
            ));
        }
        if let ServePolicySpec::DeadlineDrop {
            ttft_deadline: 0, ..
        } = self.scheduler
        {
            return Err("serve scenario: deadline-drop needs ttft_deadline >= 1".into());
        }
        match self.scheduler {
            ServePolicySpec::MaxConcurrency { max: 0 } => {
                Err("serve scenario: max-concurrency needs max >= 1".into())
            }
            _ => match self.scheduler.slots() {
                Some(slots) if slots == 0 || slots > num_cores => Err(format!(
                    "serve scenario: continuous-batching policies need 1 <= slots <= num_cores ({num_cores}), got {slots}"
                )),
                _ => Ok(()),
            },
        }
    }

    /// The per-request arrival schedule.
    pub fn request_arrivals(&self) -> Vec<Cycle> {
        self.arrivals.arrivals(self.num_requests)
    }

    /// Stable label, e.g.
    /// `serve:cb4[llama3 70b/L128 x8 @ poisson(g500,s7)]`; SLO and
    /// priority classes append as ` slo:t50000` / ` cls:2` segments,
    /// and a surplus arrival trace surfaces its full length (see
    /// `ArrivalSpec::label_for`).
    pub fn label(&self) -> String {
        let mut extras = String::new();
        if let Some(slo) = &self.slo {
            extras.push_str(&format!(" slo:{}", slo.label()));
        }
        if self.classes.iter().any(|&c| c != 0) {
            let distinct = {
                let mut c = self.padded_classes();
                c.sort_unstable();
                c.dedup();
                c.len()
            };
            extras.push_str(&format!(" cls:{distinct}"));
        }
        format!(
            "serve:{}[{}/L{} x{} @ {}{}]",
            self.scheduler.label(),
            self.workload.instantiate(self.seq_len).label(),
            self.seq_len,
            self.num_requests,
            self.arrivals.label_for(self.num_requests),
            extras
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_round_trip_their_labels() {
        for (name, ctor) in REGISTRY {
            let spec = ctor();
            assert_eq!(&spec.label(), name, "registry name/label mismatch");
            assert_eq!(
                PolicySpec::from_name(name),
                Some(spec),
                "from_name must resolve `{name}`"
            );
        }
    }

    #[test]
    fn compositional_names_cover_the_matrix() {
        let spec = PolicySpec::from_name("dyncta+B").unwrap();
        assert_eq!(spec.arb, ArbSpec::Balanced);
        assert!(matches!(spec.throttle, ThrottleSpec::Dyncta { .. }));
        assert_eq!(spec.label(), "dyncta+B");

        assert_eq!(
            PolicySpec::from_name("B"),
            Some(PolicySpec::new(ArbSpec::Balanced, ThrottleSpec::None))
        );
        assert_eq!(PolicySpec::from_name("lcs"), Some(PolicySpec::lcs()));
        assert_eq!(PolicySpec::from_name("nonsense"), None);
        assert_eq!(PolicySpec::from_name("dynmg+nope"), None);
    }

    #[test]
    fn specs_round_trip_through_json_with_configs() {
        let cfg = DynMgConfig {
            sampling_period: 4321,
            sub_period: 777,
            ..Default::default()
        };
        let spec = PolicySpec::new(
            ArbSpec::BalancedMshrAware,
            ThrottleSpec::DynMg { config: cfg },
        );
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("4321"), "config must travel in the spec");
        let back: PolicySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn mix_spec_round_trips_through_json() {
        let mix = MixSpec::interleaved()
            .request(WorkloadSpec::llama3_70b(), 128, 0)
            .request(
                WorkloadSpec::PrefillLogit {
                    heads: 8,
                    group_size: 8,
                    head_dim: 128,
                    query_tokens: 4,
                },
                256,
                1_000,
            );
        let json = serde_json::to_string(&mix).unwrap();
        let back: MixSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, mix);
        // Arrival and assignment serde defaults: a minimal hand-written
        // mix parses as partitioned, arriving at 0.
        let minimal: MixSpec = serde_json::from_str(
            r#"{"requests": [{"workload": {"Logit": {"heads": 8, "group_size": 8, "head_dim": 128}}, "seq_len": 128}]}"#,
        )
        .unwrap();
        assert_eq!(minimal.assignment, MixAssignment::Partitioned);
        assert_eq!(minimal.requests[0].arrival, 0);
        minimal.validate().unwrap();
    }

    #[test]
    fn mix_spec_rejects_degenerate_mixes() {
        assert!(MixSpec::partitioned().validate().is_err(), "zero requests");
        let zero_seq = MixSpec::partitioned().request(WorkloadSpec::llama3_70b(), 0, 0);
        assert!(zero_seq.validate().is_err(), "zero seq_len");
        let bad_family = MixSpec::partitioned().request(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 0,
            },
            128,
            0,
        );
        assert!(bad_family.validate().is_err(), "invalid workload family");
    }

    #[test]
    fn mix_spec_labels_match_instantiated_mix() {
        let mix = MixSpec::partitioned()
            .request(WorkloadSpec::llama3_70b(), 128, 0)
            .request(WorkloadSpec::llama3_70b(), 256, 500);
        assert_eq!(
            mix.label(),
            "mix:part[llama3 70b/L128 + llama3 70b/L256@500]"
        );
    }

    #[test]
    fn labels_ignore_embedded_config() {
        let cfg = DynMgConfig {
            max_gear: 2,
            ..Default::default()
        };
        assert_eq!(PolicySpec::dynmg_with(cfg).label(), "dynmg");
    }

    #[test]
    fn prefix_aware_resolves_compositionally_without_touching_registry() {
        assert_eq!(ArbSpec::from_name("PFA"), Some(ArbSpec::PrefixAware));
        assert_eq!(ArbSpec::PrefixAware.label(), "PFA");
        let spec = PolicySpec::from_name("dynmg+PFA").unwrap();
        assert_eq!(spec.arb, ArbSpec::PrefixAware);
        assert_eq!(spec.label(), "dynmg+PFA");
        assert_eq!(
            PolicySpec::from_name("PFA"),
            Some(PolicySpec::new(ArbSpec::PrefixAware, ThrottleSpec::None))
        );
        // The canonical registry is unchanged: golden tables built from
        // explicit name lists stay pinned.
        assert!(!PolicySpec::registry_names().contains(&"PFA"));
        assert_eq!(ArbSpec::PrefixAware.build_kind().name(), "PFA");
    }

    #[test]
    fn kv_spec_round_trips_and_defaults_the_slow_tier() {
        let spec = KvSpec::prefix_pin(256);
        assert_eq!(spec.label(), "kv:pin@256");
        spec.validate().expect("valid kv spec");
        assert_eq!(
            spec.to_config(),
            KvTierConfig::cxl(256, KvEviction::PrefixPin)
        );
        let json = serde_json::to_string(&spec).unwrap();
        let back: KvSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);

        // A minimal hand-written doc gets the CXL-class defaults.
        let minimal: KvSpec = serde_json::from_str(r#"{"warm_capacity_blocks": 64}"#).unwrap();
        assert_eq!(minimal, KvSpec::lru(64));
        assert_eq!(minimal.label(), "kv:lru@64");

        // Degenerate tiers are rejected.
        assert!(KvSpec::lru(0).validate().is_err(), "zero capacity");
        let mut bad = KvSpec::lru(64);
        bad.slow.block_bytes = 0;
        assert!(bad.validate().is_err(), "zero-byte blocks");
    }

    #[test]
    fn serve_spec_validates_and_labels() {
        let spec = ServeSpec::new(
            WorkloadSpec::llama3_70b(),
            128,
            8,
            ArrivalSpec::Poisson {
                mean_gap: 500,
                seed: 7,
            },
        )
        .scheduler(ServePolicySpec::ContinuousBatching { slots: 4 });
        spec.validate(16).expect("valid serve spec");
        assert_eq!(spec.cores_per_request(16), 4);
        assert_eq!(
            spec.label(),
            "serve:cb4[llama3 70b/L128 x8 @ poisson(g500,s7)]"
        );
        assert_eq!(spec.request_arrivals().len(), 8);

        let fcfs = ServeSpec::new(
            WorkloadSpec::llama3_70b(),
            128,
            2,
            ArrivalSpec::Fixed {
                period: 100,
                start: 0,
            },
        );
        assert_eq!(fcfs.cores_per_request(16), 16, "fcfs spans the machine");
        assert_eq!(fcfs.scheduler, ServePolicySpec::Fcfs, "default policy");
    }

    #[test]
    fn serve_spec_rejects_degenerate_shapes() {
        let base = ServeSpec::new(
            WorkloadSpec::llama3_70b(),
            128,
            4,
            ArrivalSpec::Fixed {
                period: 100,
                start: 0,
            },
        );
        assert!(
            ServeSpec {
                num_requests: 0,
                ..base.clone()
            }
            .validate(16)
            .is_err(),
            "zero requests"
        );
        assert!(
            base.clone()
                .scheduler(ServePolicySpec::MaxConcurrency { max: 0 })
                .validate(16)
                .is_err(),
            "max-concurrency with max 0"
        );
        assert!(
            base.clone()
                .scheduler(ServePolicySpec::ContinuousBatching { slots: 32 })
                .validate(16)
                .is_err(),
            "more slots than cores"
        );
        assert!(
            ServeSpec {
                arrivals: ArrivalSpec::Trace { cycles: vec![0] },
                ..base.clone()
            }
            .validate(16)
            .is_err(),
            "trace shorter than request count"
        );
    }

    #[test]
    fn serve_spec_serde_round_trips_and_defaults_scheduler() {
        let spec = ServeSpec::new(
            WorkloadSpec::llama3_70b(),
            256,
            4,
            ArrivalSpec::Bursty {
                burst: 2,
                gap_in_burst: 10,
                burst_gap: 1000,
                seed: 3,
            },
        )
        .scheduler(ServePolicySpec::MaxConcurrency { max: 2 });
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: ServeSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, spec);

        // A hand-written doc omitting `scheduler` defaults to FCFS.
        let fcfs = ServeSpec {
            scheduler: ServePolicySpec::Fcfs,
            ..spec
        };
        let with_field = serde_json::to_string(&fcfs).expect("serialize fcfs");
        let probe = serde_json::to_string(&ServePolicySpec::Fcfs).expect("serialize policy");
        let without_field = with_field.replace(&format!(",\"scheduler\":{probe}"), "");
        assert_ne!(without_field, with_field, "scheduler field was stripped");
        let defaulted: ServeSpec =
            serde_json::from_str(&without_field).expect("deserialize without scheduler");
        assert_eq!(defaulted, fcfs);
    }
}
