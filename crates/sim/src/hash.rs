//! A minimal multiply-shift hasher for the simulator's hot-path maps.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs
//! tens of nanoseconds per lookup — measurable when the L1 miss table
//! is probed several times per issued vector load, every core, every
//! cycle. Simulator keys are internal line addresses (never
//! attacker-controlled), so a Fibonacci-style multiplicative hash is
//! both safe and much cheaper.

use std::hash::{BuildHasherDefault, Hasher};

/// Hasher specialized for small integer keys (line addresses, ids).
#[derive(Default)]
pub struct AddrHasher(u64);

/// `BuildHasher` for [`AddrHasher`]; plug into `HashMap::with_hasher`
/// or use the [`AddrHashMap`] alias.
pub type BuildAddrHasher = BuildHasherDefault<AddrHasher>;

/// A `HashMap` keyed by simulator addresses/ids with the fast hasher.
pub type AddrHashMap<K, V> = std::collections::HashMap<K, V, BuildAddrHasher>;

const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for AddrHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (not used by the integer keys on the hot
        // path, but required for completeness).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PHI);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(PHI);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Murmur3-style avalanche: multiplication concentrates entropy
        // in the high bits; mix it back so both the bucket index (low
        // bits) and the control tag (high bits) see it.
        let mut x = self.0;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_line_addresses_spread() {
        let mut seen = std::collections::HashSet::new();
        for line in 0..4096u64 {
            let mut h = AddrHasher::default();
            h.write_u64(line * 64);
            seen.insert(h.finish() & 0xfff);
        }
        // Line addresses stride by 64; a bad hash would collapse onto a
        // few buckets. Expect a healthy spread over 4096 buckets.
        assert!(seen.len() > 2048, "only {} distinct buckets", seen.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: AddrHashMap<u64, usize> = AddrHashMap::default();
        for i in 0..100u64 {
            m.insert(i * 64, i as usize);
        }
        for i in 0..100u64 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as usize)));
        }
    }
}
