//! Property suite: the handle-based request queue preserves the
//! arbiter-visible selection order of the seed implementation.
//!
//! PR 5 replaced the slice's `Vec<QueuedReq>` (requests by value) with
//! a ring of 4-byte [`ReqHandle`]s backed by the [`ReqPool`] free-list
//! arena. The contract: at every arbitration the arbiter sees exactly
//! the FIFO order the seed's by-value queue would have shown — index 0
//! oldest, middle removals order-stable, ingress admitted in delivery
//! order. A recording arbiter drives an [`LlcSlice`] with
//! pseudo-random mid-queue selections while a seed-semantics model
//! queue (plain `VecDeque` of request ids, mirroring admission and
//! removal) checks the visible queue element-by-element on every
//! `select` call.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use proptest::prelude::*;

use llamcat_sim::arb::{ArbiterCtx, RequestArbiter};
use llamcat_sim::config::SystemConfig;
use llamcat_sim::llc::LlcSlice;
use llamcat_sim::pool::ReqPool;
use llamcat_sim::types::{Cycle, MemReq, LINE_BYTES};

/// Seed-semantics model of the request queue: ingress + admitted ring
/// of request ids, with the exact admission rule of the slice
/// (`drain_ingress` tops the queue up to capacity after arbitration).
struct ModelQueue {
    ingress: VecDeque<u64>,
    admitted: VecDeque<u64>,
    capacity: usize,
}

impl ModelQueue {
    fn deliver(&mut self, id: u64) {
        self.ingress.push_back(id);
    }

    fn remove(&mut self, idx: usize) -> u64 {
        self.admitted.remove(idx).expect("model index valid")
    }

    fn drain_ingress(&mut self) {
        while self.admitted.len() < self.capacity {
            let Some(id) = self.ingress.pop_front() else {
                return;
            };
            self.admitted.push_back(id);
        }
    }
}

/// Arbiter that checks the visible queue against the model on every
/// call, then picks a pseudo-random (but deterministic) index.
struct RecordingArbiter {
    model: Rc<RefCell<ModelQueue>>,
    /// Selection salt (drives which index is chosen).
    salt: u64,
    calls: u64,
    /// Set on the first mismatch (proptest asserts after the run; a
    /// panic inside the slice would lose the minimal case).
    mismatch: Rc<RefCell<Option<String>>>,
}

impl RequestArbiter for RecordingArbiter {
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        self.calls += 1;
        let visible: Vec<u64> = ctx.iter().map(|r| r.id).collect();
        let expected: Vec<u64> = {
            let m = self.model.borrow();
            m.admitted.iter().copied().collect()
        };
        if visible != expected && self.mismatch.borrow().is_none() {
            *self.mismatch.borrow_mut() = Some(format!(
                "call {}: arbiter saw {visible:?}, seed order is {expected:?}",
                self.calls
            ));
        }
        if ctx.is_empty() {
            return None;
        }
        // Pseudo-random mid-queue pick: exercises order stability of
        // removals at every position.
        let idx = ((self.calls.wrapping_mul(self.salt)) % ctx.len() as u64) as usize;
        self.model.borrow_mut().remove(idx);
        Some(idx)
    }

    fn wants_mshr_snapshot(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "recording"
    }
}

// Random request streams + random mid-queue selections: the
// arbiter-visible queue matches the seed model at every single
// arbitration.
proptest! {
    #[test]
    fn handle_queue_preserves_seed_selection_order(
        salt in 1u64..997,
        burst in 1usize..6,
        gap in 0u64..4,
        total in 20usize..160,
    ) {
        let mut cfg = SystemConfig::table5().l2;
        // A huge MSHR keeps the pipeline from stalling, so arbitration
        // (and therefore order checking) happens on every possible
        // cycle; distinct lines make every request a plain miss.
        cfg.mshr_entries = 4096;
        cfg.mshr_targets = 8;

        let model = Rc::new(RefCell::new(ModelQueue {
            ingress: VecDeque::new(),
            admitted: VecDeque::new(),
            capacity: cfg.req_q_size,
        }));
        let mismatch: Rc<RefCell<Option<String>>> = Rc::new(RefCell::new(None));
        let arbiter = RecordingArbiter {
            model: Rc::clone(&model),
            salt,
            calls: 0,
            mismatch: Rc::clone(&mismatch),
        };
        let mut slice = LlcSlice::new(0, cfg, 4, arbiter);
        let mut pool = ReqPool::default();

        let mut delivered = 0u64;
        let mut now: Cycle = 0;
        let queue_live = |m: &Rc<RefCell<ModelQueue>>| {
            let m = m.borrow();
            !m.admitted.is_empty() || !m.ingress.is_empty()
        };
        while delivered < total as u64 || queue_live(&model) {
            if delivered < total as u64 && now.is_multiple_of(gap + 1) {
                for _ in 0..burst {
                    if delivered >= total as u64 {
                        break;
                    }
                    let id = delivered;
                    delivered += 1;
                    let h = pool.alloc(MemReq {
                        id,
                        core: (id % 4) as usize,
                        request: 0,
                        // Distinct lines, constant slice bits.
                        line_addr: id * LINE_BYTES * 8,
                        is_write: false,
                        issued_at: now,
                    });
                    slice.deliver(h);
                    model.borrow_mut().deliver(id);
                }
            }
            slice.tick(now, &mut pool);
            // Mirror the slice's own tick tail: ingress drains into the
            // request queue after arbitration.
            model.borrow_mut().drain_ingress();
            now += 1;
            prop_assert!(now < 100_000, "harness failed to drain");
            // DRAM reads are irrelevant to request-queue order; keep
            // the backlog from growing unboundedly.
            while slice.dram_reads.pop_front().is_some() {}
        }
        prop_assert!(
            mismatch.borrow().is_none(),
            "{}",
            mismatch.borrow().clone().unwrap_or_default()
        );
    }
}
