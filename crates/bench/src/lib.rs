//! Benchmark harness: regenerates every table and figure of the LLaMCAT
//! evaluation (Section 6).
//!
//! Each `[[bench]]` target (harness = false) prints the rows/series of
//! one paper artifact:
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig7` | Fig 7(a–f): throttling, arbitration and cumulative speedups for 70b/405b over sequence lengths |
//! | `fig8` | Fig 8: mechanism metrics for 70b @ 8K across the policy ladder |
//! | `fig9` | Fig 9(a,b): L2-capacity sweep at 32K |
//! | `table_sweeps` | Tables 2–4: throttling parameter sweeps |
//! | `area_cost` | Section 6.1 hardware-cost comparison |
//! | `sim_speed` | Criterion micro-benchmarks of the substrate itself |
//!
//! Scale is controlled with `LLAMCAT_SCALE` = `full` | `half` (default) |
//! `quick`: sequence lengths divide by 1 / 2 / 8. Orderings are stable
//! across scales; EXPERIMENTS.md records which scale produced the
//! committed numbers.

use std::time::Instant;

use llamcat::experiment::{geomean, Experiment, Model, Policy, RunReport};
use rayon::prelude::*;

/// Sequence-length scale factor from `LLAMCAT_SCALE`.
pub fn scale_divisor() -> usize {
    match std::env::var("LLAMCAT_SCALE").as_deref() {
        Ok("full") => 1,
        Ok("quick") => 8,
        _ => 2,
    }
}

/// Human-readable scale label for output headers.
pub fn scale_label() -> String {
    let d = scale_divisor();
    match d {
        1 => "full".into(),
        2 => "half".into(),
        8 => "quick".into(),
        other => format!("1/{other}"),
    }
}

/// One grid cell to simulate.
#[derive(Debug, Clone)]
pub struct Cell {
    pub model: Model,
    pub seq_len: usize,
    pub policy: Policy,
    pub l2_mb: u64,
}

/// Runs a set of cells in parallel (simulations are independent and
/// deterministic) and returns the reports in input order.
pub fn run_cells(cells: &[Cell]) -> Vec<RunReport> {
    cells
        .par_iter()
        .map(|c| {
            Experiment::new(c.model, c.seq_len)
                .policy(c.policy)
                .l2_mb(c.l2_mb)
                .run()
        })
        .collect()
}

/// Runs one experiment, timing the wall clock.
pub fn run_one(model: Model, seq_len: usize, policy: Policy, l2_mb: u64) -> (RunReport, f64) {
    let t0 = Instant::now();
    let r = Experiment::new(model, seq_len)
        .policy(policy)
        .l2_mb(l2_mb)
        .run();
    (r, t0.elapsed().as_secs_f64())
}

/// Formats a speedup table: one row per policy, one column per x value.
pub fn print_speedup_table(
    title: &str,
    xlabels: &[String],
    rows: &[(String, Vec<f64>)],
    note: &str,
) {
    println!("\n### {title}");
    if !note.is_empty() {
        println!("    ({note})");
    }
    print!("{:<16}", "policy");
    for x in xlabels {
        print!("{x:>10}");
    }
    println!("{:>10}", "geomean");
    for (name, values) in rows {
        print!("{name:<16}");
        for v in values {
            print!("{v:>9.3}x");
        }
        println!("{:>9.3}x", geomean(values));
    }
}

/// The standard policy ladder of Fig 7/8.
pub fn throttling_policies() -> Vec<Policy> {
    vec![Policy::dyncta(), Policy::lcs(), Policy::dynmg()]
}

/// Arbitration policies, each run on top of dynmg (Fig 7(b)/(e)).
pub fn arbitration_policies() -> Vec<Policy> {
    vec![
        Policy::dynmg_cobrra(),
        Policy::dynmg_b(),
        Policy::dynmg_ma(),
        Policy::dynmg_bma(),
    ]
}

/// Cumulative ladder (Fig 7(c)/(f)).
pub fn cumulative_policies() -> Vec<Policy> {
    vec![
        Policy::dynmg(),
        Policy::dynmg_b(),
        Policy::dynmg_ma(),
        Policy::dynmg_bma(),
    ]
}

/// Fig 9's policy set.
pub fn fig9_policies() -> Vec<Policy> {
    vec![
        Policy::dyncta(),
        Policy::lcs(),
        Policy::cobrra(),
        Policy::dynmg(),
        Policy::dynmg_cobrra(),
        Policy::dynmg_bma(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_half() {
        // Unless the env var says otherwise in this test environment.
        if std::env::var("LLAMCAT_SCALE").is_err() {
            assert_eq!(scale_divisor(), 2);
            assert_eq!(scale_label(), "half");
        }
    }

    #[test]
    fn policy_sets_are_complete() {
        assert_eq!(throttling_policies().len(), 3);
        assert_eq!(arbitration_policies().len(), 4);
        assert_eq!(cumulative_policies().len(), 4);
        assert_eq!(fig9_policies().len(), 6);
    }

    #[test]
    fn run_cells_preserves_order() {
        let cells = vec![
            Cell {
                model: Model::Llama3_70b,
                seq_len: 128,
                policy: Policy::unoptimized(),
                l2_mb: 16,
            },
            Cell {
                model: Model::Llama3_405b,
                seq_len: 128,
                policy: Policy::unoptimized(),
                l2_mb: 16,
            },
        ];
        let reports = run_cells(&cells);
        assert_eq!(reports[0].model_label, "llama3 70b");
        assert_eq!(reports[1].model_label, "llama3 405b");
    }
}
