//! Declarative experiment campaigns: a serde-round-trippable grid of
//! workloads × sequence lengths × machine overrides × policies, executed
//! in parallel with the substrate's determinism guarantee.
//!
//! The paper's evaluation is a grid; the seed code re-implemented that
//! grid as ad-hoc loops in every bench target. A [`Campaign`] states it
//! once, as data:
//!
//! ```
//! use llamcat::spec::PolicySpec;
//! use llamcat_bench::campaign::Campaign;
//! use llamcat_trace::workloads::WorkloadSpec;
//!
//! let report = Campaign::new("demo")
//!     .workload(WorkloadSpec::llama3_70b())
//!     .seq_lens([128, 256])
//!     .policy(PolicySpec::dynmg_bma())
//!     .baseline(PolicySpec::unoptimized())
//!     .run()
//!     .unwrap();
//! assert_eq!(report.records.len(), 2);
//! let jsonl = report.jsonl();
//! assert_eq!(jsonl.lines().count(), 2);
//! ```
//!
//! Guarantees:
//!
//! * **Deterministic order** — [`Campaign::cells`] enumerates the cross
//!   product workload-major (workload → seq_len → l2_mb → policy), and
//!   [`Campaign::run`] returns records in exactly that order.
//! * **Parallel = sequential** — cells fan out over rayon; each
//!   simulation is single-threaded and deterministic, so the JSONL
//!   stream is byte-identical across runs
//!   (`crates/bench/tests/campaign.rs` pins this).
//! * **Round-trippable** — a campaign serializes to JSON and back
//!   losslessly, including every embedded policy configuration, so a
//!   sweep definition can live in a file, a commit message or a wire
//!   protocol.

use std::io::{self, Write};

use llamcat::experiment::{Experiment, RunReport};
use llamcat::spec::PolicySpec;
use llamcat_sim::system::StepMode;
use llamcat_trace::mapping::Layout;
use llamcat_trace::workloads::WorkloadSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::geomean;

/// A declarative sweep: the full cross product of its axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Campaign name (carried into the result header).
    pub name: String,
    /// Workload families (sequence length crossed separately).
    pub workloads: Vec<WorkloadSpec>,
    /// Sequence lengths, one per workload instantiation.
    pub seq_lens: Vec<usize>,
    /// L2 capacities in MB (`SystemConfig` override axis).
    pub l2_mb: Vec<u64>,
    /// Policies, with their configurations embedded.
    pub policies: Vec<PolicySpec>,
    /// Optional baseline: when set, every record carries its speedup
    /// over the baseline on the same scenario.
    pub baseline: Option<PolicySpec>,
    /// Dataflow layout for every cell.
    pub layout: Layout,
    /// L-dimension tile per thread block.
    pub l_tile: usize,
    /// Hard cycle budget; `None` derives one per cell.
    pub max_cycles: Option<u64>,
    /// Simulation step mode for every cell. `Skip` fast-forwards idle
    /// cycles with byte-identical statistics; `Cycle` (the serde
    /// default, so older campaign files keep parsing) is the
    /// cycle-accurate reference.
    #[serde(default)]
    pub step_mode: StepMode,
}

/// One point of the grid, fully self-describing (what to run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCell {
    pub workload: WorkloadSpec,
    pub seq_len: usize,
    pub l2_mb: u64,
    pub policy: PolicySpec,
}

impl CampaignCell {
    /// The experiment this cell describes.
    pub fn experiment(&self, campaign: &Campaign) -> Experiment {
        let mut e = Experiment::from_spec(&self.workload, self.seq_len)
            .policy(self.policy.clone())
            .l2_mb(self.l2_mb)
            .layout(campaign.layout)
            .step_mode(campaign.step_mode);
        e.l_tile = campaign.l_tile;
        e.max_cycles = campaign.max_cycles;
        e
    }
}

/// One executed cell: the cell, its report, and (when the campaign has
/// a baseline) its speedup over the baseline on the same scenario.
/// These are the JSONL stream's records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRecord {
    pub cell: CampaignCell,
    pub report: RunReport,
    pub speedup: Option<f64>,
}

/// A finished campaign: records in deterministic cell order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    pub campaign: Campaign,
    pub records: Vec<CellRecord>,
}

impl Campaign {
    /// An empty campaign on the Table 5 machine (16 MB L2, pair-stream
    /// layout, 32-token L tiles). Populate the axes with the builder
    /// methods.
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            workloads: Vec::new(),
            seq_lens: Vec::new(),
            l2_mb: vec![16],
            policies: Vec::new(),
            baseline: None,
            layout: Layout::default(),
            l_tile: 32,
            max_cycles: None,
            step_mode: StepMode::default(),
        }
    }

    pub fn workload(mut self, w: WorkloadSpec) -> Self {
        self.workloads.push(w);
        self
    }

    pub fn workloads(mut self, ws: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(ws);
        self
    }

    pub fn seq_lens(mut self, seqs: impl IntoIterator<Item = usize>) -> Self {
        self.seq_lens.extend(seqs);
        self
    }

    /// Replaces the L2-capacity axis (default: just 16 MB).
    pub fn l2_sizes_mb(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.l2_mb = sizes.into_iter().collect();
        self
    }

    pub fn policy(mut self, p: impl Into<PolicySpec>) -> Self {
        self.policies.push(p.into());
        self
    }

    pub fn policies(mut self, ps: impl IntoIterator<Item = PolicySpec>) -> Self {
        self.policies.extend(ps);
        self
    }

    /// Resolves a registry name (`"dynmg+BMA"`, `"dyncta+B"`, …) into
    /// the policy axis; unknown names error.
    pub fn policy_named(self, name: &str) -> Result<Self, String> {
        let spec =
            PolicySpec::from_name(name).ok_or_else(|| format!("unknown policy name `{name}`"))?;
        Ok(self.policy(spec))
    }

    pub fn baseline(mut self, p: impl Into<PolicySpec>) -> Self {
        self.baseline = Some(p.into());
        self
    }

    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Selects the simulation step mode for every cell (default:
    /// cycle-accurate).
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// The scenario axes (everything but the policy), in enumeration
    /// order: workload-major, then seq_len, then l2_mb.
    pub fn scenarios(&self) -> Vec<(WorkloadSpec, usize, u64)> {
        let mut out = Vec::with_capacity(self.workloads.len() * self.seq_lens.len());
        for w in &self.workloads {
            for &seq in &self.seq_lens {
                for &mb in &self.l2_mb {
                    out.push((*w, seq, mb));
                }
            }
        }
        out
    }

    /// Human-readable scenario labels (columns of a speedup table).
    pub fn scenario_labels(&self) -> Vec<String> {
        let multi_w = self.workloads.len() > 1;
        let multi_l2 = self.l2_mb.len() > 1;
        self.scenarios()
            .iter()
            .map(|(w, seq, mb)| {
                let mut parts = Vec::new();
                if multi_w {
                    parts.push(w.label());
                }
                parts.push(if seq % 1024 == 0 {
                    format!("{}K", seq / 1024)
                } else {
                    format!("{seq}")
                });
                if multi_l2 {
                    parts.push(format!("{mb}MB"));
                }
                parts.join(" ")
            })
            .collect()
    }

    /// The full cell list in deterministic order (scenarios × policies,
    /// policy innermost).
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut out = Vec::with_capacity(self.scenarios().len() * self.policies.len());
        for (workload, seq_len, l2_mb) in self.scenarios() {
            for p in &self.policies {
                out.push(CampaignCell {
                    workload,
                    seq_len,
                    l2_mb,
                    policy: p.clone(),
                });
            }
        }
        out
    }

    /// Rejects empty axes and invalid workloads before any simulation
    /// starts.
    pub fn validate(&self) -> Result<(), String> {
        if self.workloads.is_empty() {
            return Err("campaign has no workloads".into());
        }
        if self.seq_lens.is_empty() {
            return Err("campaign has no sequence lengths".into());
        }
        if self.l2_mb.is_empty() {
            return Err("campaign has no L2 sizes".into());
        }
        if self.policies.is_empty() {
            return Err("campaign has no policies".into());
        }
        for w in &self.workloads {
            w.validate()
                .map_err(|e| format!("workload {}: {e}", w.label()))?;
        }
        for &seq in &self.seq_lens {
            if self.l_tile == 0 || seq % self.l_tile != 0 {
                return Err(format!(
                    "l_tile {} must divide every sequence length (got {seq})",
                    self.l_tile
                ));
            }
        }
        Ok(())
    }

    /// Runs the whole grid in parallel and assembles the report.
    ///
    /// The policy cells and (if not already a policy) the baseline
    /// cells run in one rayon batch; records come back in
    /// [`Campaign::cells`] order with baseline-relative speedups
    /// attached.
    pub fn run(&self) -> Result<CampaignReport, String> {
        self.validate()?;
        let cells = self.cells();
        let scenarios = self.scenarios();

        // The baseline rides along as extra cells unless it is already
        // one of the swept policies.
        let baseline_in_grid = self
            .baseline
            .as_ref()
            .and_then(|b| self.policies.iter().position(|p| p == b));
        let mut all = cells.clone();
        if let (Some(b), None) = (&self.baseline, baseline_in_grid) {
            for (workload, seq_len, l2_mb) in &scenarios {
                all.push(CampaignCell {
                    workload: *workload,
                    seq_len: *seq_len,
                    l2_mb: *l2_mb,
                    policy: b.clone(),
                });
            }
        }

        let experiments: Vec<Experiment> = all.iter().map(|c| c.experiment(self)).collect();
        let mut reports = run_experiments(&experiments)?;

        let n_pol = self.policies.len();
        let baseline_cycles: Option<Vec<u64>> = self.baseline.as_ref().map(|_| {
            match baseline_in_grid {
                // Baseline is policy column `p`: scenario s's baseline
                // report sits at s * n_pol + p.
                Some(p) => (0..scenarios.len())
                    .map(|s| reports[s * n_pol + p].cycles)
                    .collect(),
                // Extra cells appended after the grid, one per scenario.
                None => reports[cells.len()..].iter().map(|r| r.cycles).collect(),
            }
        });
        reports.truncate(cells.len());

        let mut records = Vec::with_capacity(cells.len());
        for (i, (cell, report)) in cells.into_iter().zip(reports).enumerate() {
            let speedup = match &baseline_cycles {
                Some(base) => {
                    let b = base[i / n_pol];
                    if b == 0 || report.cycles == 0 {
                        return Err(format!(
                            "degenerate zero-cycle run in cell {} ({})",
                            i, report.policy_label
                        ));
                    }
                    Some(b as f64 / report.cycles as f64)
                }
                None => None,
            };
            records.push(CellRecord {
                cell,
                report,
                speedup,
            });
        }
        Ok(CampaignReport {
            campaign: self.clone(),
            records,
        })
    }
}

/// Runs a batch of experiments in parallel (rayon), returning reports
/// in input order. Simulations are independent and deterministic, so
/// parallel equals sequential — the property
/// `crates/bench/tests/parallel_determinism.rs` pins.
pub fn run_experiments(experiments: &[Experiment]) -> Result<Vec<RunReport>, String> {
    let results: Vec<Result<RunReport, String>> = experiments
        .par_iter()
        .map(|e| e.try_run().map_err(|err| err.to_string()))
        .collect();
    results.into_iter().collect()
}

impl CampaignReport {
    /// The records as one JSON object per line (JSONL). Deterministic:
    /// byte-identical across repeated runs of the same campaign.
    pub fn jsonl(&self) -> String {
        let mut out = Vec::new();
        self.write_jsonl(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("JSON is UTF-8")
    }

    /// Streams the JSONL records to a writer, one record at a time.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for rec in &self.records {
            let line = serde_json::to_string(rec).expect("record serializes");
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Speedup table rows: one `(label, speedups-by-scenario)` row per
    /// policy, in policy order. Requires a baseline.
    pub fn speedup_rows(&self) -> Vec<(String, Vec<f64>)> {
        let n_pol = self.campaign.policies.len();
        let mut rows: Vec<(String, Vec<f64>)> = self
            .campaign
            .policies
            .iter()
            .map(|p| (p.label(), Vec::new()))
            .collect();
        for (i, rec) in self.records.iter().enumerate() {
            if let Some(s) = rec.speedup {
                rows[i % n_pol].1.push(s);
            }
        }
        rows
    }

    /// Per-policy geometric-mean speedup over the baseline, in policy
    /// order (the paper's summary statistic).
    pub fn geomeans(&self) -> Vec<(String, f64)> {
        self.speedup_rows()
            .into_iter()
            .map(|(label, speedups)| {
                let g = geomean(&speedups);
                (label, g)
            })
            .collect()
    }

    /// The records of one policy column, in scenario order.
    pub fn policy_records(&self, policy_index: usize) -> Vec<&CellRecord> {
        let n_pol = self.campaign.policies.len();
        self.records
            .iter()
            .skip(policy_index)
            .step_by(n_pol)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamcat::experiment::Model;

    fn tiny() -> Campaign {
        Campaign::new("tiny")
            .workload(Model::Llama3_70b.spec())
            .seq_lens([128])
            .policy(PolicySpec::unoptimized())
            .policy(PolicySpec::dynmg_bma())
            .baseline(PolicySpec::unoptimized())
    }

    #[test]
    fn cell_order_is_policy_innermost() {
        let c = Campaign::new("order")
            .workload(Model::Llama3_70b.spec())
            .workload(Model::Llama3_405b.spec())
            .seq_lens([128, 256])
            .l2_sizes_mb([16, 32])
            .policy(PolicySpec::unoptimized())
            .policy(PolicySpec::dynmg());
        let cells = c.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        // First scenario holds both policies before anything changes.
        assert_eq!(cells[0].policy, PolicySpec::unoptimized());
        assert_eq!(cells[1].policy, PolicySpec::dynmg());
        assert_eq!(cells[0].l2_mb, cells[1].l2_mb);
        // l2 is the next-fastest axis, then seq_len, then workload.
        assert_eq!(cells[2].l2_mb, 32);
        assert_eq!(cells[4].seq_len, 256);
        assert_eq!(cells[8].workload, Model::Llama3_405b.spec());
    }

    #[test]
    fn baseline_in_grid_reuses_its_column() {
        let r = tiny().run().unwrap();
        assert_eq!(r.records.len(), 2);
        // Baseline's own speedup is exactly 1.
        assert_eq!(r.records[0].speedup, Some(1.0));
        let s = r.records[1].speedup.unwrap();
        assert!(s > 0.0);
        let rows = r.speedup_rows();
        assert_eq!(rows[0].0, "unoptimized");
        assert_eq!(rows[1].0, "dynmg+BMA");
        assert_eq!(rows[1].1, vec![s]);
    }

    #[test]
    fn external_baseline_matches_in_grid_baseline() {
        let with_in_grid = tiny().run().unwrap();
        let mut external = tiny();
        external.policies.remove(0); // baseline no longer swept
        let r = external.run().unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(
            r.records[0].speedup, with_in_grid.records[1].speedup,
            "baseline cycles must not depend on where the baseline ran"
        );
    }

    #[test]
    fn empty_axes_are_rejected() {
        assert!(Campaign::new("e").run().is_err());
        let no_policy = Campaign::new("e")
            .workload(Model::Llama3_70b.spec())
            .seq_lens([128]);
        assert!(no_policy.run().is_err());
        let bad_tile = tiny().seq_lens([100]); // 100 % 32 != 0
        assert!(bad_tile.run().is_err());
    }

    #[test]
    fn campaign_round_trips_through_json() {
        let c = tiny().l2_sizes_mb([16, 64]).max_cycles(1_000_000);
        let json = serde_json::to_string(&c).unwrap();
        let back: Campaign = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn policy_named_resolves_registry() {
        let c = Campaign::new("n")
            .policy_named("dynmg+BMA")
            .unwrap()
            .policy_named("dyncta+B")
            .unwrap();
        assert_eq!(c.policies[0], PolicySpec::dynmg_bma());
        assert!(Campaign::new("n").policy_named("bogus").is_err());
    }
}
