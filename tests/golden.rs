//! Golden-baseline regression test.
//!
//! One small configuration (Llama3 70b, seq_len 128, 16 MB L2) per
//! `ArbPolicy` × `ThrottlePolicy` cell, with the cycle count and the
//! headline rates recorded from the seed implementation. Future
//! performance PRs diff against this table instead of merely checking
//! "it still completes"; an intentional behavior change must update the
//! table in the same commit and justify the delta.
//!
//! Regenerate the table after an intentional change with:
//! ```text
//! cargo test --test golden -- --ignored --nocapture
//! ```
//! and paste the printed rows over `GOLDEN`.

use llamcat::experiment::{ArbPolicy, Experiment, Model, Policy, ThrottlePolicy};
use llamcat::spec::PolicySpec;

const MODEL: Model = Model::Llama3_70b;
const SEQ_LEN: usize = 128;

const ARBS: [ArbPolicy; 5] = [
    ArbPolicy::Fifo,
    ArbPolicy::Balanced,
    ArbPolicy::MshrAware,
    ArbPolicy::BalancedMshrAware,
    ArbPolicy::Cobrra,
];

const THROTTLES: [ThrottlePolicy; 4] = [
    ThrottlePolicy::None,
    ThrottlePolicy::Dyncta,
    ThrottlePolicy::Lcs,
    ThrottlePolicy::DynMg,
];

/// Recorded seed behavior: (arb, throttle, cycles, l2_hit_rate,
/// mshr_hit_rate). Rates are exact f64 values as printed by `{:?}`;
/// the simulator is deterministic, so equality is exact.
#[rustfmt::skip]
const GOLDEN: &[(ArbPolicy, ThrottlePolicy, u64, f64, f64)] = &[
    (ArbPolicy::Fifo, ThrottlePolicy::None, 12269, 0.004743889989791629, 0.8609870882104501),
    (ArbPolicy::Fifo, ThrottlePolicy::Dyncta, 12269, 0.004743889989791629, 0.8609870882104501),
    (ArbPolicy::Fifo, ThrottlePolicy::Lcs, 12269, 0.004743889989791629, 0.8609870882104501),
    (ArbPolicy::Fifo, ThrottlePolicy::DynMg, 12668, 0.13891220916286878, 0.83947909049758),
    (ArbPolicy::Balanced, ThrottlePolicy::None, 12786, 0.2341198366954851, 0.8187590640065848),
    (ArbPolicy::Balanced, ThrottlePolicy::Dyncta, 12786, 0.2341198366954851, 0.8187590640065848),
    (ArbPolicy::Balanced, ThrottlePolicy::Lcs, 12786, 0.2341198366954851, 0.8187590640065848),
    (ArbPolicy::Balanced, ThrottlePolicy::DynMg, 14691, 0.3732421816437288, 0.7785485337032961),
    (ArbPolicy::MshrAware, ThrottlePolicy::None, 12376, 0.012585778070780018, 0.8600345968255895),
    (ArbPolicy::MshrAware, ThrottlePolicy::Dyncta, 12376, 0.012585778070780018, 0.8600345968255895),
    (ArbPolicy::MshrAware, ThrottlePolicy::Lcs, 12376, 0.012585778070780018, 0.8600345968255895),
    (ArbPolicy::MshrAware, ThrottlePolicy::DynMg, 12756, 0.1283430494621071, 0.8411417933602234),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::None, 12688, 0.008498753716327818, 0.8604313060334383),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::Dyncta, 12688, 0.008498753716327818, 0.8604313060334383),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::Lcs, 12688, 0.008498753716327818, 0.8604313060334383),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::DynMg, 12874, 0.12300717566877833, 0.8422458062307429),
    (ArbPolicy::Cobrra, ThrottlePolicy::None, 11966, 0.005396006954853408, 0.8609922237627343),
    (ArbPolicy::Cobrra, ThrottlePolicy::Dyncta, 11966, 0.005396006954853408, 0.8609922237627343),
    (ArbPolicy::Cobrra, ThrottlePolicy::Lcs, 11966, 0.005396006954853408, 0.8609922237627343),
    (ArbPolicy::Cobrra, ThrottlePolicy::DynMg, 12872, 0.17450769138684383, 0.8319254613348802),
];

fn run_cell(arb: ArbPolicy, throttle: ThrottlePolicy) -> (u64, f64, f64) {
    let report = Experiment::new(MODEL, SEQ_LEN)
        .policy(Policy::new(arb, throttle))
        .run();
    assert!(
        report.completed,
        "golden cell {:?}/{:?} did not complete",
        arb, throttle
    );
    (report.cycles, report.l2_hit_rate, report.mshr_hit_rate)
}

#[test]
fn golden_baselines_match_recorded_seed_behavior() {
    assert_eq!(
        GOLDEN.len(),
        ARBS.len() * THROTTLES.len(),
        "golden table must cover every policy cell"
    );
    for &(arb, throttle, cycles, l2_hit, mshr_hit) in GOLDEN {
        let (got_cycles, got_l2, got_mshr) = run_cell(arb, throttle);
        assert_eq!(
            got_cycles, cycles,
            "{:?}/{:?}: cycles changed (recorded {cycles}, got {got_cycles})",
            arb, throttle
        );
        assert_eq!(
            got_l2, l2_hit,
            "{:?}/{:?}: L2 hit rate changed",
            arb, throttle
        );
        assert_eq!(
            got_mshr, mshr_hit,
            "{:?}/{:?}: MSHR hit rate changed",
            arb, throttle
        );
    }
}

/// The policy registry's canonical names must match the paper-figure
/// labels this file pins — one name per named point of the ladder,
/// resolving to the same (arb, throttle) cell the golden table records.
#[test]
fn registry_labels_match_paper_figure_labels() {
    let figure_policies = [
        Policy::unoptimized(),
        Policy::dyncta(),
        Policy::lcs(),
        Policy::cobrra(),
        Policy::dynmg(),
        Policy::dynmg_b(),
        Policy::dynmg_ma(),
        Policy::dynmg_bma(),
        Policy::dynmg_cobrra(),
    ];
    let names = PolicySpec::registry_names();
    assert_eq!(
        names.len(),
        figure_policies.len(),
        "registry must cover exactly the named figure points"
    );
    for (name, policy) in names.iter().zip(figure_policies) {
        assert_eq!(
            *name,
            policy.label(),
            "registry order must follow the figure ladder"
        );
        let spec = PolicySpec::from_name(name)
            .unwrap_or_else(|| panic!("registry name `{name}` must resolve"));
        assert_eq!(spec, policy.spec(), "`{name}` resolves to the wrong cell");
        assert_eq!(spec.label(), *name, "label/name round trip for `{name}`");
        // The golden table covers this cell: the registry points into
        // the pinned 5 × 4 matrix, not outside it.
        assert!(
            GOLDEN
                .iter()
                .any(|&(arb, thr, ..)| Policy::new(arb, thr).spec() == spec),
            "registry name `{name}` must map into the golden matrix"
        );
    }
}

/// Prints the current table in `GOLDEN` literal syntax.
#[test]
#[ignore = "regenerates the golden table; run with --ignored --nocapture"]
fn print_golden_table() {
    for &arb in &ARBS {
        for &throttle in &THROTTLES {
            let (cycles, l2, mshr) = run_cell(arb, throttle);
            println!(
                "    (ArbPolicy::{arb:?}, ThrottlePolicy::{throttle:?}, {cycles}, {l2:?}, {mshr:?}),"
            );
        }
    }
}
