//! Criterion micro-benchmarks of the simulator substrate itself:
//! DRAM channel throughput, cache-model operations, MSHR operations and
//! small end-to-end system runs. These guard against performance
//! regressions in the hot tick loop (the figure benches depend on the
//! simulator staying fast).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use llamcat_sim::arb::{FifoArbiter, NoThrottle};
use llamcat_sim::cache::{InsertPolicy, SetAssocCache};
use llamcat_sim::config::{DramConfig, SystemConfig};
use llamcat_sim::dram::{AddressMapping, Channel, MappingScheme};
use llamcat_sim::mshr::{MshrFile, MshrTarget};
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::system::System;
use llamcat_sim::types::LINE_BYTES;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/access_hit", |b| {
        let mut cache = SetAssocCache::new(4096, 8, 3);
        for line in 0..4096u64 {
            cache.insert(line * LINE_BYTES * 8, false, InsertPolicy::Mru);
        }
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 4096;
            std::hint::black_box(cache.access(line * LINE_BYTES * 8, false))
        });
    });
    c.bench_function("cache/insert_evict", |b| {
        let mut cache = SetAssocCache::new(128, 8, 0);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            std::hint::black_box(cache.insert(line * LINE_BYTES, false, InsertPolicy::Mru))
        });
    });
}

fn bench_mshr(c: &mut Criterion) {
    c.bench_function("mshr/register_complete", |b| {
        let mut mshr = MshrFile::new(6, 8);
        let t = MshrTarget {
            req_id: 0,
            core: 0,
            is_write: false,
        };
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            mshr.register(addr, t);
            std::hint::black_box(mshr.complete(addr))
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/streaming_channel", |b| {
        let mut cfg = DramConfig::table5();
        cfg.refresh = false;
        let mapping = AddressMapping::new(&cfg, MappingScheme::RoBaRaCoCh);
        b.iter_batched(
            || Channel::new(cfg, 0),
            |mut ch| {
                let mut out = Vec::new();
                let mut sent = 0u64;
                while out.len() < 32 {
                    if sent < 32 {
                        let a = sent * 4 * LINE_BYTES;
                        if ch.enqueue_read(a, mapping.decode(a), 0) {
                            sent += 1;
                        }
                    }
                    ch.tick(&mut out);
                }
                out.len()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_system(c: &mut Criterion) {
    c.bench_function("system/small_run", |b| {
        let mut cfg = SystemConfig::table5();
        cfg.num_cores = 4;
        cfg.dram.refresh = false;
        let blocks: Vec<ThreadBlock> = (0..16)
            .map(|i| ThreadBlock {
                instrs: vec![
                    Instr::Load {
                        addr: i * 4096,
                        bytes: 128,
                    },
                    Instr::Load {
                        addr: i * 4096 + 128,
                        bytes: 128,
                    },
                    Instr::Barrier,
                ],
            })
            .collect();
        let program = Program::round_robin(blocks, cfg.num_cores);
        b.iter_batched(
            || {
                System::new(
                    cfg,
                    program.clone(),
                    &|_| Box::new(FifoArbiter),
                    Box::new(NoThrottle),
                )
            },
            |mut sys| {
                let (stats, _) = sys.run(100_000);
                stats.cycles
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_mshr, bench_dram, bench_system
}
criterion_main!(benches);
