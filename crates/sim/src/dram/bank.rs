//! Per-bank and per-rank DRAM state machines.
//!
//! Timing is tracked as "earliest cycle at which command X may issue"
//! registers, updated on every issued command — the standard technique in
//! cycle-level DRAM simulators. All times are in DRAM clock cycles.

use std::collections::VecDeque;

use crate::config::DramTiming;

/// DRAM cycle count.
pub type DramCycle = u64;

/// State of one bank.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Earliest cycle an ACTIVATE may issue.
    pub next_act: DramCycle,
    /// Earliest cycle a PRECHARGE may issue.
    pub next_pre: DramCycle,
    /// Earliest cycle a READ may issue.
    pub next_rd: DramCycle,
    /// Earliest cycle a WRITE may issue.
    pub next_wr: DramCycle,
}

impl Bank {
    /// Applies an ACTIVATE issued at `now` for `row`.
    pub fn activate(&mut self, now: DramCycle, row: u64, t: &DramTiming) {
        debug_assert!(now >= self.next_act, "ACT issued before allowed");
        debug_assert!(self.open_row.is_none(), "ACT to an open bank");
        self.open_row = Some(row);
        self.next_rd = self.next_rd.max(now + t.trcd);
        self.next_wr = self.next_wr.max(now + t.trcd);
        self.next_pre = self.next_pre.max(now + t.tras);
    }

    /// Applies a PRECHARGE issued at `now`.
    pub fn precharge(&mut self, now: DramCycle, t: &DramTiming) {
        debug_assert!(now >= self.next_pre, "PRE issued before allowed");
        self.open_row = None;
        self.next_act = self.next_act.max(now + t.trp);
    }

    /// Applies a READ issued at `now`.
    pub fn read(&mut self, now: DramCycle, t: &DramTiming) {
        debug_assert!(now >= self.next_rd, "RD issued before allowed");
        debug_assert!(self.open_row.is_some());
        // Read-to-precharge constraint.
        self.next_pre = self.next_pre.max(now + t.trtp);
    }

    /// Applies a WRITE issued at `now`.
    pub fn write(&mut self, now: DramCycle, t: &DramTiming) {
        debug_assert!(now >= self.next_wr, "WR issued before allowed");
        debug_assert!(self.open_row.is_some());
        // Write recovery: data end (cwl + tbl) plus tWR before precharge.
        self.next_pre = self.next_pre.max(now + t.cwl + t.tbl + t.twr);
    }

    /// Forces the bank closed (refresh).
    pub fn refresh_close(&mut self, ready_at: DramCycle) {
        self.open_row = None;
        self.next_act = self.next_act.max(ready_at);
    }
}

/// Rank-level constraints: tFAW window and ACT-to-ACT spacing.
#[derive(Debug, Clone)]
pub struct RankTiming {
    /// Issue times of the most recent ACTIVATEs (bounded by 4 for tFAW).
    act_history: VecDeque<DramCycle>,
    /// Earliest next ACT due to tRRD (same rank).
    pub next_act: DramCycle,
    /// Next scheduled refresh.
    pub next_refresh: DramCycle,
}

impl RankTiming {
    pub fn new(refresh_offset: DramCycle) -> Self {
        RankTiming {
            act_history: VecDeque::with_capacity(4),
            next_act: 0,
            next_refresh: refresh_offset,
        }
    }

    /// Earliest cycle an ACTIVATE could issue on this rank under tRRD
    /// and the tFAW window (a lower bound used by the fast-forward
    /// engine; `can_activate` remains the cycle-exact check).
    pub fn earliest_activate(&self, t: &DramTiming) -> DramCycle {
        let mut at = self.next_act;
        if self.act_history.len() == 4 {
            let oldest = *self.act_history.front().expect("len checked");
            at = at.max(oldest + t.tfaw);
        }
        at
    }

    /// Whether an ACTIVATE may issue at `now` under tFAW and tRRD.
    pub fn can_activate(&self, now: DramCycle, t: &DramTiming) -> bool {
        if now < self.next_act {
            return false;
        }
        if self.act_history.len() == 4 {
            let oldest = *self.act_history.front().expect("len checked");
            if now < oldest + t.tfaw {
                return false;
            }
        }
        true
    }

    /// Records an ACTIVATE issued at `now` (same-bank-group flag selects
    /// tRRD_L vs tRRD_S for the *next* ACT; we conservatively use the
    /// long value, as controllers commonly do when the next target is
    /// unknown).
    pub fn record_activate(&mut self, now: DramCycle, t: &DramTiming) {
        if self.act_history.len() == 4 {
            self.act_history.pop_front();
        }
        self.act_history.push_back(now);
        self.next_act = self.next_act.max(now + t.trrd_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::ddr5_3200()
    }

    #[test]
    fn activate_read_precharge_sequence() {
        let t = timing();
        let mut b = Bank::default();
        b.activate(0, 7, &t);
        assert_eq!(b.open_row, Some(7));
        assert_eq!(b.next_rd, t.trcd);
        assert_eq!(b.next_pre, t.tras);
        b.read(t.trcd, &t);
        // tRTP pushes next_pre only if it exceeds tRAS.
        assert_eq!(b.next_pre, t.tras.max(t.trcd + t.trtp));
        b.precharge(b.next_pre, &t);
        assert_eq!(b.open_row, None);
        let pre_at = t.tras.max(t.trcd + t.trtp);
        assert_eq!(b.next_act, pre_at + t.trp);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = timing();
        let mut b = Bank::default();
        b.activate(0, 1, &t);
        let wr_at = b.next_wr;
        b.write(wr_at, &t);
        assert!(b.next_pre >= wr_at + t.cwl + t.tbl + t.twr);
    }

    #[test]
    fn tfaw_limits_four_activates() {
        // Use a timing set where tFAW > 4 * tRRD so the window binds.
        let mut t = timing();
        t.tfaw = 48;
        let mut r = RankTiming::new(0);
        let mut now = 0;
        for _ in 0..4 {
            assert!(r.can_activate(now, &t));
            r.record_activate(now, &t);
            now += t.trrd_s;
        }
        // Fifth ACT (at 32) must wait for the tFAW window from the first.
        assert!(!r.can_activate(now, &t));
        assert!(r.can_activate(t.tfaw, &t));
    }

    #[test]
    fn trrd_spacing() {
        let t = timing();
        let mut r = RankTiming::new(0);
        r.record_activate(10, &t);
        assert!(!r.can_activate(10 + t.trrd_s - 1, &t));
        assert!(r.can_activate(10 + t.trrd_s, &t));
    }

    #[test]
    fn refresh_closes_bank() {
        let mut b = Bank::default();
        let t = timing();
        b.activate(0, 3, &t);
        b.refresh_close(1000);
        assert_eq!(b.open_row, None);
        assert!(b.next_act >= 1000);
    }
}
