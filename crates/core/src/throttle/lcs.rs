//! LCS baseline — lazy thread-block scheduling (Lee et al., HPCA 2014).
//!
//! LCS observes the execution of the *first* thread block on each core
//! and computes a static optimal block count from it, with no dynamic
//! tuning afterwards. During observation the core runs a single block;
//! once it completes, the memory-stall fraction `f` of the observation
//! window sizes the block count needed to hide memory latency:
//! `N ≈ 1 / (1 - f)` (a core stalled half the time needs two blocks to
//! stay busy, and so on), capped by the window count.
//!
//! In the paper's bandwidth-bound regime `f` is large, so LCS chooses
//! the maximum — behaving like the unoptimized baseline, which is why
//! the paper reports it shows "no meaningful improvements" there.

use llamcat_sim::arb::{ThrottleController, ThrottleInputs};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Running the first block alone and measuring.
    Observe { start_mem: u64, start_cycle: u64 },
    /// Decision locked in.
    Fixed { limit: usize },
}

/// Lazy per-core block-count selection.
#[derive(Clone)]
pub struct Lcs {
    phase: Vec<Phase>,
    seen_tbs: Vec<u64>,
}

impl Lcs {
    pub fn new() -> Self {
        Lcs {
            phase: Vec::new(),
            seen_tbs: Vec::new(),
        }
    }
}

impl Default for Lcs {
    fn default() -> Self {
        Self::new()
    }
}

impl ThrottleController for Lcs {
    fn tick(&mut self, inputs: &ThrottleInputs<'_>, max_tb: &mut [usize]) {
        let n = max_tb.len();
        if self.phase.len() != n {
            self.reset(n);
        }
        for (c, tb) in max_tb.iter_mut().enumerate() {
            match self.phase[c] {
                Phase::Observe {
                    start_mem,
                    start_cycle,
                } => {
                    *tb = 1;
                    if inputs.tbs_completed[c] > self.seen_tbs[c] {
                        // First block finished: decide.
                        let elapsed = (inputs.cycle - start_cycle).max(1);
                        let stalled = inputs.c_mem[c].saturating_sub(start_mem).min(elapsed);
                        let busy = (elapsed - stalled).max(1);
                        let needed = elapsed.div_ceil(busy) as usize;
                        let limit = needed.clamp(1, inputs.num_windows);
                        self.phase[c] = Phase::Fixed { limit };
                        *tb = limit;
                    }
                }
                Phase::Fixed { limit } => {
                    *tb = limit;
                }
            }
        }
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        // LCS reacts only to first-block completions (`tbs_completed`
        // moving), which happen on core-retirement ticks — discrete
        // events the fast-forward engine never skips. Between them the
        // observation/decision state and the max_tb output are frozen.
        None
    }

    fn reset(&mut self, num_cores: usize) {
        self.phase = vec![
            Phase::Observe {
                start_mem: 0,
                start_cycle: 0,
            };
            num_cores
        ];
        self.seen_tbs = vec![0; num_cores];
    }

    fn name(&self) -> &'static str {
        "lcs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs<'a>(
        cycle: u64,
        c_mem: &'a [u64],
        tbs: &'a [u64],
        zero: &'a [u64],
        active: &'a [usize],
    ) -> ThrottleInputs<'a> {
        ThrottleInputs {
            cycle,
            num_windows: 4,
            num_slices: 8,
            progress: zero,
            c_mem,
            c_idle: zero,
            llc_stall_cycles: 0,
            active_tbs: active,
            tbs_completed: tbs,
        }
    }

    #[test]
    fn observes_with_one_block() {
        let mut l = Lcs::new();
        let mut max_tb = vec![4usize; 1];
        let zero = [0u64];
        let active = [1usize];
        l.tick(&inputs(10, &[0], &[0], &zero, &active), &mut max_tb);
        assert_eq!(max_tb, vec![1], "lazy: single block while observing");
    }

    #[test]
    fn memory_bound_first_block_selects_maximum() {
        let mut l = Lcs::new();
        let mut max_tb = vec![4usize; 1];
        let zero = [0u64];
        let active = [1usize];
        l.tick(&inputs(0, &[0], &[0], &zero, &active), &mut max_tb);
        // Block completes at cycle 1000 having stalled 900 cycles:
        // N = ceil(1000 / 100) = 10 -> capped at 4.
        l.tick(&inputs(1000, &[900], &[1], &zero, &active), &mut max_tb);
        assert_eq!(max_tb, vec![4]);
        // Decision is static afterwards.
        l.tick(&inputs(5000, &[4900], &[9], &zero, &active), &mut max_tb);
        assert_eq!(max_tb, vec![4]);
    }

    #[test]
    fn compute_bound_first_block_stays_low() {
        let mut l = Lcs::new();
        let mut max_tb = vec![4usize; 1];
        let zero = [0u64];
        let active = [1usize];
        l.tick(&inputs(0, &[0], &[0], &zero, &active), &mut max_tb);
        // Stalled only 200 of 1000 cycles: N = ceil(1000/800) = 2.
        l.tick(&inputs(1000, &[200], &[1], &zero, &active), &mut max_tb);
        assert_eq!(max_tb, vec![2]);
    }

    #[test]
    fn cores_decide_independently() {
        let mut l = Lcs::new();
        let mut max_tb = vec![4usize; 2];
        let zero = [0u64; 2];
        let active = [1usize; 2];
        l.tick(&inputs(0, &[0, 0], &[0, 0], &zero, &active), &mut max_tb);
        // Core 0 finishes memory-bound; core 1 still observing.
        l.tick(
            &inputs(1000, &[900, 500], &[1, 0], &zero, &active),
            &mut max_tb,
        );
        assert_eq!(max_tb[0], 4);
        assert_eq!(max_tb[1], 1);
    }
}
