//! Multi-tenant serving mixes: N co-scheduled requests in one trace.
//!
//! Real serving never runs one operator in isolation: a machine holds
//! many requests at once — mixed prefill and decode, heterogeneous
//! sequence lengths, staggered arrivals — and the shared LLC is exactly
//! where they interfere. A [`WorkloadMix`] composes N requests (each any
//! [`Workload`] plus an optional arrival cycle) into a single
//! [`Program`] in which every thread block is tagged with its request
//! id, so the simulator can attribute completion and LLC behavior per
//! request (`SimStats::requests`).
//!
//! Two deterministic composition disciplines:
//!
//! * [`MixAssignment::Partitioned`] — the cores are split into N
//!   contiguous groups, one per request (earlier requests get the
//!   larger shares when the division is uneven). Requests interfere
//!   *only* through the shared LLC, MSHRs, NoC and DRAM — the spatial
//!   isolation discipline. A single-request partitioned mix is
//!   bit-identical to the solo trace.
//! * [`MixAssignment::Interleaved`] — every request is laid out over
//!   all cores and blocks are interleaved round-robin by request, so
//!   requests additionally contend for cores, instruction windows and
//!   L1s — the time-sharing discipline.
//!
//! Tenants live in disjoint address spaces: request `r`'s trace is
//! offset by `r * REQUEST_VA_STRIDE`, so no KV-cache line is ever
//! (falsely) shared across requests. The one deliberate exception is
//! the shared-prefix KV window (see
//! [`SharedPrefixWorkload`](crate::workloads::SharedPrefixWorkload)):
//! addresses at/above `SHARED_KV_BASE` are left unrelocated, so every
//! tenant reading a common system prompt hits the *same* lines.
//!
//! A [`WorkloadMix`] is the *closed-system* composition: the request
//! set and every arrival cycle are baked into the [`Program`] before
//! the run starts. Open-system serving — requests drawn from a seeded
//! [`ArrivalSpec`](crate::arrivals::ArrivalSpec) and injected mid-run
//! by a serving scheduler — instead composes its per-request traces
//! with [`generate_serve_set`], which leaves the program arrival-free
//! and home cores *relative* so the simulator's request injector can
//! place each admitted request at admission time.

use std::sync::Arc;

use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::types::{Addr, Cycle};
use serde::{Deserialize, Serialize};

use crate::mapping::Layout;
use crate::tracegen::{TraceGenConfig, TraceMeta};
use crate::workloads::Workload;

/// Virtual-address stride between tenants. Larger than every tensor
/// base the workloads use (the attention-output partials top out just
/// above `OUT_BASE` = 2^39), so tenant address spaces never overlap.
pub const REQUEST_VA_STRIDE: Addr = 1 << 40;

/// How a mix's thread blocks are laid over the machine's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MixAssignment {
    /// Deterministic core partitioning: request `r` owns a contiguous
    /// group of cores; interference is confined to the shared memory
    /// system.
    #[default]
    Partitioned,
    /// Interleaved block assignment: every request spans all cores,
    /// blocks alternate round-robin by request in trace order.
    Interleaved,
}

impl MixAssignment {
    /// Stable name (labels, JSONL).
    pub fn label(&self) -> &'static str {
        match self {
            MixAssignment::Partitioned => "part",
            MixAssignment::Interleaved => "ilv",
        }
    }
}

/// One co-scheduled request of a mix.
#[derive(Debug, Clone)]
pub struct MixedRequest {
    /// The request's operator (sequence length baked into the shape).
    pub workload: Arc<dyn Workload>,
    /// Cycle at which the request arrives; its thread blocks are not
    /// schedulable before this.
    pub arrival: Cycle,
    /// Serving priority class (higher = more urgent; 0 = best-effort).
    /// Trace generation ignores it — only class-aware admission
    /// policies (`PriorityPreempt`) act on it.
    pub class: u8,
}

/// Per-request and aggregate metadata of a generated mix trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixMeta {
    /// One [`TraceMeta`] per request, in request order.
    pub per_request: Vec<TraceMeta>,
    pub num_blocks: usize,
    pub total_load_bytes: u64,
    pub total_store_bytes: u64,
    pub max_block_instrs: usize,
}

/// N requests composed into one multi-tenant trace.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    pub requests: Vec<MixedRequest>,
    pub assignment: MixAssignment,
}

impl WorkloadMix {
    /// An empty mix with the given core-assignment discipline.
    pub fn new(assignment: MixAssignment) -> Self {
        WorkloadMix {
            requests: Vec::new(),
            assignment,
        }
    }

    /// A single-request mix (reproduces the solo trace bit-for-bit
    /// under [`MixAssignment::Partitioned`]).
    pub fn solo(workload: Arc<dyn Workload>) -> Self {
        WorkloadMix::new(MixAssignment::Partitioned).request(workload, 0)
    }

    /// Adds a best-effort (class 0) request arriving at `arrival`.
    pub fn request(self, workload: Arc<dyn Workload>, arrival: Cycle) -> Self {
        self.classed_request(workload, arrival, 0)
    }

    /// Adds a request arriving at `arrival` with a priority class.
    pub fn classed_request(
        mut self,
        workload: Arc<dyn Workload>,
        arrival: Cycle,
        class: u8,
    ) -> Self {
        self.requests.push(MixedRequest {
            workload,
            arrival,
            class,
        });
        self
    }

    /// The per-request class vector, in request order.
    pub fn classes(&self) -> Vec<u8> {
        self.requests.iter().map(|r| r.class).collect()
    }

    /// Stable label: the requests' labels and sequence lengths joined,
    /// prefixed with the assignment discipline for multi-tenant mixes.
    pub fn label(&self) -> String {
        let parts: Vec<String> = self
            .requests
            .iter()
            .map(|r| {
                let mut s = format!("{}/L{}", r.workload.label(), r.workload.shape().seq_len);
                if r.arrival > 0 {
                    s.push_str(&format!("@{}", r.arrival));
                }
                if r.class > 0 {
                    s.push_str(&format!("#c{}", r.class));
                }
                s
            })
            .collect();
        format!("mix:{}[{}]", self.assignment.label(), parts.join(" + "))
    }

    /// Rejects degenerate mixes: no requests, or any request with an
    /// invalid shape (zero sequence length included).
    pub fn validate(&self) -> Result<(), String> {
        if self.requests.is_empty() {
            return Err("mix has no requests".into());
        }
        for (r, req) in self.requests.iter().enumerate() {
            req.workload
                .validate()
                .map_err(|e| format!("mix request {r} ({}): {e}", req.workload.label()))?;
        }
        Ok(())
    }

    /// The contiguous core shares of a partitioned mix over `num_cores`
    /// cores: `(start, count)` per request, earlier requests taking the
    /// larger shares when the division is uneven.
    pub fn partition(&self, num_cores: usize) -> Result<Vec<(usize, usize)>, String> {
        let n = self.requests.len();
        if num_cores < n {
            return Err(format!(
                "partitioned mix of {n} requests needs at least {n} cores, machine has {num_cores}"
            ));
        }
        let base = num_cores / n;
        let extra = num_cores % n;
        let mut shares = Vec::with_capacity(n);
        let mut start = 0;
        for r in 0..n {
            let count = base + usize::from(r < extra);
            shares.push((start, count));
            start += count;
        }
        Ok(shares)
    }

    /// Lowers the mix to one request-tagged [`Program`].
    ///
    /// Every request is generated through the ordinary [`Workload`]
    /// machinery (same `layout`, same `l_tile`), relocated into its own
    /// address space, tagged, and composed per the assignment
    /// discipline. Deterministic: same mix, same program.
    pub fn generate(
        &self,
        layout: Layout,
        l_tile: usize,
        cfg: &TraceGenConfig,
    ) -> Result<(Program, MixMeta), String> {
        self.validate()?;
        let per_core_counts: Vec<(usize, usize)> = match self.assignment {
            MixAssignment::Partitioned => self.partition(cfg.num_cores)?,
            MixAssignment::Interleaved => vec![(0, cfg.num_cores); self.requests.len()],
        };

        // Generate each request solo on its core share, then relocate
        // into the tenant's address space.
        let mut programs = Vec::with_capacity(self.requests.len());
        let mut metas = Vec::with_capacity(self.requests.len());
        for (r, (req, &(start, count))) in self.requests.iter().zip(&per_core_counts).enumerate() {
            let shape = req.workload.shape();
            if l_tile == 0 || !shape.seq_len.is_multiple_of(l_tile) {
                return Err(format!(
                    "mix request {r}: l_tile {l_tile} must divide seq_len {}",
                    shape.seq_len
                ));
            }
            let sub_cfg = TraceGenConfig {
                num_cores: count,
                ..*cfg
            };
            let mapping = req.workload.mapping(layout, l_tile, count);
            mapping
                .validate(&shape)
                .map_err(|e| format!("mix request {r}: {e}"))?;
            let (mut program, meta) = req.workload.generate(&mapping, &sub_cfg);
            let offset = r as Addr * REQUEST_VA_STRIDE;
            for block in &mut program.blocks {
                relocate(block, offset);
            }
            for core in &mut program.assignment {
                debug_assert!(*core < count);
                *core += start;
            }
            programs.push(program);
            metas.push(meta);
        }

        // Compose: request-major for partitioned (disjoint cores, order
        // across requests is immaterial per core), round-robin by
        // request for interleaved (per-core queues alternate tenants).
        let total_blocks: usize = metas.iter().map(|m| m.num_blocks).sum();
        let mut blocks = Vec::with_capacity(total_blocks);
        let mut assignment = Vec::with_capacity(total_blocks);
        let mut tags = Vec::with_capacity(total_blocks);
        let mut arrivals = Vec::with_capacity(total_blocks);
        let mut push = |r: usize, block: ThreadBlock, core: usize| {
            blocks.push(block);
            assignment.push(core);
            tags.push(r as u32);
            arrivals.push(self.requests[r].arrival);
        };
        match self.assignment {
            MixAssignment::Partitioned => {
                for (r, p) in programs.into_iter().enumerate() {
                    for (block, core) in p.blocks.into_iter().zip(p.assignment) {
                        push(r, block, core);
                    }
                }
            }
            MixAssignment::Interleaved => {
                let mut iters: Vec<_> = programs
                    .into_iter()
                    .map(|p| p.blocks.into_iter().zip(p.assignment))
                    .collect();
                loop {
                    let mut any = false;
                    for (r, it) in iters.iter_mut().enumerate() {
                        if let Some((block, core)) = it.next() {
                            push(r, block, core);
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                }
            }
        }

        let meta = MixMeta {
            num_blocks: total_blocks,
            total_load_bytes: metas.iter().map(|m| m.total_load_bytes).sum(),
            total_store_bytes: metas.iter().map(|m| m.total_store_bytes).sum(),
            max_block_instrs: metas.iter().map(|m| m.max_block_instrs).max().unwrap_or(0),
            per_request: metas,
        };
        Ok((
            Program::with_requests(blocks, assignment, tags, arrivals),
            meta,
        ))
    }
}

/// Composes `requests` into one *open-system* serve set: every
/// request's trace is generated on the relative core range
/// `0..cores_per_request`, relocated into its own address space and
/// request-tagged — but the program carries **no arrivals** and the
/// home cores stay relative. The simulator's request injector decides
/// *when* each request's blocks become schedulable and *which*
/// absolute cores they land on (FCFS and concurrency caps keep the
/// relative range at core 0; continuous batching offsets it to the
/// admitting slot's core group).
///
/// Deterministic: same inputs, same program. Blocks are request-major,
/// so a request's blocks are contiguous in `TbId` order.
pub fn generate_serve_set(
    requests: &[Arc<dyn Workload>],
    cores_per_request: usize,
    layout: Layout,
    l_tile: usize,
    cfg: &TraceGenConfig,
) -> Result<(Program, MixMeta), String> {
    if requests.is_empty() {
        return Err("serve set has no requests".into());
    }
    if cores_per_request == 0 {
        return Err("serve set needs at least one core per request".into());
    }
    let mut blocks = Vec::new();
    let mut assignment = Vec::new();
    let mut tags = Vec::new();
    let mut metas = Vec::with_capacity(requests.len());
    for (r, req) in requests.iter().enumerate() {
        req.validate()
            .map_err(|e| format!("serve request {r} ({}): {e}", req.label()))?;
        let shape = req.shape();
        if l_tile == 0 || !shape.seq_len.is_multiple_of(l_tile) {
            return Err(format!(
                "serve request {r}: l_tile {l_tile} must divide seq_len {}",
                shape.seq_len
            ));
        }
        let sub_cfg = TraceGenConfig {
            num_cores: cores_per_request,
            ..*cfg
        };
        let mapping = req.mapping(layout, l_tile, cores_per_request);
        mapping
            .validate(&shape)
            .map_err(|e| format!("serve request {r}: {e}"))?;
        let (mut program, meta) = req.generate(&mapping, &sub_cfg);
        if program.blocks.is_empty() {
            return Err(format!("serve request {r}: trace has no thread blocks"));
        }
        let offset = r as Addr * REQUEST_VA_STRIDE;
        for block in &mut program.blocks {
            relocate(block, offset);
        }
        for (block, core) in program.blocks.into_iter().zip(program.assignment) {
            debug_assert!(core < cores_per_request);
            blocks.push(block);
            assignment.push(core);
            tags.push(r as u32);
        }
        metas.push(meta);
    }
    let meta = MixMeta {
        num_blocks: blocks.len(),
        total_load_bytes: metas.iter().map(|m| m.total_load_bytes).sum(),
        total_store_bytes: metas.iter().map(|m| m.total_store_bytes).sum(),
        max_block_instrs: metas.iter().map(|m| m.max_block_instrs).max().unwrap_or(0),
        per_request: metas,
    };
    Ok((
        Program::with_requests(blocks, assignment, tags, Vec::new()),
        meta,
    ))
}

/// Shifts a block's memory accesses into a tenant's address space.
/// Shared-prefix KV lines (at/above
/// [`SHARED_KV_BASE`](llamcat_sim::kv::SHARED_KV_BASE)) are left in
/// place: one copy across all tenants is the whole point of a shared
/// system prompt.
fn relocate(block: &mut ThreadBlock, offset: Addr) {
    use llamcat_sim::kv::SHARED_KV_BASE;
    for instr in &mut block.instrs {
        match instr {
            Instr::Load { addr, .. } | Instr::Store { addr, .. } => {
                if *addr >= SHARED_KV_BASE {
                    continue;
                }
                debug_assert!(
                    *addr < REQUEST_VA_STRIDE,
                    "solo trace address {addr:#x} exceeds the tenant VA stride"
                );
                *addr += offset;
            }
            Instr::Compute { .. } | Instr::Barrier => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::LogitOp;
    use crate::workloads::{LogitWorkload, PrefillLogitWorkload};
    use std::collections::HashSet;

    fn decode(seq_len: usize) -> Arc<dyn Workload> {
        Arc::new(LogitWorkload::new(LogitOp {
            heads: 2,
            group_size: 4,
            seq_len,
            head_dim: 128,
        }))
    }

    fn prefill(seq_len: usize) -> Arc<dyn Workload> {
        Arc::new(PrefillLogitWorkload::new(
            LogitOp {
                heads: 2,
                group_size: 2,
                seq_len,
                head_dim: 128,
            },
            4,
        ))
    }

    fn cfg() -> TraceGenConfig {
        TraceGenConfig::default()
    }

    #[test]
    fn solo_partitioned_mix_reproduces_solo_trace() {
        let w = decode(128);
        let mix = WorkloadMix::solo(w.clone());
        let (p_mix, meta) = mix.generate(Layout::PairStream, 32, &cfg()).unwrap();
        let mapping = w.mapping(Layout::PairStream, 32, cfg().num_cores);
        let (p_solo, solo_meta) = w.generate(&mapping, &cfg());
        assert_eq!(p_mix.blocks, p_solo.blocks, "blocks must be bit-identical");
        assert_eq!(p_mix.assignment, p_solo.assignment);
        assert_eq!(p_mix.num_requests(), 1);
        assert_eq!(meta.per_request, vec![solo_meta]);
    }

    #[test]
    fn partitioned_requests_occupy_disjoint_cores_and_addresses() {
        let mix = WorkloadMix::new(MixAssignment::Partitioned)
            .request(decode(128), 0)
            .request(prefill(128), 0);
        let (p, meta) = mix.generate(Layout::PairStream, 32, &cfg()).unwrap();
        assert_eq!(p.num_requests(), 2);
        assert_eq!(meta.per_request.len(), 2);
        let mut cores: Vec<HashSet<usize>> = vec![HashSet::new(), HashSet::new()];
        let mut lines: Vec<HashSet<u64>> = vec![HashSet::new(), HashSet::new()];
        for tb in 0..p.num_blocks() {
            let r = p.request_of(tb) as usize;
            cores[r].insert(p.assignment[tb]);
            for i in &p.blocks[tb].instrs {
                if let Instr::Load { addr, .. } | Instr::Store { addr, .. } = i {
                    lines[r].insert(addr / 64);
                    assert_eq!(
                        (addr / REQUEST_VA_STRIDE) as usize,
                        r,
                        "address outside the tenant's VA window"
                    );
                }
            }
        }
        assert!(
            cores[0].is_disjoint(&cores[1]),
            "core shares must not overlap"
        );
        // Request 0 owns cores [0, 8), request 1 owns [8, 16); each uses
        // min(pairs, share) of its cores.
        assert!(cores[0].iter().all(|&c| c < 8));
        assert!(cores[1].iter().all(|&c| (8..16).contains(&c)));
        assert!(lines[0].is_disjoint(&lines[1]));
    }

    #[test]
    fn uneven_partition_favors_earlier_requests() {
        let mix = WorkloadMix::new(MixAssignment::Partitioned)
            .request(decode(128), 0)
            .request(decode(128), 0)
            .request(decode(128), 0);
        // 16 cores over 3 requests: 6 + 5 + 5.
        assert_eq!(mix.partition(16).unwrap(), vec![(0, 6), (6, 5), (11, 5)]);
        assert!(mix.partition(2).is_err(), "more requests than cores");
    }

    #[test]
    fn interleaved_alternates_requests_in_block_order() {
        let mix = WorkloadMix::new(MixAssignment::Interleaved)
            .request(decode(128), 0)
            .request(decode(128), 0);
        let (p, _) = mix.generate(Layout::PairStream, 32, &cfg()).unwrap();
        // Both requests have the same block count: tags strictly
        // alternate 0, 1, 0, 1, ...
        for tb in 0..p.num_blocks() {
            assert_eq!(p.request_of(tb), (tb % 2) as u32);
        }
        // Both requests share the same (full-machine) core layout: the
        // decode shape has 8 (h, g) pairs, so both land on cores 0..8.
        let cores_of = |r: u32| -> HashSet<usize> {
            (0..p.num_blocks())
                .filter(|&tb| p.request_of(tb) == r)
                .map(|tb| p.assignment[tb])
                .collect()
        };
        assert_eq!(cores_of(0).len(), 8);
        assert_eq!(
            cores_of(0),
            cores_of(1),
            "interleaved tenants contend for cores"
        );
    }

    #[test]
    fn arrivals_tag_every_block_of_the_request() {
        let mix = WorkloadMix::new(MixAssignment::Partitioned)
            .request(decode(128), 0)
            .request(decode(128), 5_000);
        let (p, _) = mix.generate(Layout::PairStream, 32, &cfg()).unwrap();
        for tb in 0..p.num_blocks() {
            let expect = if p.request_of(tb) == 0 { 0 } else { 5_000 };
            assert_eq!(p.arrival_of(tb), expect);
        }
        assert_eq!(p.request_arrivals(), vec![0, 5_000]);
    }

    #[test]
    fn labels_are_stable_and_carry_arrivals() {
        let mix = WorkloadMix::new(MixAssignment::Interleaved)
            .request(decode(128), 0)
            .request(prefill(256), 1_000);
        assert_eq!(
            mix.label(),
            "mix:ilv[logit h2 g4 d128/L128 + prefill h2 g2 d128 q4/L256@1000]"
        );
    }

    #[test]
    fn degenerate_mixes_are_rejected() {
        assert!(WorkloadMix::new(MixAssignment::Partitioned)
            .validate()
            .is_err());
        let zero_seq = WorkloadMix::solo(decode(0));
        assert!(
            zero_seq.validate().is_err(),
            "zero seq_len must be rejected"
        );
        let bad_tile = WorkloadMix::solo(decode(128));
        assert!(bad_tile.generate(Layout::PairStream, 48, &cfg()).is_err());
    }

    #[test]
    fn serve_set_is_relative_arrival_free_and_request_major() {
        let (p, meta) = generate_serve_set(
            &[decode(128), prefill(128)],
            4,
            Layout::PairStream,
            32,
            &cfg(),
        )
        .unwrap();
        assert_eq!(p.num_requests(), 2);
        assert!(p.arrivals.is_empty(), "serve programs carry no arrivals");
        assert_eq!(meta.per_request.len(), 2);
        assert_eq!(meta.num_blocks, p.num_blocks());
        // Home cores are relative to the request's slot.
        assert!(p.assignment.iter().all(|&c| c < 4));
        // Request-major: tags are nondecreasing.
        let tags: Vec<u32> = (0..p.num_blocks()).map(|tb| p.request_of(tb)).collect();
        assert!(tags.windows(2).all(|w| w[0] <= w[1]));
        // Disjoint tenant address spaces, as for closed mixes.
        for tb in 0..p.num_blocks() {
            for i in &p.blocks[tb].instrs {
                if let Instr::Load { addr, .. } | Instr::Store { addr, .. } = i {
                    assert_eq!((addr / REQUEST_VA_STRIDE) as u32, p.request_of(tb));
                }
            }
        }
        assert!(
            generate_serve_set(&[], 4, Layout::PairStream, 32, &cfg()).is_err(),
            "empty serve set must be rejected"
        );
        assert!(
            generate_serve_set(&[decode(128)], 0, Layout::PairStream, 32, &cfg()).is_err(),
            "zero-core slots must be rejected"
        );
    }

    #[test]
    fn shared_prefix_lines_survive_relocation_across_tenants() {
        use crate::workloads::SharedPrefixWorkload;
        use llamcat_sim::kv::SHARED_KV_BASE;
        let shared = || -> Arc<dyn Workload> {
            Arc::new(SharedPrefixWorkload::new(
                LogitOp {
                    heads: 2,
                    group_size: 4,
                    seq_len: 128,
                    head_dim: 128,
                },
                64,
            ))
        };
        let mix = WorkloadMix::new(MixAssignment::Partitioned)
            .request(shared(), 0)
            .request(shared(), 0);
        let (p, _) = mix.generate(Layout::PairStream, 32, &cfg()).unwrap();
        let mut shared_lines: Vec<HashSet<u64>> = vec![HashSet::new(), HashSet::new()];
        for tb in 0..p.num_blocks() {
            let r = p.request_of(tb) as usize;
            for i in &p.blocks[tb].instrs {
                if let Instr::Load { addr, .. } | Instr::Store { addr, .. } = i {
                    if *addr >= SHARED_KV_BASE {
                        shared_lines[r].insert(addr / 64);
                    } else {
                        assert_eq!(
                            (addr / REQUEST_VA_STRIDE) as usize,
                            r,
                            "private address outside the tenant's VA window"
                        );
                    }
                }
            }
        }
        assert!(!shared_lines[0].is_empty(), "the prefix reached the trace");
        assert_eq!(
            shared_lines[0], shared_lines[1],
            "both tenants read the same shared-prefix lines"
        );
    }

    #[test]
    fn mix_meta_sums_per_request_traffic() {
        let mix = WorkloadMix::new(MixAssignment::Interleaved)
            .request(decode(128), 0)
            .request(prefill(128), 0);
        let (p, meta) = mix.generate(Layout::PairStream, 32, &cfg()).unwrap();
        assert_eq!(meta.num_blocks, p.num_blocks());
        assert_eq!(
            meta.total_load_bytes,
            meta.per_request
                .iter()
                .map(|m| m.total_load_bytes)
                .sum::<u64>()
        );
        assert_eq!(meta.total_load_bytes, p.total_load_bytes());
        assert_eq!(meta.total_store_bytes, p.total_store_bytes());
    }
}
