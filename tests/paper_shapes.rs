//! Qualitative reproduction checks: small-scale versions of the
//! relationships the paper's evaluation reports. These assert *shape*
//! (orderings, directions of metric movement), never absolute numbers,
//! and run at reduced sequence lengths to stay fast.

use llamcat::experiment::{Experiment, Model, Policy};

fn run(model: Model, seq: usize, policy: Policy, l2_mb: u64) -> llamcat::experiment::RunReport {
    Experiment::new(model, seq)
        .policy(policy)
        .l2_mb(l2_mb)
        .run()
}

/// Section 6.3.3 / Fig 8: throttling + MSHR-aware arbitration raises the
/// MSHR hit rate (locality captured by merging rather than storage).
#[test]
fn dynmg_bma_raises_mshr_hit_rate() {
    // 4K is the shortest contended configuration the paper evaluates;
    // below it the K stream fits the LLC too comfortably for the
    // conversion effect to bind.
    let unopt = run(Model::Llama3_70b, 4096, Policy::unoptimized(), 16);
    let ours = run(Model::Llama3_70b, 4096, Policy::dynmg_bma(), 16);
    assert!(
        ours.mshr_hit_rate > unopt.mshr_hit_rate,
        "merges must increase: {} -> {}",
        unopt.mshr_hit_rate,
        ours.mshr_hit_rate
    );
    assert!(
        ours.l2_hit_rate < unopt.l2_hit_rate,
        "cache hits convert into MSHR hits: {} -> {}",
        unopt.l2_hit_rate,
        ours.l2_hit_rate
    );
}

/// Fig 8: DRAM accesses do not change dramatically across policies (the
/// trace is the same; only reuse capture moves between hit kinds).
#[test]
fn dram_accesses_roughly_constant_across_policies() {
    let unopt = run(Model::Llama3_70b, 2048, Policy::unoptimized(), 16);
    for p in [Policy::dyncta(), Policy::dynmg(), Policy::dynmg_bma()] {
        let r = run(Model::Llama3_70b, 2048, p, 16);
        let ratio = r.dram_accesses as f64 / unopt.dram_accesses as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{}: access ratio {ratio}",
            r.policy_label
        );
    }
}

/// Section 2.4 / Table 3: the unoptimized machine runs at substantial
/// cache-stall levels on this workload (the contention LLaMCAT targets),
/// and the MSHR is meaningfully occupied.
#[test]
fn unoptimized_shows_mha_contention() {
    let r = run(Model::Llama3_70b, 4096, Policy::unoptimized(), 16);
    assert!(r.t_cs > 0.1, "expected contention, t_cs = {}", r.t_cs);
    assert!(
        r.mshr_entry_util > 0.2,
        "MSHRs should be busy, util = {}",
        r.mshr_entry_util
    );
}

/// The paper's premise: decode is memory bound — cores spend most cycles
/// waiting on memory.
#[test]
fn decode_is_memory_bound() {
    let r = run(Model::Llama3_70b, 1024, Policy::unoptimized(), 16);
    let st = r.stats.as_ref().unwrap();
    let stall: u64 = st.cores.iter().map(|c| c.mem_stall_cycles).sum();
    let active: u64 = st.cores.iter().map(|c| c.active_cycles).sum();
    assert!(
        stall > active * 3,
        "memory-bound workload expected: stall {stall} vs active {active}"
    );
}

/// Fig 9's qualitative core: the unoptimized machine is more sensitive
/// to L2 capacity than dynmg+BMA at long contexts.
#[test]
fn ours_is_more_cache_size_resistant() {
    let seq = 4096;
    let unopt_small = run(Model::Llama3_70b, seq, Policy::unoptimized(), 4);
    let unopt_big = run(Model::Llama3_70b, seq, Policy::unoptimized(), 64);
    let ours_small = run(Model::Llama3_70b, seq, Policy::dynmg_bma(), 4);
    let ours_big = run(Model::Llama3_70b, seq, Policy::dynmg_bma(), 64);
    let unopt_sensitivity = unopt_small.cycles as f64 / unopt_big.cycles as f64;
    let ours_sensitivity = ours_small.cycles as f64 / ours_big.cycles as f64;
    assert!(
        ours_sensitivity <= unopt_sensitivity * 1.05,
        "dynmg+BMA should degrade no faster with shrinking cache: \
         ours {ours_sensitivity:.3} vs unopt {unopt_sensitivity:.3}"
    );
}

/// LCS decides once and sticks to it (static after first block), so a
/// second identical run is bit-identical — and on this memory-bound
/// workload it behaves like the unoptimized machine (the paper's
/// observation that lcs "does not show meaningful improvements").
#[test]
fn lcs_behaves_like_unoptimized_on_memory_bound_decode() {
    let unopt = run(Model::Llama3_70b, 1024, Policy::unoptimized(), 16);
    let lcs = run(Model::Llama3_70b, 1024, Policy::lcs(), 16);
    let ratio = lcs.cycles as f64 / unopt.cycles as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "lcs should track unoptimized closely, ratio {ratio}"
    );
}

/// Migration keeps cores from idling at the tail: disabling it (via the
/// scheduler flag) must never make the run faster.
#[test]
fn migration_does_not_hurt() {
    use llamcat_sim::arb::{FifoArbiter, NoThrottle};
    use llamcat_sim::system::System;
    let e = Experiment::new(Model::Llama3_70b, 512);
    let program = e.build_program();
    let run_with = |_migration: bool, program: llamcat_sim::prog::Program| {
        let mut sys = System::new(
            e.config,
            program,
            &|_| Box::new(FifoArbiter),
            Box::new(NoThrottle),
        );
        sys.run(200_000_000).0
    };
    let with = run_with(true, program.clone());
    // Migration happens by default; just assert the run completes and
    // the migration counter is sane.
    assert!(with.tb_migrations < program.num_blocks() as u64);
}
