//! Offline stand-in for `proptest`, covering the macro-based surface
//! this workspace's property suite uses: the `proptest!` wrapper,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, `any::<T>()`,
//! numeric range strategies, tuple strategies and
//! `proptest::collection::vec`.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its inputs (via the macro's
//!   captured bindings) and the case seed, but is not minimized;
//! * generation is a deterministic function of the case index alone
//!   (SplitMix64), so failures reproduce without a persistence file;
//! * the case count comes from `PROPTEST_CASES` (default 64, chosen so
//!   the full suite stays CI-friendly; the real crate defaults to 256).

use std::ops::Range;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Rng, Strategy, TestCaseError,
    };
}

/// SplitMix64: small, fast, and equidistributed enough for test-input
/// generation. Deterministic per case index.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via Lemire-style widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range strategy");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs. The real crate's `Strategy` produces
/// shrinkable value trees; this shim produces plain values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut Rng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Mirror of `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    use super::{Rng, Strategy};
    use std::ops::Range;

    /// Element count for `vec`: a fixed size or a half-open range.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let n = self.size.min + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Why a test case did not pass: rejected by `prop_assume!` (retried) or
/// failed an assertion (fatal).
#[derive(Debug)]
pub enum TestCaseError {
    Reject(String),
    Fail(String),
}

impl TestCaseError {
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Case count from `PROPTEST_CASES`, defaulting to 64 so the property
/// suite finishes in CI-friendly time.
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Drives one property: runs `body` with per-case RNGs until
/// `case_count()` cases pass. Panics on the first failing case, naming
/// the case seed for reproduction.
pub fn run_cases<F>(name: &str, mut body: F)
where
    F: FnMut(&mut Rng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let mut passed = 0u64;
    let mut attempts = 0u64;
    while passed < cases {
        attempts += 1;
        if attempts > cases.saturating_mul(20).max(1000) {
            panic!(
                "property `{name}`: too many rejected cases \
                 ({passed}/{cases} passed after {attempts} attempts)"
            );
        }
        let mut rng = Rng::new(attempts.wrapping_mul(0x5851_F42D_4C95_7F2D));
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case seed {attempts}: {msg}")
            }
        }
    }
}

/// Declares property tests. Each function's arguments are drawn from
/// the strategies after `in`, then the body runs as a normal test.
#[macro_export]
macro_rules! proptest {
    ($(
        #[$meta:meta]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[$meta]
        fn $name() {
            $crate::run_cases(stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = |seed| {
            let mut rng = Rng::new(seed);
            (0..32).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    proptest! {
        #[test]
        fn vec_strategy_respects_size(xs in crate::collection::vec(0u64..100, 3..9)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 9);
            for x in xs {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
