//! Prefix-cache-aware arbitration — policy "PFA".
//!
//! With a tiered KV store attached, a request whose shared-prefix KV
//! blocks are mid-promotion from the slow tier cannot make progress at
//! the DRAM boundary anyway: its reads park as waiters until the
//! transfer lands. A FIFO arbiter keeps spending slice bandwidth on
//! that tenant's queue entries while its neighbours' warm traffic sits
//! behind them. PFA deprioritizes requests the KV tier has marked busy
//! (see `llamcat_sim::kv`): it serves the oldest queued entry whose
//! tenant has *no* in-flight promotion, falling back to plain FIFO when
//! every queued tenant is blocked (or when no KV tier is attached and
//! the busy view is empty).

use llamcat_sim::arb::{ArbiterCtx, RequestArbiter};

/// Policy PFA: oldest request whose tenant is not waiting on a KV
/// promotion, FIFO when all are.
#[derive(Debug, Default, Clone)]
pub struct PrefixAwareArbiter;

impl RequestArbiter for PrefixAwareArbiter {
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        if ctx.is_empty() {
            return None;
        }
        // Oldest non-busy entry; all-busy degrades to FIFO so the queue
        // still drains (a parked head retries at the dispatch boundary).
        Some((0..ctx.len()).find(|&i| !ctx.kv_busy_of(i)).unwrap_or(0))
    }

    fn wants_mshr_snapshot(&self) -> bool {
        false // reads only the KV busy view; never ctx.mshr
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        None // stateless between selections: ticking is a no-op
    }

    fn name(&self) -> &'static str {
        "PFA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamcat_sim::mshr::MshrSnapshot;
    use llamcat_sim::pool::{ReqHandle, ReqPool};
    use llamcat_sim::types::MemReq;

    fn pool_with(reqs: &[(usize, u32, u64)]) -> (ReqPool, Vec<ReqHandle>) {
        let mut pool = ReqPool::default();
        let handles = reqs
            .iter()
            .map(|&(core, request, addr)| {
                pool.alloc(MemReq {
                    id: addr,
                    core,
                    request,
                    line_addr: addr,
                    is_write: false,
                    issued_at: 0,
                })
            })
            .collect();
        (pool, handles)
    }

    fn ctx_with<'a>(
        queue: &'a [ReqHandle],
        pool: &'a ReqPool,
        kv_busy: &'a [bool],
        snap: &'a MshrSnapshot,
    ) -> ArbiterCtx<'a> {
        ArbiterCtx {
            queue,
            pool,
            mshr: snap,
            served: &[],
            kv_busy,
            cycle: 0,
        }
    }

    #[test]
    fn skips_busy_tenants_oldest_first() {
        let mut a = PrefixAwareArbiter;
        let snap = MshrSnapshot::default();
        let (pool, queue) = pool_with(&[(0, 0, 0x40), (1, 1, 0x80), (2, 2, 0xc0)]);
        // Tenant 0 is mid-promotion: oldest non-busy entry wins.
        let busy = vec![true, false, false];
        assert_eq!(a.select(&ctx_with(&queue, &pool, &busy, &snap)), Some(1));
    }

    #[test]
    fn all_busy_degrades_to_fifo() {
        let mut a = PrefixAwareArbiter;
        let snap = MshrSnapshot::default();
        let (pool, queue) = pool_with(&[(0, 0, 0x40), (1, 1, 0x80)]);
        let busy = vec![true, true];
        assert_eq!(a.select(&ctx_with(&queue, &pool, &busy, &snap)), Some(0));
    }

    #[test]
    fn no_kv_tier_is_plain_fifo() {
        let mut a = PrefixAwareArbiter;
        let snap = MshrSnapshot::default();
        let (pool, queue) = pool_with(&[(3, 7, 0x40), (0, 0, 0x80)]);
        // Empty busy view (no tier attached): every tenant reads as idle.
        assert_eq!(a.select(&ctx_with(&queue, &pool, &[], &snap)), Some(0));
    }

    #[test]
    fn empty_queue_yields_none() {
        let mut a = PrefixAwareArbiter;
        let snap = MshrSnapshot::default();
        let pool = ReqPool::default();
        assert_eq!(a.select(&ctx_with(&[], &pool, &[], &snap)), None);
    }
}
