//! Fundamental identifiers and message types shared across the simulator.
//!
//! Everything the simulator moves around is expressed in terms of *line
//! addresses* (byte address of a cache-line-aligned block) and small integer
//! identifiers. Keeping these as plain newtypes (rather than a general
//! object graph) keeps the hot tick loop allocation-free.

use serde::{Deserialize, Serialize};

/// Byte address in the simulated physical address space.
pub type Addr = u64;

/// Simulated core-clock cycle count.
pub type Cycle = u64;

/// Index of a processor core (vector core) in the system.
pub type CoreId = usize;

/// Index of an LLC slice.
pub type SliceId = usize;

/// Index of an instruction window within a core.
pub type WindowId = usize;

/// Monotonically increasing identifier for in-flight memory requests.
pub type ReqId = u64;

/// Cache line size used throughout the system (Table 5: 64 B).
pub const LINE_BYTES: u64 = 64;

/// Returns the line-aligned base address containing `addr`.
#[inline(always)]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_BYTES - 1)
}

/// Returns the line index (address divided by the line size).
#[inline(always)]
pub fn line_index(addr: Addr) -> u64 {
    addr >> LINE_BYTES.trailing_zeros()
}

/// A memory request travelling from a core's L1 towards an LLC slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemReq {
    /// Unique id, assigned by the issuing L1.
    pub id: ReqId,
    /// Core that issued the request.
    pub core: CoreId,
    /// Serving request (tenant) the issuing thread block belongs to;
    /// 0 for solo traces. Pure attribution — no policy reads it.
    pub request: u32,
    /// Line-aligned address.
    pub line_addr: Addr,
    /// True for (posted) write-through stores, false for loads.
    pub is_write: bool,
    /// Core cycle at which the request entered the memory system
    /// (for latency accounting).
    pub issued_at: Cycle,
}

/// A response travelling from an LLC slice back to a core.
///
/// Responses are only generated for loads; stores are posted (fire and
/// forget) because the L1 is write-through / write-no-allocate and the
/// core never waits on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResp {
    /// Id of the original request.
    pub id: ReqId,
    /// Core the response is destined for.
    pub core: CoreId,
    /// Line-aligned address of the returned data.
    pub line_addr: Addr,
}

/// A request from an LLC slice to the DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramReq {
    /// Line-aligned address.
    pub line_addr: Addr,
    /// True for write-backs of dirty victims, false for fills.
    pub is_write: bool,
    /// Slice that issued the request (fills are routed back to it).
    pub slice: SliceId,
}

/// A completed DRAM read returning a line to an LLC slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramFill {
    pub line_addr: Addr,
    pub slice: SliceId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(0x12345), 0x12340);
        assert_eq!(line_index(128), 2);
    }

    #[test]
    fn line_of_is_idempotent() {
        for addr in [0u64, 1, 63, 64, 65, 4095, 1 << 40] {
            assert_eq!(line_of(line_of(addr)), line_of(addr));
            assert_eq!(line_of(addr) % LINE_BYTES, 0);
        }
    }
}
