//! Cache-capacity scenario (a runnable slice of Fig 9): how sensitive
//! each policy is to L2 size under a long context.
//!
//! ```text
//! cargo run --release --example cache_sweep [seq_len] [70b|405b]
//! ```

use llamcat::experiment::{Experiment, Model, Policy};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seq_len: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8192);
    let model = match args.get(2).map(|s| s.as_str()) {
        Some("405b") => Model::Llama3_405b,
        _ => Model::Llama3_70b,
    };
    let sizes = [8u64, 16, 32, 64];
    let policies = [
        Policy::unoptimized(),
        Policy::dyncta(),
        Policy::dynmg(),
        Policy::dynmg_bma(),
    ];

    println!("L2 capacity sweep, {:?} @ seq {}\n", model, seq_len);
    print!("{:<16}", "policy");
    for mb in sizes {
        print!("{:>10}", format!("{mb}MB"));
    }
    println!();
    // Normalize everything against unoptimized at the largest cache: the
    // "how much cache does this policy need" view.
    let ref_cycles = Experiment::new(model, seq_len)
        .l2_mb(*sizes.last().expect("non-empty"))
        .run()
        .cycles;
    for p in policies {
        print!("{:<16}", p.label());
        for &mb in &sizes {
            let r = Experiment::new(model, seq_len).l2_mb(mb).policy(p).run();
            print!("{:>9.3}x", ref_cycles as f64 / r.cycles as f64);
        }
        println!();
    }
    println!(
        "\n(values are speedups vs unoptimized @ {}MB; a flat row means the\n policy is insensitive to cache size — the paper's claim for dynmg+BMA)",
        sizes.last().expect("non-empty")
    );
}
