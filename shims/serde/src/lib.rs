//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal serialization framework under the same crate name.
//! Unlike real serde's visitor architecture, everything routes through a
//! self-describing [`Value`] tree: `Serialize` lowers a type into a
//! `Value`, `Deserialize` rebuilds it from one. `serde_json` (also a
//! shim) maps `Value` to and from JSON text.
//!
//! The API surface is intentionally limited to what this workspace uses:
//! `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//! (with `#[serde(skip)]` on fields), plus impls for the primitive,
//! tuple and container types appearing in those structs. Swapping the
//! workspace `path` dependency for the registry crate restores the real
//! implementation without source changes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// Self-describing serialized form: the common currency between
/// `Serialize`, `Deserialize` and the data formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON objects; struct fields).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization (and, rarely, serialization) error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in a serialized map; used by derived code.
pub fn get_field<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Lowers a value into the self-describing [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$(stringify!($idx)),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize + MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_entries(v)
    }
}

impl<K: Serialize + MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_entries(v)
    }
}

fn map_entries<K: MapKey, V: Deserialize, C: FromIterator<(K, V)>>(v: &Value) -> Result<C, Error> {
    v.as_map()
        .ok_or_else(|| Error::custom(format!("expected map, got {v:?}")))?
        .iter()
        .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
        .collect()
}

/// Types usable as map keys when a map serializes to a JSON object
/// (string-keyed).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("invalid integer key `{s}`")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
