//! Thread-throttling policies (Sections 2.5 and 4.2).
//!
//! * [`dynmg::DynMg`] — the paper's two-level dynamic multi-gear
//!   controller (the throttling contribution).
//! * [`dyncta::Dyncta`] — the DYNCTA baseline (per-core ±1, no spatial
//!   dimension).
//! * [`lcs::Lcs`] — the LCS baseline (static decision from the first
//!   thread block).

pub mod dyncta;
pub mod dynmg;
pub mod lcs;

pub use dyncta::{Dyncta, DynctaConfig};
pub use dynmg::{Contention, DynMg, DynMgConfig, InCoreConfig};
pub use lcs::Lcs;
