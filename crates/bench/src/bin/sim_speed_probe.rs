//! Wall-clock probe of simulator throughput (cycles simulated per
//! second) on the ISSUE-5 benchmark cells: fig7-shaped decode, prefill,
//! and one PR-4 serving mix, in both step modes.
//!
//! A lighter-weight dev companion to `cargo bench --bench sim_speed`
//! (which emits the machine-readable report); `decode-cycle` mode
//! repeats one cell for profilers.
//!
//! Usage: `sim_speed_probe [seq_len] [decode-cycle]` (default 2048).

use std::time::Instant;

use llamcat::experiment::{Experiment, Model, Policy};
use llamcat::spec::MixSpec;
use llamcat_sim::system::StepMode;
use llamcat_trace::workloads::WorkloadSpec;

fn run(label: &str, e: &Experiment) {
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let exp = e.clone().step_mode(mode);
        let mut best = f64::MAX;
        let mut cycles = 0;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = exp.run();
            best = best.min(t0.elapsed().as_secs_f64());
            cycles = r.cycles;
        }
        println!(
            "{label:<28} {mode:?}: {:>12} cycles  {best:>7.3}s  {:>12.0} cyc/s",
            cycles,
            cycles as f64 / best
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seq_len: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(2048);

    let decode = Experiment::new(Model::Llama3_70b, seq_len).policy(Policy::unoptimized());
    if args.get(2).map(|s| s.as_str()) == Some("decode-cycle") {
        // Profiling target: repeat only the fig7 decode Cycle cell.
        for _ in 0..4 {
            let exp = decode.clone().step_mode(StepMode::Cycle);
            let t0 = Instant::now();
            let r = exp.run();
            println!("{} cycles {:.3}s", r.cycles, t0.elapsed().as_secs_f64());
        }
        return;
    }
    run("fig7 decode unoptimized", &decode);

    let decode_bma = Experiment::new(Model::Llama3_70b, seq_len).policy(Policy::dynmg_bma());
    run("fig7 decode dynmg+BMA", &decode_bma);

    let prefill = Experiment::from_spec(
        &WorkloadSpec::PrefillLogit {
            heads: 8,
            group_size: 8,
            head_dim: 128,
            query_tokens: 16,
        },
        seq_len,
    )
    .policy(Policy::unoptimized());
    run("prefill unoptimized", &prefill);

    let mix = MixSpec::partitioned()
        .request(WorkloadSpec::llama3_70b(), seq_len, 0)
        .request(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 4,
            },
            seq_len / 2,
            0,
        );
    let mix_exp = Experiment::from_mix_spec(&mix)
        .unwrap()
        .policy(Policy::dynmg_bma());
    run("mix decode+prefill dynmg+BMA", &mix_exp);
}
