//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote in
//! this build environment). Supports non-generic structs (named, tuple,
//! unit) and enums (unit, tuple and struct variants), plus the
//! `#[serde(skip)]` and `#[serde(default)]` field attributes. Anything
//! else produces a `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: a missing key deserializes to
    /// `Default::default()` instead of erroring (serialization is
    /// unaffected).
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, tr: Trait) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match tr {
                Trait::Serialize => gen_serialize(&item),
                Trait::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("serde_derive generated invalid code")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Attributes recognized on fields (and tolerated elsewhere).
#[derive(Default, Clone, Copy)]
struct Attrs {
    skip: bool,
    default: bool,
}

/// Consumes leading `#[...]` attributes; recognizes `#[serde(skip)]`
/// and `#[serde(default)]` (other serde options are rejected).
fn eat_attrs(it: &mut TokenIter) -> Result<Attrs, String> {
    let mut attrs = Attrs::default();
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = g.stream().into_iter();
                let is_serde = matches!(
                    inner.next(),
                    Some(TokenTree::Ident(i)) if i.to_string() == "serde"
                );
                if is_serde {
                    let args = match inner.next() {
                        Some(TokenTree::Group(args)) => args.stream().to_string(),
                        _ => String::new(),
                    };
                    match args.trim() {
                        "skip" => attrs.skip = true,
                        "default" => attrs.default = true,
                        other => {
                            return Err(format!("unsupported serde attribute `{other}`"));
                        }
                    }
                }
            }
            _ => return Err("malformed attribute".into()),
        }
    }
    Ok(attrs)
}

/// Consumes `pub`, `pub(crate)`, `pub(super)`, ...
fn eat_visibility(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        other => Err(format!("expected {what}, found {other:?}")),
    }
}

/// Consumes tokens of a type (or discriminant expression) up to a
/// top-level `,`, tracking `<...>` nesting. The comma is consumed.
fn skip_until_comma(it: &mut TokenIter) {
    let mut angle: i64 = 0;
    while let Some(tt) = it.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                it.next();
                return;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            _ => {}
        }
        it.next();
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    eat_attrs(&mut it)?;
    eat_visibility(&mut it);
    let kind = expect_ident(&mut it, "`struct` or `enum`")?;
    let name = expect_ident(&mut it, "type name")?;
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = eat_attrs(&mut it)?;
        if it.peek().is_none() {
            break;
        }
        eat_visibility(&mut it);
        let name = expect_ident(&mut it, "field name")?;
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_until_comma(&mut it);
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut n = 0;
    while it.peek().is_some() {
        skip_until_comma(&mut it);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut it)?;
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it, "variant name")?;
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                it.next();
                Fields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and/or the trailing comma.
        skip_until_comma(&mut it);
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn impl_header(name: &str, tr: Trait) -> String {
    let (trait_name, sig) = match tr {
        Trait::Serialize => (
            "Serialize",
            "fn to_value(&self) -> serde::Value".to_string(),
        ),
        Trait::Deserialize => (
            "Deserialize",
            "fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::Error>"
                .to_string(),
        ),
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_variables)]\n\
         impl serde::{trait_name} for {name} {{\n    {sig} {{\n"
    )
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = ser_fields_expr(fields, "self.", true);
            format!(
                "{}{body}\n    }}\n}}\n",
                impl_header(name, Trait::Serialize)
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let pushes: String = fs
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), serde::Serialize::to_value({0})),",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), serde::Value::Map(vec![{pushes}]))]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{}match self {{\n{arms}}}\n    }}\n}}\n",
                impl_header(name, Trait::Serialize)
            )
        }
    }
}

/// Expression serializing a field set. `prefix` accesses the fields
/// (`self.` for structs); `by_ref` adds `&` for non-Copy access.
fn ser_fields_expr(fields: &Fields, prefix: &str, by_ref: bool) -> String {
    let amp = if by_ref { "&" } else { "" };
    match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let pushes: String = fs
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), serde::Serialize::to_value({amp}{prefix}{0})),",
                        f.name
                    )
                })
                .collect();
            format!("serde::Value::Map(vec![{pushes}])")
        }
        Fields::Tuple(1) => format!("serde::Serialize::to_value({amp}{prefix}0)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value({amp}{prefix}{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = de_fields_expr(name, &name.to_string(), fields, "__v");
            format!(
                "{}{body}\n    }}\n}}\n",
                impl_header(name, Trait::Deserialize)
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    fields => {
                        let expr =
                            de_fields_expr(name, &format!("{name}::{vn}"), fields, "__inner");
                        data_arms.push_str(&format!("\"{vn}\" => {{ {expr} }}\n"));
                    }
                }
            }
            format!(
                "{header}match __v {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(serde::Error::custom(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = &__m[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(serde::Error::custom(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::core::result::Result::Err(serde::Error::custom(format!(\
                 \"invalid {name} value: {{__other:?}}\"))),\n\
                 }}\n    }}\n}}\n",
                header = impl_header(name, Trait::Deserialize)
            )
        }
    }
}

/// Expression deserializing `src` (a `&serde::Value`) into constructor
/// `ctor` with the given fields. Evaluates to `Result<_, serde::Error>`.
fn de_fields_expr(type_name: &str, ctor: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Unit => format!("{{ let _ = {src}; ::core::result::Result::Ok({ctor}) }}"),
        Fields::Named(fs) => {
            let inits: String = fs
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default(),\n", f.name)
                    } else if f.default {
                        format!(
                            "{0}: match serde::get_field(__map, \"{0}\") {{\n\
                             ::core::result::Result::Ok(__v) => serde::Deserialize::from_value(__v)?,\n\
                             ::core::result::Result::Err(_) => ::core::default::Default::default(),\n\
                             }},\n",
                            f.name
                        )
                    } else {
                        format!(
                            "{0}: serde::Deserialize::from_value(serde::get_field(__map, \"{0}\")?)?,\n",
                            f.name
                        )
                    }
                })
                .collect();
            format!(
                "{{\nlet __map = {src}.as_map().ok_or_else(|| serde::Error::custom(\
                 \"expected map for {type_name}\"))?;\n\
                 ::core::result::Result::Ok({ctor} {{\n{inits}}})\n}}"
            )
        }
        Fields::Tuple(1) => {
            format!("::core::result::Result::Ok({ctor}(serde::Deserialize::from_value({src})?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "{{\nlet __seq = {src}.as_seq().ok_or_else(|| serde::Error::custom(\
                 \"expected sequence for {type_name}\"))?;\n\
                 if __seq.len() != {n} {{\n\
                 return ::core::result::Result::Err(serde::Error::custom(\
                 \"wrong tuple arity for {type_name}\"));\n}}\n\
                 ::core::result::Result::Ok({ctor}({items}))\n}}",
                items = items.join(", ")
            )
        }
    }
}
