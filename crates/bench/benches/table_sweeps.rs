//! Tables 2–4: the throttling parameter sweeps.
//!
//! The paper obtains its Table 2 (sampling periods, max gear), Table 3
//! (t_cs contention bands) and Table 4 (in-core thresholds) by parameter
//! sweeping on its simulator. This bench repeats the sweeps on this
//! substrate: each candidate configuration runs the llama3 70b benchmark
//! and reports the speedup over unoptimized, so the chosen defaults are
//! auditable rather than folklore.
//!
//! Each sweep is one [`Campaign`] whose policy axis is the *same*
//! family (dynmg) with different embedded [`DynMgConfig`]s — the
//! configurations travel inside the `PolicySpec`s, which is exactly
//! what the removed `LLAMCAT_DYNMG_*` environment variables could not
//! express per-cell.

use llamcat::experiment::Model;
use llamcat::spec::PolicySpec;
use llamcat::throttle::{DynMgConfig, InCoreConfig};
use llamcat_bench::{scale_divisor, scale_label, Campaign};

/// Runs one dynmg-config sweep and prints speedup-over-unoptimized per
/// candidate, tagging `default_idx` as the chosen operating point.
fn sweep(
    title: &str,
    header: &str,
    seq: usize,
    candidates: Vec<(String, DynMgConfig)>,
    default_idx: usize,
    default_note: &str,
) {
    let (labels, configs): (Vec<_>, Vec<_>) = candidates.into_iter().unzip();
    let report = Campaign::new(title)
        .workload(Model::Llama3_70b.spec())
        .seq_lens([seq])
        .policies(configs.into_iter().map(PolicySpec::dynmg_with))
        .baseline(PolicySpec::unoptimized())
        .run()
        .expect("sweep campaign");
    println!("\n### {title}");
    println!("{:<18} {:>10}", header, "speedup");
    for (i, rec) in report.records.iter().enumerate() {
        println!(
            "{:<18} {:>9.3}x{}",
            labels[i],
            rec.speedup.expect("baseline set"),
            if i == default_idx { default_note } else { "" }
        );
    }
}

fn main() {
    let seq = 8192 / scale_divisor();
    println!(
        "# Tables 2-4 — throttling parameter sweeps, llama3 70b @ {}K (scale: {})",
        seq / 1024,
        scale_label()
    );

    // Table 2: sampling period / sub-period.
    sweep(
        "Table 2 sweep: dynmg sampling period (sub-period = period/5)",
        "period/sub",
        seq,
        [1000u64, 2000, 4000, 6000, 12000, 24000]
            .into_iter()
            .map(|period| {
                (
                    format!("{}/{}", period, period / 5),
                    DynMgConfig {
                        sampling_period: period,
                        sub_period: period / 5,
                        ..Default::default()
                    },
                )
            })
            .collect(),
        3,
        "   <- default",
    );

    // Table 2: maximum gear.
    sweep(
        "Table 2 sweep: maximum gear",
        "max gear",
        seq,
        (1..=4usize)
            .map(|max_gear| {
                let fractions = [0.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 3.0 / 4.0];
                (
                    format!("gear {max_gear}"),
                    DynMgConfig {
                        max_gear,
                        gear_fractions: fractions[..=max_gear].to_vec(),
                        ..Default::default()
                    },
                )
            })
            .collect(),
        3,
        "   <- Table 2 value",
    );

    // Table 3: contention band placement (scale the band edges).
    println!("\n### Table 3 sweep: t_cs classification bands (edges scaled)");
    println!("{:<18} {:>10}", "band scale", "note");
    let unopt = Campaign::new("table3")
        .workload(Model::Llama3_70b.spec())
        .seq_lens([seq])
        .policy(PolicySpec::unoptimized())
        .run()
        .expect("table3 campaign");
    let t_cs = unopt.records[0].report.t_cs;
    for (scale, low, normal, high) in [
        (0.5, 0.05, 0.10, 0.1875),
        (1.0, 0.10, 0.20, 0.375),
        (1.5, 0.15, 0.30, 0.5625),
    ] {
        // The classification bands live in `Contention::classify`; the
        // sweep here reports how often each band fires at the
        // unoptimized operating point rather than recompiling the
        // classifier: measured t_cs decides which gear trajectory the
        // controller would follow.
        let band = if t_cs < low {
            "Low"
        } else if t_cs < normal {
            "Normal"
        } else if t_cs < high {
            "High"
        } else {
            "Extreme"
        };
        println!(
            "{:<18} t_cs={:.3} -> {}{}",
            format!("x{scale}"),
            t_cs,
            band,
            if scale == 1.0 {
                "   <- Table 3 bands"
            } else {
                ""
            }
        );
    }

    // Table 4: in-core thresholds.
    let sub = DynMgConfig::default().sub_period;
    sweep(
        "Table 4 sweep: in-core C_mem bounds (per sub-period)",
        "upper/lower",
        seq,
        [(0.4, 0.3), (0.625, 0.45), (0.8, 0.6), (0.95, 0.8)]
            .into_iter()
            .map(|(upper_frac, lower_frac)| {
                (
                    format!("{:.0}%/{:.0}%", upper_frac * 100.0, lower_frac * 100.0),
                    DynMgConfig {
                        in_core: InCoreConfig {
                            c_idle_upper: 4,
                            c_mem_upper: (sub as f64 * upper_frac) as u64,
                            c_mem_lower: (sub as f64 * lower_frac) as u64,
                        },
                        ..Default::default()
                    },
                )
            })
            .collect(),
        1,
        "   <- Table 4 ratio (250/400)",
    );
}
