//! Private per-core L1 cache with a miss table (per-core MSHRs).
//!
//! Table 5: 64 KB, 8-way, 64 B lines, latency 1, allocate-on-fill,
//! streaming, write-no-allocate, write-through. Because the L1 is
//! write-through it never holds dirty data; stores are forwarded to the
//! LLC unconditionally and are posted (the core does not wait).

use std::collections::HashMap;

use crate::cache::{InsertPolicy, SetAssocCache};
use crate::config::L1Config;
use crate::types::{Addr, Cycle, WindowId};

/// Result of presenting one line-sized load to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1LoadOutcome {
    /// Data present: no stall (latency 1 is folded into issue).
    Hit,
    /// Line already being fetched; this window was added as a waiter.
    MergedMiss,
    /// New miss: a request must be sent to the LLC.
    NewMiss,
    /// Miss table exhausted: the instruction must retry later.
    Blocked,
}

#[derive(Debug, Clone)]
struct MissEntry {
    line_addr: Addr,
    waiters: Vec<(WindowId, Cycle)>,
}

/// The L1 cache plus its outstanding-miss bookkeeping.
///
/// The miss table is point-addressed: every operation resolves a line
/// through the `index` map in O(1) instead of scanning the entry array
/// (the scans dominated whole-simulation wall time — each issued vector
/// load probes the table several times per line, every cycle a blocked
/// window retries). The index is used for key lookups only, never
/// iterated, so behavior is bit-identical to the scanning version.
pub struct L1Cache {
    cfg: L1Config,
    storage: SetAssocCache,
    misses: Vec<Option<MissEntry>>,
    /// line address -> slot in `misses`.
    index: HashMap<Addr, usize>,
    /// Free slots in `misses` (stack; slot identity has no behavioral
    /// effect — entries are only ever resolved by line address).
    free: Vec<usize>,
    occupied: usize,
}

impl L1Cache {
    pub fn new(cfg: L1Config) -> Self {
        let sets = cfg.geometry.num_sets();
        L1Cache {
            cfg,
            storage: SetAssocCache::new(sets, cfg.geometry.associativity, 0),
            misses: vec![None; cfg.miss_entries],
            index: HashMap::with_capacity(cfg.miss_entries),
            free: (0..cfg.miss_entries).rev().collect(),
            occupied: 0,
        }
    }

    fn insert_policy(&self) -> InsertPolicy {
        if self.cfg.streaming {
            InsertPolicy::Lru
        } else {
            InsertPolicy::Mru
        }
    }

    /// Presents a line-sized load from `window` at cycle `now`.
    pub fn load(&mut self, line_addr: Addr, window: WindowId, now: Cycle) -> L1LoadOutcome {
        if self.storage.access(line_addr, false) {
            return L1LoadOutcome::Hit;
        }
        // Merge into a pending fetch if possible.
        if let Some(&slot) = self.index.get(&line_addr) {
            let entry = self.misses[slot].as_mut().expect("indexed slot is live");
            if entry.waiters.len() >= self.cfg.miss_targets {
                return L1LoadOutcome::Blocked;
            }
            entry.waiters.push((window, now));
            return L1LoadOutcome::MergedMiss;
        }
        let Some(slot) = self.free.pop() else {
            return L1LoadOutcome::Blocked;
        };
        self.misses[slot] = Some(MissEntry {
            line_addr,
            waiters: vec![(window, now)],
        });
        self.index.insert(line_addr, slot);
        self.occupied += 1;
        L1LoadOutcome::NewMiss
    }

    /// Presents a line-sized store. Write-no-allocate / write-through:
    /// updates the line if present; the caller always forwards the store
    /// to the LLC.
    pub fn store(&mut self, line_addr: Addr) {
        // Write-through: the L1 copy stays clean (dirty bit not set).
        self.storage.access(line_addr, false);
    }

    /// A fill returned from the LLC: installs the line (allocate-on-fill)
    /// and returns the waiting windows with their issue cycles.
    pub fn fill(&mut self, line_addr: Addr, now: Cycle) -> Vec<(WindowId, Cycle)> {
        let _ = now;
        let policy = self.insert_policy();
        self.storage.insert(line_addr, false, policy);
        if let Some(slot) = self.index.remove(&line_addr) {
            let entry = self.misses[slot].take().expect("indexed slot is live");
            debug_assert_eq!(entry.line_addr, line_addr, "index points at wrong entry");
            self.free.push(slot);
            self.occupied -= 1;
            return entry.waiters;
        }
        Vec::new()
    }

    /// Outstanding distinct line misses.
    pub fn outstanding(&self) -> usize {
        self.occupied
    }

    /// Miss-table capacity (`miss_entries`).
    pub fn capacity(&self) -> usize {
        self.misses.len()
    }

    /// Probes storage without touching replacement state.
    pub fn probe(&self, line_addr: Addr) -> bool {
        self.storage.probe(line_addr)
    }

    /// Whether a pending miss for `line_addr` can accept another waiter.
    pub fn has_target_space(&self, line_addr: Addr) -> bool {
        self.index.get(&line_addr).is_some_and(|&slot| {
            self.misses[slot]
                .as_ref()
                .is_some_and(|e| e.waiters.len() < self.cfg.miss_targets)
        })
    }

    /// Whether a miss for `line_addr` is pending.
    pub fn miss_pending(&self, line_addr: Addr) -> bool {
        self.index.contains_key(&line_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::types::LINE_BYTES;

    fn l1() -> L1Cache {
        L1Cache::new(SystemConfig::table5().l1)
    }

    fn a(line: u64) -> Addr {
        line * LINE_BYTES
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = l1();
        assert_eq!(c.load(a(1), 0, 0), L1LoadOutcome::NewMiss);
        assert_eq!(c.load(a(1), 1, 1), L1LoadOutcome::MergedMiss);
        assert!(c.miss_pending(a(1)));
        let waiters = c.fill(a(1), 10);
        assert_eq!(waiters, vec![(0, 0), (1, 1)]);
        assert_eq!(c.outstanding(), 0);
        assert_eq!(c.load(a(1), 2, 11), L1LoadOutcome::Hit);
    }

    #[test]
    fn miss_table_exhaustion_blocks() {
        let cfg = SystemConfig::table5().l1;
        let mut c = L1Cache::new(cfg);
        for i in 0..cfg.miss_entries as u64 {
            assert_eq!(c.load(a(100 + i), 0, 0), L1LoadOutcome::NewMiss);
        }
        assert_eq!(c.load(a(999), 0, 0), L1LoadOutcome::Blocked);
        // Merging is still possible while full.
        assert_eq!(c.load(a(100), 1, 0), L1LoadOutcome::MergedMiss);
        c.fill(a(100), 5);
        assert_eq!(c.load(a(999), 0, 6), L1LoadOutcome::NewMiss);
    }

    #[test]
    fn target_exhaustion_blocks() {
        let cfg = SystemConfig::table5().l1;
        let mut c = L1Cache::new(cfg);
        assert_eq!(c.load(a(7), 0, 0), L1LoadOutcome::NewMiss);
        for w in 1..cfg.miss_targets {
            assert_eq!(c.load(a(7), w, 0), L1LoadOutcome::MergedMiss);
        }
        assert_eq!(c.load(a(7), 0, 0), L1LoadOutcome::Blocked);
    }

    #[test]
    fn store_does_not_allocate() {
        let mut c = l1();
        c.store(a(3));
        assert_eq!(c.load(a(3), 0, 0), L1LoadOutcome::NewMiss, "no allocation");
    }

    #[test]
    fn streaming_fills_evict_first() {
        // With streaming insertion, filling a 9th line into an 8-way set
        // evicts the previous streaming line rather than older reused data.
        let cfg = SystemConfig::table5().l1;
        let sets = cfg.geometry.num_sets() as u64; // 128
        let mut c = L1Cache::new(cfg);
        // Reuse line 0 so it is MRU-stamped by accesses.
        c.load(a(0), 0, 0);
        c.fill(a(0), 0);
        assert_eq!(c.load(a(0), 0, 1), L1LoadOutcome::Hit);
        // Stream 8 conflicting lines (same set: stride = number of sets).
        for i in 1..=8u64 {
            c.load(a(i * sets), 0, i);
            c.fill(a(i * sets), i);
        }
        // Line 0 was re-referenced, so it survives the stream.
        assert_eq!(c.load(a(0), 0, 100), L1LoadOutcome::Hit);
    }
}
