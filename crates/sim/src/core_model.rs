//! Vector core with multiple instruction windows and runtime thread-block
//! scheduling (Section 3.1 of the paper).
//!
//! Each core owns one vector unit, a private L1, and
//! `num_inst_windows` instruction windows. A thread block is assigned to
//! a window; when the current window cannot make progress (its next
//! instruction waits on memory), the core switches to another window —
//! the warp-scheduler-like latency-hiding mechanism the paper models.
//! Throttling limits the number of *resident* thread blocks (`max_tb`);
//! already-running blocks always drain.

use std::collections::VecDeque;

use crate::config::{CoreConfig, L1Config};
use crate::l1::{L1Cache, L1Class, L1LoadOutcome};
use crate::pool::{ReqHandle, ReqPool};
use crate::prog::{FlatProgram, Instr, TbId};
use crate::sched::TbScheduler;
use crate::stats::CoreStats;
use crate::types::{line_of, Addr, CoreId, Cycle, MemReq, MemResp, LINE_BYTES};

/// Sentinel for "no thread block" / "past the end" (see `Window`).
const NONE32: u32 = u32::MAX;

/// One instruction window, packed to 12 bytes so a core's whole window
/// file fits one cache line — the issue loop re-reads it every awake
/// tick. `tb == NONE32` means empty; `pc == NONE32` is the
/// past-the-end sentinel ("all instructions issued, waiting on
/// outstanding loads").
#[derive(Debug, Clone, Copy)]
struct Window {
    tb: u32,
    pc: u32,
    /// Line loads in flight for this window's thread block.
    outstanding: u32,
}

impl Window {
    const EMPTY: Window = Window {
        tb: NONE32,
        pc: 0,
        outstanding: 0,
    };

    #[inline]
    fn tb(&self) -> Option<TbId> {
        (self.tb != NONE32).then_some(self.tb as TbId)
    }
}

/// Why the core could not issue this cycle (used for C_mem / C_idle
/// accounting that feeds the throttle controllers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueResult {
    Issued,
    AllBlockedOnMemory,
    ComputeBusy,
    NothingResident,
}

/// One simulated vector core.
#[derive(Clone)]
pub struct VectorCore {
    id: CoreId,
    cfg: CoreConfig,
    l1: L1Cache,
    windows: Vec<Window>,
    /// Throttle input: maximum resident thread blocks.
    pub max_tb: usize,
    /// Incrementally maintained count of windows holding a thread block
    /// (kept exactly in sync with `windows`; avoids the per-tick scans
    /// the seed paid in `resident_tbs`).
    resident: usize,
    /// A window is finished-but-unretired (pc sentinel reached with no
    /// outstanding loads). Gates the retire scan to the ticks that can
    /// actually retire something.
    retire_pending: bool,
    compute_busy_until: Cycle,
    next_seq: u64,
    last_issued: usize,
    /// All windows proved memory-blocked; nothing can change until a
    /// fill arrives or a new block is assigned, so issue evaluation is
    /// skipped (pure simulation speed-up, no behavioural effect).
    asleep: bool,
    /// Per-issue scratch of line classifications (reused; no per-load
    /// allocation after the first vector access).
    class_scratch: Vec<L1Class>,
    /// Requests bound for the interconnect, as pool handles — the
    /// arena slot is written once here at issue and the 4-byte handle
    /// is what travels (drained by the system).
    pub outbound: VecDeque<ReqHandle>,
    /// Thread blocks retired this tick (drained by the system, which
    /// maps them to serving requests for completion tracking).
    pub retired: Vec<TbId>,
    pub stats: CoreStats,
}

impl VectorCore {
    pub fn new(id: CoreId, cfg: CoreConfig, l1cfg: L1Config) -> Self {
        VectorCore {
            id,
            cfg,
            l1: L1Cache::new(l1cfg),
            windows: vec![Window::EMPTY; cfg.num_inst_windows],
            max_tb: cfg.num_inst_windows,
            resident: 0,
            retire_pending: false,
            compute_busy_until: 0,
            next_seq: 0,
            last_issued: 0,
            asleep: false,
            class_scratch: Vec::with_capacity(8),
            outbound: VecDeque::with_capacity(64),
            retired: Vec::with_capacity(cfg.num_inst_windows),
            stats: CoreStats::default(),
        }
    }

    /// Number of thread blocks currently resident.
    #[inline]
    pub fn resident_tbs(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.windows.iter().filter(|w| w.tb().is_some()).count(),
            "resident counter out of sync"
        );
        self.resident
    }

    /// True when the core holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.resident_tbs() == 0 && self.outbound.is_empty() && self.l1.outstanding() == 0
    }

    fn fresh_id(&mut self) -> u64 {
        let id = ((self.id as u64) << 40) | self.next_seq;
        self.next_seq += 1;
        id
    }

    /// Delivers a fill response from the LLC.
    pub fn on_resp(&mut self, resp: MemResp, now: Cycle) {
        self.asleep = false;
        for &(window, issued_at) in self.l1.fill(resp.line_addr, now) {
            let w = &mut self.windows[window];
            debug_assert!(w.outstanding > 0, "fill for window with no loads");
            w.outstanding = w.outstanding.saturating_sub(1);
            if w.outstanding == 0 && w.pc == NONE32 {
                self.retire_pending = true;
            }
            self.stats.load_latency_sum += now.saturating_sub(issued_at);
            self.stats.load_count += 1;
        }
    }

    /// Advances the core one cycle.
    pub fn tick(
        &mut self,
        now: Cycle,
        program: &FlatProgram,
        sched: &mut TbScheduler,
        pool: &mut ReqPool,
    ) {
        if self.asleep {
            // Fast path: every window is waiting on memory and no fill
            // has arrived since; re-evaluating issue would be a no-op.
            // A new block could only be assigned if a window were free,
            // which contradicts being asleep, unless max_tb just rose —
            // handled below by waking on spare window capacity.
            if self.resident_tbs() >= self.max_tb.min(self.cfg.num_inst_windows) || sched.is_empty()
            {
                self.stats.mem_stall_cycles += 1;
                return;
            }
            self.asleep = false;
        }
        self.retire_finished_blocks();
        self.assign_blocks(sched, now);
        match self.try_issue(now, program, pool) {
            IssueResult::Issued => {
                self.stats.active_cycles += 1;
                self.stats.instrs_issued += 1;
            }
            IssueResult::ComputeBusy => {
                self.stats.active_cycles += 1;
            }
            IssueResult::AllBlockedOnMemory => {
                self.stats.mem_stall_cycles += 1;
                // Sleep only if no window is finished-but-unretired; a
                // retirable window must pick up fresh work next cycle.
                self.asleep = !self.retire_pending;
            }
            IssueResult::NothingResident => {
                self.stats.idle_cycles += 1;
            }
        }
    }

    fn retire_finished_blocks(&mut self) {
        if !self.retire_pending {
            return;
        }
        for w in &mut self.windows {
            if let Some(tb) = w.tb() {
                // The pc sentinel marks "past the end, waiting on
                // outstanding loads" — see try_issue.
                if w.pc == NONE32 && w.outstanding == 0 {
                    w.tb = NONE32;
                    w.pc = 0;
                    self.resident -= 1;
                    self.stats.tbs_completed += 1;
                    self.retired.push(tb);
                }
            }
        }
        self.retire_pending = false;
    }

    fn assign_blocks(&mut self, sched: &mut TbScheduler, now: Cycle) {
        let mut resident = self.resident_tbs();
        while resident < self.max_tb.min(self.cfg.num_inst_windows) {
            let Some(slot) = self.windows.iter().position(|w| w.tb == NONE32) else {
                break;
            };
            // Each window draws from its own chunk of the core's trace
            // (window-strided streams; see `sched`).
            let Some(tb) = sched.next_for(self.id, slot, now) else {
                break;
            };
            debug_assert!(tb < NONE32 as usize, "TbId overflows the packed window");
            self.windows[slot] = Window {
                tb: tb as u32,
                pc: 0,
                outstanding: 0,
            };
            self.resident += 1;
            resident += 1;
        }
    }

    fn try_issue(&mut self, now: Cycle, program: &FlatProgram, pool: &mut ReqPool) -> IssueResult {
        if self.resident_tbs() == 0 {
            return IssueResult::NothingResident;
        }
        if self.compute_busy_until > now {
            return IssueResult::ComputeBusy;
        }
        let n = self.windows.len();
        let mut any_memory_wait = false;
        for k in 0..n {
            let wi = (self.last_issued + k) % n;
            match self.try_issue_window(wi, now, program, pool) {
                WindowIssue::Issued => {
                    self.last_issued = wi;
                    return IssueResult::Issued;
                }
                WindowIssue::MemoryWait => any_memory_wait = true,
                WindowIssue::Empty => {}
            }
        }
        if any_memory_wait {
            IssueResult::AllBlockedOnMemory
        } else {
            // Resident blocks exist but none is memory-blocked nor
            // issuable: only possible transiently at retire boundaries.
            IssueResult::AllBlockedOnMemory
        }
    }

    fn try_issue_window(
        &mut self,
        wi: usize,
        now: Cycle,
        program: &FlatProgram,
        pool: &mut ReqPool,
    ) -> WindowIssue {
        let w = self.windows[wi];
        let Some(tb) = w.tb() else {
            return WindowIssue::Empty;
        };
        if w.pc == NONE32 {
            // Implicit end-of-block barrier.
            return WindowIssue::MemoryWait;
        }
        let instrs = program.block(tb);
        let request = program.request_of(tb);
        if w.pc as usize >= instrs.len() {
            // Mark completed-pending-loads; retired next tick.
            self.windows[wi].pc = NONE32;
            return if w.outstanding == 0 {
                self.retire_pending = true;
                WindowIssue::Empty
            } else {
                WindowIssue::MemoryWait
            };
        }
        match instrs[w.pc as usize] {
            Instr::Compute { cycles } => {
                self.compute_busy_until = now + cycles as u64;
                self.windows[wi].pc += 1;
                WindowIssue::Issued
            }
            Instr::Barrier => {
                if w.outstanding == 0 {
                    self.windows[wi].pc += 1;
                    WindowIssue::Issued
                } else {
                    WindowIssue::MemoryWait
                }
            }
            Instr::Load { addr, bytes } => {
                if self.issue_load(wi, addr, bytes, now, request, pool) {
                    self.windows[wi].pc += 1;
                    self.stats.loads += 1;
                    WindowIssue::Issued
                } else {
                    WindowIssue::MemoryWait
                }
            }
            Instr::Store { addr, bytes } => {
                self.issue_store(addr, bytes, now, request, pool);
                self.windows[wi].pc += 1;
                self.stats.stores += 1;
                WindowIssue::Issued
            }
        }
    }

    /// Issues every line of a vector load, or nothing (returns false)
    /// when the L1 miss table cannot accept it.
    ///
    /// Coalesced issue: a read-only classify pass proves every line
    /// admissible, then a commit pass applies the cached
    /// classifications — each line's tag scan and miss-table lookup run
    /// exactly once (the seed's feasibility pass re-ran them both).
    fn issue_load(
        &mut self,
        wi: usize,
        addr: Addr,
        bytes: u32,
        now: Cycle,
        request: u32,
        pool: &mut ReqPool,
    ) -> bool {
        // First pass: feasibility. All lines must be admissible this
        // cycle, else the whole vector access retries (coalesced issue).
        let mut line = line_of(addr);
        let end = addr + bytes as u64;
        self.class_scratch.clear();
        // Dry-run bookkeeping of how many fresh entries we need.
        let mut fresh = 0usize;
        while line < end {
            let class = self.l1.classify(line, fresh);
            match class {
                L1Class::Blocked => return false,
                L1Class::New => fresh += 1,
                _ => {}
            }
            self.class_scratch.push(class);
            line += LINE_BYTES;
        }
        // Second pass: commit the cached classifications (no L1 state
        // changed in between — same cycle, same window).
        let mut line = line_of(addr);
        for k in 0..self.class_scratch.len() {
            let class = self.class_scratch[k];
            self.stats.l1_lookups += 1;
            match self.l1.commit(line, class, wi, now) {
                L1LoadOutcome::Hit => {
                    self.stats.l1_hits += 1;
                }
                L1LoadOutcome::MergedMiss => {
                    self.stats.l1_merges += 1;
                    self.windows[wi].outstanding += 1;
                }
                L1LoadOutcome::NewMiss => {
                    self.windows[wi].outstanding += 1;
                    let id = self.fresh_id();
                    let h = pool.alloc(MemReq {
                        id,
                        core: self.id,
                        request,
                        line_addr: line,
                        is_write: false,
                        issued_at: now,
                    });
                    self.outbound.push_back(h);
                }
                L1LoadOutcome::Blocked => {
                    unreachable!("feasibility pass admitted this line");
                }
            }
            line += LINE_BYTES;
        }
        true
    }

    fn issue_store(
        &mut self,
        addr: Addr,
        bytes: u32,
        now: Cycle,
        request: u32,
        pool: &mut ReqPool,
    ) {
        let mut line = line_of(addr);
        let end = addr + bytes as u64;
        while line < end {
            self.l1.store(line);
            let id = self.fresh_id();
            let h = pool.alloc(MemReq {
                id,
                core: self.id,
                request,
                line_addr: line,
                is_write: true,
                issued_at: now,
            });
            self.outbound.push_back(h);
            line += LINE_BYTES;
        }
    }

    /// L1 outstanding misses (for tests).
    pub fn l1_outstanding(&self) -> usize {
        self.l1.outstanding()
    }

    /// Event bound for the fast-forward engine (see
    /// `DESIGN.md`, "The event-bound contract").
    ///
    /// Given the core's post-tick state and `now` = the next cycle to be
    /// executed, returns the first cycle at which `tick` could do
    /// anything beyond the closed-form accrual that [`VectorCore::skip`]
    /// applies. `None` means the core cannot wake itself — only an
    /// external event (a fill via [`VectorCore::on_resp`], or a throttle
    /// decision raising `max_tb`) can change its state, and those arrive
    /// on cycles the system never skips.
    ///
    /// The three quiescent regimes and their per-cycle accruals:
    /// * no resident block and no fetchable work → `idle_cycles`;
    /// * asleep (every window memory-blocked) → `mem_stall_cycles`;
    /// * vector unit busy until `t` → `active_cycles`, event at `t`.
    pub fn next_event(&self, now: Cycle, sched: &TbScheduler) -> Option<Cycle> {
        debug_assert!(self.outbound.is_empty(), "system drains outbound per tick");
        let limit = self.max_tb.min(self.cfg.num_inst_windows);
        if self.resident_tbs() == 0 {
            if sched.has_work_for(self.id, now) {
                return Some(now); // would assign a block next tick
            }
            // Pure idle accrual until a gated request arrives (if ever).
            return sched.next_release_for(self.id, now);
        }
        if self.asleep {
            // tick()'s fast path re-checks this exact condition; if it
            // fails the core wakes and re-assigns next tick.
            if self.resident_tbs() >= limit || sched.is_empty() {
                return None; // pure C_mem accrual
            }
            if sched.has_work_for(self.id, now) {
                return Some(now);
            }
            // Every fetchable front is gated: the woken tick would only
            // re-accrue C_mem and fall back asleep until the earliest
            // release (stat-identical to staying asleep).
            return sched.next_release_for(self.id, now);
        }
        // A finished-but-unretired window retires next tick.
        if self.retire_pending {
            return Some(now);
        }
        // Capacity plus available work: a block would be assigned.
        let release = if self.resident_tbs() < limit {
            if sched.has_work_for(self.id, now) {
                return Some(now);
            }
            // Assignment happens even while the vector unit is busy, so
            // a gated arrival bounds the quiescent window too.
            sched.next_release_for(self.id, now)
        } else {
            None
        };
        if self.compute_busy_until > now {
            // Pure active-cycle accrual until the vector unit frees (or
            // a gated request arrives and would be assigned).
            let busy = self.compute_busy_until;
            return Some(release.map_or(busy, |r| r.min(busy)));
        }
        Some(now)
    }

    /// Fast-forwards `cycles` quiescent cycles, accruing exactly the
    /// statistics the per-cycle [`VectorCore::tick`] would have. Callers
    /// must have validated the window against [`VectorCore::next_event`].
    pub fn skip(&mut self, now: Cycle, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if self.resident_tbs() == 0 {
            self.stats.idle_cycles += cycles;
        } else if self.asleep {
            self.stats.mem_stall_cycles += cycles;
        } else {
            debug_assert!(
                self.compute_busy_until >= now + cycles,
                "skip window exceeds the compute-busy bound"
            );
            self.stats.active_cycles += cycles;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowIssue {
    Issued,
    MemoryWait,
    Empty,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::prog::{Program, ThreadBlock};

    fn setup(blocks: Vec<ThreadBlock>) -> (VectorCore, FlatProgram, TbScheduler, ReqPool) {
        let cfg = SystemConfig::table5();
        let program = Program::round_robin(blocks, 1);
        let sched = TbScheduler::new(&program, 1, 4);
        let core = VectorCore::new(0, cfg.core, cfg.l1);
        (core, FlatProgram::new(&program), sched, ReqPool::default())
    }

    fn load(addr: Addr) -> Instr {
        Instr::Load { addr, bytes: 128 }
    }

    #[test]
    fn executes_compute_only_block() {
        let tb = ThreadBlock {
            instrs: vec![Instr::Compute { cycles: 3 }, Instr::Compute { cycles: 2 }],
        };
        let (mut core, program, mut sched, mut pool) = setup(vec![tb]);
        let mut now = 0;
        while core.stats.tbs_completed == 0 && now < 100 {
            core.tick(now, &program, &mut sched, &mut pool);
            now += 1;
        }
        assert_eq!(core.stats.tbs_completed, 1);
        assert!(core.is_idle());
        assert_eq!(core.stats.instrs_issued, 2);
    }

    #[test]
    fn load_generates_line_requests_and_waits() {
        let tb = ThreadBlock {
            instrs: vec![load(0), Instr::Barrier],
        };
        let (mut core, program, mut sched, mut pool) = setup(vec![tb]);
        for now in 0..5 {
            core.tick(now, &program, &mut sched, &mut pool);
        }
        // 128 B vector load = 2 line requests.
        assert_eq!(core.outbound.len(), 2);
        assert_eq!(core.stats.loads, 1);
        assert_eq!(core.stats.tbs_completed, 0, "barrier holds completion");
        assert!(
            core.stats.mem_stall_cycles > 0,
            "C_mem accrues while waiting"
        );
        // Respond to both lines.
        for (i, h) in core
            .outbound
            .drain(..)
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
        {
            let req = *pool.get(h);
            pool.release(h);
            core.on_resp(
                MemResp {
                    id: req.id,
                    core: 0,
                    line_addr: req.line_addr,
                },
                10 + i as u64,
            );
        }
        for now in 12..16 {
            core.tick(now, &program, &mut sched, &mut pool);
        }
        assert_eq!(core.stats.tbs_completed, 1);
        assert_eq!(core.stats.load_count, 2);
    }

    #[test]
    fn window_switching_hides_latency() {
        // Two blocks, each: load + barrier. With 4 windows the core
        // issues block 2's load while block 1 waits.
        let mk = |addr| ThreadBlock {
            instrs: vec![load(addr), Instr::Barrier],
        };
        let (mut core, program, mut sched, mut pool) = setup(vec![mk(0), mk(4096)]);
        for now in 0..4 {
            core.tick(now, &program, &mut sched, &mut pool);
        }
        // Both blocks' loads are in flight concurrently.
        assert_eq!(core.outbound.len(), 4);
        assert_eq!(core.resident_tbs(), 2);
    }

    #[test]
    fn max_tb_limits_residency() {
        let mk = |addr| ThreadBlock {
            instrs: vec![load(addr), Instr::Barrier],
        };
        let blocks: Vec<_> = (0..6).map(|i| mk(i * 4096)).collect();
        let (mut core, program, mut sched, mut pool) = setup(blocks);
        core.max_tb = 1;
        for now in 0..3 {
            core.tick(now, &program, &mut sched, &mut pool);
        }
        assert_eq!(core.resident_tbs(), 1, "throttled to one block");
        assert_eq!(core.outbound.len(), 2, "only block 0's lines issued");
    }

    #[test]
    fn store_is_posted() {
        let tb = ThreadBlock {
            instrs: vec![Instr::Store {
                addr: 64,
                bytes: 64,
            }],
        };
        let (mut core, program, mut sched, mut pool) = setup(vec![tb]);
        for now in 0..4 {
            core.tick(now, &program, &mut sched, &mut pool);
        }
        assert_eq!(core.stats.stores, 1);
        let h = core.outbound.pop_front().unwrap();
        assert!(pool.get(h).is_write);
        assert_eq!(core.stats.tbs_completed, 1, "no waiting on stores");
    }

    #[test]
    fn idle_cycles_accrue_without_work() {
        let (mut core, program, mut sched, mut pool) = setup(vec![]);
        for now in 0..10 {
            core.tick(now, &program, &mut sched, &mut pool);
        }
        assert_eq!(core.stats.idle_cycles, 10);
    }

    #[test]
    fn l1_hit_avoids_traffic() {
        let tb = ThreadBlock {
            instrs: vec![load(0), Instr::Barrier, load(0), Instr::Barrier],
        };
        let (mut core, program, mut sched, mut pool) = setup(vec![tb]);
        for now in 0..5 {
            core.tick(now, &program, &mut sched, &mut pool);
        }
        let reqs: Vec<_> = core.outbound.drain(..).collect();
        assert_eq!(reqs.len(), 2);
        for (i, h) in reqs.into_iter().enumerate() {
            let req = *pool.get(h);
            pool.release(h);
            core.on_resp(
                MemResp {
                    id: req.id,
                    core: 0,
                    line_addr: req.line_addr,
                },
                6 + i as u64,
            );
        }
        for now in 8..20 {
            core.tick(now, &program, &mut sched, &mut pool);
        }
        assert_eq!(core.stats.tbs_completed, 1);
        assert_eq!(core.outbound.len(), 0, "second load hits in L1");
        assert_eq!(core.stats.l1_hits, 2);
    }
}
