//! Loop-nest mapping IR — the "dataflow" of the hybrid framework.
//!
//! A mapping describes how the Logit operator's iteration space
//! {H, G, L, D} is tiled and ordered across memory levels, in the style
//! of Timeloop: each level holds an ordered list of loops (outermost
//! first), each loop bound to a dimension with a tile count, and tagged
//! spatial (parallel over cores / vector lanes) or temporal.
//!
//! The paper adds two constraints on top of the mapper (Section 6.2.2):
//!
//! 1. the fastest (innermost) axis is assigned to the vector unit so
//!    cache-line accesses are complete;
//! 2. at least 64 B of the L dimension map to the innermost L1 temporal
//!    level, so `AttScore` output lines are not falsely shared between
//!    cores; thread blocks cover 1–2 output cache lines.

use serde::{Deserialize, Serialize};

use crate::workload::{LogitOp, ELEM_BYTES};

/// Iteration-space dimensions of the Logit operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dim {
    /// KV head groups.
    H,
    /// Query heads within a group.
    G,
    /// Sequence (token) dimension.
    L,
    /// Per-head feature dimension (the reduction axis).
    D,
}

impl Dim {
    pub const ALL: [Dim; 4] = [Dim::H, Dim::G, Dim::L, Dim::D];
}

/// Whether a loop iterates in time or across parallel hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopKind {
    Temporal,
    /// Spread across cores (at the L2 level) or vector lanes (innermost).
    Spatial,
}

/// One loop of the nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loop {
    pub dim: Dim,
    /// Trip count of this loop.
    pub extent: usize,
    pub kind: LoopKind,
}

/// Memory level a group of loops is anchored to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Off-chip: loops here stream tiles through the LLC.
    Dram,
    /// Shared L2: loops here define thread-block enumeration order and
    /// the spatial distribution over cores.
    L2,
    /// Private L1 / thread-block interior.
    L1,
    /// Vector unit lanes (always the innermost D loop).
    Vector,
}

/// A complete mapping: ordered levels, each with ordered loops
/// (outermost first within the level; levels are ordered Dram → Vector).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    pub levels: Vec<(Level, Vec<Loop>)>,
}

impl Mapping {
    /// Product of loop extents for `dim` across all levels.
    pub fn total_extent(&self, dim: Dim) -> usize {
        self.levels
            .iter()
            .flat_map(|(_, loops)| loops.iter())
            .filter(|l| l.dim == dim)
            .map(|l| l.extent)
            .product()
    }

    /// Loops of one level.
    pub fn level(&self, level: Level) -> &[Loop] {
        self.levels
            .iter()
            .find(|(l, _)| *l == level)
            .map(|(_, loops)| loops.as_slice())
            .unwrap_or(&[])
    }

    /// L-dimension tile handled by one thread block.
    pub fn l1_l_tile(&self) -> usize {
        self.level(Level::L1)
            .iter()
            .chain(self.level(Level::Vector))
            .filter(|l| l.dim == Dim::L)
            .map(|l| l.extent)
            .product()
    }

    /// Validates that the mapping tiles the operator exactly and obeys
    /// the paper's constraints.
    pub fn validate(&self, op: &LogitOp) -> Result<(), String> {
        let expect = [
            (Dim::H, op.heads),
            (Dim::G, op.group_size),
            (Dim::L, op.seq_len),
            (Dim::D, op.head_dim),
        ];
        for (dim, total) in expect {
            let got = self.total_extent(dim);
            if got != total {
                return Err(format!(
                    "dimension {dim:?}: loops cover {got}, operator needs {total}"
                ));
            }
        }
        // Constraint 1: innermost level is a spatial D loop spanning at
        // least one cache line of elements (complete line accesses).
        let vec_loops = self.level(Level::Vector);
        let Some(inner) = vec_loops.last() else {
            return Err("mapping has no vector level".into());
        };
        if inner.dim != Dim::D || inner.kind != LoopKind::Spatial {
            return Err("fastest axis must be a spatial D loop on the vector unit".into());
        }
        if inner.extent as u64 * ELEM_BYTES < 64 {
            return Err("vector loop must cover at least one full cache line".into());
        }
        // Constraint 2: >= 64 B of L at the innermost L1 temporal level
        // (no false sharing of AttScore lines between cores).
        let l1_l_bytes = self.l1_l_tile() as u64 * ELEM_BYTES;
        if l1_l_bytes < 64 {
            return Err(format!(
                "L1 must keep >= 64 B of L innermost (got {l1_l_bytes} B)"
            ));
        }
        Ok(())
    }

    /// Number of thread blocks this mapping produces: the product of all
    /// L2/DRAM-level loop extents (temporal sequencing × spatial
    /// distribution — a spatially mapped iteration is still its own
    /// thread block, just resident on another core).
    pub fn num_thread_blocks(&self) -> usize {
        self.level(Level::L2)
            .iter()
            .chain(self.level(Level::Dram))
            .map(|l| l.extent)
            .product()
    }

    /// L2-level spatial split of the G dimension (1 when G is purely
    /// temporal, i.e. a round-robin mapping).
    pub fn spatial_g(&self) -> usize {
        self.level(Level::L2)
            .iter()
            .filter(|l| l.dim == Dim::G && l.kind == LoopKind::Spatial)
            .map(|l| l.extent)
            .product()
    }

    /// L2-level spatial split of the L dimension.
    pub fn spatial_l_segments(&self) -> usize {
        self.level(Level::L2)
            .iter()
            .filter(|l| l.dim == Dim::L && l.kind == LoopKind::Spatial)
            .map(|l| l.extent)
            .product()
    }

    /// Whether the L2 level distributes work spatially over cores.
    pub fn is_spatial(&self) -> bool {
        self.level(Level::L2)
            .iter()
            .any(|l| l.kind == LoopKind::Spatial)
    }

    /// Human-readable rendering, one loop per line (Timeloop style).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut indent = 0;
        for (level, loops) in &self.levels {
            out.push_str(&format!("{:indent$}[{level:?}]\n", "", indent = indent));
            for l in loops {
                let kind = match l.kind {
                    LoopKind::Temporal => "for",
                    LoopKind::Spatial => "par-for",
                };
                out.push_str(&format!(
                    "{:indent$}{kind} {dim:?} in 0..{extent}\n",
                    "",
                    indent = indent + 2,
                    dim = l.dim,
                    extent = l.extent
                ));
                indent += 2;
            }
            indent += 2;
        }
        out
    }
}

/// Thread-block-to-core dataflow layout: which canned loop nest a
/// workload's iteration space is walked with.
///
/// Lives next to the mapping builders it selects between; the
/// experiment layer re-exports it, and [`Layout::mapping`] is the
/// single place a layout name turns into a concrete [`Mapping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Layout {
    /// Output-partitioned (h, g) pair streams round-robin over cores,
    /// one pair per instruction window — the paper's evaluated workload
    /// shape and the default.
    #[default]
    PairStream,
    /// Spatial G (+ L segments) across cores: all cores stream one
    /// shared K tile in lockstep (tightest possible sharing).
    Spatial,
    /// Round-robin blocks over cores, sharers adjacent (G innermost).
    RoundRobinGInner,
    /// Round-robin blocks, naive L-innermost order.
    RoundRobinLInner,
}

impl Layout {
    /// Builds the loop nest of this layout for a {H, G, L, D} iteration
    /// space (`op` carries the dimensions; the nest is workload-agnostic).
    pub fn mapping(&self, op: &LogitOp, l_tile: usize, num_cores: usize) -> Mapping {
        match self {
            Layout::PairStream => logit_mapping_pair_stream(op, l_tile),
            Layout::Spatial => logit_mapping_spatial(op, l_tile, num_cores),
            Layout::RoundRobinGInner => logit_mapping(op, l_tile, TbOrder::GInner),
            Layout::RoundRobinLInner => logit_mapping(op, l_tile, TbOrder::LInner),
        }
    }

    /// Stable names for all layouts (campaign definitions and docs).
    pub const ALL: [Layout; 4] = [
        Layout::PairStream,
        Layout::Spatial,
        Layout::RoundRobinGInner,
        Layout::RoundRobinLInner,
    ];
}

/// Builds the output-partitioned "pair-stream" dataflow — the layout the
/// paper's evaluation workload uses.
///
/// The H·G (KV-head, query-head) output pairs are distributed round-robin
/// over the cores; each pair is an independent temporal stream of
/// L-tiles over the full K\[h\]. A core owning `H·G / num_cores` pairs
/// runs them *concurrently*, one per instruction window (the
/// window-strided chunks of the scheduler) — which is why "the assigned
/// thread blocks may span a wide range" on the unoptimized machine:
/// every core interleaves several full-K streams, multiplying the live
/// working set, while the G streams sharing one K\[h\] sit on different
/// cores and only merge in the MSHRs when the machine keeps them in
/// sync. This is the hardware-friendly kernel shape (contiguous output
/// per core, no false sharing) that "performs well on the unoptimized
/// architecture" (Section 6.2.2) yet exposes exactly the contention
/// LLaMCAT targets.
pub fn logit_mapping_pair_stream(op: &LogitOp, l_tile: usize) -> Mapping {
    assert!(
        op.seq_len.is_multiple_of(l_tile),
        "l_tile must divide seq_len"
    );
    let n_ltiles = op.seq_len / l_tile;
    Mapping {
        levels: vec![
            (Level::Dram, vec![]),
            (
                Level::L2,
                vec![
                    Loop {
                        dim: Dim::H,
                        extent: op.heads,
                        kind: LoopKind::Spatial,
                    },
                    Loop {
                        dim: Dim::G,
                        extent: op.group_size,
                        kind: LoopKind::Spatial,
                    },
                    Loop {
                        dim: Dim::L,
                        extent: n_ltiles,
                        kind: LoopKind::Temporal,
                    },
                ],
            ),
            (
                Level::L1,
                vec![Loop {
                    dim: Dim::L,
                    extent: l_tile,
                    kind: LoopKind::Temporal,
                }],
            ),
            (
                Level::Vector,
                vec![Loop {
                    dim: Dim::D,
                    extent: op.head_dim,
                    kind: LoopKind::Spatial,
                }],
            ),
        ],
    }
}

/// Thread-block enumeration order at the L2 level.
///
/// `GInner` places the G loop innermost so that the G query heads
/// sharing one K tile become *consecutive* thread blocks — landing on
/// different cores at the same time, which is what lets the LLC capture
/// GQA locality through cache hits and MSHR merges. `LInner` is the
/// naive order (each (h, g) pair streams all of K before moving on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TbOrder {
    #[default]
    GInner,
    LInner,
}

/// Builds the paper's spatial Logit dataflow: the G dimension (and, when
/// cores outnumber query heads, a split of L) is mapped *spatially*
/// across cores, so the whole machine streams each K\[h\] concurrently —
/// every core computing a different query head of the same group over
/// the same keys. This is the dataflow that exposes GQA sharing to the
/// LLC as simultaneous cross-core requests (MSHR merges when in sync,
/// cache hits or refetches when cores drift).
///
/// Loop structure (L2 level, outermost first): spatial G, spatial
/// L-segments, temporal H, temporal L-tiles; each core's temporal
/// sequence is `(h, l-tile)` over its own L segment.
pub fn logit_mapping_spatial(op: &LogitOp, l_tile: usize, num_cores: usize) -> Mapping {
    assert!(
        op.seq_len.is_multiple_of(l_tile),
        "l_tile must divide seq_len"
    );
    let n_ltiles = op.seq_len / l_tile;
    // Spatial split of G over cores; leftover parallelism splits L.
    let gs = op.group_size.min(num_cores);
    let gt = op.group_size / gs; // consecutive g's per core
    let mut segments = (num_cores / gs).max(1);
    while segments > 1 && !n_ltiles.is_multiple_of(segments) {
        segments -= 1;
    }
    let l2_loops = vec![
        Loop {
            dim: Dim::G,
            extent: gs,
            kind: LoopKind::Spatial,
        },
        Loop {
            dim: Dim::L,
            extent: segments,
            kind: LoopKind::Spatial,
        },
        Loop {
            dim: Dim::H,
            extent: op.heads,
            kind: LoopKind::Temporal,
        },
        Loop {
            dim: Dim::G,
            extent: gt,
            kind: LoopKind::Temporal,
        },
        Loop {
            dim: Dim::L,
            extent: n_ltiles / segments,
            kind: LoopKind::Temporal,
        },
    ];
    Mapping {
        levels: vec![
            (Level::Dram, vec![]),
            (Level::L2, l2_loops),
            (
                Level::L1,
                vec![Loop {
                    dim: Dim::L,
                    extent: l_tile,
                    kind: LoopKind::Temporal,
                }],
            ),
            (
                Level::Vector,
                vec![Loop {
                    dim: Dim::D,
                    extent: op.head_dim,
                    kind: LoopKind::Spatial,
                }],
            ),
        ],
    }
}

/// Builds the paper's hand-written Logit mapping.
///
/// * vector level: spatial D (full head dimension);
/// * L1 level: temporal L tile of `l_tile` tokens (one thread block
///   covers `l_tile` scores = `l_tile * 2 / 64` output lines);
/// * L2 level: the (H, L-tiles, G) enumeration in the given order.
pub fn logit_mapping(op: &LogitOp, l_tile: usize, order: TbOrder) -> Mapping {
    assert!(
        op.seq_len.is_multiple_of(l_tile),
        "l_tile must divide seq_len"
    );
    let n_ltiles = op.seq_len / l_tile;
    let l2_loops = match order {
        TbOrder::GInner => vec![
            Loop {
                dim: Dim::H,
                extent: op.heads,
                kind: LoopKind::Temporal,
            },
            Loop {
                dim: Dim::L,
                extent: n_ltiles,
                kind: LoopKind::Temporal,
            },
            Loop {
                dim: Dim::G,
                extent: op.group_size,
                kind: LoopKind::Temporal,
            },
        ],
        TbOrder::LInner => vec![
            Loop {
                dim: Dim::H,
                extent: op.heads,
                kind: LoopKind::Temporal,
            },
            Loop {
                dim: Dim::G,
                extent: op.group_size,
                kind: LoopKind::Temporal,
            },
            Loop {
                dim: Dim::L,
                extent: n_ltiles,
                kind: LoopKind::Temporal,
            },
        ],
    };
    Mapping {
        levels: vec![
            (Level::Dram, vec![]),
            (Level::L2, l2_loops),
            (
                Level::L1,
                vec![Loop {
                    dim: Dim::L,
                    extent: l_tile,
                    kind: LoopKind::Temporal,
                }],
            ),
            (
                Level::Vector,
                vec![Loop {
                    dim: Dim::D,
                    extent: op.head_dim,
                    kind: LoopKind::Spatial,
                }],
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logit_mapping_is_valid() {
        let op = LogitOp::llama3_70b(4096);
        let m = logit_mapping(&op, 32, TbOrder::GInner);
        m.validate(&op).unwrap();
        assert_eq!(m.total_extent(Dim::L), 4096);
        assert_eq!(m.l1_l_tile(), 32);
        assert_eq!(m.num_thread_blocks(), 8 * 8 * 128);
    }

    #[test]
    fn order_changes_loop_sequence_not_counts() {
        let op = LogitOp::llama3_70b(1024);
        let a = logit_mapping(&op, 32, TbOrder::GInner);
        let b = logit_mapping(&op, 32, TbOrder::LInner);
        assert_eq!(a.num_thread_blocks(), b.num_thread_blocks());
        assert_ne!(a.level(Level::L2), b.level(Level::L2));
    }

    #[test]
    fn validation_catches_partial_coverage() {
        let op = LogitOp::llama3_70b(4096);
        let mut m = logit_mapping(&op, 32, TbOrder::GInner);
        // Break the L coverage.
        m.levels[1].1[1].extent = 7;
        assert!(m.validate(&op).is_err());
    }

    #[test]
    fn validation_requires_vector_d() {
        let op = LogitOp::llama3_70b(4096);
        let mut m = logit_mapping(&op, 32, TbOrder::GInner);
        m.levels[3].1[0].kind = LoopKind::Temporal;
        assert!(m.validate(&op).is_err());
    }

    #[test]
    fn validation_enforces_l1_l_bytes() {
        let op = LogitOp::llama3_70b(4096);
        // 16 tokens * 2 B = 32 B < 64 B: violates constraint 2.
        let m = logit_mapping(&op, 16, TbOrder::GInner);
        assert!(m.validate(&op).is_err());
    }

    #[test]
    fn spatial_mapping_is_valid_for_both_models() {
        let op70 = LogitOp::llama3_70b(4096);
        let m = logit_mapping_spatial(&op70, 32, 16);
        m.validate(&op70).unwrap();
        assert!(m.is_spatial());
        assert_eq!(m.spatial_g(), 8);
        assert_eq!(m.spatial_l_segments(), 2);
        assert_eq!(m.num_thread_blocks(), 8 * 8 * 128);

        let op405 = LogitOp::llama3_405b(4096);
        let m = logit_mapping_spatial(&op405, 32, 16);
        m.validate(&op405).unwrap();
        assert_eq!(m.spatial_g(), 16);
        assert_eq!(m.spatial_l_segments(), 1);
        assert_eq!(m.num_thread_blocks(), 8 * 16 * 128);
    }

    #[test]
    fn spatial_mapping_handles_fewer_cores_than_heads() {
        let op = LogitOp::llama3_405b(1024); // G = 16
        let m = logit_mapping_spatial(&op, 32, 4);
        m.validate(&op).unwrap();
        assert_eq!(m.spatial_g(), 4);
        // 4 consecutive query heads per core, temporal.
        assert_eq!(m.total_extent(Dim::G), 16);
    }

    #[test]
    fn render_is_readable() {
        let op = LogitOp::llama3_70b(128);
        let m = logit_mapping(&op, 32, TbOrder::GInner);
        let r = m.render();
        assert!(r.contains("par-for D in 0..128"));
        assert!(r.contains("[L2]"));
    }
}
