//! Campaign acceptance tests: a JSON-defined campaign (multiple
//! workload families × sequence lengths × policies) must round-trip
//! through serde, execute deterministically in parallel, and stream
//! byte-identical JSONL across repeated runs.

use llamcat::spec::{MixSpec, PolicySpec};
use llamcat_bench::{Campaign, CellRecord};
use llamcat_sim::system::StepMode;
use llamcat_trace::workloads::WorkloadSpec;

/// 2 workloads × 2 seq_lens × 3 policies, written as JSON by hand the
/// way a user (or a future CLI/distributed frontend) would.
const CAMPAIGN_JSON: &str = r#"{
  "name": "acceptance-grid",
  "workloads": [
    {"Logit": {"heads": 8, "group_size": 8, "head_dim": 128}},
    {"AttnOutput": {"heads": 8, "group_size": 8, "head_dim": 128}}
  ],
  "seq_lens": [128, 256],
  "l2_mb": [16],
  "policies": [
    {"arb": "Fifo", "throttle": "None"},
    {"arb": "Cobrra", "throttle": "None"},
    {"arb": "BalancedMshrAware", "throttle": {"DynMg": {"config": {
      "sampling_period": 6000, "sub_period": 1200, "max_gear": 4,
      "gear_fractions": [0.0, 0.125, 0.25, 0.5, 0.75],
      "in_core": {"c_idle_upper": 4, "c_mem_upper": 250, "c_mem_lower": 180}}}}}
  ],
  "baseline": {"arb": "Fifo", "throttle": "None"},
  "layout": "PairStream",
  "l_tile": 32,
  "max_cycles": null
}"#;

fn acceptance_campaign() -> Campaign {
    serde_json::from_str(CAMPAIGN_JSON).expect("acceptance JSON parses")
}

#[test]
fn json_campaign_round_trips() {
    let campaign = acceptance_campaign();
    assert_eq!(campaign.workloads.len(), 2);
    assert_eq!(campaign.seq_lens, vec![128, 256]);
    assert_eq!(campaign.policies.len(), 3);
    assert_eq!(campaign.policies[2], PolicySpec::dynmg_bma());
    assert_eq!(campaign.baseline, Some(PolicySpec::unoptimized()));

    // JSON → Campaign → JSON → Campaign is lossless, and the canonical
    // form is stable.
    let canonical = serde_json::to_string(&campaign).unwrap();
    let back: Campaign = serde_json::from_str(&canonical).unwrap();
    assert_eq!(back, campaign);
    assert_eq!(serde_json::to_string(&back).unwrap(), canonical);
}

#[test]
fn json_campaign_runs_deterministically_in_parallel() {
    let campaign = acceptance_campaign();
    let a = campaign.run().expect("first run");
    let b = campaign.run().expect("second run");
    let jsonl_a = a.jsonl();
    let jsonl_b = b.jsonl();
    assert_eq!(
        jsonl_a, jsonl_b,
        "JSONL streams must be byte-identical across runs"
    );
    assert_eq!(jsonl_a.lines().count(), 2 * 2 * 3, "one line per cell");

    // Records come back in deterministic cell order.
    let cells = campaign.cells();
    for (rec, cell) in a.records.iter().zip(&cells) {
        assert_eq!(&rec.cell, cell);
    }
    // Every record carries a baseline-relative speedup; the baseline's
    // own cells pin exactly 1.0.
    for rec in &a.records {
        let s = rec.speedup.expect("baseline set");
        assert!(s > 0.0);
        if rec.cell.policy == PolicySpec::unoptimized() {
            assert_eq!(s, 1.0);
        }
    }
}

#[test]
fn campaign_matches_direct_experiments() {
    // The declarative engine must agree cell-for-cell with hand-built
    // experiments — the property that lets the figure benches be thin
    // wrappers.
    let campaign = Campaign::new("direct-vs-campaign")
        .workload(WorkloadSpec::llama3_70b())
        .seq_lens([128])
        .policy(PolicySpec::dynmg_bma())
        .baseline(PolicySpec::unoptimized());
    let report = campaign.run().unwrap();

    use llamcat::experiment::{Experiment, Model, Policy};
    let direct = Experiment::new(Model::Llama3_70b, 128)
        .policy(Policy::dynmg_bma())
        .run();
    let base = Experiment::new(Model::Llama3_70b, 128).run();
    assert_eq!(report.records[0].report.cycles, direct.cycles);
    assert_eq!(
        report.records[0].speedup.unwrap(),
        direct.speedup_over(&base)
    );
}

/// Every JSONL record must be self-describing: it carries the step
/// mode it ran under and round-trips through serde losslessly —
/// including records archived *before* the field existed, which parse
/// with the `Cycle` default.
#[test]
fn jsonl_records_round_trip_with_step_mode() {
    let campaign = Campaign::new("stamp")
        .workload(WorkloadSpec::llama3_70b())
        .seq_lens([128])
        .policy(PolicySpec::dynmg_bma())
        .step_mode(StepMode::Skip);
    let report = campaign.run().unwrap();
    let jsonl = report.jsonl();
    for line in jsonl.lines() {
        let rec: CellRecord = serde_json::from_str(line).expect("record parses");
        assert_eq!(rec.step_mode, StepMode::Skip, "record must carry its mode");
        // Round trip: parse → serialize reproduces the archived bytes.
        assert_eq!(serde_json::to_string(&rec).unwrap(), line);
        // A legacy record without the field still parses, as Cycle.
        let legacy = line.replace("\"step_mode\":\"Skip\",", "");
        let old: CellRecord = serde_json::from_str(&legacy).expect("legacy parses");
        assert_eq!(old.step_mode, StepMode::Cycle);
    }
}

/// A campaign mixing solo and mix scenarios streams self-describing
/// records: mix cells carry their `MixSpec` and fairness in the JSONL,
/// and both kinds round-trip.
#[test]
fn mix_campaign_jsonl_is_self_describing() {
    let campaign = Campaign::new("mix-jsonl")
        .workload(WorkloadSpec::llama3_70b())
        .seq_lens([128])
        .mix(
            MixSpec::partitioned()
                .request(WorkloadSpec::llama3_70b(), 128, 0)
                .request(WorkloadSpec::llama3_70b(), 128, 1_000),
        )
        .policy(PolicySpec::unoptimized())
        .baseline(PolicySpec::unoptimized());
    let report = campaign.run().unwrap();
    assert_eq!(report.records.len(), 2, "one solo + one mix cell");
    let jsonl = report.jsonl();
    let records: Vec<CellRecord> = jsonl
        .lines()
        .map(|l| serde_json::from_str(l).expect("record parses"))
        .collect();
    assert!(records[0].cell.mix.is_none() && records[0].fairness.is_none());
    let mix_rec = &records[1];
    let spec = mix_rec
        .cell
        .mix
        .as_ref()
        .expect("mix cell carries its spec");
    assert_eq!(spec.requests.len(), 2);
    assert_eq!(spec.requests[1].arrival, 1_000);
    let fairness = mix_rec
        .fairness
        .as_ref()
        .expect("mix cell carries fairness");
    assert_eq!(fairness.per_request.len(), 2);
    assert_eq!(mix_rec.report.requests.len(), 2);
    // Round trip of the full stream.
    let again: String = records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap() + "\n")
        .collect();
    assert_eq!(again, jsonl);
}

/// Acceptance gate for the warm-up-and-fork fast path: across the
/// 20-cell golden policy matrix (5 arbiters × 4 throttles on one
/// scenario), a fork-from-snapshot campaign run streams byte-identical
/// JSONL to the straight-line run — in both step modes. The fork path
/// builds the scenario (trace generation, program mapping,
/// preallocation) once and forks 20 pre-tick snapshots instead of
/// constructing 20 systems.
#[test]
fn forked_golden_matrix_is_byte_identical_in_both_modes() {
    let matrix = |mode: StepMode, fork: bool| {
        let mut c = Campaign::new("golden-matrix-fork")
            .workload(WorkloadSpec::llama3_70b())
            .seq_lens([128])
            .baseline(PolicySpec::unoptimized())
            .step_mode(mode)
            .fork_scenarios(fork);
        for arb in ["fifo", "B", "MA", "BMA", "cobrra"] {
            for thr in ["none", "dyncta", "lcs", "dynmg"] {
                c = c
                    .policy_named(&format!("{thr}+{arb}"))
                    .expect("matrix name");
            }
        }
        c
    };
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let straight = matrix(mode, false).run().expect("straight-line run");
        let forked = matrix(mode, true).run().expect("forked run");
        assert_eq!(straight.records.len(), 20);
        assert_eq!(
            straight.jsonl(),
            forked.jsonl(),
            "fork fast path diverged from the straight-line run ({mode:?})"
        );
    }
}

#[test]
fn geomeans_summarize_policy_columns() {
    let report = acceptance_campaign().run().unwrap();
    let geo = report.geomeans();
    assert_eq!(geo.len(), 3);
    assert_eq!(geo[0].0, "unoptimized");
    assert_eq!(geo[0].1, 1.0);
    let rows = report.speedup_rows();
    assert_eq!(rows[2].0, "dynmg+BMA");
    assert_eq!(rows[2].1.len(), 4, "one speedup per scenario");
}

/// The batched lockstep executor (`batch_cells`) streams byte-identical
/// JSONL to the straight-line run on the 20-cell golden matrix — in
/// both step modes. Same contract as the fork fast path, one level up:
/// one scenario build, twenty lanes advanced in lockstep.
#[test]
fn batched_golden_matrix_is_byte_identical_in_both_modes() {
    let matrix = |mode: StepMode, batched: bool| {
        let mut c = Campaign::new("golden-matrix-batch")
            .workload(WorkloadSpec::llama3_70b())
            .seq_lens([128])
            .baseline(PolicySpec::unoptimized())
            .step_mode(mode)
            .batch_cells(batched);
        for arb in ["fifo", "B", "MA", "BMA", "cobrra"] {
            for thr in ["none", "dyncta", "lcs", "dynmg"] {
                c = c
                    .policy_named(&format!("{thr}+{arb}"))
                    .expect("matrix name");
            }
        }
        c
    };
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let straight = matrix(mode, false).run().expect("straight-line run");
        let batched = matrix(mode, true).run().expect("batched run");
        assert_eq!(straight.records.len(), 20);
        assert_eq!(
            straight.jsonl(),
            batched.jsonl(),
            "batched lockstep path diverged from the straight-line run ({mode:?})"
        );
    }
}

/// All three executors — plain, forked, batched — emit records in the
/// same deterministic cell order, and resuming from an archive whose
/// cached cells interleave with fresh ones (`todo` = every other cell)
/// merges back to that exact order, on every execution path.
#[test]
fn execution_paths_agree_on_record_order_with_interleaved_archive() {
    let matrix = |fork: bool, batched: bool| {
        let mut c = Campaign::new("order-pin")
            .workload(WorkloadSpec::llama3_70b())
            .seq_lens([128])
            .baseline(PolicySpec::unoptimized())
            .fork_scenarios(fork)
            .batch_cells(batched);
        for arb in ["fifo", "B", "MA", "BMA", "cobrra"] {
            for thr in ["none", "dyncta", "lcs", "dynmg"] {
                c = c
                    .policy_named(&format!("{thr}+{arb}"))
                    .expect("matrix name");
            }
        }
        c
    };

    let plain = matrix(false, false).run().expect("plain run");
    let forked = matrix(true, false).run().expect("forked run");
    let batched = matrix(false, true).run().expect("batched run");
    let golden = plain.jsonl();
    assert_eq!(golden, forked.jsonl(), "forked path reordered records");
    assert_eq!(golden, batched.jsonl(), "batched path reordered records");
    let labels: Vec<&str> = plain
        .records
        .iter()
        .map(|r| r.report.policy_label.as_str())
        .collect();
    assert_eq!(labels.len(), 20);
    assert_eq!(labels[0], "unoptimized"); // none+fifo leads the grid

    // Seed an archive with every other record (cached and fresh cells
    // interleave through the whole grid), then resume on each path:
    // the merged stream must be byte-identical to the uninterrupted
    // run — cached cells slot back into position, fresh cells run
    // through the path under test.
    let dir = std::env::temp_dir().join(format!("llamcat-order-pin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (name, fork, batched) in [
        ("plain", false, false),
        ("forked", true, false),
        ("batched", false, true),
    ] {
        let archive = dir.join(format!("{name}.jsonl"));
        let mut seed = String::new();
        for rec in plain.records.iter().step_by(2) {
            seed.push_str(&serde_json::to_string(rec).expect("record serializes"));
            seed.push('\n');
        }
        std::fs::write(&archive, seed).expect("seed archive");
        let resumed = matrix(fork, batched)
            .run_resumable(&archive)
            .expect("resumed run");
        assert_eq!(
            golden,
            resumed.jsonl(),
            "{name} path: interleaved resume diverged from the uninterrupted run"
        );
        assert!(
            resumed
                .warnings
                .iter()
                .any(|w| w.contains("10 of 20 cell(s) already archived")),
            "{name} path: resume must actually have interleaved cached cells: {:?}",
            resumed.warnings
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
