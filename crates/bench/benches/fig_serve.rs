//! fig_serve: open-system serving — arrival-rate sweep to the
//! saturation knee.
//!
//! The paper (and fig_mix) evaluate closed request sets: every request
//! is known before cycle 0. This target opens the system: a seeded
//! arrival process feeds the request injector mid-run, and a serving
//! scheduler (FCFS, max-concurrency, continuous batching, plus the
//! overload policies — reject-above-queue, deadline-drop and
//! priority-preempt) decides whether and when queued requests reach the
//! machine. Sweeping the arrival rate from light load toward saturation
//! locates two knees per cell:
//!
//! - the **latency knee** — the rate where p99 TTFT departs from its
//!   light-load plateau by more than 3x; and
//! - the **goodput knee** — the rate where SLO attainment under the
//!   TTFT deadline first drops below 90%, which is where admission
//!   control starts paying for itself.
//!
//! Every sweep point runs in both step modes and asserts byte-identical
//! per-request statistics (arrival, admission, rejection, preemption,
//! TTFT, TBT, SLO verdict), extending the Skip ≡ Cycle guarantee to
//! mid-run injection with overload admission. One JSON record per
//! (cell, rate) point goes to stdout; when `LLAMCAT_FIG_SERVE_JSON`
//! names a path, a machine-readable report with simulator throughput
//! (cyc/s) and the per-cell knees is written there (the artifact
//! `BENCH_sim_speed.json` archives).
//!
//! Scale via `LLAMCAT_SCALE` as usual (full | half | quick). Set
//! `LLAMCAT_FIG_SERVE_BURSTY=1` to swap the Poisson arrivals for an
//! overlapping-burst storm at the same mean rate (the regime the
//! headline arrival-order bugfix unblocked).

use std::time::Instant;

use llamcat::experiment::{Experiment, Model, Policy, RunReport};
use llamcat::spec::{ArrivalSpec, PolicySpec, ServePolicySpec, ServeSpec, SloSpec};
use llamcat_bench::{goodput_knee, run_experiments, scale_divisor, scale_label, GoodputKnee};
use llamcat_sim::system::StepMode;

/// One serving cell of the sweep: a serving policy × a cache policy.
struct ServeCell {
    name: &'static str,
    scheduler: ServePolicySpec,
    policy: PolicySpec,
    /// Priority classes for the cell's requests (empty = all class 0).
    classes: Vec<u8>,
}

fn cells(n_req: usize, ttft_deadline: u64) -> Vec<ServeCell> {
    // The priority cell interleaves best-effort (0) and urgent (1)
    // requests so every burst carries preemptors.
    let alternating: Vec<u8> = (0..n_req).map(|i| (i % 2) as u8).collect();
    vec![
        ServeCell {
            name: "fcfs/unoptimized",
            scheduler: ServePolicySpec::Fcfs,
            policy: PolicySpec::unoptimized(),
            classes: Vec::new(),
        },
        ServeCell {
            name: "fcfs/dynmg+BMA",
            scheduler: ServePolicySpec::Fcfs,
            policy: PolicySpec::dynmg_bma(),
            classes: Vec::new(),
        },
        ServeCell {
            name: "maxc2/dynmg+BMA",
            scheduler: ServePolicySpec::MaxConcurrency { max: 2 },
            policy: PolicySpec::dynmg_bma(),
            classes: Vec::new(),
        },
        ServeCell {
            name: "cb4/dynmg+BMA",
            scheduler: ServePolicySpec::ContinuousBatching { slots: 4 },
            policy: PolicySpec::dynmg_bma(),
            classes: Vec::new(),
        },
        ServeCell {
            name: "rej4q2/dynmg+BMA",
            scheduler: ServePolicySpec::RejectAboveQueue { slots: 4, depth: 2 },
            policy: PolicySpec::dynmg_bma(),
            classes: Vec::new(),
        },
        ServeCell {
            name: "ddl4/dynmg+BMA",
            scheduler: ServePolicySpec::DeadlineDrop {
                slots: 4,
                ttft_deadline,
            },
            policy: PolicySpec::dynmg_bma(),
            classes: Vec::new(),
        },
        ServeCell {
            name: "prio4/dynmg+BMA",
            scheduler: ServePolicySpec::PriorityPreempt { slots: 4 },
            policy: PolicySpec::dynmg_bma(),
            classes: alternating,
        },
    ]
}

/// The sweep's arrival process at one mean rate: Poisson by default, an
/// overlapping-burst storm (same mean gap) under
/// `LLAMCAT_FIG_SERVE_BURSTY=1`.
fn arrivals_for(mean_gap: u64, bursty: bool) -> ArrivalSpec {
    if bursty {
        // Bursts of 4 back-to-back-ish arrivals; the inter-burst gap
        // keeps the mean rate at one request per `mean_gap` cycles.
        ArrivalSpec::Bursty {
            burst: 4,
            gap_in_burst: (mean_gap / 8).max(1),
            burst_gap: mean_gap.saturating_mul(4).max(1),
            seed: 7,
        }
    } else {
        ArrivalSpec::Poisson { mean_gap, seed: 7 }
    }
}

fn serve_spec(
    seq_len: usize,
    n_req: usize,
    mean_gap: u64,
    ttft_deadline: u64,
    bursty: bool,
    cell: &ServeCell,
) -> ServeSpec {
    let mut spec = ServeSpec::new(
        Model::Llama3_70b.spec(),
        seq_len,
        n_req,
        arrivals_for(mean_gap, bursty),
    )
    .scheduler(cell.scheduler)
    .slo(SloSpec::ttft(ttft_deadline));
    if !cell.classes.is_empty() {
        spec = spec.classes(cell.classes.clone());
    }
    spec
}

/// Sorted-sample quantile (nearest rank on the sorted slice).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One finished sweep point: the latency profile of a (cell, rate) run.
struct SweepPoint {
    mean_gap: u64,
    p50_ttft: u64,
    p99_ttft: u64,
    mean_queue_delay: f64,
    completed: usize,
    rejected: usize,
    preemptions: u64,
    slo_met: usize,
    attainment: f64,
    goodput_per_mcycle: f64,
    cycles: u64,
}

fn point_of(report: &RunReport, mean_gap: u64) -> SweepPoint {
    let mut ttfts: Vec<u64> = report.requests.iter().filter_map(|r| r.ttft).collect();
    ttfts.sort_unstable();
    assert!(
        !ttfts.is_empty(),
        "no request retired a block at gap {mean_gap}"
    );
    let delays: Vec<u64> = report
        .requests
        .iter()
        .filter_map(|r| r.queue_delay)
        .collect();
    let slo = report.slo.as_ref().expect("fig_serve always sets an SLO");
    SweepPoint {
        mean_gap,
        p50_ttft: quantile(&ttfts, 0.50),
        p99_ttft: quantile(&ttfts, 0.99),
        mean_queue_delay: delays.iter().sum::<u64>() as f64 / delays.len().max(1) as f64,
        completed: report.requests.iter().filter(|r| r.completed).count(),
        rejected: report
            .requests
            .iter()
            .filter(|r| r.rejected.is_some())
            .count(),
        preemptions: report
            .requests
            .iter()
            .map(|r| u64::from(r.preemptions))
            .sum(),
        slo_met: slo.met,
        attainment: slo.attainment,
        goodput_per_mcycle: slo.goodput_per_mcycle,
        cycles: report.cycles,
    }
}

fn main() {
    let div = scale_divisor();
    let seq_len = 1024 / div;
    let n_req = if div >= 8 { 4 } else { 8 };
    let bursty = std::env::var("LLAMCAT_FIG_SERVE_BURSTY").is_ok_and(|v| v == "1");

    // Calibrate the rate axis in units of the solo service time, so
    // the sweep brackets the knee at every scale: gaps well above the
    // service time are the open ("light load") regime, gaps below it
    // force queueing.
    let solo = Experiment::new(Model::Llama3_70b, seq_len)
        .policy(Policy::dynmg_bma())
        .run();
    assert!(solo.completed && solo.cycles > 0);
    let svc = solo.cycles;
    // An unloaded request's TTFT: the reference for both the SLO
    // deadline (4x, generous at light load, unreachable once queueing
    // stacks up) and the saturated-at-lightest-point diagnostic.
    let solo_ttft = solo.requests[0].ttft.unwrap_or(svc).max(1);
    let ttft_deadline = solo_ttft.saturating_mul(4);
    let gap_factors: &[f64] = if div >= 8 {
        &[4.0, 1.0, 0.25]
    } else {
        &[8.0, 4.0, 2.0, 1.0, 0.5, 0.25]
    };
    let gaps: Vec<u64> = gap_factors
        .iter()
        .map(|f| ((svc as f64 * f) as u64).max(1))
        .collect();

    println!(
        "# fig_serve — open-system arrival-rate sweep to the saturation knee \
         (scale: {}, seq {seq_len}, {n_req} requests, {} arrivals, solo service {svc} cycles, \
         solo TTFT {solo_ttft}, SLO TTFT deadline {ttft_deadline})",
        scale_label(),
        if bursty { "burst-storm" } else { "poisson" },
    );

    // The whole sweep — every (cell, gap) in both step modes — as one
    // parallel batch.
    let cell_defs = cells(n_req, ttft_deadline);
    let mut experiments = Vec::new();
    for cell in &cell_defs {
        for &gap in &gaps {
            let spec = serve_spec(seq_len, n_req, gap, ttft_deadline, bursty, cell);
            for mode in [StepMode::Cycle, StepMode::Skip] {
                experiments.push(
                    Experiment::from_serve_spec(&spec)
                        .expect("serve spec composes")
                        .policy(cell.policy.clone())
                        .step_mode(mode),
                );
            }
        }
    }
    let reports = run_experiments(&experiments).expect("fig_serve sweep");

    let mut json_points: Vec<String> = Vec::new();
    let mut knees: Vec<(String, Option<u64>, &'static str, GoodputKnee)> = Vec::new();
    for (c, cell) in cell_defs.iter().enumerate() {
        println!("\n### {} ({})", cell.name, cell.policy.label());
        println!(
            "{:>12} {:>14} {:>10} {:>10} {:>12} {:>10} {:>8} {:>8} {:>10}",
            "mean-gap",
            "rate/Mcyc",
            "p50-ttft",
            "p99-ttft",
            "mean-queue",
            "completed",
            "rejected",
            "slo-met",
            "goodput"
        );
        let mut points = Vec::with_capacity(gaps.len());
        for (g, &gap) in gaps.iter().enumerate() {
            let base = (c * gaps.len() + g) * 2;
            let (cycle, skip) = (&reports[base], &reports[base + 1]);
            assert_eq!(
                serde_json::to_string(&cycle.requests).unwrap(),
                serde_json::to_string(&skip.requests).unwrap(),
                "per-request stats diverged between step modes ({}, gap {gap})",
                cell.name
            );
            assert_eq!(cycle.cycles, skip.cycles);
            let pt = point_of(cycle, gap);
            println!(
                "{:>12} {:>14.2} {:>10} {:>10} {:>12.0} {:>7}/{} {:>8} {:>8} {:>10.3}",
                pt.mean_gap,
                1e6 / pt.mean_gap as f64,
                pt.p50_ttft,
                pt.p99_ttft,
                pt.mean_queue_delay,
                pt.completed,
                n_req,
                pt.rejected,
                pt.slo_met,
                pt.goodput_per_mcycle,
            );
            points.push(pt);
        }
        // The latency knee: the first rate (sweeping load upward) whose
        // p99 TTFT leaves the light-load plateau by more than 3x. The
        // plateau baseline is the lightest point — which is only a
        // plateau if that point is itself unsaturated, so check it and
        // report the difference between "never saturates" and "already
        // saturated everywhere". Saturation at the lightest point shows
        // as both an elevated p99 (vs the unloaded solo TTFT) and a
        // heavy TTFT tail (p99 >> p50 — queueing variance); a narrow
        // slot width alone shifts the whole distribution without
        // spreading it, and is not saturation.
        let plateau = points[0].p99_ttft.max(1);
        let knee = points
            .iter()
            .find(|p| p.p99_ttft > plateau.saturating_mul(3))
            .map(|p| p.mean_gap);
        let spread_at_lightest = points[0].p99_ttft > points[0].p50_ttft.max(1).saturating_mul(2);
        let knee_status = if knee.is_some() {
            "found"
        } else if plateau > solo_ttft.saturating_mul(3) && spread_at_lightest {
            "saturated_at_lightest"
        } else {
            "not_reached"
        };
        match knee {
            Some(gap) => println!(
                "    knee: p99 TTFT exceeds 3x light-load plateau at mean gap {gap} \
                 ({:.2} requests/Mcyc)",
                1e6 / gap as f64
            ),
            None if knee_status == "saturated_at_lightest" => println!(
                "    knee: WARNING — lightest point is already saturated (p99 TTFT {plateau} \
                 > 3x solo TTFT {solo_ttft}); the knee lies below this sweep's rate range"
            ),
            None => println!("    knee: not reached in this sweep"),
        }
        // The goodput knee: the first rate where SLO attainment under
        // the TTFT deadline drops below 90% — the overload onset the
        // admission policies are supposed to move. Same status
        // treatment as the latency knee: a sweep whose lightest point
        // is already below threshold has no knee in range (reporting
        // the sweep edge once made every cell claim the identical
        // "knee" regardless of policy).
        let attainment_curve: Vec<(u64, f64)> =
            points.iter().map(|p| (p.mean_gap, p.attainment)).collect();
        let goodput = goodput_knee(&attainment_curve, 0.9);
        match goodput {
            GoodputKnee::Found { mean_gap: gap } => println!(
                "    goodput knee: SLO attainment drops below 90% at mean gap {gap} \
                 ({:.2} requests/Mcyc)",
                1e6 / gap as f64
            ),
            GoodputKnee::SaturatedAtLightest => println!(
                "    goodput knee: WARNING — attainment {:.3} < 0.9 already at the \
                 lightest rate; the knee lies below this sweep's rate range",
                points[0].attainment
            ),
            GoodputKnee::NotReached => {
                println!("    goodput knee: attainment >= 90% across the sweep")
            }
        }
        for pt in &points {
            json_points.push(format!(
                "{{\"cell\": \"{}\", \"policy\": \"{}\", \"mean_gap\": {}, \
                 \"rate_per_mcyc\": {:.4}, \"p50_ttft\": {}, \"p99_ttft\": {}, \
                 \"mean_queue_delay\": {:.1}, \"completed\": {}, \"rejected\": {}, \
                 \"preemptions\": {}, \"slo_met\": {}, \"attainment\": {:.4}, \
                 \"goodput_per_mcyc\": {:.4}, \"cycles\": {}, \"knee_gap\": {}, \
                 \"knee_status\": \"{knee_status}\", \"goodput_knee_gap\": {}, \
                 \"goodput_knee_status\": \"{}\"}}",
                cell.name,
                cell.policy.label(),
                pt.mean_gap,
                1e6 / pt.mean_gap as f64,
                pt.p50_ttft,
                pt.p99_ttft,
                pt.mean_queue_delay,
                pt.completed,
                pt.rejected,
                pt.preemptions,
                pt.slo_met,
                pt.attainment,
                pt.goodput_per_mcycle,
                pt.cycles,
                knee.map_or("null".into(), |g| g.to_string()),
                goodput.gap().map_or("null".into(), |g| g.to_string()),
                goodput.status_label(),
            ));
        }
        knees.push((cell.name.to_string(), knee, knee_status, goodput));
    }

    // Deterministic JSONL artifact (byte-identical across runs).
    println!("\n## JSONL");
    for line in &json_points {
        println!("{line}");
    }

    // Simulator throughput on a representative serve cell, both modes,
    // sequential timing (the cyc/s figure BENCH_sim_speed.json tracks).
    let mid_gap = gaps[gaps.len() / 2];
    let spec = serve_spec(
        seq_len,
        n_req,
        mid_gap,
        ttft_deadline,
        bursty,
        &cell_defs[1],
    );
    let mut speed = Vec::new();
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let exp = Experiment::from_serve_spec(&spec)
            .expect("serve spec composes")
            .policy(cell_defs[1].policy.clone())
            .step_mode(mode);
        let t0 = Instant::now();
        let r = exp.run();
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "[fig_serve] throughput {} {mode:?}: {} cycles in {wall:.3}s = {:.0} cyc/s",
            cell_defs[1].name,
            r.cycles,
            r.cycles as f64 / wall
        );
        speed.push((mode, r.cycles, wall));
    }

    if let Ok(path) = std::env::var("LLAMCAT_FIG_SERVE_JSON") {
        let mut json = String::from("{\n  \"schema\": \"llamcat-fig-serve/3\",\n");
        json.push_str(&llamcat_bench::bench_meta_json_fields());
        json.push_str(&format!(
            "  \"seq_len\": {seq_len},\n  \"num_requests\": {n_req},\n  \
             \"arrivals\": \"{}\",\n  \"solo_service_cycles\": {svc},\n  \
             \"solo_ttft\": {solo_ttft},\n  \"ttft_deadline\": {ttft_deadline},\n",
            if bursty { "bursty" } else { "poisson" },
        ));
        json.push_str("  \"throughput\": [\n");
        for (i, (mode, cycles, wall)) in speed.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"cell\": \"{}\", \"mode\": \"{mode:?}\", \"cycles\": {cycles}, \
                 \"wall_s\": {wall:.4}, \"cycles_per_sec\": {:.0}}}{}\n",
                cell_defs[1].name,
                *cycles as f64 / wall,
                if i + 1 == speed.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n  \"knees\": [\n");
        for (i, (name, knee, status, goodput)) in knees.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"cell\": \"{name}\", \"knee_gap\": {}, \"knee_status\": \"{status}\", \
                 \"goodput_knee_gap\": {}, \"goodput_knee_status\": \"{}\"}}{}\n",
                knee.map_or("null".into(), |g| g.to_string()),
                goodput.gap().map_or("null".into(), |g| g.to_string()),
                goodput.status_label(),
                if i + 1 == knees.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n  \"points\": [\n");
        for (i, line) in json_points.iter().enumerate() {
            json.push_str(&format!(
                "    {line}{}\n",
                if i + 1 == json_points.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write fig_serve JSON report");
        println!("wrote {path}");
    }
}
