//! System configuration mirroring Table 5 of the paper.
//!
//! Every structural parameter of the simulated machine lives here so that
//! the benchmark harness can sweep cache sizes (Fig 9), queue depths and
//! MSHR geometry without touching simulator code. `SystemConfig::table5()`
//! reproduces the exact configuration the paper evaluates.

use serde::{Deserialize, Serialize};

use crate::types::LINE_BYTES;

/// Arbitration between the request path and the response path for the
/// shared LLC storage port (Section 3.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReqRespPolicy {
    /// Serve a response whenever one is queued ("response-queue-first";
    /// the policy the paper's experiments use).
    ResponseFirst,
    /// Prioritize requests; only when the response queue is full are
    /// requests and responses served in turn (COBRRA-style baseline).
    RequestFirst,
}

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes. Always 64 in the paper's configuration.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.capacity_bytes / (self.line_bytes * self.associativity as u64)) as usize
    }
}

/// Per-core private L1 configuration (Table 5, "L1 cache" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L1Config {
    pub geometry: CacheGeometry,
    /// Hit latency in core cycles.
    pub latency: u64,
    /// Maximum distinct outstanding line misses tracked per core.
    pub miss_entries: usize,
    /// Maximum requests merged per outstanding line.
    pub miss_targets: usize,
    /// Streaming hint: inserted lines are placed at LRU position so that
    /// single-use streams do not displace reused data.
    pub streaming: bool,
}

/// Shared L2 (LLC) configuration (Table 5, "L2 slice" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Config {
    /// Total capacity across all slices, in bytes.
    pub capacity_bytes: u64,
    /// Number of address-interleaved slices.
    pub num_slices: usize,
    pub associativity: usize,
    /// Tag/pipeline latency for a lookup (cycles).
    pub hit_latency: u64,
    /// Data-array latency added to a hit before the response leaves (cycles).
    pub data_latency: u64,
    /// Cycles the slice data port is occupied per cache-hit readout.
    /// The MSHR path does not use the data port (fills forward directly
    /// to cores), which is precisely why the paper finds "MSHR can be
    /// more efficient in capturing temporal locality than cache
    /// storage": a merge overlaps DRAM latency while a hit queues for
    /// the data array.
    pub hit_occupancy: u64,
    /// Extra latency of an MSHR lookup after a tag miss (cycles).
    pub mshr_latency: u64,
    /// MSHR entries per slice (`numEntry`).
    pub mshr_entries: usize,
    /// Mergeable requests per MSHR entry (`numTarget`).
    pub mshr_targets: usize,
    /// Request queue capacity per slice.
    pub req_q_size: usize,
    /// Response queue capacity per slice.
    pub resp_q_size: usize,
    /// Request/response arbitration for the storage port.
    pub req_resp: ReqRespPolicy,
}

impl L2Config {
    /// Bytes of capacity per slice.
    pub fn slice_capacity(&self) -> u64 {
        self.capacity_bytes / self.num_slices as u64
    }

    /// Cache sets per slice.
    pub fn sets_per_slice(&self) -> usize {
        (self.slice_capacity() / (LINE_BYTES * self.associativity as u64)) as usize
    }
}

/// Vector-core configuration (Table 5, "Core" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Number of instruction windows (thread-block slots) per core.
    pub num_inst_windows: usize,
    /// Instructions each window can hold in flight.
    pub inst_window_depth: usize,
    /// Width of one vector memory access in bytes (vector-len).
    pub vector_len_bytes: u64,
}

/// Interconnect configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Base one-way latency, core to LLC slice, in core cycles
    /// (router/serialization overhead before per-hop distance).
    pub req_base: u64,
    /// Base one-way latency, LLC slice to core, in core cycles.
    pub resp_base: u64,
    /// Additional latency per mesh hop.
    pub hop_latency: u64,
    /// Model per-(core, slice) mesh distances (Fig 3); false gives a
    /// uniform-latency crossbar.
    pub mesh: bool,
}

/// DDR5 device/channel timing, expressed in DRAM clock cycles (tCK).
///
/// Defaults correspond to DDR5-3200 (tCK = 0.625 ns) with 8 Gb x16
/// devices: a 32-bit subchannel with BL16 moves one 64 B line per burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// DRAM clock period in picoseconds (DDR5-3200: 625 ps).
    pub tck_ps: u64,
    /// CAS latency (READ to data start).
    pub cl: u64,
    /// RCD: ACTIVATE to internal READ/WRITE.
    pub trcd: u64,
    /// RP: PRECHARGE to ACTIVATE.
    pub trp: u64,
    /// RAS: ACTIVATE to PRECHARGE (minimum row open time).
    pub tras: u64,
    /// Write latency (WRITE to data start).
    pub cwl: u64,
    /// Burst length in data-bus cycles (BL16 occupies BL/2 = 8 tCK).
    pub tbl: u64,
    /// Column-to-column, same bank group.
    pub tccd_l: u64,
    /// Column-to-column, different bank group.
    pub tccd_s: u64,
    /// ACT-to-ACT, same bank group.
    pub trrd_l: u64,
    /// ACT-to-ACT, different bank group.
    pub trrd_s: u64,
    /// Four-activate window.
    pub tfaw: u64,
    /// Write recovery (end of write data to PRECHARGE).
    pub twr: u64,
    /// Write-to-read turnaround, same rank.
    pub twtr: u64,
    /// Read-to-precharge.
    pub trtp: u64,
    /// Average refresh interval.
    pub trefi: u64,
    /// Refresh cycle time (all-bank).
    pub trfc: u64,
}

impl DramTiming {
    /// JEDEC-flavoured DDR5-3200AN timing set.
    pub fn ddr5_3200() -> Self {
        DramTiming {
            tck_ps: 625,
            cl: 26,
            trcd: 26,
            trp: 26,
            tras: 52,
            cwl: 24,
            tbl: 8,
            tccd_l: 8,
            tccd_s: 8,
            trrd_l: 8,
            trrd_s: 8,
            tfaw: 32,
            twr: 48,
            twtr: 16,
            trtp: 12,
            trefi: 6240,
            trfc: 472,
        }
    }
}

/// DRAM organisation (Table 5, "DRAM" row: DDR5_8Gb_x16, 4 ranks,
/// DDR5-3200, 4 channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    pub channels: usize,
    pub ranks: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Row-buffer (page) size in bytes per bank.
    pub row_bytes: u64,
    pub timing: DramTiming,
    /// Read queue capacity per channel.
    pub read_q_size: usize,
    /// Write queue capacity per channel.
    pub write_q_size: usize,
    /// Drain writes once the write queue reaches this occupancy.
    pub write_high_watermark: usize,
    /// Stop draining writes below this occupancy.
    pub write_low_watermark: usize,
    /// Enable periodic refresh.
    pub refresh: bool,
}

impl DramConfig {
    /// Table 5 organisation: 4 channels, 4 ranks, DDR5 x16 (4 bank groups
    /// of 2 banks on a 32-bit subchannel), 2 KiB rows.
    pub fn table5() -> Self {
        DramConfig {
            channels: 4,
            ranks: 4,
            bank_groups: 4,
            banks_per_group: 2,
            row_bytes: 2048,
            timing: DramTiming::ddr5_3200(),
            read_q_size: 32,
            write_q_size: 32,
            write_high_watermark: 24,
            write_low_watermark: 8,
            refresh: true,
        }
    }

    /// Total banks per channel.
    pub fn banks_per_channel(&self) -> usize {
        self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Peak channel bandwidth in bytes per second (one line per tBL).
    pub fn peak_channel_bw(&self) -> f64 {
        let burst_seconds = self.timing.tbl as f64 * self.timing.tck_ps as f64 * 1e-12;
        LINE_BYTES as f64 / burst_seconds
    }
}

/// Complete system configuration (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core clock frequency in GHz (paper: 1.96 GHz).
    pub freq_ghz: f64,
    pub num_cores: usize,
    pub core: CoreConfig,
    pub l1: L1Config,
    pub l2: L2Config,
    pub noc: NocConfig,
    pub dram: DramConfig,
}

impl SystemConfig {
    /// The exact configuration of Table 5.
    pub fn table5() -> Self {
        SystemConfig {
            freq_ghz: 1.96,
            num_cores: 16,
            core: CoreConfig {
                num_inst_windows: 4,
                inst_window_depth: 128,
                vector_len_bytes: 128,
            },
            l1: L1Config {
                geometry: CacheGeometry {
                    capacity_bytes: 64 * 1024,
                    associativity: 8,
                    line_bytes: LINE_BYTES,
                },
                latency: 1,
                miss_entries: 32,
                miss_targets: 8,
                streaming: true,
            },
            l2: L2Config {
                capacity_bytes: 16 * 1024 * 1024,
                num_slices: 8,
                associativity: 8,
                hit_latency: 3,
                data_latency: 25,
                hit_occupancy: 4,
                mshr_latency: 5,
                mshr_entries: 6,
                mshr_targets: 8,
                req_q_size: 12,
                resp_q_size: 64,
                req_resp: ReqRespPolicy::ResponseFirst,
            },
            noc: NocConfig {
                req_base: 2,
                resp_base: 2,
                hop_latency: 1,
                mesh: true,
            },
            dram: DramConfig::table5(),
        }
    }

    /// Same system with a different total L2 capacity (Fig 9 sweeps
    /// 16 MB / 32 MB / 64 MB).
    pub fn with_l2_mb(mut self, mb: u64) -> Self {
        self.l2.capacity_bytes = mb * 1024 * 1024;
        self
    }

    /// Core clock period in picoseconds.
    pub fn core_period_ps(&self) -> u64 {
        (1000.0 / self.freq_ghz).round() as u64
    }

    /// Validates internal consistency; returns a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be positive".into());
        }
        if !self.l2.num_slices.is_power_of_two() {
            return Err("num_slices must be a power of two".into());
        }
        if !self.dram.channels.is_power_of_two() {
            return Err("DRAM channels must be a power of two".into());
        }
        if self.l2.sets_per_slice() == 0 {
            return Err("L2 slice must contain at least one set".into());
        }
        if !self.l1.geometry.num_sets().is_power_of_two() {
            return Err("L1 sets must be a power of two".into());
        }
        if self.l2.mshr_entries == 0 || self.l2.mshr_targets == 0 {
            return Err("MSHR dimensions must be positive".into());
        }
        if self.dram.write_low_watermark >= self.dram.write_high_watermark {
            return Err("write watermarks must satisfy low < high".into());
        }
        if !self.core.vector_len_bytes.is_multiple_of(LINE_BYTES)
            && !LINE_BYTES.is_multiple_of(self.core.vector_len_bytes)
        {
            return Err("vector length must divide or be a multiple of the line size".into());
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper() {
        let c = SystemConfig::table5();
        assert_eq!(c.num_cores, 16);
        assert_eq!(c.l2.capacity_bytes, 16 * 1024 * 1024);
        assert_eq!(c.l2.num_slices, 8);
        assert_eq!(c.l2.mshr_entries, 6);
        assert_eq!(c.l2.mshr_targets, 8);
        assert_eq!(c.l2.hit_latency, 3);
        assert_eq!(c.l2.data_latency, 25);
        assert_eq!(c.l2.mshr_latency, 5);
        assert_eq!(c.l2.req_q_size, 12);
        assert_eq!(c.l2.resp_q_size, 64);
        assert_eq!(c.core.num_inst_windows, 4);
        assert_eq!(c.core.inst_window_depth, 128);
        assert_eq!(c.l1.geometry.capacity_bytes, 64 * 1024);
        assert_eq!(c.dram.channels, 4);
        assert_eq!(c.dram.ranks, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn l2_slice_geometry() {
        let c = SystemConfig::table5();
        // 16 MB / 8 slices / (64 B * 8 ways) = 4096 sets per slice.
        assert_eq!(c.l2.sets_per_slice(), 4096);
        assert_eq!(c.l2.slice_capacity(), 2 * 1024 * 1024);
    }

    #[test]
    fn l1_geometry() {
        let c = SystemConfig::table5();
        // 64 KB / (64 B * 8) = 128 sets.
        assert_eq!(c.l1.geometry.num_sets(), 128);
    }

    #[test]
    fn cache_size_sweep_helper() {
        let c = SystemConfig::table5().with_l2_mb(64);
        assert_eq!(c.l2.capacity_bytes, 64 * 1024 * 1024);
        assert_eq!(c.l2.sets_per_slice(), 16384);
    }

    #[test]
    fn core_period() {
        let c = SystemConfig::table5();
        // 1 / 1.96 GHz = 510.2 ps.
        assert_eq!(c.core_period_ps(), 510);
    }

    #[test]
    fn peak_bandwidth_is_plausible() {
        let d = DramConfig::table5();
        let bw = d.peak_channel_bw();
        // 64 B per 5 ns = 12.8 GB/s per channel.
        assert!((bw - 12.8e9).abs() < 0.1e9, "got {bw}");
    }

    #[test]
    fn validation_rejects_broken_configs() {
        let mut c = SystemConfig::table5();
        c.l2.num_slices = 3;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::table5();
        c.num_cores = 0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::table5();
        c.dram.write_low_watermark = 30;
        assert!(c.validate().is_err());
    }
}
