//! Cross-crate integration tests: trace generation -> simulation ->
//! statistics, under every policy combination.

use llamcat::experiment::{ArbPolicy, Experiment, Layout, Model, Policy, ThrottlePolicy};
use llamcat_sim::stats::SimStats;

fn small(model: Model, policy: Policy) -> Experiment {
    Experiment::new(model, 256).policy(policy)
}

#[test]
fn every_policy_combination_completes_and_is_consistent() {
    for throttle in [
        ThrottlePolicy::None,
        ThrottlePolicy::Dyncta,
        ThrottlePolicy::Lcs,
        ThrottlePolicy::DynMg,
    ] {
        for arb in [
            ArbPolicy::Fifo,
            ArbPolicy::Balanced,
            ArbPolicy::MshrAware,
            ArbPolicy::BalancedMshrAware,
            ArbPolicy::Cobrra,
        ] {
            let p = Policy::new(arb, throttle);
            let r = small(Model::Llama3_70b, p).run();
            assert!(r.completed, "{} must complete", r.policy_label);
            let stats = r.stats.as_ref().expect("stats present");
            stats
                .check_consistency()
                .unwrap_or_else(|e| panic!("{}: {e}", r.policy_label));
        }
    }
}

#[test]
fn both_models_run() {
    for model in [Model::Llama3_70b, Model::Llama3_405b] {
        let r = small(model, Policy::dynmg_bma()).run();
        assert!(r.completed);
        assert!(r.dram_accesses > 0);
    }
}

#[test]
fn all_layouts_do_the_same_work() {
    let stores = |s: &SimStats| -> u64 { s.cores.iter().map(|c| c.stores).sum() };
    let loads = |s: &SimStats| -> u64 { s.cores.iter().map(|c| c.loads).sum() };
    let mut seen = Vec::new();
    for layout in [
        Layout::PairStream,
        Layout::Spatial,
        Layout::RoundRobinGInner,
        Layout::RoundRobinLInner,
    ] {
        let r = Experiment::new(Model::Llama3_70b, 256).layout(layout).run();
        assert!(r.completed, "{layout:?}");
        let st = r.stats.as_ref().expect("stats");
        seen.push((loads(st), stores(st)));
    }
    // Identical instruction volume regardless of layout.
    assert!(seen.windows(2).all(|w| w[0] == w[1]), "{seen:?}");
}

#[test]
fn determinism_across_runs() {
    let run = || {
        Experiment::new(Model::Llama3_405b, 256)
            .policy(Policy::dynmg_bma())
            .run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.dram_accesses, b.dram_accesses);
    assert_eq!(a.tb_migrations, b.tb_migrations);
    let (sa, sb) = (a.stats.as_ref().unwrap(), b.stats.as_ref().unwrap());
    for (x, y) in sa.slices.iter().zip(sb.slices.iter()) {
        assert_eq!(x.hits, y.hits);
        assert_eq!(x.mshr_merges, y.mshr_merges);
        assert_eq!(x.stall_cycles, y.stall_cycles);
    }
}

#[test]
fn l2_capacity_changes_behaviour_monotonically_enough() {
    // Larger caches must never make the unoptimized machine slower by
    // more than noise, and DRAM traffic must not increase.
    let mut prev_accesses = u64::MAX;
    for mb in [8, 16, 64] {
        let r = Experiment::new(Model::Llama3_70b, 1024).l2_mb(mb).run();
        assert!(r.completed);
        assert!(
            r.dram_accesses <= prev_accesses,
            "traffic should not grow with cache size"
        );
        prev_accesses = r.dram_accesses;
    }
}

#[test]
fn dram_traffic_is_bounded_by_workload_extremes() {
    let r = Experiment::new(Model::Llama3_70b, 512).run();
    let op = Model::Llama3_70b.op(512);
    let min_lines = op.k_bytes() / 64; // each K line at least once
    let max_lines = (op.max_read_bytes() + op.score_bytes() * 3) / 64;
    assert!(
        r.dram_accesses >= min_lines,
        "must fetch all of K at least once: {} < {min_lines}",
        r.dram_accesses
    );
    assert!(
        r.dram_accesses <= max_lines,
        "cannot exceed zero-reuse traffic plus stores: {} > {max_lines}",
        r.dram_accesses
    );
}

#[test]
fn progress_counters_sum_to_served_requests() {
    let r = Experiment::new(Model::Llama3_70b, 256).run();
    let st = r.stats.as_ref().unwrap();
    let served: u64 = st.progress.iter().sum();
    let lookups: u64 = st.slices.iter().map(|s| s.lookups).sum();
    assert_eq!(served, lookups);
}

#[test]
fn speedup_math_is_symmetric() {
    let a = small(Model::Llama3_70b, Policy::unoptimized()).run();
    let b = small(Model::Llama3_70b, Policy::dynmg()).run();
    let s1 = b.speedup_over(&a);
    let s2 = a.speedup_over(&b);
    assert!((s1 * s2 - 1.0).abs() < 1e-12);
}

#[test]
fn experiment_reports_carry_metrics() {
    let r = small(Model::Llama3_70b, Policy::dynmg_bma()).run();
    assert!(r.l2_hit_rate >= 0.0 && r.l2_hit_rate <= 1.0);
    assert!(r.mshr_hit_rate >= 0.0 && r.mshr_hit_rate <= 1.0);
    assert!(r.mshr_entry_util >= 0.0 && r.mshr_entry_util <= 1.0);
    assert!(r.t_cs >= 0.0 && r.t_cs <= 1.0);
    assert!(r.dram_bandwidth_gbs > 0.0);
    assert_eq!(r.l2_mb, 16);
    assert_eq!(r.policy_label, "dynmg+BMA");
}

#[test]
fn trace_file_round_trip_through_simulation() {
    use llamcat_trace::prelude::*;
    let op = LogitOp::llama3_70b(256);
    let (program, meta) = generate_default(&op, &TraceGenConfig::default());
    let tf = TraceFile { op, meta, program };
    let mut buf = Vec::new();
    tf.write_binary(&mut buf).unwrap();
    let rt = TraceFile::read_binary(&mut buf.as_slice()).unwrap();

    // The reloaded trace must simulate identically to the original.
    use llamcat_sim::arb::{FifoArbiter, NoThrottle};
    use llamcat_sim::config::SystemConfig;
    use llamcat_sim::system::System;
    let run = |p: llamcat_sim::prog::Program| {
        let mut sys = System::new(
            SystemConfig::table5(),
            p,
            &|_| Box::new(FifoArbiter),
            Box::new(NoThrottle),
        );
        sys.run(100_000_000).0.cycles
    };
    assert_eq!(run(tf.program), run(rt.program));
}
