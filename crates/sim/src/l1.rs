//! Private per-core L1 cache with a miss table (per-core MSHRs).
//!
//! Table 5: 64 KB, 8-way, 64 B lines, latency 1, allocate-on-fill,
//! streaming, write-no-allocate, write-through. Because the L1 is
//! write-through it never holds dirty data; stores are forwarded to the
//! LLC unconditionally and are posted (the core does not wait).

use crate::cache::{InsertPolicy, SetAssocCache};
use crate::config::L1Config;
use crate::hash::AddrHashMap;
use crate::types::{Addr, Cycle, WindowId};

/// Result of presenting one line-sized load to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1LoadOutcome {
    /// Data present: no stall (latency 1 is folded into issue).
    Hit,
    /// Line already being fetched; this window was added as a waiter.
    MergedMiss,
    /// New miss: a request must be sent to the LLC.
    NewMiss,
    /// Miss table exhausted: the instruction must retry later.
    Blocked,
}

/// A read-only classification of one line-sized load, produced by
/// [`L1Cache::classify`] and redeemable with [`L1Cache::commit`] in the
/// same cycle. Splitting the two halves lets the core's coalesced-issue
/// feasibility pass reuse its tag scans and hash lookups for the commit
/// pass (the seed re-ran both per line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Class {
    /// Hit in storage at `(set, way)`.
    Hit { set: usize, way: usize },
    /// Mergeable into the pending miss in slot `slot`.
    Merge { slot: usize },
    /// Admissible as a fresh miss.
    New,
    /// Not admissible this cycle (miss table or target list full).
    Blocked,
}

/// The L1 cache plus its outstanding-miss bookkeeping.
///
/// The miss table is point-addressed: every operation resolves a line
/// through the `index` map in O(1) instead of scanning the entry array
/// (the scans dominated whole-simulation wall time — each issued vector
/// load probes the table several times per line, every cycle a blocked
/// window retries). The index is used for key lookups only, never
/// iterated, so behavior is bit-identical to the scanning version.
///
/// Data-oriented layout: waiter lists live in fixed-size windows of one
/// flat preallocated buffer (`miss_entries x miss_targets`), so the
/// table performs zero heap allocations after construction —
/// [`L1Cache::fill`] returns the waiters as a borrowed slice instead of
/// the per-miss `Vec` the seed allocated.
#[derive(Clone)]
pub struct L1Cache {
    cfg: L1Config,
    storage: SetAssocCache,
    /// Line address per miss slot (meaningful only for live slots).
    miss_line: Vec<Addr>,
    /// Live waiter count per miss slot.
    waiter_len: Vec<usize>,
    /// Flat waiter storage: slot `i` owns `[i * miss_targets ..]`.
    waiters: Vec<(WindowId, Cycle)>,
    /// line address -> slot (fast multiply hash; keys are internal).
    index: AddrHashMap<Addr, usize>,
    /// Free slots (stack; slot identity has no behavioral effect —
    /// entries are only ever resolved by line address).
    free: Vec<usize>,
    occupied: usize,
}

impl L1Cache {
    pub fn new(cfg: L1Config) -> Self {
        let sets = cfg.geometry.num_sets();
        let mut index = AddrHashMap::default();
        // 2x headroom keeps the live count at or below half the usable
        // capacity, so tombstone churn is absorbed by in-place rehashes
        // — the map never allocates again after construction (pinned by
        // `tests/alloc_regression.rs`).
        index.reserve(cfg.miss_entries * 2);
        L1Cache {
            cfg,
            storage: SetAssocCache::new(sets, cfg.geometry.associativity, 0),
            miss_line: vec![0; cfg.miss_entries],
            waiter_len: vec![0; cfg.miss_entries],
            waiters: vec![(0, 0); cfg.miss_entries * cfg.miss_targets],
            index,
            free: (0..cfg.miss_entries).rev().collect(),
            occupied: 0,
        }
    }

    fn insert_policy(&self) -> InsertPolicy {
        if self.cfg.streaming {
            InsertPolicy::Lru
        } else {
            InsertPolicy::Mru
        }
    }

    /// Classifies a line-sized load without mutating any state.
    ///
    /// `fresh_so_far` counts new misses already classified (but not yet
    /// committed) in the same coalesced vector access, so capacity is
    /// judged against the post-commit table.
    pub fn classify(&self, line_addr: Addr, fresh_so_far: usize) -> L1Class {
        if let Some((set, way)) = self.storage.find(line_addr) {
            return L1Class::Hit { set, way };
        }
        if let Some(&slot) = self.index.get(&line_addr) {
            if self.waiter_len[slot] >= self.cfg.miss_targets {
                L1Class::Blocked
            } else {
                L1Class::Merge { slot }
            }
        } else if self.occupied + fresh_so_far < self.miss_line.len() {
            L1Class::New
        } else {
            L1Class::Blocked
        }
    }

    /// Commits a classification from [`L1Cache::classify`]. Only valid
    /// in the same cycle with no intervening L1 mutations (the core's
    /// two-pass coalesced issue guarantees this).
    pub fn commit(
        &mut self,
        line_addr: Addr,
        class: L1Class,
        window: WindowId,
        now: Cycle,
    ) -> L1LoadOutcome {
        match class {
            L1Class::Hit { set, way } => {
                self.storage.touch(set, way, false);
                L1LoadOutcome::Hit
            }
            L1Class::Merge { slot } => {
                let len = self.waiter_len[slot];
                debug_assert!(len < self.cfg.miss_targets, "classified merge has room");
                self.waiters[slot * self.cfg.miss_targets + len] = (window, now);
                self.waiter_len[slot] = len + 1;
                L1LoadOutcome::MergedMiss
            }
            L1Class::New => {
                let slot = self.free.pop().expect("classified new miss has capacity");
                self.miss_line[slot] = line_addr;
                self.waiters[slot * self.cfg.miss_targets] = (window, now);
                self.waiter_len[slot] = 1;
                self.index.insert(line_addr, slot);
                self.occupied += 1;
                L1LoadOutcome::NewMiss
            }
            L1Class::Blocked => L1LoadOutcome::Blocked,
        }
    }

    /// Presents a line-sized load from `window` at cycle `now`
    /// (classify + commit in one step).
    pub fn load(&mut self, line_addr: Addr, window: WindowId, now: Cycle) -> L1LoadOutcome {
        let class = self.classify(line_addr, 0);
        self.commit(line_addr, class, window, now)
    }

    /// Presents a line-sized store. Write-no-allocate / write-through:
    /// updates the line if present; the caller always forwards the store
    /// to the LLC.
    pub fn store(&mut self, line_addr: Addr) {
        // Write-through: the L1 copy stays clean (dirty bit not set).
        self.storage.access(line_addr, false);
    }

    /// A fill returned from the LLC: installs the line (allocate-on-fill)
    /// and returns the waiting windows with their issue cycles as a
    /// slice borrowed from the flat waiter storage (valid until the next
    /// `load`).
    pub fn fill(&mut self, line_addr: Addr, now: Cycle) -> &[(WindowId, Cycle)] {
        let _ = now;
        let policy = self.insert_policy();
        self.storage.insert(line_addr, false, policy);
        if let Some(slot) = self.index.remove(&line_addr) {
            debug_assert_eq!(
                self.miss_line[slot], line_addr,
                "index points at wrong entry"
            );
            self.free.push(slot);
            self.occupied -= 1;
            let base = slot * self.cfg.miss_targets;
            return &self.waiters[base..base + self.waiter_len[slot]];
        }
        &[]
    }

    /// Outstanding distinct line misses.
    pub fn outstanding(&self) -> usize {
        self.occupied
    }

    /// Miss-table capacity (`miss_entries`).
    pub fn capacity(&self) -> usize {
        self.miss_line.len()
    }

    /// Probes storage without touching replacement state.
    pub fn probe(&self, line_addr: Addr) -> bool {
        self.storage.probe(line_addr)
    }

    /// Whether a pending miss for `line_addr` can accept another waiter.
    pub fn has_target_space(&self, line_addr: Addr) -> bool {
        self.index
            .get(&line_addr)
            .is_some_and(|&slot| self.waiter_len[slot] < self.cfg.miss_targets)
    }

    /// Whether a miss for `line_addr` is pending.
    pub fn miss_pending(&self, line_addr: Addr) -> bool {
        self.index.contains_key(&line_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::types::LINE_BYTES;

    fn l1() -> L1Cache {
        L1Cache::new(SystemConfig::table5().l1)
    }

    fn a(line: u64) -> Addr {
        line * LINE_BYTES
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = l1();
        assert_eq!(c.load(a(1), 0, 0), L1LoadOutcome::NewMiss);
        assert_eq!(c.load(a(1), 1, 1), L1LoadOutcome::MergedMiss);
        assert!(c.miss_pending(a(1)));
        let waiters = c.fill(a(1), 10);
        assert_eq!(waiters, vec![(0, 0), (1, 1)]);
        assert_eq!(c.outstanding(), 0);
        assert_eq!(c.load(a(1), 2, 11), L1LoadOutcome::Hit);
    }

    #[test]
    fn miss_table_exhaustion_blocks() {
        let cfg = SystemConfig::table5().l1;
        let mut c = L1Cache::new(cfg);
        for i in 0..cfg.miss_entries as u64 {
            assert_eq!(c.load(a(100 + i), 0, 0), L1LoadOutcome::NewMiss);
        }
        assert_eq!(c.load(a(999), 0, 0), L1LoadOutcome::Blocked);
        // Merging is still possible while full.
        assert_eq!(c.load(a(100), 1, 0), L1LoadOutcome::MergedMiss);
        c.fill(a(100), 5);
        assert_eq!(c.load(a(999), 0, 6), L1LoadOutcome::NewMiss);
    }

    #[test]
    fn target_exhaustion_blocks() {
        let cfg = SystemConfig::table5().l1;
        let mut c = L1Cache::new(cfg);
        assert_eq!(c.load(a(7), 0, 0), L1LoadOutcome::NewMiss);
        for w in 1..cfg.miss_targets {
            assert_eq!(c.load(a(7), w, 0), L1LoadOutcome::MergedMiss);
        }
        assert_eq!(c.load(a(7), 0, 0), L1LoadOutcome::Blocked);
    }

    #[test]
    fn store_does_not_allocate() {
        let mut c = l1();
        c.store(a(3));
        assert_eq!(c.load(a(3), 0, 0), L1LoadOutcome::NewMiss, "no allocation");
    }

    #[test]
    fn streaming_fills_evict_first() {
        // With streaming insertion, filling a 9th line into an 8-way set
        // evicts the previous streaming line rather than older reused data.
        let cfg = SystemConfig::table5().l1;
        let sets = cfg.geometry.num_sets() as u64; // 128
        let mut c = L1Cache::new(cfg);
        // Reuse line 0 so it is MRU-stamped by accesses.
        c.load(a(0), 0, 0);
        c.fill(a(0), 0);
        assert_eq!(c.load(a(0), 0, 1), L1LoadOutcome::Hit);
        // Stream 8 conflicting lines (same set: stride = number of sets).
        for i in 1..=8u64 {
            c.load(a(i * sets), 0, i);
            c.fill(a(i * sets), i);
        }
        // Line 0 was re-referenced, so it survives the stream.
        assert_eq!(c.load(a(0), 0, 100), L1LoadOutcome::Hit);
    }
}
