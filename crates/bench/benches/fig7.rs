//! Fig 7 (a)–(f): speedups of the Logit operator for Llama3 70b and
//! Llama3 405b across sequence lengths.
//!
//! * (a)/(d) throttling policies (dyncta, lcs, dynmg) vs unoptimized;
//! * (b)/(e) arbitration policies (cobrra, B, MA, BMA), each aided by
//!   dynmg, normalized against dynmg alone;
//! * (c)/(f) cumulative speedup of dynmg, dynmg+B, dynmg+MA, dynmg+BMA
//!   vs unoptimized.
//!
//! One declarative [`Campaign`] per model covers the union of the
//! three panels' policies; every cell simulates exactly once and the
//! panels are different normalizations of the same record grid.

use llamcat::experiment::Model;
use llamcat::spec::PolicySpec;
use llamcat_bench::{print_speedup_table, scale_divisor, scale_label, Campaign, CampaignReport};

/// Policy-column indices into the union campaign (ladder order).
const UNOPT: usize = 0;
const DYNCTA: usize = 1;
const LCS: usize = 2;
const DYNMG: usize = 3;
const DYNMG_COBRRA: usize = 4;
const DYNMG_B: usize = 5;
const DYNMG_MA: usize = 6;
const DYNMG_BMA: usize = 7;

fn union_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::unoptimized(),
        PolicySpec::dyncta(),
        PolicySpec::lcs(),
        PolicySpec::dynmg(),
        PolicySpec::dynmg_cobrra(),
        PolicySpec::dynmg_b(),
        PolicySpec::dynmg_ma(),
        PolicySpec::dynmg_bma(),
    ]
}

/// One panel: `rows` (policy columns) normalized against the
/// `baseline` policy column, per scenario.
fn panel(report: &CampaignReport, title: &str, rows: &[usize], baseline: usize, note: &str) {
    let base_cycles: Vec<u64> = report
        .policy_records(baseline)
        .iter()
        .map(|r| r.report.cycles)
        .collect();
    let table: Vec<(String, Vec<f64>)> = rows
        .iter()
        .map(|&p| {
            (
                report.campaign.policies[p].label(),
                report
                    .policy_records(p)
                    .iter()
                    .zip(&base_cycles)
                    .map(|(r, &b)| b as f64 / r.report.cycles as f64)
                    .collect(),
            )
        })
        .collect();
    let xlabels = report.campaign.scenario_labels();
    print_speedup_table(title, &xlabels, &table, note);
}

fn main() {
    let div = scale_divisor();
    let seqs: Vec<usize> = [4096, 8192, 16384].iter().map(|s| s / div).collect();
    println!(
        "# Fig 7 — Logit operator speedups (scale: {}, seqs {:?})",
        scale_label(),
        seqs
    );

    for model in [Model::Llama3_70b, Model::Llama3_405b] {
        let report = Campaign::new("fig7")
            .workload(model.spec())
            .seq_lens(seqs.iter().copied())
            .policies(union_policies())
            .run()
            .expect("fig7 campaign");
        let mlabel = model.label();
        panel(
            &report,
            &format!("Fig 7 {mlabel}: throttling policies"),
            &[DYNCTA, LCS, DYNMG],
            UNOPT,
            "normalized against unoptimized",
        );
        panel(
            &report,
            &format!("Fig 7 {mlabel}: arbitration policies (with dynmg)"),
            &[DYNMG_COBRRA, DYNMG_B, DYNMG_MA, DYNMG_BMA],
            DYNMG,
            "normalized against dynmg alone",
        );
        panel(
            &report,
            &format!("Fig 7 {mlabel}: cumulative speedup"),
            &[DYNMG, DYNMG_B, DYNMG_MA, DYNMG_BMA],
            UNOPT,
            "normalized against unoptimized",
        );
    }
    println!(
        "\nPaper reference: dynmg 1.08-1.44x (geomean 1.19x); BMA +1.04-1.07x \
         over dynmg; final dynmg+BMA 1.15-1.54x (geomean 1.26x)."
    );
}
