//! High-level experiment API: one call from (model, sequence length,
//! policy) to a finished simulation with the paper's metrics.
//!
//! This is the entry point the benchmark harness, the examples and most
//! downstream users go through:
//!
//! ```
//! use llamcat::experiment::{Experiment, Model, Policy};
//!
//! let report = Experiment::new(Model::Llama3_70b, 512)
//!     .policy(Policy::dynmg_bma())
//!     .run();
//! assert!(report.completed);
//! ```

use llamcat_sim::arb::{FifoArbiter, NoThrottle, RequestArbiter, ThrottleController};
use llamcat_sim::config::SystemConfig;
use llamcat_sim::prog::Program;
use llamcat_sim::stats::SimStats;
use llamcat_sim::system::{RunOutcome, System};
use llamcat_trace::mapping::{
    logit_mapping, logit_mapping_pair_stream, logit_mapping_spatial, Mapping, TbOrder,
};
use llamcat_trace::tracegen::{generate, TraceGenConfig};
use llamcat_trace::workload::LogitOp;
use serde::{Deserialize, Serialize};

use crate::arbiter::{BalancedArbiter, CobrraArbiter, MshrAwareArbiter};
use crate::throttle::{DynMg, DynMgConfig, Dyncta, DynctaConfig, Lcs};

fn dynmg_config_from_env() -> DynMgConfig {
    let mut cfg = DynMgConfig::default();
    if let Ok(v) = std::env::var("LLAMCAT_DYNMG_PERIOD") {
        if let Ok(p) = v.parse() {
            cfg.sampling_period = p;
        }
    }
    if let Ok(v) = std::env::var("LLAMCAT_DYNMG_SUB") {
        if let Ok(p) = v.parse() {
            cfg.sub_period = p;
        }
    }
    cfg
}

/// Evaluated model shapes (Section 6.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum Model {
    /// Llama3 70b: H=8, G=8, D=128.
    Llama3_70b,
    /// Llama3 405b: H=8, G=16, D=128.
    Llama3_405b,
}

impl Model {
    pub fn op(&self, seq_len: usize) -> LogitOp {
        match self {
            Model::Llama3_70b => LogitOp::llama3_70b(seq_len),
            Model::Llama3_405b => LogitOp::llama3_405b(seq_len),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Model::Llama3_70b => "llama3 70b",
            Model::Llama3_405b => "llama3 405b",
        }
    }
}

/// Request-arbitration policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbPolicy {
    /// Default FIFO (unoptimized).
    Fifo,
    /// Balanced ("B").
    Balanced,
    /// MSHR-aware with FIFO tie-break ("MA").
    MshrAware,
    /// MSHR-aware with balanced tie-break ("BMA").
    BalancedMshrAware,
    /// COBRRA baseline.
    Cobrra,
}

impl ArbPolicy {
    pub fn label(&self) -> &'static str {
        match self {
            ArbPolicy::Fifo => "fifo",
            ArbPolicy::Balanced => "B",
            ArbPolicy::MshrAware => "MA",
            ArbPolicy::BalancedMshrAware => "BMA",
            ArbPolicy::Cobrra => "cobrra",
        }
    }

    fn build(&self) -> Box<dyn RequestArbiter> {
        match self {
            ArbPolicy::Fifo => Box::new(FifoArbiter),
            ArbPolicy::Balanced => Box::new(BalancedArbiter),
            ArbPolicy::MshrAware => Box::new(MshrAwareArbiter::ma()),
            ArbPolicy::BalancedMshrAware => Box::new(MshrAwareArbiter::bma()),
            ArbPolicy::Cobrra => Box::new(CobrraArbiter::new()),
        }
    }
}

/// Thread-throttling policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThrottlePolicy {
    /// No throttling (unoptimized).
    None,
    /// DYNCTA baseline.
    Dyncta,
    /// LCS baseline.
    Lcs,
    /// The paper's two-level dynamic multi-gear controller.
    DynMg,
}

impl ThrottlePolicy {
    pub fn label(&self) -> &'static str {
        match self {
            ThrottlePolicy::None => "none",
            ThrottlePolicy::Dyncta => "dyncta",
            ThrottlePolicy::Lcs => "lcs",
            ThrottlePolicy::DynMg => "dynmg",
        }
    }

    fn build(&self) -> Box<dyn ThrottleController> {
        match self {
            ThrottlePolicy::None => Box::new(NoThrottle),
            ThrottlePolicy::Dyncta => Box::new(Dyncta::new(DynctaConfig::default())),
            ThrottlePolicy::Lcs => Box::new(Lcs::new()),
            ThrottlePolicy::DynMg => Box::new(DynMg::new(dynmg_config_from_env())),
        }
    }
}

/// Thread-block-to-core dataflow layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Layout {
    /// Output-partitioned (h, g) pair streams round-robin over cores,
    /// one pair per instruction window — the paper's evaluated workload
    /// shape.
    #[default]
    PairStream,
    /// Spatial G (+ L segments) across cores: all cores stream one
    /// shared K tile in lockstep (tightest possible sharing).
    Spatial,
    /// Round-robin blocks over cores, sharers adjacent (G innermost).
    RoundRobinGInner,
    /// Round-robin blocks, naive L-innermost order.
    RoundRobinLInner,
}

/// A complete policy combination as named in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    pub arb: ArbPolicy,
    pub throttle: ThrottlePolicy,
}

impl Policy {
    pub const fn new(arb: ArbPolicy, throttle: ThrottlePolicy) -> Self {
        Policy { arb, throttle }
    }

    /// The unoptimized baseline (FIFO, no throttling).
    pub const fn unoptimized() -> Self {
        Policy::new(ArbPolicy::Fifo, ThrottlePolicy::None)
    }

    pub const fn dyncta() -> Self {
        Policy::new(ArbPolicy::Fifo, ThrottlePolicy::Dyncta)
    }

    pub const fn lcs() -> Self {
        Policy::new(ArbPolicy::Fifo, ThrottlePolicy::Lcs)
    }

    pub const fn dynmg() -> Self {
        Policy::new(ArbPolicy::Fifo, ThrottlePolicy::DynMg)
    }

    pub const fn cobrra() -> Self {
        Policy::new(ArbPolicy::Cobrra, ThrottlePolicy::None)
    }

    pub const fn dynmg_b() -> Self {
        Policy::new(ArbPolicy::Balanced, ThrottlePolicy::DynMg)
    }

    pub const fn dynmg_ma() -> Self {
        Policy::new(ArbPolicy::MshrAware, ThrottlePolicy::DynMg)
    }

    /// The paper's final policy.
    pub const fn dynmg_bma() -> Self {
        Policy::new(ArbPolicy::BalancedMshrAware, ThrottlePolicy::DynMg)
    }

    pub const fn dynmg_cobrra() -> Self {
        Policy::new(ArbPolicy::Cobrra, ThrottlePolicy::DynMg)
    }

    /// Figure-style label, e.g. "dynmg+BMA".
    pub fn label(&self) -> String {
        match (self.throttle, self.arb) {
            (ThrottlePolicy::None, ArbPolicy::Fifo) => "unoptimized".to_string(),
            (ThrottlePolicy::None, arb) => arb.label().to_string(),
            (thr, ArbPolicy::Fifo) => thr.label().to_string(),
            (thr, arb) => format!("{}+{}", thr.label(), arb.label()),
        }
    }
}

/// One experiment: model, sequence length, policy and machine overrides.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub model: Model,
    pub seq_len: usize,
    pub policy: Policy,
    pub config: SystemConfig,
    pub tracegen: TraceGenConfig,
    /// Dataflow layout (paper default: spatial G).
    pub layout: Layout,
    /// L-dimension tile per thread block (32 = one output line).
    pub l_tile: usize,
    /// Hard cycle budget; `None` derives one from the workload size.
    pub max_cycles: Option<u64>,
}

impl Experiment {
    pub fn new(model: Model, seq_len: usize) -> Self {
        let config = SystemConfig::table5();
        Experiment {
            model,
            seq_len,
            policy: Policy::unoptimized(),
            tracegen: TraceGenConfig {
                num_cores: config.num_cores,
                vector_len_bytes: config.core.vector_len_bytes,
                ..Default::default()
            },
            config,
            layout: Layout::PairStream,
            l_tile: 32,
            max_cycles: None,
        }
    }

    fn mapping_for(&self, op: &llamcat_trace::workload::LogitOp) -> Mapping {
        match self.layout {
            Layout::PairStream => logit_mapping_pair_stream(op, self.l_tile),
            Layout::Spatial => logit_mapping_spatial(op, self.l_tile, self.config.num_cores),
            Layout::RoundRobinGInner => logit_mapping(op, self.l_tile, TbOrder::GInner),
            Layout::RoundRobinLInner => logit_mapping(op, self.l_tile, TbOrder::LInner),
        }
    }

    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides total L2 capacity (Fig 9 sweeps 16/32/64 MB).
    pub fn l2_mb(mut self, mb: u64) -> Self {
        self.config = self.config.with_l2_mb(mb);
        self
    }

    /// Replaces the whole machine configuration.
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.tracegen.num_cores = config.num_cores;
        self.tracegen.vector_len_bytes = config.core.vector_len_bytes;
        self.config = config;
        self
    }

    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Generates the trace for this experiment (exposed for inspection).
    pub fn build_program(&self) -> Program {
        let op = self.model.op(self.seq_len);
        let mapping = self.mapping_for(&op);
        let (program, _) = generate(&op, &mapping, &self.tracegen);
        program
    }

    /// Runs the experiment to completion.
    pub fn run(&self) -> RunReport {
        let op = self.model.op(self.seq_len);
        op.validate().expect("valid operator shape");
        let mapping = self.mapping_for(&op);
        let (program, meta) = generate(&op, &mapping, &self.tracegen);
        // Budget: assume the machine can be no slower than 4 bytes of
        // load traffic per cycle overall, plus fixed slack.
        let budget = self
            .max_cycles
            .unwrap_or(meta.total_load_bytes / 4 + 20_000_000);
        let arb = self.policy.arb;
        let mut system = System::new(
            self.config,
            program,
            &move |_slice| arb.build(),
            self.policy.throttle.build(),
        );
        let (stats, outcome) = system.run(budget);
        RunReport::from_stats(self, stats, outcome)
    }
}

/// Results of one experiment, with the metrics the paper plots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    pub policy_label: String,
    pub model_label: String,
    pub seq_len: usize,
    pub l2_mb: u64,
    pub completed: bool,
    /// Execution cycles (lower is better; speedups are ratios of these).
    pub cycles: u64,
    pub l2_hit_rate: f64,
    /// Merges / cache misses (the paper's MSHR hit rate).
    pub mshr_hit_rate: f64,
    /// Mean numEntry occupancy fraction.
    pub mshr_entry_util: f64,
    pub dram_bandwidth_gbs: f64,
    pub dram_accesses: u64,
    /// Proportion of cache-stall cycles.
    pub t_cs: f64,
    pub l1_hit_rate: f64,
    pub mean_load_latency: f64,
    pub tb_migrations: u64,
    pub row_hit_rate: f64,
    /// Full component statistics for deep dives.
    #[serde(skip)]
    pub stats: Option<SimStats>,
}

impl RunReport {
    fn from_stats(exp: &Experiment, stats: SimStats, outcome: RunOutcome) -> Self {
        RunReport {
            policy_label: exp.policy.label(),
            model_label: exp.model.label().to_string(),
            seq_len: exp.seq_len,
            l2_mb: exp.config.l2.capacity_bytes / (1024 * 1024),
            completed: outcome == RunOutcome::Completed,
            cycles: stats.cycles,
            l2_hit_rate: stats.l2_hit_rate(),
            mshr_hit_rate: stats.mshr_hit_rate(),
            mshr_entry_util: stats.mshr_entry_util(exp.config.l2.mshr_entries),
            dram_bandwidth_gbs: stats.dram_bandwidth_gbs(),
            dram_accesses: stats.dram_accesses(),
            t_cs: stats.t_cs(),
            l1_hit_rate: stats.l1_hit_rate(),
            mean_load_latency: stats.mean_load_latency(),
            tb_migrations: stats.tb_migrations,
            row_hit_rate: stats.row_hit_rate(),
            stats: Some(stats),
        }
    }

    /// Speedup of `self` relative to `baseline` (cycles ratio).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }
}

/// Geometric mean of a slice of speedups (the paper's summary statistic).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_match_figures() {
        assert_eq!(Policy::unoptimized().label(), "unoptimized");
        assert_eq!(Policy::dynmg().label(), "dynmg");
        assert_eq!(Policy::dynmg_bma().label(), "dynmg+BMA");
        assert_eq!(Policy::dynmg_cobrra().label(), "dynmg+cobrra");
        assert_eq!(Policy::cobrra().label(), "cobrra");
        assert_eq!(Policy::lcs().label(), "lcs");
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn tiny_experiment_completes() {
        let report = Experiment::new(Model::Llama3_70b, 128).run();
        assert!(report.completed, "tiny workload must finish");
        assert!(report.cycles > 0);
        assert!(report.dram_accesses > 0);
        assert_eq!(report.l2_mb, 16);
    }

    #[test]
    fn policies_produce_different_machines_but_same_work() {
        let base = Experiment::new(Model::Llama3_70b, 128);
        let a = base.clone().policy(Policy::unoptimized()).run();
        let b = base.policy(Policy::dynmg_bma()).run();
        assert!(a.completed && b.completed);
        // Same trace: store traffic identical (reads may differ by reuse).
        let sa = a.stats.as_ref().unwrap();
        let sb = b.stats.as_ref().unwrap();
        let stores = |s: &SimStats| -> u64 { s.cores.iter().map(|c| c.stores).sum() };
        assert_eq!(stores(sa), stores(sb));
    }

    #[test]
    fn l2_size_override() {
        let e = Experiment::new(Model::Llama3_70b, 128).l2_mb(32);
        assert_eq!(e.config.l2.capacity_bytes, 32 * 1024 * 1024);
    }

    #[test]
    fn run_is_deterministic() {
        let mk = || {
            Experiment::new(Model::Llama3_405b, 128)
                .policy(Policy::dynmg_bma())
                .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dram_accesses, b.dram_accesses);
    }
}
