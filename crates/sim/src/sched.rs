//! Global thread-block scheduler: per-window strided streams plus
//! cross-core migration.
//!
//! Two properties of the paper's runtime model are load-bearing:
//!
//! 1. **Window-strided assignment.** Each core's trace file is divided
//!    into `num_windows` contiguous chunks and each instruction window
//!    draws from its own chunk. An unthrottled core therefore streams
//!    `num_windows` distant positions of its trace *concurrently* —
//!    "the assigned thread blocks may span a wide range" (Section 6.4)
//!    — which multiplies the live working set and the distinct-line
//!    pressure on the MSHRs. Throttling to fewer thread blocks
//!    "constrains instruction window switching", collapsing the streams
//!    and shrinking the working set: exactly the paper's explanation of
//!    why the unoptimized version demands larger caches.
//!
//! 2. **Migration.** Blocks of a backlogged (slow) core can be handed
//!    to a fast core, "without this feature, our baselines would be
//!    underestimated" (Section 5).

use std::collections::VecDeque;

use crate::prog::{Program, TbId};
use crate::types::{CoreId, Cycle, WindowId};

/// Per-core, per-window queues of pending thread blocks.
#[derive(Clone)]
pub struct TbScheduler {
    /// `queues[core][window]` — contiguous chunk of the core's stream.
    queues: Vec<Vec<VecDeque<TbId>>>,
    /// Per-block release cycle (arrival of the block's request); empty
    /// for ungated (solo) programs — every block released at cycle 0.
    arrivals: Vec<Cycle>,
    remaining: usize,
    /// Number of chunks still holding >= 2 blocks — a necessary
    /// condition for migration stealing. Queues shrink on assignment
    /// (`pop_front_of`) and grow only at open-system injection
    /// (`inject`), both of which maintain the counter, so this is a
    /// cheap gate that skips the whole-machine steal scan once no chunk
    /// is stealable (the scan otherwise runs every tick a core has a
    /// free window and an empty home queue — the entire drain phase).
    steal_candidates: usize,
    migrations: u64,
    /// Enable cross-core migration (on by default).
    pub migration: bool,
}

impl TbScheduler {
    /// Splits each core's (ordered) block list into `num_windows`
    /// contiguous chunks.
    pub fn new(program: &Program, num_cores: usize, num_windows: usize) -> Self {
        assert!(num_windows > 0);
        let mut per_core: Vec<Vec<TbId>> = vec![Vec::new(); num_cores];
        for (tb, &core) in program.assignment.iter().enumerate() {
            per_core[core % num_cores].push(tb);
        }
        let queues: Vec<Vec<VecDeque<TbId>>> = per_core
            .into_iter()
            .map(|list| {
                let n = list.len();
                let chunk = n.div_ceil(num_windows).max(1);
                let mut chunks: Vec<VecDeque<TbId>> = vec![VecDeque::new(); num_windows];
                for (i, tb) in list.into_iter().enumerate() {
                    chunks[(i / chunk).min(num_windows - 1)].push_back(tb);
                }
                chunks
            })
            .collect();
        let steal_candidates = queues
            .iter()
            .flat_map(|ws| ws.iter())
            .filter(|q| q.len() >= 2)
            .count();
        TbScheduler {
            queues,
            arrivals: program.arrivals.clone(),
            remaining: program.num_blocks(),
            steal_candidates,
            migrations: 0,
            migration: true,
        }
    }

    /// Pops the front of chunk `(core, window)`, maintaining the
    /// remaining and steal-candidate counters.
    #[inline]
    fn pop_front_of(&mut self, core: CoreId, window: usize) -> TbId {
        let q = &mut self.queues[core][window];
        let tb = q.pop_front().expect("pop from non-empty chunk");
        if q.len() == 1 {
            self.steal_candidates -= 1;
        }
        self.remaining -= 1;
        tb
    }

    /// Release cycle of a block (0 for ungated programs).
    #[inline]
    fn release_of(&self, tb: TbId) -> Cycle {
        self.arrivals.get(tb).copied().unwrap_or(0)
    }

    /// Whether a queue's head block may be handed out at `now`. Queues
    /// are strictly FIFO: a gated front blocks the blocks behind it
    /// (per-window in-order delivery, the deterministic choice).
    #[inline]
    fn front_released(&self, q: &VecDeque<TbId>, now: Cycle) -> bool {
        q.front().is_some_and(|&tb| self.release_of(tb) <= now)
    }

    /// Fetches the next block for `core`'s window `window` at cycle
    /// `now`:
    /// 1. the window's own chunk;
    /// 2. the longest remaining chunk of the same core;
    /// 3. (migration) the longest backlogged chunk of any core.
    ///
    /// A block whose request has not yet arrived (`release > now`) is
    /// never handed out, and — queues being FIFO — shields the blocks
    /// queued behind it.
    pub fn next_for(&mut self, core: CoreId, window: WindowId, now: Cycle) -> Option<TbId> {
        if self.front_released(&self.queues[core][window], now) {
            return Some(self.pop_front_of(core, window));
        }
        // Drain sibling chunks before going remote.
        if let Some(w) = self.longest_released(core, now) {
            return Some(self.pop_front_of(core, w));
        }
        if !self.migration || self.steal_candidates == 0 {
            return None;
        }
        // Steal from the most backlogged chunk anywhere (>= 2 blocks so
        // we unload genuinely slow cores rather than racing starters).
        let mut best: Option<(usize, usize, usize)> = None; // (len, core, window)
        for (c, windows) in self.queues.iter().enumerate() {
            for (w, q) in windows.iter().enumerate() {
                if q.len() >= 2
                    && self.front_released(q, now)
                    && best.is_none_or(|(len, _, _)| q.len() > len)
                {
                    best = Some((q.len(), c, w));
                }
            }
        }
        let (_, c, w) = best?;
        let tb = self.pop_front_of(c, w);
        self.migrations += 1;
        Some(tb)
    }

    /// The longest chunk of `core` whose front is released (ties resolve
    /// to the later window, matching the pre-gating `max_by_key`
    /// behavior so ungated programs schedule identically).
    fn longest_released(&self, core: CoreId, now: Cycle) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (len, window)
        for (w, q) in self.queues[core].iter().enumerate() {
            if !q.is_empty()
                && self.front_released(q, now)
                && best.is_none_or(|(len, _)| q.len() >= len)
            {
                best = Some((q.len(), w));
            }
        }
        best.map(|(_, w)| w)
    }

    /// Whether a [`TbScheduler::next_for`] call from `core` (any window)
    /// could return a block at cycle `now`, without mutating any queue.
    ///
    /// Used by the fast-forward engine: a core with free capacity and
    /// `has_work_for == true` would assign a block on its next tick, so
    /// it cannot be skipped over. During a skip window the answer can
    /// only flip released→exhausted (queues shrink on assignment ticks,
    /// never skipped); it flips gated→released only at an arrival
    /// cycle, which [`TbScheduler::next_release_for`] bounds, and
    /// exhausted→released only at an open-system injection, which
    /// re-arms the affected cores' wake bounds at the admission cycle.
    pub fn has_work_for(&self, core: CoreId, now: Cycle) -> bool {
        if self.queues[core]
            .iter()
            .any(|q| self.front_released(q, now))
        {
            return true;
        }
        // Migration steals only from chunks holding >= 2 blocks.
        self.migration
            && self.steal_candidates > 0
            && self.queues.iter().any(|windows| {
                windows
                    .iter()
                    .any(|q| q.len() >= 2 && self.front_released(q, now))
            })
    }

    /// Earliest future cycle at which `core` could gain fetchable work
    /// from a not-yet-arrived request: the minimum release cycle over
    /// its own queue fronts and (with migration) the fronts of
    /// steal-eligible chunks anywhere. `None` when no gated front can
    /// ever become available to this core.
    ///
    /// Never late: while every relevant front is gated, no queue pops
    /// (owners are gated too, and steals require a released front), so
    /// fronts — and therefore this bound — cannot move earlier.
    pub fn next_release_for(&self, core: CoreId, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut merge = |at: Cycle| next = Some(next.map_or(at, |n: Cycle| n.min(at)));
        for q in &self.queues[core] {
            if let Some(&tb) = q.front() {
                let at = self.release_of(tb);
                if at > now {
                    merge(at);
                }
            }
        }
        if self.migration && self.steal_candidates > 0 {
            for windows in &self.queues {
                for q in windows {
                    if q.len() >= 2 {
                        if let Some(&tb) = q.front() {
                            let at = self.release_of(tb);
                            if at > now {
                                merge(at);
                            }
                        }
                    }
                }
            }
        }
        next
    }

    /// Switches to open-system mode: every queued block is withheld
    /// until re-introduced via [`TbScheduler::inject`] (the serving
    /// scheduler's admission path). Counters reset so
    /// [`TbScheduler::is_empty`] reflects injected work only. Must run
    /// before the first tick — withholding mid-run would strand blocks.
    pub fn withhold_all(&mut self) {
        for windows in &mut self.queues {
            for q in windows.iter_mut() {
                q.clear();
            }
        }
        self.remaining = 0;
        self.steal_candidates = 0;
    }

    /// Pushes one admitted block onto chunk `(core, window)` — the
    /// open-system injection path. Mirrors the bookkeeping of
    /// `TbScheduler::pop_front_of`: a queue growing to 2 blocks
    /// becomes a steal candidate. Injected blocks carry no `arrivals`
    /// entry (serve programs are arrival-free), so admission *is*
    /// release; the fast-forward engine must re-arm the wake bound of
    /// any core that can now fetch work, because pre-admission bounds
    /// never saw these blocks.
    pub fn inject(&mut self, tb: TbId, core: CoreId, window: WindowId) {
        debug_assert!(
            self.release_of(tb) == 0,
            "injected blocks must not also be arrival-gated"
        );
        let q = &mut self.queues[core][window];
        q.push_back(tb);
        if q.len() == 2 {
            self.steal_candidates += 1;
        }
        self.remaining += 1;
    }

    /// Withdraws every queued block matching `belongs` — the
    /// preemption path: a serving scheduler pulls a victim request's
    /// *unissued* blocks back out of the queues (blocks already handed
    /// to cores are untouched; there is no mid-block rollback). Returns
    /// the withdrawn blocks in deterministic queue-scan order and
    /// restores the remaining / steal-candidate counters, so a later
    /// [`TbScheduler::inject`] of the same blocks behaves exactly like
    /// a first admission. Withdrawal only *removes* schedulable work,
    /// so existing never-late wake bounds stay never-late.
    pub fn withdraw(&mut self, belongs: impl Fn(TbId) -> bool) -> Vec<TbId> {
        let mut removed = Vec::new();
        for windows in &mut self.queues {
            for q in windows.iter_mut() {
                let before = q.len();
                q.retain(|&tb| {
                    let take = belongs(tb);
                    if take {
                        removed.push(tb);
                    }
                    !take
                });
                if before >= 2 && q.len() < 2 {
                    self.steal_candidates -= 1;
                }
            }
        }
        self.remaining -= removed.len();
        removed
    }

    /// Blocks not yet handed out.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Number of blocks taken from a non-home queue.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total queued blocks for one core (all windows).
    pub fn queue_len(&self, core: CoreId) -> usize {
        self.queues[core].iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::ThreadBlock;

    fn program(n: usize, cores: usize) -> Program {
        Program::round_robin(vec![ThreadBlock::default(); n], cores)
    }

    #[test]
    fn windows_draw_strided_chunks() {
        // 8 blocks on 1 core, 4 windows: chunks [0,1], [2,3], [4,5], [6,7].
        let p = program(8, 1);
        let mut s = TbScheduler::new(&p, 1, 4);
        assert_eq!(s.next_for(0, 0, 0), Some(0));
        assert_eq!(s.next_for(0, 1, 0), Some(2));
        assert_eq!(s.next_for(0, 2, 0), Some(4));
        assert_eq!(s.next_for(0, 3, 0), Some(6));
        assert_eq!(s.next_for(0, 0, 0), Some(1));
        assert_eq!(s.next_for(0, 3, 0), Some(7));
        assert_eq!(s.remaining(), 2);
    }

    #[test]
    fn sibling_chunks_drain_before_migration() {
        let p = program(8, 1);
        let mut s = TbScheduler::new(&p, 1, 4);
        // Window 0 exhausts its chunk then pulls from siblings.
        assert_eq!(s.next_for(0, 0, 0), Some(0));
        assert_eq!(s.next_for(0, 0, 0), Some(1));
        let next = s.next_for(0, 0, 0).unwrap();
        assert!(next >= 2, "pulled from a sibling chunk");
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn migration_steals_backlogged_chunks() {
        // 2 cores, blocks 0..8: core 0 gets evens, core 1 odds.
        let p = program(8, 2);
        let mut s = TbScheduler::new(&p, 2, 2);
        // Core 0 drains everything it owns.
        for _ in 0..4 {
            assert!(s.next_for(0, 0, 0).is_some());
        }
        // Core 1 still has 4 blocks in 2 chunks of 2: core 0 steals.
        let stolen = s.next_for(0, 0, 0).unwrap();
        assert_eq!(stolen % 2, 1, "stole core 1's block");
        assert_eq!(s.migrations(), 1);
    }

    #[test]
    fn no_stealing_of_last_blocks() {
        let p = program(2, 2); // one block per core
        let mut s = TbScheduler::new(&p, 2, 2);
        assert_eq!(s.next_for(0, 0, 0), Some(0));
        assert_eq!(s.next_for(0, 0, 0), None, "peer's single block stays home");
        assert_eq!(s.next_for(1, 0, 0), Some(1));
    }

    #[test]
    fn migration_can_be_disabled() {
        let p = program(8, 2);
        let mut s = TbScheduler::new(&p, 2, 2);
        s.migration = false;
        for _ in 0..4 {
            assert!(s.next_for(0, 0, 0).is_some());
        }
        assert_eq!(s.next_for(0, 0, 0), None);
        assert_eq!(s.remaining(), 4);
    }

    #[test]
    fn withhold_then_inject_releases_blocks_on_demand() {
        let p = program(4, 2);
        let mut s = TbScheduler::new(&p, 2, 2);
        s.withhold_all();
        assert!(s.is_empty());
        assert!(!s.has_work_for(0, 0));
        assert_eq!(s.next_for(0, 0, 0), None);
        // Inject block 0 onto core 0 window 0, block 1 + 3 onto core 1.
        s.inject(0, 0, 0);
        s.inject(1, 1, 0);
        s.inject(3, 1, 0);
        assert_eq!(s.remaining(), 3);
        assert!(s.has_work_for(0, 5));
        assert_eq!(s.next_for(0, 0, 5), Some(0));
        // Core 1's chunk of 2 is a steal candidate for idle core 0.
        assert!(s.has_work_for(0, 5));
        assert_eq!(s.next_for(0, 0, 5), Some(1));
        assert_eq!(s.migrations(), 1);
        assert_eq!(s.next_for(1, 0, 5), Some(3));
        assert!(s.is_empty());
    }

    #[test]
    fn withdraw_removes_matching_blocks_and_fixes_counters() {
        let p = program(6, 2);
        let mut s = TbScheduler::new(&p, 2, 1);
        s.withhold_all();
        // Core 0 holds blocks 0, 2, 4; core 1 holds 1, 3.
        for &(tb, core) in &[(0, 0), (2, 0), (4, 0), (1, 1), (3, 1)] {
            s.inject(tb, core, 0);
        }
        assert_eq!(s.remaining(), 5);
        // Withdraw the "request" owning blocks 2 and 4 (core 0's tail).
        let removed = s.withdraw(|tb| tb == 2 || tb == 4);
        assert_eq!(removed, vec![2, 4]);
        assert_eq!(s.remaining(), 3);
        // Core 0's queue dropped to 1 block: no longer a steal
        // candidate, so idle core 1 cannot steal block 0.
        assert_eq!(s.next_for(1, 0, 0), Some(1));
        assert_eq!(s.next_for(1, 0, 0), Some(3));
        assert_eq!(s.next_for(1, 0, 0), None, "last home block stays put");
        // Re-injecting the withdrawn blocks behaves like an admission.
        s.inject(2, 1, 0);
        s.inject(4, 1, 0);
        assert_eq!(s.next_for(1, 0, 0), Some(2));
        assert_eq!(s.next_for(1, 0, 0), Some(4));
        assert_eq!(s.next_for(0, 0, 0), Some(0));
        assert!(s.is_empty());
        assert!(s.withdraw(|_| true).is_empty(), "nothing left to remove");
    }

    #[test]
    fn remaining_counts_down_to_empty() {
        let p = program(5, 2);
        let mut s = TbScheduler::new(&p, 2, 4);
        let mut got = 0;
        for _ in 0..10 {
            if s.next_for(0, 0, 0).is_some() || s.next_for(1, 1, 0).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 5);
        assert!(s.is_empty());
    }
}
