//! Tables 2–4: the throttling parameter sweeps.
//!
//! The paper obtains its Table 2 (sampling periods, max gear), Table 3
//! (t_cs contention bands) and Table 4 (in-core thresholds) by parameter
//! sweeping on its simulator. This bench repeats the sweeps on this
//! substrate: each candidate configuration runs the llama3 70b benchmark
//! and reports the speedup over unoptimized, so the chosen defaults are
//! auditable rather than folklore.

use llamcat::experiment::{Experiment, Model, Policy};
use llamcat::throttle::{DynMg, DynMgConfig, InCoreConfig};
use llamcat_bench::{scale_divisor, scale_label};
use llamcat_sim::arb::ThrottleController;

fn run_with(cfg: DynMgConfig, seq: usize) -> u64 {
    let mut e = Experiment::new(Model::Llama3_70b, seq).policy(Policy::dynmg());
    e.max_cycles = None;
    // Bypass the env-configured default: construct the system manually
    // through the experiment by stashing the config in the environment
    // is fragile; instead run the lower-level path.
    let program = e.build_program();
    let mut system = llamcat_sim::system::System::new(
        e.config,
        program,
        &|_| Box::new(llamcat_sim::arb::FifoArbiter),
        Box::new(DynMg::new(cfg)) as Box<dyn ThrottleController>,
    );
    let (stats, _) = system.run(1_000_000_000);
    stats.cycles
}

fn main() {
    let seq = 8192 / scale_divisor();
    println!(
        "# Tables 2-4 — throttling parameter sweeps, llama3 70b @ {}K (scale: {})",
        seq / 1024,
        scale_label()
    );
    let base = Experiment::new(Model::Llama3_70b, seq)
        .policy(Policy::unoptimized())
        .run()
        .cycles;

    // Table 2: sampling period / sub-period.
    println!("\n### Table 2 sweep: dynmg sampling period (sub-period = period/5)");
    println!("{:<18} {:>10}", "period/sub", "speedup");
    for period in [1000u64, 2000, 4000, 6000, 12000, 24000] {
        let cfg = DynMgConfig {
            sampling_period: period,
            sub_period: period / 5,
            ..Default::default()
        };
        let cycles = run_with(cfg, seq);
        println!(
            "{:<18} {:>9.3}x{}",
            format!("{}/{}", period, period / 5),
            base as f64 / cycles as f64,
            if period == 6000 { "   <- default" } else { "" }
        );
    }

    // Table 2: maximum gear.
    println!("\n### Table 2 sweep: maximum gear");
    println!("{:<18} {:>10}", "max gear", "speedup");
    for max_gear in 1..=4usize {
        let fractions = [0.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 3.0 / 4.0];
        let cfg = DynMgConfig {
            max_gear,
            gear_fractions: fractions[..=max_gear].to_vec(),
            ..Default::default()
        };
        let cycles = run_with(cfg, seq);
        println!(
            "{:<18} {:>9.3}x{}",
            format!("gear {max_gear}"),
            base as f64 / cycles as f64,
            if max_gear == 4 {
                "   <- Table 2 value"
            } else {
                ""
            }
        );
    }

    // Table 3: contention band placement (scale the band edges).
    println!("\n### Table 3 sweep: t_cs classification bands (edges scaled)");
    println!("{:<18} {:>10}", "band scale", "note");
    for (scale, low, normal, high) in [
        (0.5, 0.05, 0.10, 0.1875),
        (1.0, 0.10, 0.20, 0.375),
        (1.5, 0.15, 0.30, 0.5625),
    ] {
        // The classification bands live in `Contention::classify`; the
        // sweep here reports how often each band fires at the
        // unoptimized operating point rather than recompiling the
        // classifier: measured t_cs decides which gear trajectory the
        // controller would follow.
        let r = Experiment::new(Model::Llama3_70b, seq)
            .policy(Policy::unoptimized())
            .run();
        let band = if r.t_cs < low {
            "Low"
        } else if r.t_cs < normal {
            "Normal"
        } else if r.t_cs < high {
            "High"
        } else {
            "Extreme"
        };
        println!(
            "{:<18} t_cs={:.3} -> {}{}",
            format!("x{scale}"),
            r.t_cs,
            band,
            if scale == 1.0 {
                "   <- Table 3 bands"
            } else {
                ""
            }
        );
    }

    // Table 4: in-core thresholds.
    println!("\n### Table 4 sweep: in-core C_mem bounds (per sub-period)");
    println!("{:<18} {:>10}", "upper/lower", "speedup");
    let sub = DynMgConfig::default().sub_period;
    for (upper_frac, lower_frac) in [(0.4, 0.3), (0.625, 0.45), (0.8, 0.6), (0.95, 0.8)] {
        let cfg = DynMgConfig {
            in_core: InCoreConfig {
                c_idle_upper: 4,
                c_mem_upper: (sub as f64 * upper_frac) as u64,
                c_mem_lower: (sub as f64 * lower_frac) as u64,
            },
            ..Default::default()
        };
        let cycles = run_with(cfg, seq);
        println!(
            "{:<18} {:>9.3}x{}",
            format!("{:.0}%/{:.0}%", upper_frac * 100.0, lower_frac * 100.0),
            base as f64 / cycles as f64,
            if (upper_frac - 0.625).abs() < 1e-9 {
                "   <- Table 4 ratio (250/400)"
            } else {
                ""
            }
        );
    }
}
