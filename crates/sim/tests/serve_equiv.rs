//! Differential suite for open-system serving (mid-run injection).
//!
//! Three contracts, on top of the closed-set equivalence that
//! `step_mode_equiv.rs` and `mix_equiv.rs` pin:
//!
//! 1. **Mode equivalence with injection.** For seeded arrival
//!    processes (fixed, Poisson, bursty, trace replay with duplicate
//!    cycles) under every serving policy and the full 20-cell cache
//!    policy matrix, `StepMode::Skip` produces byte-identical
//!    `RunReport`s — including per-request admission, TTFT and TBT —
//!    and byte-identical `SimStats`.
//! 2. **Budget edges with gated work.** When every remaining request
//!    is arrival-gated past `max_cycles` — closed programs with late
//!    release cycles or an injector whose queue can never drain —
//!    Skip must fast-forward straight to the budget (a handful of
//!    executed ticks, not millions) and both modes must agree on the
//!    exact `CycleLimit` outcome.
//! 3. **Same-cycle determinism.** Requests arriving on the same cycle
//!    are admitted in request-id order in both modes (proptest over
//!    random duplicate-heavy arrival batches).

use proptest::prelude::*;

use llamcat::experiment::Experiment;
use llamcat::spec::{ArrivalSpec, PolicySpec, ServePolicySpec, ServeSpec, SloSpec};
use llamcat_sim::arb::{FifoArbiter, NoThrottle};
use llamcat_sim::config::SystemConfig;
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::serve::{RequestInjector, ServePolicy};
use llamcat_sim::stats::SimStats;
use llamcat_sim::stats::SloOutcome;
use llamcat_sim::system::{RunOutcome, StepMode, System};
use llamcat_trace::workloads::WorkloadSpec;

/// The canonical open-system scenario: three decode requests under a
/// seeded Poisson process, continuously batched two-at-a-time.
fn canonical_serve() -> ServeSpec {
    ServeSpec::new(
        WorkloadSpec::llama3_70b(),
        128,
        3,
        ArrivalSpec::Poisson {
            mean_gap: 4_000,
            seed: 11,
        },
    )
    .scheduler(ServePolicySpec::ContinuousBatching { slots: 2 })
}

/// The 5 × 4 policy matrix, compositional registry names.
fn policy_matrix() -> Vec<PolicySpec> {
    let mut out = Vec::with_capacity(20);
    for arb in ["fifo", "B", "MA", "BMA", "cobrra"] {
        for thr in ["none", "dyncta", "lcs", "dynmg"] {
            out.push(PolicySpec::from_name(&format!("{thr}+{arb}")).expect("matrix name"));
        }
    }
    out
}

/// Runs one serve cell in both modes and asserts full observational
/// equivalence: outcome, per-request latency reports (admission,
/// rejection, preemption, SLO verdicts), `SimStats`. Returns the
/// Cycle-mode report for further scenario-specific assertions.
fn assert_serve_mode_equivalent(
    spec: &ServeSpec,
    policy: PolicySpec,
    budget: Option<u64>,
) -> llamcat::experiment::RunReport {
    let label = format!("{} / {}", spec.label(), policy.label());
    let run = |mode| {
        let mut e = Experiment::from_serve_spec(spec)
            .expect("valid serve spec")
            .policy(policy.clone())
            .step_mode(mode);
        e.max_cycles = budget;
        e.try_run().expect("serve scenario runs")
    };
    let cycle = run(StepMode::Cycle);
    let skip = run(StepMode::Skip);
    assert_eq!(
        serde_json::to_string(&cycle).unwrap(),
        serde_json::to_string(&skip).unwrap(),
        "{label}: RunReport (incl. admission/TTFT/TBT) diverged (budget {budget:?})"
    );
    let stats_cycle = serde_json::to_string(cycle.stats.as_ref().unwrap()).unwrap();
    let stats_skip = serde_json::to_string(skip.stats.as_ref().unwrap()).unwrap();
    assert_eq!(
        stats_cycle, stats_skip,
        "{label}: SimStats diverged between step modes (budget {budget:?})"
    );
    cycle
        .stats
        .as_ref()
        .unwrap()
        .check_consistency()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    if budget.is_none() {
        let sheds = matches!(
            spec.scheduler,
            ServePolicySpec::RejectAboveQueue { .. } | ServePolicySpec::DeadlineDrop { .. }
        );
        for r in &cycle.requests {
            if let Some(rejected) = r.rejected {
                // Terminal rejection: allowed only under a shedding
                // policy, and exclusive with admission/completion.
                assert!(
                    sheds,
                    "{label}: request {} rejected under {:?}",
                    r.request, spec.scheduler
                );
                assert!(
                    !r.completed,
                    "{label}: request {} rejected yet completed",
                    r.request
                );
                assert_eq!(r.admitted, None);
                assert!(rejected >= r.arrival);
                continue;
            }
            assert!(r.completed, "{label}: request {} incomplete", r.request);
            let admitted = r
                .admitted
                .unwrap_or_else(|| panic!("{label}: request {} has no admission cycle", r.request));
            assert!(admitted >= r.arrival);
            assert!(r.ttft.expect("ttft") >= 1);
        }
    }
    cycle
}

/// The canonical serve scenario across the whole 20-cell policy matrix
/// (the CI release-mode gate for open-system serving).
#[test]
fn canonical_serve_is_mode_equivalent_across_policy_matrix() {
    let spec = canonical_serve();
    for policy in policy_matrix() {
        assert_serve_mode_equivalent(&spec, policy, None);
    }
}

/// Serving policies × arrival processes on the interesting cache-policy
/// corners, including trace replay with duplicate arrival cycles.
#[test]
fn serve_shapes_are_mode_equivalent() {
    let schedulers = [
        ServePolicySpec::Fcfs,
        ServePolicySpec::MaxConcurrency { max: 1 },
        ServePolicySpec::MaxConcurrency { max: 2 },
        ServePolicySpec::ContinuousBatching { slots: 2 },
        ServePolicySpec::ContinuousBatching { slots: 4 },
    ];
    let arrivals = [
        ArrivalSpec::Fixed {
            period: 1_500,
            start: 0,
        },
        ArrivalSpec::Poisson {
            mean_gap: 2_500,
            seed: 3,
        },
        ArrivalSpec::Bursty {
            burst: 2,
            gap_in_burst: 1,
            burst_gap: 8_000,
            seed: 5,
        },
        // Duplicate cycles and out-of-order input: the injector must
        // still admit in (arrival, id) order.
        ArrivalSpec::Trace {
            cycles: vec![700, 0, 700, 0],
        },
    ];
    for scheduler in schedulers {
        for arr in &arrivals {
            let spec = ServeSpec::new(WorkloadSpec::llama3_70b(), 128, 4, arr.clone())
                .scheduler(scheduler);
            for policy in [PolicySpec::unoptimized(), PolicySpec::dynmg_bma()] {
                assert_serve_mode_equivalent(&spec, policy, None);
            }
        }
    }
}

/// The overlapping-burst storm: wide in-burst spacing with a tiny
/// inter-burst gap — exactly the shape that made the pre-fix Bursty
/// generator emit a non-monotonic schedule. Four requests land at
/// roughly [0, 6000, 12000, ~12001]: the machine is saturated when the
/// second burst slams in.
fn burst_storm() -> ArrivalSpec {
    ArrivalSpec::Bursty {
        burst: 3,
        gap_in_burst: 6_000,
        burst_gap: 2,
        seed: 13,
    }
}

/// The three overload policies under the burst storm, across the full
/// 20-cell cache-policy matrix: Skip ≡ Cycle byte-equality including
/// rejected/preempted counters and SLO verdicts, plus policy-shape
/// sanity (rejections only under shedding policies, preemptions only
/// under priority).
#[test]
fn overload_policies_under_burst_storm_across_policy_matrix() {
    let reject = ServeSpec::new(WorkloadSpec::llama3_70b(), 128, 4, burst_storm())
        .scheduler(ServePolicySpec::RejectAboveQueue { slots: 2, depth: 1 })
        .slo(SloSpec::ttft(9_000));
    let drop = ServeSpec::new(WorkloadSpec::llama3_70b(), 128, 4, burst_storm())
        .scheduler(ServePolicySpec::DeadlineDrop {
            slots: 2,
            ttft_deadline: 9_000,
        })
        .slo(SloSpec::ttft(9_000));
    let prio = ServeSpec::new(WorkloadSpec::llama3_70b(), 128, 4, burst_storm())
        .scheduler(ServePolicySpec::PriorityPreempt { slots: 2 })
        .classes(vec![0, 1, 0, 1])
        .slo(SloSpec::ttft(9_000));
    for policy in policy_matrix() {
        // Slots 2, depth 1: the second burst's arrivals find both slots
        // busy and one request already waiting — terminal rejections,
        // under every cache policy.
        let r = assert_serve_mode_equivalent(&reject, policy.clone(), None);
        assert!(
            r.requests.iter().any(|q| q.rejected.is_some()),
            "burst storm must overflow the depth-1 queue ({})",
            policy.label()
        );
        // TTFT deadline 9000 « the ~30k-cycle service time: queued
        // burst victims expire before a slot frees up.
        let d = assert_serve_mode_equivalent(&drop, policy.clone(), None);
        assert!(
            d.requests.iter().any(|q| q.rejected.is_some()),
            "burst storm must shed deadline-expired waiters ({})",
            policy.label()
        );
        // Priority: class-1 arrivals preempt the running class-0
        // requests' unissued blocks; every request still completes.
        let p = assert_serve_mode_equivalent(&prio, policy.clone(), None);
        assert!(
            p.requests.iter().all(|q| q.completed),
            "preemption must never lose a request ({})",
            policy.label()
        );
        assert!(
            p.requests.iter().all(|q| q.rejected.is_none()),
            "priority-preempt never rejects ({})",
            policy.label()
        );
    }
}

/// GOLDEN_SLO: one pinned row of the SLO-aware overload table — the
/// burst storm under reject-above-queue admission with a TTFT-deadline
/// SLO. Any change to these numbers is a semantic change to rejection
/// accounting, SLO classification or goodput and must be deliberate.
///
/// Per-request (arrival, admitted, rejected) cycles.
type SloRequestRow = (u64, Option<u64>, Option<u64>);

/// (policy, cycles, met, missed, rejected,
///  [(arrival, admitted, rejected)] per request).
const GOLDEN_SLO: (&str, u64, usize, usize, usize, [SloRequestRow; 4]) = (
    "dynmg+BMA",
    51_601,
    2,
    1,
    1,
    [
        (0, Some(0), None),
        (6_000, Some(6_000), None),
        // Queued through the whole first wave; admitted at the first
        // completion, far past the 9000-cycle TTFT deadline (Missed).
        (12_000, Some(26_476), None),
        // Arrives to a full depth-1 queue: terminally rejected on the
        // spot (Rejected).
        (12_003, None, Some(12_003)),
    ],
);

#[test]
fn golden_slo_row_is_pinned() {
    let spec = ServeSpec::new(WorkloadSpec::llama3_70b(), 128, 4, burst_storm())
        .scheduler(ServePolicySpec::RejectAboveQueue { slots: 2, depth: 1 })
        .slo(SloSpec::ttft(9_000));
    let report = Experiment::from_serve_spec(&spec)
        .unwrap()
        .policy(PolicySpec::from_name(GOLDEN_SLO.0).unwrap())
        .run();
    let slo = report.slo.as_ref().expect("slo configured");
    let observed: Vec<(u64, Option<u64>, Option<u64>)> = report
        .requests
        .iter()
        .map(|r| (r.arrival, r.admitted, r.rejected))
        .collect();
    assert_eq!(
        (
            report.cycles,
            slo.met,
            slo.missed,
            slo.rejected,
            observed.as_slice()
        ),
        (
            GOLDEN_SLO.1,
            GOLDEN_SLO.2,
            GOLDEN_SLO.3,
            GOLDEN_SLO.4,
            GOLDEN_SLO.5.as_slice()
        ),
        "GOLDEN_SLO drifted — cycles {} slo {slo:?} requests {observed:?}",
        report.cycles,
    );
    // Every request got a verdict; rejected requests classified as such.
    for r in &report.requests {
        match r.slo {
            Some(SloOutcome::Rejected) => assert!(r.rejected.is_some()),
            Some(_) => assert!(r.rejected.is_none()),
            None => panic!("request {} missing SLO verdict", r.request),
        }
    }
}

/// Budget edges across the serve path: both modes agree on the exact
/// `CycleLimit` report at every probed budget, including budgets that
/// land mid-queue.
#[test]
fn serve_budget_edges_agree() {
    let spec = ServeSpec::new(
        WorkloadSpec::llama3_70b(),
        128,
        3,
        ArrivalSpec::Fixed {
            period: 20_000,
            start: 1_000,
        },
    )
    .scheduler(ServePolicySpec::MaxConcurrency { max: 1 });
    let full = Experiment::from_serve_spec(&spec).unwrap().run();
    assert!(full.completed);
    let end = full.cycles;
    for budget in [1, 999, 1_000, 20_999, end / 2, end - 1, end, end + 1] {
        assert_serve_mode_equivalent(&spec, PolicySpec::unoptimized(), Some(budget));
    }
}

/// GOLDEN_SERVE: one pinned row of the open-system table. Any change
/// to these numbers is a semantic change to the serving path (injection
/// cycle accounting, admission order, or latency attribution) and must
/// be deliberate.
///
/// (policy, cycles, [(arrival, admitted, ttft)] per request). Note
/// request 2: it arrives at 6803 but both continuous-batching slots
/// are taken, so admission waits for the first completion at 32064 —
/// the queue delay the closed-world path could never express.
const GOLDEN_SERVE: (&str, u64, [(u64, u64, u64); 3]) = (
    "dynmg+BMA",
    52_330,
    [
        (1_521, 1_521, 773),
        (2_738, 2_738, 3_303),
        (6_803, 32_064, 27_615),
    ],
);

#[test]
fn golden_serve_row_is_pinned() {
    let report = Experiment::from_serve_spec(&canonical_serve())
        .unwrap()
        .policy(PolicySpec::from_name(GOLDEN_SERVE.0).unwrap())
        .run();
    assert!(report.completed);
    let observed: Vec<(u64, u64, u64)> = report
        .requests
        .iter()
        .map(|r| (r.arrival, r.admitted.unwrap(), r.ttft.unwrap()))
        .collect();
    assert_eq!(
        (report.cycles, observed.as_slice()),
        (GOLDEN_SERVE.1, GOLDEN_SERVE.2.as_slice()),
        "GOLDEN_SERVE drifted — run cycles {} requests {:?}",
        report.cycles,
        observed
    );
}

// ---------------------------------------------------------------------
// Budget edges with fully gated work (simulator level): Skip must jump
// straight to the budget, executing a handful of ticks, not millions.
// ---------------------------------------------------------------------

fn small_cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::table5();
    cfg.num_cores = cores;
    cfg.dram.refresh = false;
    cfg
}

/// `requests × blocks_per` tiny streaming blocks, request-tagged, home
/// cores relative to `cores`, with per-block release cycles.
fn gated_program(requests: u32, blocks_per: usize, cores: usize, releases: &[u64]) -> Program {
    let mut blocks = Vec::new();
    let mut tags = Vec::new();
    let mut assignment = Vec::new();
    let mut arrivals = Vec::new();
    for r in 0..requests {
        for b in 0..blocks_per {
            blocks.push(ThreadBlock {
                instrs: vec![
                    Instr::Load {
                        addr: ((r as u64) << 40) + (b as u64) * 256,
                        bytes: 128,
                    },
                    Instr::Barrier,
                ],
            });
            tags.push(r);
            assignment.push(b % cores);
            arrivals.push(releases[r as usize]);
        }
    }
    Program::with_requests(blocks, assignment, tags, arrivals)
}

/// Returns (stats, outcome, (ticks executed, cycles skipped)).
fn run_gated(
    p: &Program,
    cores: usize,
    budget: u64,
    mode: StepMode,
) -> (SimStats, RunOutcome, (u64, u64)) {
    let mut sys = System::new(
        small_cfg(cores),
        p.clone(),
        &|_| Box::new(FifoArbiter),
        Box::new(NoThrottle),
    );
    let (stats, outcome) = sys.run_with_mode(budget, mode);
    let counts = sys.step_counts();
    (stats, outcome, counts)
}

/// Every block's release cycle lies past the budget: nothing ever runs.
/// Skip must burn the whole budget in one jump; both modes agree on the
/// exact `CycleLimit` report.
#[test]
fn fully_gated_closed_program_jumps_to_budget() {
    let budget = 5_000_000;
    let p = gated_program(2, 3, 2, &[budget + 1, budget + 500_000]);
    let (stats_s, out_s, (executed, skipped)) = run_gated(&p, 2, budget, StepMode::Skip);
    let (stats_c, out_c, _) = run_gated(&p, 2, budget, StepMode::Cycle);
    assert_eq!(out_c, out_s, "outcome diverged");
    assert_eq!(
        out_s,
        RunOutcome::CycleLimit {
            requests_completed: 0,
            requests_total: 2
        }
    );
    assert_eq!(
        serde_json::to_string(&stats_c).unwrap(),
        serde_json::to_string(&stats_s).unwrap(),
        "SimStats diverged on the fully gated program"
    );
    assert_eq!(stats_s.cycles, budget);
    assert!(
        executed < 16,
        "Skip must jump straight to the budget, executed {executed} ticks"
    );
    assert_eq!(executed + skipped, budget);
}

/// Mixed case: one request completes inside the budget, the rest stay
/// gated past it. Both modes agree the partial run hit the limit with
/// exactly one completion; Skip's executed ticks are bounded by the
/// busy prefix, not the budget.
#[test]
fn partially_gated_program_agrees_at_the_limit() {
    let budget = 2_000_000;
    let p = gated_program(3, 2, 2, &[0, budget + 1, budget + 2]);
    let (stats_s, out_s, (executed, _)) = run_gated(&p, 2, budget, StepMode::Skip);
    let (stats_c, out_c, _) = run_gated(&p, 2, budget, StepMode::Cycle);
    assert_eq!(out_c, out_s);
    assert_eq!(
        out_s,
        RunOutcome::CycleLimit {
            requests_completed: 1,
            requests_total: 3
        }
    );
    assert_eq!(
        serde_json::to_string(&stats_c).unwrap(),
        serde_json::to_string(&stats_s).unwrap()
    );
    assert_eq!(stats_s.cycles, budget);
    assert!(
        executed < 10_000,
        "Skip executed {executed} ticks; the busy prefix is tiny"
    );
}

/// The injector variant: every arrival lies past the budget, so the
/// admission queue can never drain. Skip must jump straight to the
/// budget; both modes agree nothing was admitted.
#[test]
fn fully_gated_injector_jumps_to_budget() {
    let budget = 3_000_000;
    // Open program: no per-block arrivals; the injector gates releases.
    let p = gated_program(2, 3, 2, &[0, 0]);
    let p = Program::with_requests(
        p.blocks.clone(),
        p.assignment.clone(),
        p.request_tags.clone(),
        Vec::new(),
    );
    let run = |mode| {
        let injector = RequestInjector::new(
            &p,
            vec![budget + 1, budget + 100],
            ServePolicy::Fcfs,
            2,
            small_cfg(2).core.num_inst_windows,
        )
        .expect("valid injector");
        let mut sys = System::new(
            small_cfg(2),
            p.clone(),
            &|_| Box::new(FifoArbiter),
            Box::new(NoThrottle),
        );
        sys.attach_injector(injector);
        let (stats, outcome) = sys.run_with_mode(budget, mode);
        let counts = sys.step_counts();
        (stats, outcome, counts)
    };
    let (stats_s, out_s, (executed, skipped)) = run(StepMode::Skip);
    let (stats_c, out_c, _) = run(StepMode::Cycle);
    assert_eq!(out_c, out_s);
    assert_eq!(
        out_s,
        RunOutcome::CycleLimit {
            requests_completed: 0,
            requests_total: 2
        }
    );
    assert_eq!(
        serde_json::to_string(&stats_c).unwrap(),
        serde_json::to_string(&stats_s).unwrap()
    );
    for r in &stats_s.requests {
        assert_eq!(r.admitted, None, "nothing can be admitted past the budget");
    }
    assert!(executed < 16, "Skip executed {executed} ticks");
    assert_eq!(executed + skipped, budget);
}

// ---------------------------------------------------------------------
// Proptest: duplicate-heavy same-cycle arrival batches (satellite 3).
// ---------------------------------------------------------------------

/// An open program of `n` single-barrier streaming requests homed on
/// relative core 0 — valid for every serving policy at any width.
fn narrow_open_program(n: u32, blocks_per: usize) -> Program {
    let mut blocks = Vec::new();
    let mut tags = Vec::new();
    for r in 0..n {
        for b in 0..blocks_per {
            blocks.push(ThreadBlock {
                instrs: vec![
                    Instr::Load {
                        addr: ((r as u64) << 40) + (b as u64) * 256,
                        bytes: 128,
                    },
                    Instr::Barrier,
                ],
            });
            tags.push(r);
        }
    }
    let assignment = vec![0; blocks.len()];
    Program::with_requests(blocks, assignment, tags, Vec::new())
}

fn run_open(p: &Program, arrivals: Vec<u64>, policy: ServePolicy, mode: StepMode) -> SimStats {
    let cfg = small_cfg(2);
    let injector = RequestInjector::new(p, arrivals, policy, 2, cfg.core.num_inst_windows)
        .expect("valid injector");
    let mut sys = System::new(
        cfg,
        p.clone(),
        &|_| Box::new(FifoArbiter),
        Box::new(NoThrottle),
    );
    sys.attach_injector(injector);
    let (stats, outcome) = sys.run_with_mode(5_000_000, mode);
    assert_eq!(outcome, RunOutcome::Completed);
    stats
}

proptest! {
    // Random arrival batches with heavy same-cycle duplication: both
    // modes produce byte-identical per-request stats, and same-cycle
    // arrivals are admitted in request-id order (admission cycles
    // nondecreasing in id among equal arrivals).
    #[test]
    fn same_cycle_batches_admit_in_id_order_and_match(
        slots in proptest::collection::vec(0u64..3, 2..6),
        policy_sel in 0u8..3,
    ) {
        // 0..3 buckets × 400 cycles: most batches share a cycle.
        let arrivals: Vec<u64> = slots.iter().map(|s| s * 400).collect();
        let n = arrivals.len() as u32;
        let policy = match policy_sel {
            0 => ServePolicy::Fcfs,
            1 => ServePolicy::MaxConcurrency { max: 2 },
            _ => ServePolicy::ContinuousBatching { slots: 2 },
        };
        let p = narrow_open_program(n, 2);
        let sc = run_open(&p, arrivals.clone(), policy, StepMode::Cycle);
        let ss = run_open(&p, arrivals.clone(), policy, StepMode::Skip);
        prop_assert_eq!(
            serde_json::to_string(&sc).unwrap(),
            serde_json::to_string(&ss).unwrap(),
            "SimStats (incl. admission/latency) diverged"
        );
        // Same-cycle arrivals admit in id order.
        for i in 0..arrivals.len() {
            for j in (i + 1)..arrivals.len() {
                if arrivals[i] == arrivals[j] {
                    let (ai, aj) = (
                        sc.requests[i].admitted.expect("admitted"),
                        sc.requests[j].admitted.expect("admitted"),
                    );
                    prop_assert!(
                        ai <= aj,
                        "requests {} and {} arrived together but admitted out of order \
                         ({} > {})", i, j, ai, aj
                    );
                }
            }
        }
        for r in &sc.requests {
            prop_assert!(r.completed);
            prop_assert!(r.admitted.unwrap() >= r.arrival);
        }
    }
}
