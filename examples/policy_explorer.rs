//! Policy explorer: run every policy combination on one workload and
//! print the full mechanism table (a do-it-yourself Fig 8).
//!
//! ```text
//! cargo run --release --example policy_explorer [seq_len] [70b|405b] [l2_mb]
//! ```

use llamcat::experiment::{ArbPolicy, Experiment, Model, Policy, ThrottlePolicy};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seq_len: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2048);
    let model = match args.get(2).map(|s| s.as_str()) {
        Some("405b") => Model::Llama3_405b,
        _ => Model::Llama3_70b,
    };
    let l2_mb: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(16);

    let throttles = [
        ThrottlePolicy::None,
        ThrottlePolicy::Dyncta,
        ThrottlePolicy::Lcs,
        ThrottlePolicy::DynMg,
    ];
    let arbs = [
        ArbPolicy::Fifo,
        ArbPolicy::Balanced,
        ArbPolicy::MshrAware,
        ArbPolicy::BalancedMshrAware,
        ArbPolicy::Cobrra,
    ];

    println!(
        "Exploring {} policies on {:?} seq={} L2={}MB\n",
        throttles.len() * arbs.len(),
        model,
        seq_len,
        l2_mb
    );
    println!(
        "{:<16} {:>11} {:>8} {:>7} {:>8} {:>8} {:>7} {:>11}",
        "policy", "cycles", "speedup", "l2hit", "mshrhit", "entutil", "t_cs", "dram(GB/s)"
    );
    let mut base = None;
    let mut best: Option<(String, u64)> = None;
    for t in throttles {
        for a in arbs {
            let p = Policy::new(a, t);
            let r = Experiment::new(model, seq_len).l2_mb(l2_mb).policy(p).run();
            let b = *base.get_or_insert(r.cycles);
            println!(
                "{:<16} {:>11} {:>7.3}x {:>7.3} {:>8.3} {:>8.3} {:>7.3} {:>11.2}",
                r.policy_label,
                r.cycles,
                b as f64 / r.cycles as f64,
                r.l2_hit_rate,
                r.mshr_hit_rate,
                r.mshr_entry_util,
                r.t_cs,
                r.dram_bandwidth_gbs
            );
            if best.as_ref().is_none_or(|(_, c)| r.cycles < *c) {
                best = Some((r.policy_label.clone(), r.cycles));
            }
        }
    }
    let (name, cycles) = best.expect("at least one policy ran");
    println!("\nbest policy: {name} ({cycles} cycles)");
}
