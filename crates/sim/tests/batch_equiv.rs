//! Differential suite for batched multi-cell execution.
//!
//! The contract ([`llamcat_sim::batch::SystemBatch`],
//! `Experiment::run_forked_batch`): every cell of a lockstep batch —
//! whatever the batch size, lockstep stride, step-mode mix, or the
//! point at which other cells retire or exhaust their budgets — is
//! **byte-identical** to its own straight-line per-cell run: same
//! serialized `RunReport`/`SimStats` (per-request admission, TTFT,
//! rejection and KV counters included), same `RunOutcome`. Covered:
//! the 20-cell golden policy matrix, serving mixes, open-system serve
//! cells (overload shedding included — the cells whose blocks never
//! retire), KV-tier cells, budget edges around the exact completion
//! cycle, and a proptest over random programs × batch sizes × strides
//! × per-lane step modes.
//!
//! This suite is what lets `Campaign::batch_cells` share one scenario
//! across a policy grid without weakening the repo's standing
//! Skip ≡ Cycle and fork ≡ straight-line guarantees.

use proptest::prelude::*;

use llamcat::experiment::{Experiment, Model, Policy, RunReport};
use llamcat::spec::{ArrivalSpec, KvSpec, MixSpec, PolicySpec, ServePolicySpec, ServeSpec};
use llamcat_sim::arb::{FifoArbiter, NoThrottle};
use llamcat_sim::batch::{SystemBatch, DEFAULT_STRIDE};
use llamcat_sim::config::SystemConfig;
use llamcat_sim::kv::{KvEviction, KvTierConfig};
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::serve::{RequestInjector, ServePolicy};
use llamcat_sim::system::{RunOutcome, StepMode, System};
use llamcat_trace::workloads::WorkloadSpec;

const BUDGET: u64 = 50_000_000;

fn report_json(report: &RunReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// The 5 × 4 policy matrix, compositional registry names.
fn policy_matrix() -> Vec<PolicySpec> {
    let mut out = Vec::with_capacity(20);
    for arb in ["fifo", "B", "MA", "BMA", "cobrra"] {
        for thr in ["none", "dyncta", "lcs", "dynmg"] {
            out.push(PolicySpec::from_name(&format!("{thr}+{arb}")).expect("matrix name"));
        }
    }
    out
}

/// Asserts that batching `cells` (all sharing one scenario) reproduces
/// each cell's straight-line `try_run` byte-for-byte, at the default
/// stride and at a deliberately tiny stride that forces many lockstep
/// windows (pausing and resuming every cell mid-flight over and over).
fn assert_batch_matches_per_cell(cells: &[Experiment], label: &str) {
    let straight: Vec<String> = cells
        .iter()
        .map(|c| report_json(&c.try_run().expect("cell runs")))
        .collect();
    let snap = cells[0].snapshot_scenario().expect("scenario builds");
    for stride in [DEFAULT_STRIDE, 997] {
        let batched = Experiment::run_forked_batch_with_stride(cells, &snap, stride);
        assert_eq!(batched.len(), cells.len());
        for (i, report) in batched.iter().enumerate() {
            assert_eq!(
                report_json(report),
                straight[i],
                "{label}: cell {i} diverged from its straight-line run (stride {stride})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The golden 20-cell policy matrix, closed solo trace, both modes.
// ---------------------------------------------------------------------

fn matrix_cells(mode: StepMode) -> Vec<Experiment> {
    policy_matrix()
        .into_iter()
        .map(|p| {
            Experiment::new(Model::Llama3_70b, 128)
                .policy(p)
                .step_mode(mode)
        })
        .collect()
}

#[test]
fn golden_matrix_batched_matches_per_cell_cycle_mode() {
    assert_batch_matches_per_cell(&matrix_cells(StepMode::Cycle), "matrix/cycle");
}

#[test]
fn golden_matrix_batched_matches_per_cell_skip_mode() {
    assert_batch_matches_per_cell(&matrix_cells(StepMode::Skip), "matrix/skip");
}

/// Lanes of one batch may mix step modes — each must still match its
/// own straight-line run in its own mode.
#[test]
fn mixed_step_modes_in_one_batch() {
    let cells: Vec<Experiment> = policy_matrix()
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let mode = if i % 2 == 0 {
                StepMode::Cycle
            } else {
                StepMode::Skip
            };
            Experiment::new(Model::Llama3_70b, 128)
                .policy(p)
                .step_mode(mode)
        })
        .collect();
    assert_batch_matches_per_cell(&cells, "matrix/mixed-modes");
}

// ---------------------------------------------------------------------
// Mix, serve (incl. overload shedding) and KV-tier scenarios.
// ---------------------------------------------------------------------

#[test]
fn mix_cells_batched_match_per_cell() {
    let mix = MixSpec::interleaved()
        .request(WorkloadSpec::llama3_70b(), 128, 0)
        .request(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 4,
            },
            128,
            0,
        );
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let cells: Vec<Experiment> = ["none+fifo", "dynmg+BMA", "lcs+MA", "dyncta+B"]
            .iter()
            .map(|n| {
                Experiment::from_mix_spec(&mix)
                    .expect("valid mix")
                    .policy(PolicySpec::from_name(n).expect("policy"))
                    .step_mode(mode)
            })
            .collect();
        assert_batch_matches_per_cell(&cells, &format!("mix/{mode:?}"));
    }
}

#[test]
fn serve_cells_batched_match_per_cell() {
    let spec = ServeSpec::new(
        WorkloadSpec::llama3_70b(),
        128,
        3,
        ArrivalSpec::Poisson {
            mean_gap: 4_000,
            seed: 11,
        },
    )
    .scheduler(ServePolicySpec::ContinuousBatching { slots: 2 });
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let cells: Vec<Experiment> = ["none+fifo", "dynmg+BMA", "lcs+MA", "dyncta+B"]
            .iter()
            .map(|n| {
                Experiment::from_serve_spec(&spec)
                    .expect("valid serve")
                    .policy(PolicySpec::from_name(n).expect("policy"))
                    .step_mode(mode)
            })
            .collect();
        assert_batch_matches_per_cell(&cells, &format!("serve/{mode:?}"));
    }
}

/// The overlapping-burst storm from `serve_equiv.rs`: the machine is
/// saturated when the second burst slams in, so admission-control
/// schedulers actually shed requests.
fn burst_storm() -> ArrivalSpec {
    ArrivalSpec::Bursty {
        burst: 3,
        gap_in_burst: 6_000,
        burst_gap: 2,
        seed: 13,
    }
}

/// Overload shedding in a batch: rejected/dropped requests' blocks
/// never retire, so this pins the batched completion accounting (the
/// shed-block counter behind the `is_done` fast path) along with the
/// per-request rejection ledger.
#[test]
fn overload_serve_cells_batched_match_per_cell() {
    for scheduler in [
        ServePolicySpec::RejectAboveQueue { slots: 2, depth: 1 },
        ServePolicySpec::DeadlineDrop {
            slots: 2,
            ttft_deadline: 9_000,
        },
    ] {
        let spec =
            ServeSpec::new(WorkloadSpec::llama3_70b(), 128, 4, burst_storm()).scheduler(scheduler);
        for mode in [StepMode::Cycle, StepMode::Skip] {
            let cells: Vec<Experiment> = ["none+fifo", "dynmg+BMA"]
                .iter()
                .map(|n| {
                    Experiment::from_serve_spec(&spec)
                        .expect("valid serve")
                        .policy(PolicySpec::from_name(n).expect("policy"))
                        .step_mode(mode)
                })
                .collect();
            let probe = cells[0].try_run().expect("cell runs");
            assert!(
                probe.requests.iter().any(|r| r.rejected.is_some()),
                "scenario must actually shed requests"
            );
            assert_batch_matches_per_cell(&cells, &format!("overload/{mode:?}"));
        }
    }
}

#[test]
fn kv_tier_cells_batched_match_per_cell() {
    let mut mix = MixSpec::interleaved();
    for _ in 0..3 {
        mix = mix.request(
            WorkloadSpec::SharedPrefix {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                prefix_len: 64,
            },
            128,
            0,
        );
    }
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let cells: Vec<Experiment> = ["none+fifo", "dynmg+BMA", "none+PFA"]
            .iter()
            .map(|n| {
                Experiment::with_mix(mix.clone().instantiate())
                    .kv(KvSpec::prefix_pin(16))
                    .policy(PolicySpec::from_name(n).expect("policy"))
                    .step_mode(mode)
            })
            .collect();
        assert_batch_matches_per_cell(&cells, &format!("kv/{mode:?}"));
    }
}

// ---------------------------------------------------------------------
// Budget edges: lanes pause, retire and drop out at exact boundaries.
// ---------------------------------------------------------------------

/// The paper's stateful policy pair (BMA + DynMg) on a real trace.
fn rich_system() -> System<llamcat::arbiter::ArbiterKind, llamcat::throttle::ThrottleKind> {
    let e = Experiment::new(Model::Llama3_70b, 128).policy(Policy::dynmg_bma());
    let program = e.build_program();
    let arb = e.policy.arb.clone();
    System::new(
        e.config,
        program,
        &move |_| arb.build_kind(),
        e.policy.throttle.build_kind(),
    )
}

/// One batch whose lanes all share a scenario but carry budgets
/// straddling the exact completion cycle: early lanes retire on their
/// budgets mid-batch, the generous lanes complete, and nobody's exit
/// perturbs anyone else. Each lane is byte-identical to a per-lane
/// straight-line run with the same budget.
#[test]
fn budget_edges_batched_match_straight_line() {
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let mut reference = rich_system();
        let (stats_ref, out_ref) = reference.run_with_mode(BUDGET, mode);
        assert_eq!(out_ref, RunOutcome::Completed);
        let full = stats_ref.cycles;

        let budgets = [
            1,
            2,
            97,
            1_000,
            full / 2,
            full - 1,
            full,
            full + 1,
            full + 10_000,
        ];
        let base = rich_system();
        for stride in [DEFAULT_STRIDE, 131] {
            let mut batch = SystemBatch::with_stride(stride);
            for &b in &budgets {
                batch.push(base.clone(), b, mode);
            }
            let results = batch.run();
            for (&b, (stats, outcome)) in budgets.iter().zip(&results) {
                let mut straight = rich_system();
                let (stats_s, out_s) = straight.run_with_mode(b, mode);
                assert_eq!(
                    outcome, &out_s,
                    "budget {b} ({mode:?}, stride {stride}): outcome diverged"
                );
                assert_eq!(
                    serde_json::to_string(stats).unwrap(),
                    serde_json::to_string(&stats_s).unwrap(),
                    "budget {b} ({mode:?}, stride {stride}): SimStats diverged"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Proptest: random open programs × batch sizes × strides × mode mixes.
// ---------------------------------------------------------------------

fn small_cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::table5();
    cfg.num_cores = cores;
    cfg
}

fn tight_kv() -> KvTierConfig {
    KvTierConfig {
        warm_capacity_blocks: 4,
        block_bytes: 256,
        slow_latency: 400,
        slow_bytes_per_cycle: 16,
        max_inflight: 2,
        eviction: KvEviction::Lru,
    }
}

/// Request-tagged blocks mixing plain and KV-window loads inside each
/// request's VA slot (so the slow tier engages with promotions in
/// flight), with a caller-chosen block count per request.
fn open_kv_program(blocks_per_request: &[usize]) -> Program {
    let mut blocks = Vec::new();
    let mut tags = Vec::new();
    for (r, &nblocks) in blocks_per_request.iter().enumerate() {
        let slot = (r as u64) << 40;
        for b in 0..nblocks {
            blocks.push(ThreadBlock {
                instrs: vec![
                    Instr::Load {
                        addr: slot + (b as u64) * 256,
                        bytes: 128,
                    },
                    Instr::Load {
                        addr: slot + (1 << 32) + (b as u64) * 256,
                        bytes: 128,
                    },
                    Instr::Barrier,
                ],
            });
            tags.push(r as u32);
        }
    }
    let assignment = vec![0; blocks.len()];
    Program::with_requests(blocks, assignment, tags, Vec::new())
}

fn open_kv_system(p: &Program, arrivals: Vec<u64>) -> System<FifoArbiter, NoThrottle> {
    let cfg = small_cfg(2);
    let injector = RequestInjector::new(
        p,
        arrivals,
        ServePolicy::ContinuousBatching { slots: 2 },
        2,
        cfg.core.num_inst_windows,
    )
    .expect("valid injector");
    let mut sys = System::new(cfg, p.clone(), &|_| FifoArbiter, NoThrottle);
    sys.attach_injector(injector);
    sys.attach_kv(tight_kv());
    sys
}

// Random open-system KV programs, random per-lane budget cut points
// (so lanes retire at arbitrary mid-flight cycles while the rest carry
// on), random per-lane step modes, random lockstep stride: every lane
// of the batch is byte-identical to its own straight-line run.
proptest! {
    #[test]
    fn random_batches_match_straight_line(
        shape in proptest::collection::vec(1usize..4, 2..5),
        gaps in proptest::collection::vec(0u64..2_000, 4),
        cuts in proptest::collection::vec((0u64..110, any::<bool>()), 1..6),
        stride in 17u64..8_192,
    ) {
        let p = open_kv_program(&shape);
        let arrivals: Vec<u64> = gaps
            .iter()
            .take(shape.len())
            .scan(0u64, |acc, g| {
                *acc += g;
                Some(*acc)
            })
            .collect();

        let mut reference = open_kv_system(&p, arrivals.clone());
        let (stats_ref, out_ref) = reference.run_with_mode(BUDGET, StepMode::Cycle);
        prop_assert_eq!(out_ref, RunOutcome::Completed);
        let full = stats_ref.cycles;

        // Lanes: budget at cut% of the full run (past-the-end budgets
        // complete; tiny ones retire almost immediately), mode per lane.
        let lanes: Vec<(u64, StepMode)> = cuts
            .iter()
            .map(|&(frac, skip)| {
                let budget = (full * frac / 100).max(1);
                let mode = if skip { StepMode::Skip } else { StepMode::Cycle };
                (budget, mode)
            })
            .collect();
        let base = open_kv_system(&p, arrivals.clone());
        let mut batch = SystemBatch::with_stride(stride);
        for &(budget, mode) in &lanes {
            batch.push(base.clone(), budget, mode);
        }
        let results = batch.run();
        prop_assert_eq!(results.len(), lanes.len());
        for (&(budget, mode), (stats, outcome)) in lanes.iter().zip(&results) {
            let mut straight = open_kv_system(&p, arrivals.clone());
            let (stats_s, out_s) = straight.run_with_mode(budget, mode);
            prop_assert_eq!(outcome, &out_s);
            prop_assert_eq!(
                serde_json::to_string(stats).unwrap(),
                serde_json::to_string(&stats_s).unwrap(),
                "budget {} mode {:?} stride {} diverged",
                budget,
                mode,
                stride
            );
        }
    }
}
