//! Memory-trace generation: walking a mapping into per-core thread-block
//! instruction streams.
//!
//! "Since a mapping by definition is a hierarchy of nested loops mapped
//! to either the spatial or temporal domain, it can be translated to
//! memory traces simply by iterating through it" (Section 5). One thread
//! block is one L1-level tile: it loads the Q row for its (h, g) pair,
//! streams the K rows of its L tile (with amortized compute cycles for
//! the dot products), synchronizes, and stores its output scores.

use serde::{Deserialize, Serialize};

use llamcat_sim::prog::{Instr, Program, ThreadBlock};

use crate::mapping::{Dim, Level, LoopKind, Mapping, TbOrder};
use crate::workload::{LogitOp, ELEM_BYTES};

/// Trace-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceGenConfig {
    /// Vector memory access width in bytes (Table 5: 128 B).
    pub vector_len_bytes: u64,
    /// Compute cycles modelled per K row (vector FMA work of one
    /// dot-product row).
    pub compute_cycles_per_row: u32,
    /// Rows between flushed `Compute` instructions (amortization).
    pub compute_flush_rows: usize,
    /// Cores the blocks are distributed over.
    pub num_cores: usize,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            vector_len_bytes: 128,
            compute_cycles_per_row: 1,
            compute_flush_rows: 4,
            num_cores: 16,
        }
    }
}

/// Summary of a generated trace (used by tests and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    pub num_blocks: usize,
    pub total_load_bytes: u64,
    pub total_store_bytes: u64,
    pub max_block_instrs: usize,
}

/// Generates the executable Logit program for `op` under `mapping`.
///
/// Panics if the mapping is invalid for the operator (call
/// [`Mapping::validate`] first for a graceful error).
pub fn generate(op: &LogitOp, mapping: &Mapping, cfg: &TraceGenConfig) -> (Program, TraceMeta) {
    generate_with(op, mapping, cfg, |h, g, lt, l_tile| {
        logit_block(op, cfg, h, g, lt, l_tile)
    })
}

/// Generates a program for any workload sharing the {H, G, L, D}
/// iteration space: the mapping decides thread-block enumeration order
/// and core assignment, `build` supplies each block's instruction
/// stream (`(h, g, l_tile_index, l_tile_extent) -> ThreadBlock`).
///
/// This is the open extension point behind
/// [`Workload::generate`](crate::workloads::Workload::generate):
/// enumeration logic is written once, per-operator memory behavior is
/// plugged in.
///
/// Panics if the mapping is invalid for the iteration space (call
/// [`Mapping::validate`] first for a graceful error).
pub fn generate_with<F>(
    op: &LogitOp,
    mapping: &Mapping,
    cfg: &TraceGenConfig,
    build: F,
) -> (Program, TraceMeta)
where
    F: Fn(usize, usize, usize, usize) -> ThreadBlock,
{
    mapping
        .validate(op)
        .expect("mapping must be valid for the operator");
    let l_tile = mapping.l1_l_tile();
    let n_ltiles = op.seq_len / l_tile;

    let spatial_h = mapping
        .level(Level::L2)
        .iter()
        .any(|l| l.dim == Dim::H && l.kind == LoopKind::Spatial);
    let (blocks, assignment) = if spatial_h {
        generate_pair_stream(op, cfg, l_tile, n_ltiles, &build)
    } else if mapping.is_spatial() {
        generate_spatial(op, mapping, cfg, l_tile, n_ltiles, &build)
    } else {
        // Round-robin: thread-block enumeration order from the L2-level
        // temporal loops, consecutive blocks on consecutive cores.
        let l2 = mapping.level(Level::L2);
        let order: Vec<Dim> = l2
            .iter()
            .filter(|l| l.kind == LoopKind::Temporal)
            .map(|l| l.dim)
            .collect();
        let mut blocks = Vec::with_capacity(op.heads * op.group_size * n_ltiles);
        let mut emit = |h: usize, g: usize, lt: usize| {
            blocks.push(build(h, g, lt, l_tile));
        };
        iterate(&order, op, n_ltiles, &mut emit);
        let assignment = (0..blocks.len()).map(|i| i % cfg.num_cores).collect();
        (blocks, assignment)
    };

    let meta = TraceMeta {
        num_blocks: blocks.len(),
        total_load_bytes: blocks.iter().map(|b| b.bytes_loaded()).sum(),
        total_store_bytes: blocks.iter().map(|b| b.bytes_stored()).sum(),
        max_block_instrs: blocks.iter().map(|b| b.instrs.len()).max().unwrap_or(0),
    };
    (Program::new(blocks, assignment), meta)
}

/// Pair-stream dataflow: (h, g) output pairs round-robin over cores,
/// each pair an independent full-K[h] temporal stream (see
/// [`crate::mapping::logit_mapping_pair_stream`]). Blocks are emitted
/// pair-major so each core's queue holds its pairs' tiles contiguously —
/// the window-strided scheduler then runs one pair per window.
fn generate_pair_stream<F>(
    op: &LogitOp,
    cfg: &TraceGenConfig,
    l_tile: usize,
    n_ltiles: usize,
    build: &F,
) -> (Vec<ThreadBlock>, Vec<usize>)
where
    F: Fn(usize, usize, usize, usize) -> ThreadBlock,
{
    let pairs = op.heads * op.group_size;
    let mut blocks = Vec::with_capacity(pairs * n_ltiles);
    let mut assignment = Vec::with_capacity(pairs * n_ltiles);
    for p in 0..pairs {
        let (h, g) = (p / op.group_size, p % op.group_size);
        let core = p % cfg.num_cores;
        for lt in 0..n_ltiles {
            blocks.push(build(h, g, lt, l_tile));
            assignment.push(core);
        }
    }
    (blocks, assignment)
}

/// Spatial dataflow: query heads (and L segments) pinned to cores; all
/// cores stream the shared K[h] concurrently. Blocks are emitted in
/// `(h, l-tile, sharers)` order so that each core's subsequence — which
/// is what its scheduler queue preserves — is its own `(h, l-tile)`
/// temporal stream.
fn generate_spatial<F>(
    op: &LogitOp,
    mapping: &Mapping,
    cfg: &TraceGenConfig,
    l_tile: usize,
    n_ltiles: usize,
    build: &F,
) -> (Vec<ThreadBlock>, Vec<usize>)
where
    F: Fn(usize, usize, usize, usize) -> ThreadBlock,
{
    let gs = mapping.spatial_g();
    let gt = op.group_size / gs;
    let segments = mapping.spatial_l_segments();
    let tiles_per_seg = n_ltiles / segments;
    let mut blocks = Vec::with_capacity(op.heads * op.group_size * n_ltiles);
    let mut assignment = Vec::with_capacity(blocks.capacity());
    for h in 0..op.heads {
        for gi in 0..gt {
            for t in 0..tiles_per_seg {
                // All sharers of tile t (across g-spatial and segments)
                // are emitted adjacently; their home cores differ.
                for gsi in 0..gs {
                    for seg in 0..segments {
                        let g = gsi * gt + gi;
                        let lt = seg * tiles_per_seg + t;
                        let core = (gsi * segments + seg) % cfg.num_cores;
                        blocks.push(build(h, g, lt, l_tile));
                        assignment.push(core);
                    }
                }
            }
        }
    }
    (blocks, assignment)
}

/// Convenience: generate with the paper's default spatial mapping.
pub fn generate_default(op: &LogitOp, cfg: &TraceGenConfig) -> (Program, TraceMeta) {
    let mapping = crate::mapping::logit_mapping_spatial(op, 32, cfg.num_cores);
    generate(op, &mapping, cfg)
}

/// Generate with the round-robin GInner mapping (the non-spatial
/// alternative dataflow).
pub fn generate_round_robin(op: &LogitOp, cfg: &TraceGenConfig) -> (Program, TraceMeta) {
    let mapping = crate::mapping::logit_mapping(op, 32, TbOrder::GInner);
    generate(op, &mapping, cfg)
}

/// Walks the (H, G, L-tile) iteration space in the order given by the
/// L2-level loop list.
fn iterate(
    order: &[Dim],
    op: &LogitOp,
    n_ltiles: usize,
    emit: &mut dyn FnMut(usize, usize, usize),
) {
    let extent = |d: Dim| match d {
        Dim::H => op.heads,
        Dim::G => op.group_size,
        Dim::L => n_ltiles,
        Dim::D => 1,
    };
    let dims: Vec<Dim> = order.iter().copied().filter(|d| *d != Dim::D).collect();
    assert_eq!(dims.len(), 3, "L2 level must order H, G and L");
    let (d0, d1, d2) = (dims[0], dims[1], dims[2]);
    let mut idx = [0usize; 3];
    for i0 in 0..extent(d0) {
        idx[0] = i0;
        for i1 in 0..extent(d1) {
            idx[1] = i1;
            for i2 in 0..extent(d2) {
                idx[2] = i2;
                let get = |dim: Dim| {
                    dims.iter()
                        .position(|d| *d == dim)
                        .map(|p| idx[p])
                        .unwrap_or(0)
                };
                emit(get(Dim::H), get(Dim::G), get(Dim::L));
            }
        }
    }
}

/// Builds the instruction stream of one decode-Logit thread block:
/// load the Q row, stream the K rows of the L tile with amortized
/// compute, barrier, store the tile's scores.
pub fn logit_block(
    op: &LogitOp,
    cfg: &TraceGenConfig,
    h: usize,
    g: usize,
    lt: usize,
    l_tile: usize,
) -> ThreadBlock {
    let vlen = cfg.vector_len_bytes;
    let row_bytes = op.k_row_bytes();
    let mut instrs = Vec::with_capacity(l_tile * 2 + l_tile / 2 + 8);

    // Load the Q row for (h, g).
    let q0 = op.q_addr(h, g, 0);
    push_vector_accesses(&mut instrs, q0, row_bytes, vlen, false);

    // Stream the K rows of the tile, interleaving amortized compute.
    let l0 = lt * l_tile;
    let mut pending_compute = 0u32;
    for li in 0..l_tile {
        let k0 = op.k_addr(h, l0 + li, 0);
        push_vector_accesses(&mut instrs, k0, row_bytes, vlen, false);
        pending_compute += cfg.compute_cycles_per_row;
        if (li + 1) % cfg.compute_flush_rows == 0 && pending_compute > 0 {
            instrs.push(Instr::Compute {
                cycles: pending_compute,
            });
            pending_compute = 0;
        }
    }
    if pending_compute > 0 {
        instrs.push(Instr::Compute {
            cycles: pending_compute,
        });
    }

    // Reduction barrier, then store the tile's scores.
    instrs.push(Instr::Barrier);
    let s0 = op.score_addr(h, g, l0);
    push_vector_accesses(&mut instrs, s0, l_tile as u64 * ELEM_BYTES, vlen, true);

    ThreadBlock { instrs }
}

/// Splits a contiguous `bytes`-long access at `base` into vector-width
/// loads or stores (shared by all workload block builders).
pub fn push_vector_accesses(
    instrs: &mut Vec<Instr>,
    base: u64,
    bytes: u64,
    vlen: u64,
    store: bool,
) {
    let mut off = 0;
    while off < bytes {
        let chunk = vlen.min(bytes - off) as u32;
        if store {
            instrs.push(Instr::Store {
                addr: base + off,
                bytes: chunk,
            });
        } else {
            instrs.push(Instr::Load {
                addr: base + off,
                bytes: chunk,
            });
        }
        off += chunk as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::logit_mapping;
    use llamcat_sim::types::LINE_BYTES;
    use std::collections::HashSet;

    fn small_op() -> LogitOp {
        LogitOp {
            heads: 2,
            group_size: 4,
            seq_len: 128,
            head_dim: 128,
        }
    }

    #[test]
    fn block_count_matches_mapping() {
        let op = small_op();
        let m = logit_mapping(&op, 32, TbOrder::GInner);
        let (p, meta) = generate(&op, &m, &TraceGenConfig::default());
        // 2 heads * 4 groups * (128/32) tiles = 32 blocks.
        assert_eq!(meta.num_blocks, 32);
        assert_eq!(p.num_blocks(), 32);
    }

    #[test]
    fn load_traffic_matches_analytical_model() {
        let op = small_op();
        let m = logit_mapping(&op, 32, TbOrder::GInner);
        let (_, meta) = generate(&op, &m, &TraceGenConfig::default());
        // Every (h, g) streams K[h] once (+ its Q row once per tile).
        let k_traffic = op.k_bytes() * op.group_size as u64;
        let q_traffic = (op.heads * op.group_size * (op.seq_len / 32)) as u64 * op.k_row_bytes();
        assert_eq!(meta.total_load_bytes, k_traffic + q_traffic);
        assert_eq!(meta.total_store_bytes, op.score_bytes());
    }

    #[test]
    fn blocks_fit_instruction_window() {
        let op = LogitOp::llama3_70b(4096);
        let (_, meta) = generate_default(&op, &TraceGenConfig::default());
        assert!(
            meta.max_block_instrs <= 128,
            "blocks must fit the 128-deep instruction window, got {}",
            meta.max_block_instrs
        );
    }

    #[test]
    fn g_inner_order_makes_sharers_adjacent() {
        let op = small_op();
        let m = logit_mapping(&op, 32, TbOrder::GInner);
        let (p, _) = generate(&op, &m, &TraceGenConfig::default());
        // Blocks 0..group_size must all read the same K lines.
        let k_lines = |tb: usize| -> HashSet<u64> {
            p.blocks[tb]
                .instrs
                .iter()
                .filter_map(|i| match i {
                    Instr::Load { addr, .. } if *addr >= crate::workload::K_BASE => {
                        Some(addr / LINE_BYTES)
                    }
                    _ => None,
                })
                .collect()
        };
        let first = k_lines(0);
        assert!(!first.is_empty());
        for g in 1..op.group_size {
            assert_eq!(k_lines(g), first, "block {g} shares block 0's K tile");
        }
        // The next tile's blocks read different lines.
        assert!(k_lines(op.group_size).is_disjoint(&first));
    }

    #[test]
    fn l_inner_order_separates_sharers() {
        let op = small_op();
        let m = logit_mapping(&op, 32, TbOrder::LInner);
        let (p, _) = generate(&op, &m, &TraceGenConfig::default());
        // Adjacent blocks stream different K tiles.
        let k_addrs = |tb: usize| -> Vec<u64> {
            p.blocks[tb]
                .instrs
                .iter()
                .filter_map(|i| match i {
                    Instr::Load { addr, .. } if *addr >= crate::workload::K_BASE => Some(*addr),
                    _ => None,
                })
                .collect()
        };
        assert_ne!(k_addrs(0), k_addrs(1));
    }

    #[test]
    fn store_addresses_cover_output_exactly_once() {
        let op = small_op();
        let m = logit_mapping(&op, 32, TbOrder::GInner);
        let (p, _) = generate(&op, &m, &TraceGenConfig::default());
        let mut lines = HashSet::new();
        for b in &p.blocks {
            for i in &b.instrs {
                if let Instr::Store { addr, bytes } = i {
                    let mut a = *addr;
                    while a < addr + *bytes as u64 {
                        assert!(lines.insert(a / LINE_BYTES), "output line stored twice");
                        a += LINE_BYTES;
                    }
                }
            }
        }
        assert_eq!(lines.len() as u64, op.score_bytes() / LINE_BYTES);
    }

    #[test]
    fn compute_cycles_scale_with_rows() {
        let op = small_op();
        let m = logit_mapping(&op, 32, TbOrder::GInner);
        let cfg = TraceGenConfig {
            compute_cycles_per_row: 2,
            ..Default::default()
        };
        let (p, _) = generate(&op, &m, &cfg);
        let total: u32 = p.blocks[0]
            .instrs
            .iter()
            .map(|i| match i {
                Instr::Compute { cycles } => *cycles,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 64, "32 rows * 2 cycles");
    }
}
