//! Property tests for the event-bound contract behind `StepMode::Skip`
//! (see `DESIGN.md`, "The event-bound contract").
//!
//! Three invariants, checked over randomly generated small programs and
//! request streams (case count capped by `PROPTEST_CASES`, like the
//! other property suites):
//!
//! 1. **Bounds are never late.** Whenever a component's `next_event`
//!    claims quiescence for a cycle, actually ticking that cycle must
//!    change nothing beyond the closed-form per-cycle accrual.
//! 2. **Throttle-period boundaries are preserved.** A period-driven
//!    throttle controller observes its sampling boundaries at exactly
//!    the same cycles in Skip mode as in Cycle mode — skipping never
//!    jumps over or reorders them.
//! 3. **Whole-system equivalence.** Random programs, core counts and
//!    periods produce byte-identical `SimStats` in both modes.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use llamcat_sim::arb::{FifoArbiter, ThrottleController, ThrottleInputs};
use llamcat_sim::config::{DramConfig, SystemConfig};
use llamcat_sim::dram::{AddressMapping, Channel, MappingScheme};
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::sched::TbScheduler;
use llamcat_sim::system::{StepMode, System};
use llamcat_sim::types::{Cycle, MemResp, LINE_BYTES};

// ---------------------------------------------------------------------
// Program generation (the shim has no prop_oneof/prop_map; decode plain
// integer tuples instead).
// ---------------------------------------------------------------------

/// (address selector, shape selector, compute length) -> one block.
fn decode_block(addr_sel: u64, kind: u8, compute: u32) -> ThreadBlock {
    let addr = addr_sel * 128;
    let instrs = match kind % 4 {
        0 => vec![Instr::Load { addr, bytes: 128 }, Instr::Barrier],
        1 => vec![
            Instr::Compute { cycles: compute },
            Instr::Load { addr, bytes: 128 },
            Instr::Barrier,
        ],
        2 => vec![
            Instr::Store { addr, bytes: 64 },
            Instr::Compute { cycles: compute },
        ],
        _ => vec![
            Instr::Load { addr, bytes: 128 },
            Instr::Load {
                addr: addr + 4096,
                bytes: 128,
            },
            Instr::Barrier,
            Instr::Compute { cycles: compute },
        ],
    };
    ThreadBlock { instrs }
}

fn decode_program(blocks: &[(u64, u8, u32)], cores: usize) -> Program {
    Program::round_robin(
        blocks
            .iter()
            .map(|&(a, k, c)| decode_block(a, k, c))
            .collect(),
        cores,
    )
}

// ---------------------------------------------------------------------
// A boundary-recording periodic throttle: logs every sampling boundary
// it observes and alternates its decision so boundaries are
// behaviorally visible (a missed or reordered boundary changes the
// simulation, not just the log).
// ---------------------------------------------------------------------

struct PeriodicThrottle {
    period: u64,
    next: u64,
    fired: Rc<RefCell<Vec<Cycle>>>,
}

impl PeriodicThrottle {
    fn new(period: u64, fired: Rc<RefCell<Vec<Cycle>>>) -> Self {
        PeriodicThrottle {
            period,
            next: period,
            fired,
        }
    }
}

impl ThrottleController for PeriodicThrottle {
    fn tick(&mut self, inputs: &ThrottleInputs<'_>, max_tb: &mut [usize]) {
        if inputs.cycle >= self.next {
            self.next = inputs.cycle + self.period;
            self.fired.borrow_mut().push(inputs.cycle);
            let tighten = (inputs.cycle / self.period) % 2 == 1;
            for m in max_tb.iter_mut() {
                *m = if tighten {
                    (inputs.num_windows - 1).max(1)
                } else {
                    inputs.num_windows
                };
            }
        }
    }

    fn reset(&mut self, _num_cores: usize) {
        self.next = self.period;
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        Some(self.next)
    }

    fn name(&self) -> &'static str {
        "periodic-recorder"
    }
}

fn run_recorded(
    cfg: SystemConfig,
    program: Program,
    period: u64,
    mode: StepMode,
) -> (String, bool, Vec<Cycle>) {
    let fired = Rc::new(RefCell::new(Vec::new()));
    let throttle = Box::new(PeriodicThrottle::new(period, Rc::clone(&fired)));
    let mut sys = System::new(cfg, program, &|_| Box::new(FifoArbiter), throttle);
    let (stats, outcome) = sys.run_with_mode(400_000, mode);
    let boundaries = fired.borrow().clone();
    (
        serde_json::to_string(&stats).unwrap(),
        outcome == llamcat_sim::system::RunOutcome::Completed,
        boundaries,
    )
}

proptest! {
    // Invariants 2 and 3: identical stats bytes AND identical
    // throttle-boundary cycle sequences across step modes.
    #[test]
    fn random_programs_are_mode_equivalent(
        blocks in proptest::collection::vec((0u64..64, 0u8..4, 1u32..48), 1..16),
        period in 16u64..600,
        cores in 1usize..5,
    ) {
        let mut cfg = SystemConfig::table5();
        cfg.num_cores = cores;
        // Vary the clock-domain stress: refresh on for odd periods.
        cfg.dram.refresh = period % 2 == 1;
        let program = decode_program(&blocks, cores);
        let (stats_c, done_c, fired_c) =
            run_recorded(cfg, program.clone(), period, StepMode::Cycle);
        let (stats_s, done_s, fired_s) =
            run_recorded(cfg, program, period, StepMode::Skip);
        prop_assert_eq!(done_c, done_s, "outcome diverged");
        prop_assert_eq!(
            &fired_c, &fired_s,
            "throttle-period boundaries reordered by skipping"
        );
        prop_assert_eq!(stats_c, stats_s, "SimStats diverged");
    }

    // Invariant 1 for the DRAM channel: between `now` and the reported
    // bound, every tick must be a pure clock advance — no stat
    // changes, no queue movement, no returns.
    #[test]
    fn channel_bound_is_never_late(
        ops in proptest::collection::vec((0u64..96, any::<bool>()), 1..24),
        refresh in any::<bool>(),
    ) {
        let mut cfg = DramConfig::table5();
        cfg.refresh = refresh;
        let mapping = AddressMapping::new(&cfg, MappingScheme::RoBaRaCoCh);
        let mut ch = Channel::new(cfg, 0);
        for &(sel, is_write) in &ops {
            // Keep every address on channel 0.
            let addr = sel * cfg.channels as u64 * LINE_BYTES;
            let coord = mapping.decode(addr);
            if is_write {
                ch.enqueue_write(addr, coord);
            } else {
                ch.enqueue_read(addr, coord, 0);
            }
        }
        let mut out = Vec::new();
        for _ in 0..4_000 {
            let Some(event) = ch.next_event() else { break };
            prop_assert!(event > ch.now(), "bound not in the future");
            let quiet_ticks = event - 1 - ch.now();
            let before = (
                serde_json::to_string(&ch.stats).unwrap(),
                ch.read_q_len(),
                ch.write_q_len(),
            );
            for _ in 0..quiet_ticks {
                ch.tick(&mut out);
            }
            prop_assert!(out.is_empty(), "return popped inside a quiet window");
            let after = (
                serde_json::to_string(&ch.stats).unwrap(),
                ch.read_q_len(),
                ch.write_q_len(),
            );
            prop_assert_eq!(before, after, "channel changed inside a quiet window");
            // Execute the event tick itself (may or may not act).
            ch.tick(&mut out);
            out.clear();
            if ch.is_idle() && !refresh {
                break;
            }
        }
        if !refresh {
            prop_assert!(ch.is_idle(), "channel failed to drain");
        }
    }

    // Invariant 1 for the vector core: whenever `next_event` claims a
    // cycle is quiescent, ticking it must only bump exactly one of the
    // three accrual counters (idle / C_mem / active) and leave every
    // structural counter untouched.
    #[test]
    fn core_bound_is_never_late(
        blocks in proptest::collection::vec((0u64..48, 0u8..4, 1u32..48), 1..10),
        delay_salt in 1u64..97,
    ) {
        use llamcat_sim::core_model::VectorCore;

        let cfg = SystemConfig::table5();
        let program = decode_program(&blocks, 1);
        let total_blocks = program.num_blocks() as u64;
        let mut sched = TbScheduler::new(&program, 1, cfg.core.num_inst_windows);
        let flat = llamcat_sim::prog::FlatProgram::new(&program);
        let mut core = VectorCore::new(0, cfg.core, cfg.l1);
        let mut pool = llamcat_sim::pool::ReqPool::default();
        // (due cycle, response) — emulates the LLC/NoC round trip.
        let mut pending: Vec<(Cycle, MemResp)> = Vec::new();
        let mut completed = false;
        for now in 0..200_000u64 {
            let mut delivered = false;
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0 <= now {
                    let (_, resp) = pending.swap_remove(i);
                    core.on_resp(resp, now);
                    delivered = true;
                } else {
                    i += 1;
                }
            }
            let quiet = !delivered
                && core
                    .next_event(now, &sched)
                    .is_none_or(|bound| bound > now);
            let before = (
                core.stats.instrs_issued,
                core.stats.loads,
                core.stats.stores,
                core.stats.l1_lookups,
                core.stats.tbs_completed,
            );
            let accrual_before =
                core.stats.idle_cycles + core.stats.mem_stall_cycles + core.stats.active_cycles;
            core.tick(now, &flat, &mut sched, &mut pool);
            if quiet {
                let after = (
                    core.stats.instrs_issued,
                    core.stats.loads,
                    core.stats.stores,
                    core.stats.l1_lookups,
                    core.stats.tbs_completed,
                );
                prop_assert_eq!(before, after, "quiet tick changed structural state");
                prop_assert!(core.outbound.is_empty(), "quiet tick issued requests");
                let accrual_after = core.stats.idle_cycles
                    + core.stats.mem_stall_cycles
                    + core.stats.active_cycles;
                prop_assert_eq!(
                    accrual_after,
                    accrual_before + 1,
                    "quiet tick must accrue exactly one cycle"
                );
            }
            while let Some(h) = core.outbound.pop_front() {
                let req = *pool.get(h);
                pool.release(h);
                let due = now + 5 + (req.id.wrapping_mul(delay_salt)) % 60;
                pending.push((
                    due,
                    MemResp {
                        id: req.id,
                        core: req.core,
                        line_addr: req.line_addr,
                    },
                ));
            }
            if core.stats.tbs_completed == total_blocks && core.is_idle() {
                completed = true;
                break;
            }
        }
        prop_assert!(completed, "single-core harness failed to drain");
    }
}
