//! Criterion micro-benchmarks of the simulator substrate itself:
//! DRAM channel throughput, cache-model operations, MSHR operations and
//! small end-to-end system runs. These guard against performance
//! regressions in the hot tick loop (the figure benches depend on the
//! simulator staying fast).
//!
//! The `step_mode` target additionally reports the wall-clock speedup
//! of the idle-cycle-skipping engine (`StepMode::Skip`) over the
//! cycle-accurate reference on fig7-shaped decode workloads, across the
//! arithmetic-intensity spectrum (`compute_cycles_per_row`), asserting
//! byte-identical statistics along the way. In `--test` mode (as run by
//! CI) the comparison uses a small shape so the whole bench stays
//! fast while still exercising both engines end to end.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use llamcat::experiment::{Experiment, Model, Policy};
use llamcat::spec::MixSpec;
use llamcat::spec::PolicySpec;
use llamcat_sim::arb::{FifoArbiter, NoThrottle};
use llamcat_sim::cache::{InsertPolicy, SetAssocCache};
use llamcat_sim::config::{DramConfig, SystemConfig};
use llamcat_sim::dram::{AddressMapping, Channel, MappingScheme};
use llamcat_sim::mshr::{MshrFile, MshrTarget};
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::system::{StepMode, System};
use llamcat_sim::types::LINE_BYTES;
use llamcat_trace::workloads::WorkloadSpec;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/access_hit", |b| {
        let mut cache = SetAssocCache::new(4096, 8, 3);
        for line in 0..4096u64 {
            cache.insert(line * LINE_BYTES * 8, false, InsertPolicy::Mru);
        }
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 4096;
            std::hint::black_box(cache.access(line * LINE_BYTES * 8, false))
        });
    });
    c.bench_function("cache/insert_evict", |b| {
        let mut cache = SetAssocCache::new(128, 8, 0);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            std::hint::black_box(cache.insert(line * LINE_BYTES, false, InsertPolicy::Mru))
        });
    });
}

fn bench_mshr(c: &mut Criterion) {
    c.bench_function("mshr/register_complete", |b| {
        let mut mshr = MshrFile::new(6, 8);
        let t = MshrTarget {
            req_id: 0,
            core: 0,
            is_write: false,
        };
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            mshr.register(addr, t);
            std::hint::black_box(mshr.complete(addr).map(|targets| targets.len()))
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/streaming_channel", |b| {
        let mut cfg = DramConfig::table5();
        cfg.refresh = false;
        let mapping = AddressMapping::new(&cfg, MappingScheme::RoBaRaCoCh);
        b.iter_batched(
            || Channel::new(cfg, 0),
            |mut ch| {
                let mut out = Vec::new();
                let mut sent = 0u64;
                while out.len() < 32 {
                    if sent < 32 {
                        let a = sent * 4 * LINE_BYTES;
                        if ch.enqueue_read(a, mapping.decode(a), 0) {
                            sent += 1;
                        }
                    }
                    ch.tick(&mut out);
                }
                out.len()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_system(c: &mut Criterion) {
    c.bench_function("system/small_run", |b| {
        let mut cfg = SystemConfig::table5();
        cfg.num_cores = 4;
        cfg.dram.refresh = false;
        let blocks: Vec<ThreadBlock> = (0..16)
            .map(|i| ThreadBlock {
                instrs: vec![
                    Instr::Load {
                        addr: i * 4096,
                        bytes: 128,
                    },
                    Instr::Load {
                        addr: i * 4096 + 128,
                        bytes: 128,
                    },
                    Instr::Barrier,
                ],
            })
            .collect();
        let program = Program::round_robin(blocks, cfg.num_cores);
        b.iter_batched(
            || {
                System::new(
                    cfg,
                    program.clone(),
                    &|_| Box::new(FifoArbiter),
                    Box::new(NoThrottle),
                )
            },
            |mut sys| {
                let (stats, _) = sys.run(100_000);
                stats.cycles
            },
            BatchSize::SmallInput,
        );
    });
}

/// One cycle-vs-skip comparison on a fig7-shaped decode cell. Returns
/// (cycle seconds, skip seconds, simulated cycles, executed event
/// cycles) after asserting byte-identical `SimStats`.
fn compare_modes(seq_len: usize, policy: Policy, compute_per_row: u32) -> (f64, f64, u64, u64) {
    let mut e = Experiment::new(Model::Llama3_70b, seq_len).policy(policy);
    e.tracegen.compute_cycles_per_row = compute_per_row;
    let program = e.build_program();
    let mk = |p: Program| {
        let arb = e.policy.arb.clone();
        System::new(
            e.config,
            p,
            &move |_| arb.build(),
            e.policy.build_throttle(),
        )
    };
    let t0 = Instant::now();
    let (stats_cycle, out_cycle) = mk(program.clone()).run_with_mode(u64::MAX, StepMode::Cycle);
    let t_cycle = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut sys = mk(program);
    let (stats_skip, out_skip) = sys.run_with_mode(u64::MAX, StepMode::Skip);
    let t_skip = t0.elapsed().as_secs_f64();
    assert_eq!(out_cycle, out_skip, "RunOutcome diverged between modes");
    assert_eq!(
        serde_json::to_string(&stats_cycle).unwrap(),
        serde_json::to_string(&stats_skip).unwrap(),
        "SimStats diverged between step modes (seq {seq_len}, cpr {compute_per_row})"
    );
    let (executed, _) = sys.step_counts();
    (t_cycle, t_skip, stats_cycle.cycles, executed)
}

/// Wall-clock speedup of `StepMode::Skip` over `StepMode::Cycle` on
/// fig7-shaped decode, across the arithmetic-intensity spectrum.
///
/// The report is deliberately honest about both ends: the paper-default
/// memory-bound trace (1 compute cycle per K row) keeps some component
/// busy nearly every cycle, so an observationally-equivalent engine has
/// almost nothing to skip (~1x); as per-row vector work grows (fused
/// dequant/softmax-style kernels), whole-machine idle windows open up
/// and the event engine's cost scales with *events* instead of cycles
/// (>=5x from a few hundred compute cycles per row; asymptotically the
/// skip-mode time goes flat while cycle-mode time keeps growing).
fn bench_step_mode(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (seq_len, spectrum): (usize, &[u32]) = if test_mode {
        (256, &[1, 64])
    } else {
        (2048, &[1, 16, 64, 128, 256, 512])
    };
    println!("\n### step_mode: Skip vs Cycle on fig7-shaped decode (llama3 70b @ {seq_len})");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "cpr", "sim-cycles", "exec-frac", "cycle-s", "skip-s", "speedup"
    );
    for &cpr in spectrum {
        let (t_cycle, t_skip, cycles, executed) =
            compare_modes(seq_len, Policy::unoptimized(), cpr);
        println!(
            "{:>8} {:>12} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x",
            cpr,
            cycles,
            executed as f64 / cycles as f64,
            t_cycle,
            t_skip,
            t_cycle / t_skip
        );
    }
    // The full policy stack must stay byte-identical under skip too.
    let (t_cycle, t_skip, ..) = compare_modes(seq_len, Policy::dynmg_bma(), 1);
    println!("  dynmg+BMA (cpr 1): cycle {t_cycle:.3}s skip {t_skip:.3}s");
}

/// One measured batched-vs-per-cell comparison row.
struct BatchRow {
    regime: &'static str,
    mode: StepMode,
    budget: Option<u64>,
    per_cell_s: f64,
    batch_s: f64,
}

impl BatchRow {
    fn speedup(&self) -> f64 {
        self.per_cell_s / self.batch_s
    }
}

/// The 20-cell fig7 policy matrix (5 arbiters x 4 throttles) at
/// `seq_len`, optionally budget-bounded (the triage regime: many cells
/// probed shallowly, as a sweep-pruning campaign would).
fn matrix_cells(seq_len: usize, mode: StepMode, budget: Option<u64>) -> Vec<Experiment> {
    let mut cells = Vec::with_capacity(20);
    for arb in ["fifo", "B", "MA", "BMA", "cobrra"] {
        for thr in ["none", "dyncta", "lcs", "dynmg"] {
            let spec = PolicySpec::from_name(&format!("{thr}+{arb}")).expect("matrix name");
            let mut e = Experiment::new(Model::Llama3_70b, seq_len)
                .policy(spec)
                .step_mode(mode);
            e.max_cycles = budget;
            cells.push(e);
        }
    }
    cells
}

/// Measures the 20-cell matrix per-cell (the rayon campaign baseline)
/// and batched in lockstep over one shared scenario, best of `reps`,
/// asserting the two paths produce byte-identical reports every rep.
fn measure_batch_matrix(
    regime: &'static str,
    seq_len: usize,
    mode: StepMode,
    budget: Option<u64>,
    reps: usize,
) -> BatchRow {
    let cells = matrix_cells(seq_len, mode, budget);
    let mut per_cell_s = f64::MAX;
    let mut per_cell_json: Vec<String> = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let reports = llamcat_bench::run_experiments(&cells).expect("matrix runs");
        per_cell_s = per_cell_s.min(t0.elapsed().as_secs_f64());
        per_cell_json = reports
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
    }
    let mut batch_s = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let snap = cells[0].snapshot_scenario().expect("scenario builds");
        let reports = Experiment::run_forked_batch(&cells, &snap);
        batch_s = batch_s.min(t0.elapsed().as_secs_f64());
        let batch_json: Vec<String> = reports
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        assert_eq!(
            batch_json, per_cell_json,
            "batched {regime} matrix diverged from per-cell runs ({mode:?})"
        );
    }
    BatchRow {
        regime,
        mode,
        budget,
        per_cell_s,
        batch_s,
    }
}

/// Batched lockstep execution of the 20-cell fig7 policy matrix vs the
/// per-cell rayon baseline (`run_experiments`), in two regimes:
/// full-depth cells (scenario build amortization plus shared-trace
/// cache reuse) and budget-bounded triage cells (shallow probes, where
/// the shared scenario build dominates each cell's runtime). Byte
/// identity between the two paths is asserted on every measured rep —
/// the `--test` smoke run is CI's check that the batched matrix
/// reproduces the golden 20-cell table exactly.
fn bench_batch_matrix(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (seq_len, reps) = if test_mode { (256, 1) } else { (2048, 3) };

    let mut rows = Vec::new();
    for mode in [StepMode::Cycle, StepMode::Skip] {
        rows.push(measure_batch_matrix("full", seq_len, mode, None, reps));
        rows.push(measure_batch_matrix(
            "triage",
            seq_len,
            mode,
            Some(5_000),
            reps,
        ));
    }

    println!("\n### batch_matrix: 20-cell fig7 policy grid, lockstep vs per-cell (seq {seq_len}, best of {reps})");
    println!(
        "{:>8} {:>7} {:>8} {:>11} {:>9} {:>9}",
        "regime", "mode", "budget", "per-cell-s", "batch-s", "speedup"
    );
    for row in &rows {
        println!(
            "{:>8} {:>7} {:>8} {:>11.3} {:>9.3} {:>8.2}x",
            row.regime,
            format!("{:?}", row.mode),
            row.budget
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
            row.per_cell_s,
            row.batch_s,
            row.speedup()
        );
    }

    if let Ok(path) = std::env::var("LLAMCAT_SIM_SPEED_BATCH_JSON") {
        let mut json = String::from("{\n  \"schema\": \"llamcat-sim-speed-batch/1\",\n");
        json.push_str(&llamcat_bench::bench_meta_json_fields());
        json.push_str(&format!("  \"seq_len\": {seq_len},\n  \"rows\": [\n"));
        for (i, row) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"regime\": \"{}\", \"mode\": \"{:?}\", \"budget\": {}, \
                 \"per_cell_s\": {:.4}, \"batch_s\": {:.4}, \"speedup\": {:.3}}}{}\n",
                row.regime,
                row.mode,
                row.budget
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "null".into()),
                row.per_cell_s,
                row.batch_s,
                row.speedup(),
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write batch matrix JSON report");
        println!("wrote {path}");
    }
}

/// One measured throughput cell for the machine-readable report.
struct SpeedCell {
    workload: &'static str,
    mode: llamcat_sim::system::StepMode,
    cycles: u64,
    wall_s: f64,
}

impl SpeedCell {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s
    }
}

/// Runs one experiment in both step modes, best-of-`reps` wall time.
fn measure_cell(workload: &'static str, e: &Experiment, reps: usize, out: &mut Vec<SpeedCell>) {
    use llamcat_sim::system::StepMode;
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let exp = e.clone().step_mode(mode);
        let mut best = f64::MAX;
        let mut cycles = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = exp.run();
            best = best.min(t0.elapsed().as_secs_f64());
            cycles = r.cycles;
        }
        out.push(SpeedCell {
            workload,
            mode,
            cycles,
            wall_s: best,
        });
    }
}

/// End-to-end simulator throughput on the ISSUE-5 benchmark cells —
/// the fig7-shaped memory-bound decode trace, a prefill trace, and one
/// PR-4 serving mix — in both step modes. Prints a table and, when
/// `LLAMCAT_SIM_SPEED_JSON` names a path, writes the machine-readable
/// report that `BENCH_sim_speed.json` archives (the perf-trajectory
/// artifact future PRs compare against).
fn bench_sim_speed_cells(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (seq_len, reps) = if test_mode { (256, 1) } else { (2048, 3) };

    let mut cells = Vec::new();
    let decode = Experiment::new(Model::Llama3_70b, seq_len).policy(Policy::unoptimized());
    measure_cell("fig7-decode-70b", &decode, reps, &mut cells);
    let decode_bma = Experiment::new(Model::Llama3_70b, seq_len).policy(Policy::dynmg_bma());
    measure_cell("fig7-decode-70b-dynmg+BMA", &decode_bma, reps, &mut cells);
    let prefill = Experiment::from_spec(
        &WorkloadSpec::PrefillLogit {
            heads: 8,
            group_size: 8,
            head_dim: 128,
            query_tokens: 16,
        },
        seq_len,
    )
    .policy(Policy::unoptimized());
    measure_cell("prefill-logit", &prefill, reps, &mut cells);
    let mix = MixSpec::partitioned()
        .request(WorkloadSpec::llama3_70b(), seq_len, 0)
        .request(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 4,
            },
            seq_len / 2,
            0,
        );
    let mix_exp = Experiment::from_mix_spec(&mix)
        .expect("mix composes")
        .policy(Policy::dynmg_bma());
    measure_cell("mix-decode+prefill-dynmg+BMA", &mix_exp, reps, &mut cells);

    println!("\n### sim_speed cells (seq {seq_len}, best of {reps})");
    for cell in &cells {
        println!(
            "{:<30} {:?}: {:>10} cycles  {:>7.3}s  {:>12.0} cyc/s",
            cell.workload,
            cell.mode,
            cell.cycles,
            cell.wall_s,
            cell.cycles_per_sec()
        );
    }

    if let Ok(path) = std::env::var("LLAMCAT_SIM_SPEED_JSON") {
        let mut json = String::from("{\n  \"schema\": \"llamcat-sim-speed/1\",\n");
        json.push_str(&llamcat_bench::bench_meta_json_fields());
        json.push_str(&format!("  \"seq_len\": {seq_len},\n  \"cells\": [\n"));
        for (i, cell) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"workload\": \"{}\", \"mode\": \"{:?}\", \"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}}}{}\n",
                cell.workload,
                cell.mode,
                cell.cycles,
                cell.wall_s,
                cell.cycles_per_sec(),
                if i + 1 == cells.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write sim_speed JSON report");
        println!("wrote {path}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_mshr, bench_dram, bench_system, bench_step_mode, bench_sim_speed_cells, bench_batch_matrix
}
criterion_main!(benches);
