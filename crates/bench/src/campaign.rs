//! Declarative experiment campaigns: a serde-round-trippable grid of
//! workloads × sequence lengths × machine overrides × policies, executed
//! in parallel with the substrate's determinism guarantee.
//!
//! The paper's evaluation is a grid; the seed code re-implemented that
//! grid as ad-hoc loops in every bench target. A [`Campaign`] states it
//! once, as data:
//!
//! ```
//! use llamcat::spec::PolicySpec;
//! use llamcat_bench::campaign::Campaign;
//! use llamcat_trace::workloads::WorkloadSpec;
//!
//! let report = Campaign::new("demo")
//!     .workload(WorkloadSpec::llama3_70b())
//!     .seq_lens([128, 256])
//!     .policy(PolicySpec::dynmg_bma())
//!     .baseline(PolicySpec::unoptimized())
//!     .run()
//!     .unwrap();
//! assert_eq!(report.records.len(), 2);
//! let jsonl = report.jsonl();
//! assert_eq!(jsonl.lines().count(), 2);
//! ```
//!
//! Guarantees:
//!
//! * **Deterministic order** — [`Campaign::cells`] enumerates the cross
//!   product workload-major (workload → seq_len → l2_mb → policy), and
//!   [`Campaign::run`] returns records in exactly that order.
//! * **Parallel = sequential** — cells fan out over rayon; each
//!   simulation is single-threaded and deterministic, so the JSONL
//!   stream is byte-identical across runs
//!   (`crates/bench/tests/campaign.rs` pins this).
//! * **Round-trippable** — a campaign serializes to JSON and back
//!   losslessly, including every embedded policy configuration, so a
//!   sweep definition can live in a file, a commit message or a wire
//!   protocol.
//! * **Resumable** — [`Campaign::run_resumable`] content-addresses every
//!   cell with [`cell_spec_hash`], skips cells already present in a
//!   JSONL archive, appends the rest crash-safely, and merges into the
//!   deterministic cell order; `--shard i/n` splits ride on the same
//!   archive with byte-identical merged output.
//! * **Warm-up-and-fork** — with [`Campaign::fork_scenarios`], cells
//!   sharing a scenario build their system once and fork per policy
//!   cell, byte-identical to the straight-line path.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::Path;

use llamcat::experiment::{Experiment, RunReport, ScenarioSnapshot};
use llamcat::spec::{KvSpec, MixSpec, PolicySpec, ServeSpec};
use llamcat_sim::config::SystemConfig;
use llamcat_sim::system::StepMode;
use llamcat_trace::mapping::Layout;
use llamcat_trace::workloads::WorkloadSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::geomean;

/// A declarative sweep: the full cross product of its axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Campaign name (carried into the result header).
    pub name: String,
    /// Workload families (sequence length crossed separately).
    pub workloads: Vec<WorkloadSpec>,
    /// Sequence lengths, one per workload instantiation.
    pub seq_lens: Vec<usize>,
    /// Multi-tenant serving mixes: extra scenarios appended after the
    /// solo workload × seq_len grid (each mix carries its own per-
    /// request sequence lengths, so it crosses only with `l2_mb` and
    /// `policies`). Mix records additionally carry per-request fairness
    /// metrics — slowdown vs a solo run of each request under the same
    /// policy and machine.
    #[serde(default)]
    pub mixes: Vec<MixSpec>,
    /// Open-system serve scenarios: appended after the mixes (each
    /// carries its own arrival schedule and serving policy, crossing
    /// only with `l2_mb` and `policies`). Serve records report
    /// per-request admission/TTFT/TBT latencies instead of fairness.
    #[serde(default)]
    pub serves: Vec<ServeSpec>,
    /// L2 capacities in MB (`SystemConfig` override axis).
    pub l2_mb: Vec<u64>,
    /// KV-tier configurations, crossed with every scenario as the
    /// innermost scenario axis (just outside the policy). Empty (the
    /// serde default, so older campaign files keep parsing) runs
    /// without a KV tier — all KV lines DRAM-resident, the pre-tier
    /// behavior.
    #[serde(default)]
    pub kvs: Vec<KvSpec>,
    /// Policies, with their configurations embedded.
    pub policies: Vec<PolicySpec>,
    /// Optional baseline: when set, every record carries its speedup
    /// over the baseline on the same scenario.
    pub baseline: Option<PolicySpec>,
    /// Dataflow layout for every cell.
    pub layout: Layout,
    /// L-dimension tile per thread block.
    pub l_tile: usize,
    /// Hard cycle budget; `None` derives one per cell.
    pub max_cycles: Option<u64>,
    /// Simulation step mode for every cell. `Skip` fast-forwards idle
    /// cycles with byte-identical statistics; `Cycle` (the serde
    /// default, so older campaign files keep parsing) is the
    /// cycle-accurate reference.
    #[serde(default)]
    pub step_mode: StepMode,
    /// Warm-up-and-fork fast path: cells sharing a scenario (everything
    /// but the policy) build their system — trace generation, program
    /// mapping, preallocation, injector and KV tier — once, snapshot it
    /// pre-tick, and fork one copy per policy cell. Byte-identical to
    /// the straight-line path (`crates/bench/tests/campaign.rs` pins
    /// this over the golden policy matrix in both step modes). Off by
    /// default (also the serde default, so archived campaign files keep
    /// parsing).
    #[serde(default)]
    pub fork_scenarios: bool,
    /// Batched lockstep execution: cells sharing a scenario fork one
    /// pre-tick snapshot (exactly as [`Campaign::fork_scenarios`] does)
    /// and then advance *together* through a
    /// [`llamcat_sim::batch::SystemBatch`], so the scenario's
    /// `Arc`-shared immutable state is streamed through the cache once
    /// per lockstep window instead of once per cell. Subsumes
    /// `fork_scenarios` (the warm-up-and-fork prefix is the same);
    /// records land in the same deterministic order with the same
    /// [`cell_spec_hash`] addresses, byte-identical to both other
    /// paths (`crates/bench/tests/campaign.rs` pins this). Off by
    /// default (also the serde default, so archived campaign files
    /// keep parsing).
    #[serde(default)]
    pub batch_cells: bool,
}

/// One point of the grid, fully self-describing (what to run).
///
/// Mix cells carry the full [`MixSpec`] in `mix`; their `workload` /
/// `seq_len` fields hold the first request's family and the mix's
/// largest sequence length as representatives (labels and axes come
/// from the spec itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCell {
    pub workload: WorkloadSpec,
    pub seq_len: usize,
    pub l2_mb: u64,
    pub policy: PolicySpec,
    /// The serving mix this cell runs, if it is a mix scenario.
    #[serde(default)]
    pub mix: Option<MixSpec>,
    /// The open-system serve scenario this cell runs, if any.
    #[serde(default)]
    pub serve: Option<ServeSpec>,
    /// The tiered-KV configuration attached to this cell's machine, if
    /// any (`None` = DRAM-resident KV).
    #[serde(default)]
    pub kv: Option<KvSpec>,
}

impl CampaignCell {
    /// The experiment this cell describes.
    ///
    /// Panics on a degenerate mix spec; [`Campaign::validate`] (run by
    /// [`Campaign::run`] before any cell executes) rejects those
    /// gracefully.
    pub fn experiment(&self, campaign: &Campaign) -> Experiment {
        let mut e = if let Some(spec) = &self.serve {
            Experiment::from_serve_spec(spec).expect("validated serve spec")
        } else {
            match &self.mix {
                Some(mix) => Experiment::with_mix(mix.instantiate()),
                None => Experiment::from_spec(&self.workload, self.seq_len),
            }
        };
        e = e
            .policy(self.policy.clone())
            .l2_mb(self.l2_mb)
            .layout(campaign.layout)
            .step_mode(campaign.step_mode);
        if let Some(kv) = self.kv {
            e = e.kv(kv);
        }
        e.l_tile = campaign.l_tile;
        e.max_cycles = campaign.max_cycles;
        e
    }
}

/// One request's fairness numbers inside a mix cell: its co-scheduled
/// completion time against a solo run of the same request under the
/// same policy and machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFairness {
    pub request: u32,
    pub label: String,
    /// Cycles the request takes running alone on the whole machine.
    pub solo_cycles: u64,
    /// Cycles from arrival to completion inside the mix.
    pub mix_cycles: u64,
    /// `solo / mix` — ≤ 1 when co-scheduling slows the request down.
    pub speedup: f64,
    /// `mix / solo` — the request's slowdown from interference.
    pub slowdown: f64,
}

/// Fairness summary of one mix cell (the min/max/geomean statistics the
/// multi-tenant scheduling literature reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessRecord {
    pub per_request: Vec<RequestFairness>,
    pub min_speedup: f64,
    pub max_speedup: f64,
    pub geomean_speedup: f64,
    /// The worst per-request slowdown (the fairness headline).
    pub max_slowdown: f64,
}

/// One executed cell: the cell, the step mode it ran under, its report,
/// and (when the campaign has a baseline) its speedup over the baseline
/// on the same scenario; mix cells additionally carry per-request
/// fairness. These are the JSONL stream's records, each line fully
/// self-describing for archived sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRecord {
    pub cell: CampaignCell,
    /// Content address of this record's configuration: a stable hash
    /// over the serialized `(machine, cell)` spec (see
    /// [`cell_spec_hash`]). Lets archived JSONL streams be joined,
    /// deduplicated and resumed across campaigns without comparing
    /// nested specs. Serde default `0` keeps pre-hash archives parsing
    /// and never matches a computed address.
    #[serde(default)]
    pub spec_hash: u64,
    /// Step mode the cell ran under (serde default `Cycle`, so JSONL
    /// archived before this field existed still parses).
    #[serde(default)]
    pub step_mode: StepMode,
    pub report: RunReport,
    pub speedup: Option<f64>,
    /// Per-request fairness vs solo runs (mix cells only).
    #[serde(default)]
    pub fairness: Option<FairnessRecord>,
    /// Why fairness entries were dropped from this mix cell, when any
    /// were (e.g. a solo reference hit the cycle budget). `fairness` is
    /// `None` with this set when every entry dropped — never a record
    /// of NaN/0.0 folds over an empty set.
    #[serde(default)]
    pub fairness_drop_reason: Option<String>,
}

/// A finished campaign: records in deterministic cell order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    pub campaign: Campaign,
    pub records: Vec<CellRecord>,
    /// Diagnostics collected during the run — dropped fairness
    /// entries, skipped archive lines, pending shards. Library code
    /// never prints; callers decide what (if anything) to surface.
    /// Not part of the JSONL stream; serde default keeps archived
    /// reports parsing.
    #[serde(default)]
    pub warnings: Vec<String>,
}

impl Campaign {
    /// An empty campaign on the Table 5 machine (16 MB L2, pair-stream
    /// layout, 32-token L tiles). Populate the axes with the builder
    /// methods.
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            workloads: Vec::new(),
            seq_lens: Vec::new(),
            mixes: Vec::new(),
            serves: Vec::new(),
            l2_mb: vec![16],
            kvs: Vec::new(),
            policies: Vec::new(),
            baseline: None,
            layout: Layout::default(),
            l_tile: 32,
            max_cycles: None,
            step_mode: StepMode::default(),
            fork_scenarios: false,
            batch_cells: false,
        }
    }

    pub fn workload(mut self, w: WorkloadSpec) -> Self {
        self.workloads.push(w);
        self
    }

    pub fn workloads(mut self, ws: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(ws);
        self
    }

    pub fn seq_lens(mut self, seqs: impl IntoIterator<Item = usize>) -> Self {
        self.seq_lens.extend(seqs);
        self
    }

    /// Adds a multi-tenant serving mix scenario (crossed with `l2_mb`
    /// and `policies`; the mix carries its own sequence lengths).
    pub fn mix(mut self, m: MixSpec) -> Self {
        self.mixes.push(m);
        self
    }

    pub fn mixes(mut self, ms: impl IntoIterator<Item = MixSpec>) -> Self {
        self.mixes.extend(ms);
        self
    }

    /// Adds an open-system serve scenario (crossed with `l2_mb` and
    /// `policies`; the scenario carries its own arrival schedule and
    /// serving policy).
    pub fn serve(mut self, s: ServeSpec) -> Self {
        self.serves.push(s);
        self
    }

    pub fn serves(mut self, ss: impl IntoIterator<Item = ServeSpec>) -> Self {
        self.serves.extend(ss);
        self
    }

    /// Replaces the L2-capacity axis (default: just 16 MB).
    pub fn l2_sizes_mb(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.l2_mb = sizes.into_iter().collect();
        self
    }

    /// Adds a tiered-KV configuration to the KV axis (crossed with
    /// every scenario; an empty axis runs without a KV tier).
    pub fn kv(mut self, kv: KvSpec) -> Self {
        self.kvs.push(kv);
        self
    }

    pub fn kvs(mut self, ks: impl IntoIterator<Item = KvSpec>) -> Self {
        self.kvs.extend(ks);
        self
    }

    pub fn policy(mut self, p: impl Into<PolicySpec>) -> Self {
        self.policies.push(p.into());
        self
    }

    pub fn policies(mut self, ps: impl IntoIterator<Item = PolicySpec>) -> Self {
        self.policies.extend(ps);
        self
    }

    /// Resolves a registry name (`"dynmg+BMA"`, `"dyncta+B"`, …) into
    /// the policy axis; unknown names error.
    pub fn policy_named(self, name: &str) -> Result<Self, String> {
        let spec =
            PolicySpec::from_name(name).ok_or_else(|| format!("unknown policy name `{name}`"))?;
        Ok(self.policy(spec))
    }

    pub fn baseline(mut self, p: impl Into<PolicySpec>) -> Self {
        self.baseline = Some(p.into());
        self
    }

    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Selects the simulation step mode for every cell (default:
    /// cycle-accurate).
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Opts into the warm-up-and-fork fast path (see the
    /// [`Campaign::fork_scenarios`] field).
    pub fn fork_scenarios(mut self, on: bool) -> Self {
        self.fork_scenarios = on;
        self
    }

    /// Opts into batched lockstep execution (see the
    /// [`Campaign::batch_cells`] field).
    pub fn batch_cells(mut self, on: bool) -> Self {
        self.batch_cells = on;
        self
    }

    /// The machine half of the `(machine, cell)` spec that
    /// [`cell_spec_hash`] content-addresses: the campaign-level knobs
    /// that change what a cell simulates but live outside
    /// [`CampaignCell`].
    pub fn machine_spec(&self) -> MachineSpec {
        MachineSpec {
            layout: self.layout,
            l_tile: self.l_tile,
            max_cycles: self.max_cycles,
        }
    }

    /// The solo scenario axes (everything but the policy), in
    /// enumeration order: workload-major, then seq_len, then l2_mb.
    /// Mix scenarios follow these in [`Campaign::cells`] order.
    pub fn scenarios(&self) -> Vec<(WorkloadSpec, usize, u64)> {
        let mut out = Vec::with_capacity(self.workloads.len() * self.seq_lens.len());
        for w in &self.workloads {
            for &seq in &self.seq_lens {
                for &mb in &self.l2_mb {
                    out.push((*w, seq, mb));
                }
            }
        }
        out
    }

    /// Every scenario in enumeration order — the solo grid first, then
    /// each mix crossed with `l2_mb` — expressed as policy-free cells
    /// (the `policy` field holds a placeholder; [`Campaign::cells`]
    /// substitutes each swept policy).
    fn all_scenarios(&self) -> Vec<CampaignCell> {
        let placeholder = PolicySpec::unoptimized();
        let mut base: Vec<CampaignCell> = self
            .scenarios()
            .into_iter()
            .map(|(workload, seq_len, l2_mb)| CampaignCell {
                workload,
                seq_len,
                l2_mb,
                policy: placeholder.clone(),
                mix: None,
                serve: None,
                kv: None,
            })
            .collect();
        for m in &self.mixes {
            for &mb in &self.l2_mb {
                base.push(CampaignCell {
                    workload: m.requests.first().map(|r| r.workload).unwrap_or(
                        // Degenerate (empty) mixes are rejected by
                        // `validate`; keep enumeration total anyway.
                        WorkloadSpec::llama3_70b(),
                    ),
                    seq_len: m.requests.iter().map(|r| r.seq_len).max().unwrap_or(0),
                    l2_mb: mb,
                    policy: placeholder.clone(),
                    mix: Some(m.clone()),
                    serve: None,
                    kv: None,
                });
            }
        }
        for s in &self.serves {
            for &mb in &self.l2_mb {
                base.push(CampaignCell {
                    workload: s.workload,
                    seq_len: s.seq_len,
                    l2_mb: mb,
                    policy: placeholder.clone(),
                    mix: None,
                    serve: Some(s.clone()),
                    kv: None,
                });
            }
        }
        // Cross the KV axis innermost: every scenario repeats once per
        // KV configuration, in `kvs` order. An empty axis is the single
        // no-tier option, leaving pre-KV campaigns byte-identical.
        if self.kvs.is_empty() {
            return base;
        }
        let mut out = Vec::with_capacity(base.len() * self.kvs.len());
        for cell in base {
            for &kv in &self.kvs {
                out.push(CampaignCell {
                    kv: Some(kv),
                    ..cell.clone()
                });
            }
        }
        out
    }

    /// Human-readable scenario labels (columns of a speedup table).
    /// Derived from the same enumeration as [`Campaign::cells`], so
    /// label order always matches record order.
    pub fn scenario_labels(&self) -> Vec<String> {
        let multi_w = self.workloads.len() > 1;
        let multi_l2 = self.l2_mb.len() > 1;
        let multi_kv = self.kvs.len() > 1;
        self.all_scenarios()
            .iter()
            .map(|cell| {
                let kv_suffix = match (&cell.kv, multi_kv) {
                    (Some(kv), true) => format!(" {}", kv.label()),
                    _ => String::new(),
                };
                if let Some(s) = &cell.serve {
                    let mut label = s.label();
                    if multi_l2 {
                        label.push_str(&format!(" {}MB", cell.l2_mb));
                    }
                    label.push_str(&kv_suffix);
                    return label;
                }
                if let Some(m) = &cell.mix {
                    let mut label = m.label();
                    if multi_l2 {
                        label.push_str(&format!(" {}MB", cell.l2_mb));
                    }
                    label.push_str(&kv_suffix);
                    return label;
                }
                let mut parts = Vec::new();
                if multi_w {
                    parts.push(cell.workload.label());
                }
                parts.push(if cell.seq_len % 1024 == 0 {
                    format!("{}K", cell.seq_len / 1024)
                } else {
                    format!("{}", cell.seq_len)
                });
                if multi_l2 {
                    parts.push(format!("{}MB", cell.l2_mb));
                }
                if let Some(kv) = &cell.kv {
                    if multi_kv {
                        parts.push(kv.label());
                    }
                }
                parts.join(" ")
            })
            .collect()
    }

    /// The full cell list in deterministic order (scenarios × policies,
    /// policy innermost; solo scenarios before mixes).
    pub fn cells(&self) -> Vec<CampaignCell> {
        let scenarios = self.all_scenarios();
        let mut out = Vec::with_capacity(scenarios.len() * self.policies.len());
        for scenario in scenarios {
            for p in &self.policies {
                let mut cell = scenario.clone();
                cell.policy = p.clone();
                out.push(cell);
            }
        }
        out
    }

    /// Rejects empty axes, invalid workloads and degenerate mixes
    /// before any simulation starts.
    pub fn validate(&self) -> Result<(), String> {
        if self.workloads.is_empty() && self.mixes.is_empty() && self.serves.is_empty() {
            return Err("campaign has no workloads, mixes or serve scenarios".into());
        }
        if !self.workloads.is_empty() && self.seq_lens.is_empty() {
            return Err("campaign has no sequence lengths".into());
        }
        if self.l2_mb.is_empty() {
            return Err("campaign has no L2 sizes".into());
        }
        if self.policies.is_empty() {
            return Err("campaign has no policies".into());
        }
        for w in &self.workloads {
            w.validate()
                .map_err(|e| format!("workload {}: {e}", w.label()))?;
        }
        for &seq in &self.seq_lens {
            if self.l_tile == 0 || seq % self.l_tile != 0 {
                return Err(format!(
                    "l_tile {} must divide every sequence length (got {seq})",
                    self.l_tile
                ));
            }
        }
        for (i, m) in self.mixes.iter().enumerate() {
            m.validate().map_err(|e| format!("mix {i}: {e}"))?;
            for r in &m.requests {
                if self.l_tile == 0 || r.seq_len % self.l_tile != 0 {
                    return Err(format!(
                        "mix {i}: l_tile {} must divide every request seq_len (got {})",
                        self.l_tile, r.seq_len
                    ));
                }
            }
        }
        for (i, kv) in self.kvs.iter().enumerate() {
            kv.validate().map_err(|e| format!("kv config {i}: {e}"))?;
        }
        let num_cores = SystemConfig::table5().num_cores;
        for (i, s) in self.serves.iter().enumerate() {
            s.validate(num_cores)
                .map_err(|e| format!("serve scenario {i}: {e}"))?;
            if self.l_tile == 0 || s.seq_len % self.l_tile != 0 {
                return Err(format!(
                    "serve scenario {i}: l_tile {} must divide seq_len {}",
                    self.l_tile, s.seq_len
                ));
            }
        }
        Ok(())
    }

    /// Runs the whole grid in parallel and assembles the report.
    ///
    /// The policy cells, (if not already a policy) the baseline cells,
    /// and the solo fairness-reference runs of every mix cell's
    /// requests run in one rayon batch; records come back in
    /// [`Campaign::cells`] order with baseline-relative speedups and
    /// (for mix cells) per-request fairness attached.
    pub fn run(&self) -> Result<CampaignReport, String> {
        self.validate()?;
        let cells = self.cells();
        let todo: Vec<usize> = (0..cells.len()).collect();
        let (records, warnings) = self.execute_cells(&cells, &todo, &HashMap::new())?;
        Ok(CampaignReport {
            campaign: self.clone(),
            records,
            warnings,
        })
    }

    /// [`Campaign::run`] with a JSONL archive: cells whose
    /// [`cell_spec_hash`] already appears in `archive` are skipped and
    /// their archived records reused; the rest run and are appended to
    /// the archive (whole lines, flushed as written, so a killed run
    /// loses at most the line being written). Records merge back in
    /// [`Campaign::cells`] order, so a resumed campaign's JSONL is
    /// byte-identical to an uninterrupted run's.
    pub fn run_resumable(&self, archive: impl AsRef<Path>) -> Result<CampaignReport, String> {
        self.run_resumable_shard(archive, 0, 1)
    }

    /// [`Campaign::run_resumable`] over the `shard`-th of `shards`
    /// index-interleaved slices of the grid: this invocation runs only
    /// cells with `index % shards == shard` (that are not already
    /// archived). Shards may run sequentially against one archive or
    /// independently against per-shard archives (concatenate them
    /// before the final merge run); either way, once every shard has
    /// run, the merged report is byte-identical to an unsharded run.
    /// Cells still pending in other shards are reported in
    /// [`CampaignReport::warnings`] and omitted from the records.
    pub fn run_resumable_shard(
        &self,
        archive: impl AsRef<Path>,
        shard: usize,
        shards: usize,
    ) -> Result<CampaignReport, String> {
        if shards == 0 {
            return Err("shard count must be at least 1".into());
        }
        if shard >= shards {
            return Err(format!(
                "shard index {shard} out of range for {shards} shard(s)"
            ));
        }
        self.validate()?;
        let path = archive.as_ref();
        let machine = self.machine_spec();
        let cells = self.cells();
        let hashes: Vec<u64> = cells.iter().map(|c| cell_spec_hash(&machine, c)).collect();

        // Load the archive. Tolerate damage instead of failing the run:
        // a truncated final line is exactly what a killed run leaves
        // behind, and pre-schema records (spec_hash 0) can never be
        // trusted to describe this machine.
        let mut warnings = Vec::new();
        let mut cached: HashMap<u64, CellRecord> = HashMap::new();
        let mut torn_tail = false;
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read archive {}: {e}", path.display()))?;
            // A kill mid-write leaves a final line without a newline;
            // appending must not concatenate onto it.
            torn_tail = !text.is_empty() && !text.ends_with('\n');
            for (n, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<CellRecord>(line) {
                    Ok(rec) if rec.spec_hash != 0 => {
                        cached.insert(rec.spec_hash, rec);
                    }
                    Ok(_) => warnings.push(format!(
                        "archive line {}: pre-schema record without a spec_hash ignored",
                        n + 1
                    )),
                    Err(e) => warnings.push(format!(
                        "archive line {}: unparsable (truncated write?), re-running: {e}",
                        n + 1
                    )),
                }
            }
        }

        // Cycles of archived cells feed baseline speedups of cells that
        // still have to run, so the baseline is not re-simulated just
        // because its grid cell is already archived.
        let known_cycles: HashMap<usize, u64> = (0..cells.len())
            .filter_map(|i| cached.get(&hashes[i]).map(|r| (i, r.report.cycles)))
            .collect();
        let todo: Vec<usize> = (0..cells.len())
            .filter(|&i| i % shards == shard && !cached.contains_key(&hashes[i]))
            .collect();
        if path.exists() {
            warnings.push(format!(
                "resume: {} of {} cell(s) already archived, running {}",
                known_cycles.len(),
                cells.len(),
                todo.len()
            ));
        }

        let (new_records, mut exec_warnings) = self.execute_cells(&cells, &todo, &known_cycles)?;
        warnings.append(&mut exec_warnings);

        // Crash-safe append: whole lines, flushed one at a time, so a
        // kill mid-campaign preserves every completed cell.
        if !new_records.is_empty() {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("open archive {}: {e}", path.display()))?;
            if torn_tail {
                f.write_all(b"\n")
                    .map_err(|e| format!("append to archive {}: {e}", path.display()))?;
            }
            for rec in &new_records {
                let line = serde_json::to_string(rec).expect("record serializes");
                f.write_all(line.as_bytes())
                    .and_then(|()| f.write_all(b"\n"))
                    .and_then(|()| f.flush())
                    .map_err(|e| format!("append to archive {}: {e}", path.display()))?;
            }
        }

        // Merge archived + fresh records into deterministic cell order.
        let mut by_hash = cached;
        for rec in new_records {
            by_hash.insert(rec.spec_hash, rec);
        }
        let mut records = Vec::with_capacity(cells.len());
        let mut missing = 0usize;
        for h in &hashes {
            match by_hash.get(h) {
                Some(rec) => records.push(rec.clone()),
                None => missing += 1,
            }
        }
        if missing > 0 {
            warnings.push(format!(
                "{missing} cell(s) not yet archived (pending in other shards)"
            ));
        }
        Ok(CampaignReport {
            campaign: self.clone(),
            records,
            warnings,
        })
    }

    /// Executes the cells at indices `todo` (into `cells`, which must
    /// be the full [`Campaign::cells`] enumeration) and returns their
    /// records in `todo` order plus any diagnostics.
    ///
    /// Support runs ride along in one batch behind the todo cells:
    /// a baseline run for every scenario whose baseline report is
    /// neither in the batch nor in `known_cycles` (cell index →
    /// archived cycles), then the deduplicated solo fairness
    /// references of every mix cell.
    fn execute_cells(
        &self,
        cells: &[CampaignCell],
        todo: &[usize],
        known_cycles: &HashMap<usize, u64>,
    ) -> Result<(Vec<CellRecord>, Vec<String>), String> {
        let machine = self.machine_spec();
        let n_pol = self.policies.len();
        // The baseline reuses its own policy column when it is one of
        // the swept policies.
        let baseline_in_grid = self
            .baseline
            .as_ref()
            .and_then(|b| self.policies.iter().position(|p| p == b));

        let mut batch: Vec<CampaignCell> = todo.iter().map(|&i| cells[i].clone()).collect();
        let batch_pos: HashMap<usize, usize> =
            todo.iter().enumerate().map(|(pos, &i)| (i, pos)).collect();

        // Baseline runs for scenarios that need one.
        let mut baseline_extra: HashMap<usize, usize> = HashMap::new(); // scenario → batch idx
        if self.baseline.is_some() {
            for &i in todo {
                let s = i / n_pol;
                if let Some(p) = baseline_in_grid {
                    let b_i = s * n_pol + p;
                    if batch_pos.contains_key(&b_i) || known_cycles.contains_key(&b_i) {
                        continue;
                    }
                }
                baseline_extra.entry(s).or_insert_with(|| {
                    let mut cell = cells[s * n_pol].clone();
                    cell.policy = self.baseline.clone().expect("baseline checked above");
                    batch.push(cell);
                    batch.len() - 1
                });
            }
        }

        // Fairness references: each mix cell compares every request
        // against a solo run of that request under the same policy and
        // machine. References are deduplicated across mixes and cells
        // by their serialized spec (hash-map lookup — the linear scan
        // this replaced was quadratic in the number of references).
        let mut solo_index: HashMap<String, usize> = HashMap::new(); // solo JSON → batch idx
        let mut fairness_refs: Vec<Option<Vec<usize>>> = Vec::with_capacity(todo.len());
        for &i in todo {
            let cell = &cells[i];
            fairness_refs.push(cell.mix.as_ref().map(|m| {
                m.requests
                    .iter()
                    .map(|r| {
                        let solo = CampaignCell {
                            workload: r.workload,
                            seq_len: r.seq_len,
                            l2_mb: cell.l2_mb,
                            policy: cell.policy.clone(),
                            mix: None,
                            serve: None,
                            // Fairness compares against a solo run on
                            // the *same* machine, KV tier included.
                            kv: cell.kv,
                        };
                        let key = serde_json::to_string(&solo).expect("cell serializes");
                        *solo_index.entry(key).or_insert_with(|| {
                            batch.push(solo);
                            batch.len() - 1
                        })
                    })
                    .collect()
            }));
        }

        let reports = if self.batch_cells {
            run_cells_batched(self, &batch)?
        } else if self.fork_scenarios {
            run_cells_forked(self, &batch)?
        } else {
            let experiments: Vec<Experiment> = batch.iter().map(|c| c.experiment(self)).collect();
            run_experiments(&experiments)?
        };

        // Speedups and fairness first (borrowing the whole batch of
        // reports — the references point behind the todo prefix), then
        // move each todo report into its record.
        let mut warnings = Vec::new();
        let mut speedups: Vec<Option<f64>> = Vec::with_capacity(todo.len());
        let mut fairness_out: Vec<(Option<FairnessRecord>, Option<String>)> =
            Vec::with_capacity(todo.len());
        for (pos, &i) in todo.iter().enumerate() {
            let report = &reports[pos];
            let speedup = match &self.baseline {
                Some(_) => {
                    let s = i / n_pol;
                    let b = match baseline_in_grid {
                        Some(p) => {
                            let b_i = s * n_pol + p;
                            batch_pos
                                .get(&b_i)
                                .map(|&bp| reports[bp].cycles)
                                .or_else(|| known_cycles.get(&b_i).copied())
                                .unwrap_or_else(|| reports[baseline_extra[&s]].cycles)
                        }
                        None => reports[baseline_extra[&s]].cycles,
                    };
                    if b == 0 || report.cycles == 0 {
                        return Err(format!(
                            "degenerate zero-cycle run in cell {} ({})",
                            i, report.policy_label
                        ));
                    }
                    Some(b as f64 / report.cycles as f64)
                }
                None => None,
            };
            speedups.push(speedup);
            fairness_out.push(match fairness_refs[pos].as_ref() {
                Some(refs) => {
                    let (f, reason) = fairness_of(report, refs, &reports);
                    if let Some(r) = &reason {
                        warnings.push(format!(
                            "campaign `{}`: fairness entries dropped in cell {i} ({}): {r}",
                            self.name, report.policy_label
                        ));
                    }
                    (f, reason)
                }
                None => (None, None),
            });
        }

        let mut records = Vec::with_capacity(todo.len());
        for (((&i, report), speedup), (fairness, fairness_drop_reason)) in todo
            .iter()
            .zip(reports) // moves the batch; the support tail is dropped
            .zip(speedups)
            .zip(fairness_out)
        {
            let cell = cells[i].clone();
            let spec_hash = cell_spec_hash(&machine, &cell);
            records.push(CellRecord {
                cell,
                spec_hash,
                step_mode: self.step_mode,
                report,
                speedup,
                fairness,
                fairness_drop_reason,
            });
        }
        Ok((records, warnings))
    }
}

/// The campaign-level machine configuration that joins the cell in its
/// content address: every knob outside [`CampaignCell`] that changes
/// what the cell simulates. The base machine dimensions (Table 5) are
/// compile-time constants, so the varying knobs are the dataflow
/// layout, the L-dimension tile and the cycle budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    pub layout: Layout,
    pub l_tile: usize,
    pub max_cycles: Option<u64>,
}

/// Content address of one campaign cell: an FNV-1a hash over the
/// canonical JSON of the `(machine, cell)` spec — the campaign-level
/// [`MachineSpec`] the cell runs under, then the [`CampaignCell`]
/// itself. Two records with equal hashes describe the same simulation
/// configuration (same workload/scenario, machine, KV tier and
/// policy), regardless of which campaign produced them — so archived
/// JSONL streams can be joined, deduplicated or resumed
/// ([`Campaign::run_resumable`]) by this one `u64` instead of
/// comparing nested specs.
///
/// Hash schema v2. v1 hashed the cell alone, so two campaigns
/// differing only in campaign-level machine configuration (`l_tile`,
/// `layout`, `max_cycles`) gave their cells identical addresses — a
/// resume could silently reuse a record simulated on a different
/// machine. Folding the machine spec in gives every address a new v2
/// value, which is also the correct migration: v1 archives simply
/// never match and their cells re-run.
///
/// The step mode is deliberately *not* part of the address: Skip and
/// Cycle runs of a cell produce byte-identical statistics (the
/// substrate's core guarantee), so they are the same content. The
/// record's own `step_mode` field says which mode actually ran.
///
/// Stability: serde field order is declaration order and the specs are
/// plain data, so the serialization — and thus the hash — is stable
/// for a given schema. Schema evolution (new defaulted fields) changes
/// hashes, which is the correct behavior for a content address.
pub fn cell_spec_hash(machine: &MachineSpec, cell: &CampaignCell) -> u64 {
    let machine_json = serde_json::to_string(machine).expect("machine spec serializes");
    let cell_json = serde_json::to_string(cell).expect("cell serializes");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
                                            // 0xff never occurs in UTF-8, so it separates the two halves of
                                            // the spec unambiguously.
    for b in machine_json
        .bytes()
        .chain(std::iter::once(0xff))
        .chain(cell_json.bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3); // FNV-1a prime
    }
    h
}

/// Runs a batch of campaign cells through the warm-up-and-fork fast
/// path: cells sharing a scenario (everything but the policy) build
/// their system once — trace generation, program mapping and component
/// preallocation are the dominant setup cost — freeze it pre-tick with
/// [`Experiment::snapshot_scenario`], and fork one copy per policy
/// cell. Byte-identical to [`run_experiments`] over the same cells
/// (pinned in `crates/bench/tests/campaign.rs`): policies influence
/// behaviour from cycle 0, so the shared prefix is exactly the
/// policy-independent construction work, and [`Experiment::run_forked`]
/// swaps in freshly-reset policies before any tick.
fn run_cells_forked(campaign: &Campaign, batch: &[CampaignCell]) -> Result<Vec<RunReport>, String> {
    let (reps, scenario_of) = group_by_scenario(batch);
    // One policy-neutral warm-up per scenario, in parallel.
    let snaps: Vec<Result<ScenarioSnapshot, String>> = reps
        .par_iter()
        .map(|cell| {
            cell.experiment(campaign)
                .snapshot_scenario()
                .map_err(|e| e.to_string())
        })
        .collect();
    let snaps = snaps.into_iter().collect::<Result<Vec<_>, _>>()?;
    // Fork every cell off its scenario's snapshot, in parallel.
    let indices: Vec<usize> = (0..batch.len()).collect();
    let results: Vec<Result<RunReport, String>> = indices
        .par_iter()
        .map(|&i| {
            batch[i]
                .experiment(campaign)
                .run_forked(&snaps[scenario_of[i]])
                .map_err(|e| e.to_string())
        })
        .collect();
    results.into_iter().collect()
}

/// Groups a cell batch by policy-free scenario key in first-seen order:
/// one representative cell per scenario plus each cell's scenario
/// index. Shared by the forked and batched execution paths so both
/// carve up a batch identically (and therefore produce records in the
/// same order for the same input).
fn group_by_scenario(batch: &[CampaignCell]) -> (Vec<&CampaignCell>, Vec<usize>) {
    let mut groups: HashMap<String, usize> = HashMap::new();
    let mut scenario_of: Vec<usize> = Vec::with_capacity(batch.len());
    let mut reps: Vec<&CampaignCell> = Vec::new();
    for cell in batch {
        let mut key_cell = cell.clone();
        key_cell.policy = PolicySpec::unoptimized();
        let key = serde_json::to_string(&key_cell).expect("cell serializes");
        let g = *groups.entry(key).or_insert_with(|| {
            reps.push(cell);
            reps.len() - 1
        });
        scenario_of.push(g);
    }
    (reps, scenario_of)
}

/// Runs a batch of campaign cells through the batched lockstep path:
/// the same scenario grouping and policy-neutral warm-up as
/// [`run_cells_forked`], but each scenario's cells then advance
/// *together* through [`Experiment::run_forked_batch`] instead of one
/// straight-line run per fork. Scenarios still run in parallel;
/// within a scenario the lockstep batch shares the `Arc`'d immutable
/// scenario state across all its cells' cache footprints.
/// Byte-identical to [`run_experiments`] and [`run_cells_forked`] over
/// the same cells, in the same order (pinned in
/// `crates/bench/tests/campaign.rs`).
fn run_cells_batched(
    campaign: &Campaign,
    batch: &[CampaignCell],
) -> Result<Vec<RunReport>, String> {
    let (reps, scenario_of) = group_by_scenario(batch);
    // Cells of each scenario, in batch order (which keeps the scatter
    // below deterministic).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); reps.len()];
    for (i, &g) in scenario_of.iter().enumerate() {
        members[g].push(i);
    }
    // One warm-up + lockstep batch per scenario; scenarios in parallel.
    let group_ids: Vec<usize> = (0..reps.len()).collect();
    let per_group: Vec<Result<Vec<RunReport>, String>> = group_ids
        .par_iter()
        .map(|&g| {
            let snap = reps[g]
                .experiment(campaign)
                .snapshot_scenario()
                .map_err(|e| e.to_string())?;
            let exps: Vec<Experiment> = members[g]
                .iter()
                .map(|&i| batch[i].experiment(campaign))
                .collect();
            Ok(Experiment::run_forked_batch(&exps, &snap))
        })
        .collect();
    // Scatter each scenario's reports back to batch positions.
    let mut out: Vec<Option<RunReport>> = vec![None; batch.len()];
    for (g, res) in per_group.into_iter().enumerate() {
        for (&i, report) in members[g].iter().zip(res?) {
            out[i] = Some(report);
        }
    }
    Ok(out
        .into_iter()
        .map(|r| r.expect("every cell belongs to exactly one scenario"))
        .collect())
}

/// Assembles a mix cell's fairness record from its report and the solo
/// reference reports (`refs` holds indices into `all_reports`, the
/// cell batch the references ran in). A request whose slowdown would
/// be meaningless —
/// either side failed to complete, or completed in zero cycles — is
/// dropped *individually*, with the reasons joined into the second
/// return value. The record is `None` only when every entry dropped:
/// the summary folds never run over an empty set, so the JSONL carries
/// an explicit `null` + reason instead of `NaN`/`0.0`/infinite
/// sentinels.
fn fairness_of(
    report: &RunReport,
    refs: &[usize],
    all_reports: &[RunReport],
) -> (Option<FairnessRecord>, Option<String>) {
    let mut per_request = Vec::with_capacity(refs.len());
    let mut dropped: Vec<String> = Vec::new();
    for (r, &solo_idx) in refs.iter().enumerate() {
        let Some(mix_req) = report.requests.get(r) else {
            dropped.push(format!("request {r}: missing from the mix report"));
            continue;
        };
        // The solo reference time is the request's own completion in
        // its solo run (request 0 there), not the run's drain time —
        // so a single-request partitioned mix pins speedup exactly 1.
        let Some(solo_req) = all_reports.get(solo_idx).and_then(|s| s.requests.first()) else {
            dropped.push(format!("request {r}: missing solo reference run"));
            continue;
        };
        if !mix_req.completed {
            dropped.push(format!(
                "request {r} ({}): hit the cycle budget inside the mix",
                mix_req.label
            ));
            continue;
        }
        if !solo_req.completed {
            dropped.push(format!(
                "request {r} ({}): solo reference hit the cycle budget",
                mix_req.label
            ));
            continue;
        }
        if mix_req.cycles == 0 || solo_req.cycles == 0 {
            dropped.push(format!(
                "request {r} ({}): zero-cycle completion",
                mix_req.label
            ));
            continue;
        }
        let speedup = solo_req.cycles as f64 / mix_req.cycles as f64;
        per_request.push(RequestFairness {
            request: r as u32,
            label: mix_req.label.clone(),
            solo_cycles: solo_req.cycles,
            mix_cycles: mix_req.cycles,
            speedup,
            slowdown: 1.0 / speedup,
        });
    }
    let reason = (!dropped.is_empty()).then(|| dropped.join("; "));
    if per_request.is_empty() {
        return (
            None,
            Some(reason.unwrap_or_else(|| "mix cell reported no requests".into())),
        );
    }
    let speedups: Vec<f64> = per_request.iter().map(|f| f.speedup).collect();
    let record = FairnessRecord {
        min_speedup: speedups.iter().copied().fold(f64::INFINITY, f64::min),
        max_speedup: speedups.iter().copied().fold(0.0, f64::max),
        geomean_speedup: geomean(&speedups),
        max_slowdown: per_request.iter().map(|f| f.slowdown).fold(0.0, f64::max),
        per_request,
    };
    (Some(record), reason)
}

/// Runs a batch of experiments in parallel (rayon), returning reports
/// in input order. Simulations are independent and deterministic, so
/// parallel equals sequential — the property
/// `crates/bench/tests/parallel_determinism.rs` pins.
pub fn run_experiments(experiments: &[Experiment]) -> Result<Vec<RunReport>, String> {
    let results: Vec<Result<RunReport, String>> = experiments
        .par_iter()
        .map(|e| e.try_run().map_err(|err| err.to_string()))
        .collect();
    results.into_iter().collect()
}

impl CampaignReport {
    /// The records as one JSON object per line (JSONL). Deterministic:
    /// byte-identical across repeated runs of the same campaign.
    pub fn jsonl(&self) -> String {
        let mut out = Vec::new();
        self.write_jsonl(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("JSON is UTF-8")
    }

    /// Streams the JSONL records to a writer, one record at a time.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for rec in &self.records {
            let line = serde_json::to_string(rec).expect("record serializes");
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Speedup table rows: one `(label, speedups-by-scenario)` row per
    /// policy, in policy order. Requires a baseline.
    pub fn speedup_rows(&self) -> Vec<(String, Vec<f64>)> {
        let n_pol = self.campaign.policies.len();
        let mut rows: Vec<(String, Vec<f64>)> = self
            .campaign
            .policies
            .iter()
            .map(|p| (p.label(), Vec::new()))
            .collect();
        for (i, rec) in self.records.iter().enumerate() {
            if let Some(s) = rec.speedup {
                rows[i % n_pol].1.push(s);
            }
        }
        rows
    }

    /// Per-policy geometric-mean speedup over the baseline, in policy
    /// order (the paper's summary statistic).
    pub fn geomeans(&self) -> Vec<(String, f64)> {
        self.speedup_rows()
            .into_iter()
            .map(|(label, speedups)| {
                let g = geomean(&speedups);
                (label, g)
            })
            .collect()
    }

    /// The records of one policy column, in scenario order.
    pub fn policy_records(&self, policy_index: usize) -> Vec<&CellRecord> {
        let n_pol = self.campaign.policies.len();
        self.records
            .iter()
            .skip(policy_index)
            .step_by(n_pol)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamcat::experiment::Model;

    fn tiny() -> Campaign {
        Campaign::new("tiny")
            .workload(Model::Llama3_70b.spec())
            .seq_lens([128])
            .policy(PolicySpec::unoptimized())
            .policy(PolicySpec::dynmg_bma())
            .baseline(PolicySpec::unoptimized())
    }

    #[test]
    fn cell_order_is_policy_innermost() {
        let c = Campaign::new("order")
            .workload(Model::Llama3_70b.spec())
            .workload(Model::Llama3_405b.spec())
            .seq_lens([128, 256])
            .l2_sizes_mb([16, 32])
            .policy(PolicySpec::unoptimized())
            .policy(PolicySpec::dynmg());
        let cells = c.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        // First scenario holds both policies before anything changes.
        assert_eq!(cells[0].policy, PolicySpec::unoptimized());
        assert_eq!(cells[1].policy, PolicySpec::dynmg());
        assert_eq!(cells[0].l2_mb, cells[1].l2_mb);
        // l2 is the next-fastest axis, then seq_len, then workload.
        assert_eq!(cells[2].l2_mb, 32);
        assert_eq!(cells[4].seq_len, 256);
        assert_eq!(cells[8].workload, Model::Llama3_405b.spec());
    }

    #[test]
    fn baseline_in_grid_reuses_its_column() {
        let r = tiny().run().unwrap();
        assert_eq!(r.records.len(), 2);
        // Baseline's own speedup is exactly 1.
        assert_eq!(r.records[0].speedup, Some(1.0));
        let s = r.records[1].speedup.unwrap();
        assert!(s > 0.0);
        let rows = r.speedup_rows();
        assert_eq!(rows[0].0, "unoptimized");
        assert_eq!(rows[1].0, "dynmg+BMA");
        assert_eq!(rows[1].1, vec![s]);
    }

    #[test]
    fn external_baseline_matches_in_grid_baseline() {
        let with_in_grid = tiny().run().unwrap();
        let mut external = tiny();
        external.policies.remove(0); // baseline no longer swept
        let r = external.run().unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(
            r.records[0].speedup, with_in_grid.records[1].speedup,
            "baseline cycles must not depend on where the baseline ran"
        );
    }

    #[test]
    fn empty_axes_are_rejected() {
        assert!(Campaign::new("e").run().is_err());
        let no_policy = Campaign::new("e")
            .workload(Model::Llama3_70b.spec())
            .seq_lens([128]);
        assert!(no_policy.run().is_err());
        let bad_tile = tiny().seq_lens([100]); // 100 % 32 != 0
        assert!(bad_tile.run().is_err());
    }

    fn tiny_mix() -> MixSpec {
        use llamcat_trace::workloads::WorkloadSpec;
        MixSpec::interleaved()
            .request(WorkloadSpec::llama3_70b(), 128, 0)
            .request(
                WorkloadSpec::PrefillLogit {
                    heads: 8,
                    group_size: 8,
                    head_dim: 128,
                    query_tokens: 4,
                },
                128,
                0,
            )
    }

    #[test]
    fn mix_scenarios_append_after_solo_grid() {
        let c = tiny().mix(tiny_mix());
        let cells = c.cells();
        // 1 solo scenario × 2 policies + 1 mix scenario × 2 policies.
        assert_eq!(cells.len(), 4);
        assert!(cells[0].mix.is_none() && cells[1].mix.is_none());
        assert!(cells[2].mix.is_some() && cells[3].mix.is_some());
        let labels = c.scenario_labels();
        assert_eq!(labels.len(), 2);
        assert!(
            labels[1].starts_with("mix:ilv["),
            "mix label: {}",
            labels[1]
        );
    }

    #[test]
    fn mix_cells_carry_fairness_and_per_request_reports() {
        let report = tiny().mix(tiny_mix()).run().unwrap();
        assert_eq!(report.records.len(), 4);
        for rec in &report.records[..2] {
            assert!(rec.fairness.is_none(), "solo cells carry no fairness");
            assert_eq!(rec.report.requests.len(), 1);
        }
        for rec in &report.records[2..] {
            assert_eq!(rec.report.requests.len(), 2);
            let f = rec.fairness.as_ref().expect("mix cells carry fairness");
            assert_eq!(f.per_request.len(), 2);
            for pr in &f.per_request {
                assert!(pr.solo_cycles > 0 && pr.mix_cycles > 0);
                assert!(
                    pr.speedup <= 1.0 + 1e-9,
                    "co-scheduling cannot beat a solo run of the same request \
                     on the same machine ({}: {})",
                    pr.label,
                    pr.speedup
                );
                assert!((pr.slowdown * pr.speedup - 1.0).abs() < 1e-12);
            }
            assert!(f.min_speedup <= f.max_speedup);
            assert!(f.geomean_speedup >= f.min_speedup && f.geomean_speedup <= f.max_speedup);
            assert!(f.max_slowdown >= 1.0);
            // Mix cells still get baseline speedups.
            assert!(rec.speedup.is_some());
        }
    }

    #[test]
    fn single_request_partitioned_mix_pins_fairness_at_one() {
        use llamcat_trace::workloads::WorkloadSpec;
        let solo_mix = MixSpec::partitioned().request(WorkloadSpec::llama3_70b(), 128, 0);
        let c = Campaign::new("solo-mix")
            .mix(solo_mix)
            .policy(PolicySpec::unoptimized());
        let report = c.run().unwrap();
        let f = report.records[0].fairness.as_ref().unwrap();
        assert_eq!(f.per_request.len(), 1);
        assert_eq!(
            f.per_request[0].speedup, 1.0,
            "a lone tenant on the whole machine IS the solo run"
        );
        assert_eq!(f.geomean_speedup, 1.0);
        assert_eq!(f.max_slowdown, 1.0);
    }

    #[test]
    fn mix_only_campaigns_are_valid() {
        let c = Campaign::new("mix-only")
            .mix(tiny_mix())
            .policy(PolicySpec::unoptimized());
        assert!(c.validate().is_ok(), "no solo workloads needed");
        let bad_tile = Campaign::new("bad")
            .mix(MixSpec::partitioned().request(
                llamcat_trace::workloads::WorkloadSpec::llama3_70b(),
                100, // 100 % 32 != 0
                0,
            ))
            .policy(PolicySpec::unoptimized());
        assert!(bad_tile.validate().is_err());
        let empty_mix = Campaign::new("empty")
            .mix(MixSpec::partitioned())
            .policy(PolicySpec::unoptimized());
        assert!(empty_mix.validate().is_err());
    }

    fn tiny_serve() -> ServeSpec {
        use llamcat::spec::{ArrivalSpec, ServePolicySpec};
        use llamcat_trace::workloads::WorkloadSpec;
        ServeSpec::new(
            WorkloadSpec::llama3_70b(),
            128,
            3,
            ArrivalSpec::Fixed {
                period: 5_000,
                start: 0,
            },
        )
        .scheduler(ServePolicySpec::MaxConcurrency { max: 2 })
    }

    #[test]
    fn serve_scenarios_append_after_mixes_with_latency_reports() {
        let c = tiny().mix(tiny_mix()).serve(tiny_serve());
        let cells = c.cells();
        // (1 solo + 1 mix + 1 serve) scenarios × 2 policies.
        assert_eq!(cells.len(), 6);
        assert!(cells[4].serve.is_some() && cells[5].serve.is_some());
        let labels = c.scenario_labels();
        assert!(
            labels[2].starts_with("serve:maxc2["),
            "serve label: {}",
            labels[2]
        );

        let report = c.run().unwrap();
        for rec in &report.records[4..] {
            assert!(rec.fairness.is_none(), "serve cells carry no fairness");
            assert!(rec.fairness_drop_reason.is_none());
            assert_eq!(rec.report.requests.len(), 3);
            for r in &rec.report.requests {
                assert!(r.completed);
                assert!(r.admitted.is_some() && r.ttft.is_some());
            }
            assert!(rec.speedup.is_some(), "serve cells get baseline speedups");
        }
    }

    #[test]
    fn serve_campaigns_validate_their_scenarios() {
        use llamcat::spec::ServePolicySpec;
        let c = Campaign::new("serve-only")
            .serve(tiny_serve())
            .policy(PolicySpec::unoptimized());
        assert!(c.validate().is_ok(), "no solo workloads needed");
        let bad = Campaign::new("bad")
            .serve(tiny_serve().scheduler(ServePolicySpec::ContinuousBatching { slots: 999 }))
            .policy(PolicySpec::unoptimized());
        assert!(bad.validate().is_err());
        let bad_tile = Campaign::new("bad-tile")
            .serve(ServeSpec {
                seq_len: 100,
                ..tiny_serve()
            })
            .policy(PolicySpec::unoptimized());
        assert!(bad_tile.validate().is_err());
    }

    #[test]
    fn starved_fairness_cells_emit_none_with_reason_not_nan() {
        // A budget so small that every run (mix and solo references)
        // hits CycleLimit: every fairness entry drops, and the record
        // must be an explicit None + reason — not folds over an empty
        // set leaking NaN / 0.0 / infinities into the JSONL.
        let report = Campaign::new("starved")
            .mix(tiny_mix())
            .policy(PolicySpec::unoptimized())
            .max_cycles(1_000)
            .run()
            .unwrap();
        let rec = &report.records[0];
        assert!(!rec.report.completed, "budget must bite for this test");
        assert!(rec.fairness.is_none());
        let reason = rec.fairness_drop_reason.as_ref().expect("drop reason");
        assert!(
            reason.contains("cycle budget"),
            "reason names the budget: {reason}"
        );

        // The record round-trips through its JSONL line intact.
        let jsonl = report.jsonl();
        assert!(!jsonl.contains("NaN") && !jsonl.contains("inf"), "{jsonl}");
        let line = jsonl.lines().next().unwrap();
        let back: CellRecord = serde_json::from_str(line).expect("reparse JSONL record");
        assert!(back.fairness.is_none());
        assert_eq!(back.fairness_drop_reason.as_deref(), Some(reason.as_str()));
        assert_eq!(back.cell, rec.cell);
    }

    #[test]
    fn records_carry_their_step_mode() {
        use llamcat_sim::system::StepMode;
        let cycle = tiny().run().unwrap();
        assert_eq!(cycle.records[0].step_mode, StepMode::Cycle);
        let skip = tiny().step_mode(StepMode::Skip).run().unwrap();
        assert_eq!(skip.records[0].step_mode, StepMode::Skip);
        let line = skip.jsonl();
        assert!(
            line.contains("\"step_mode\":\"Skip\""),
            "JSONL must be self-describing: {line}"
        );
    }

    #[test]
    fn kv_axis_crosses_every_scenario_outside_the_policy() {
        let c = tiny()
            .l2_sizes_mb([16, 32])
            .kv(KvSpec::lru(8))
            .kv(KvSpec::prefix_pin(8));
        let cells = c.cells();
        // 1 workload × 1 seq × 2 l2 × 2 kv × 2 policies.
        assert_eq!(cells.len(), 8);
        // Policy is innermost, kv next.
        assert_eq!(cells[0].kv, Some(KvSpec::lru(8)));
        assert_eq!(cells[1].kv, Some(KvSpec::lru(8)));
        assert_eq!(cells[2].kv, Some(KvSpec::prefix_pin(8)));
        assert_eq!(cells[0].l2_mb, cells[2].l2_mb);
        assert_eq!(cells[4].l2_mb, 32);
        let labels = c.scenario_labels();
        assert_eq!(labels.len(), 4);
        assert!(labels[0].contains("kv:lru@8"), "label: {}", labels[0]);
        assert!(labels[1].contains("kv:pin@8"), "label: {}", labels[1]);

        // Bad KV configs are rejected before any simulation starts.
        let mut bad = KvSpec::lru(4);
        bad.slow.block_bytes = 0;
        assert!(tiny().kv(bad).validate().is_err());
    }

    #[test]
    fn kv_cells_attach_the_tier_and_report_counters() {
        let report = Campaign::new("kv")
            .workload(Model::Llama3_70b.spec())
            .seq_lens([128])
            .policy(PolicySpec::dynmg_bma())
            .kv(KvSpec::lru(16))
            .run()
            .unwrap();
        assert_eq!(report.records.len(), 1);
        let rec = &report.records[0];
        let kv = rec.report.kv.as_ref().expect("kv cells report tier stats");
        assert!(kv.lookups > 0 && kv.promotions > 0);
        let req = &rec.report.requests[0];
        assert_eq!(
            req.kv_lookups, kv.lookups,
            "a solo request owns every tier lookup"
        );
        // The JSONL line is self-describing: tier spec and counters.
        let line = report.jsonl();
        assert!(
            line.contains("\"kv\":{\"warm_capacity_blocks\":16"),
            "{line}"
        );
        assert!(line.contains("\"promotions\""), "{line}");
    }

    #[test]
    fn records_are_content_addressed_by_spec_hash() {
        let r1 = tiny().run().unwrap();
        let r2 = tiny().step_mode(StepMode::Skip).run().unwrap();
        // Nonzero, distinct across cells, stable across runs.
        assert!(r1.records.iter().all(|r| r.spec_hash != 0));
        assert_ne!(r1.records[0].spec_hash, r1.records[1].spec_hash);
        assert_eq!(
            r1.records[0].spec_hash,
            tiny().run().unwrap().records[0].spec_hash
        );
        // Skip and Cycle runs of a cell are the same content (byte-
        // identical stats), so they share one address.
        assert_eq!(r1.records[0].spec_hash, r2.records[0].spec_hash);
        // And it matches the public function on the archived cell plus
        // the campaign's machine spec.
        assert_eq!(
            r1.records[0].spec_hash,
            cell_spec_hash(&r1.campaign.machine_spec(), &r1.records[0].cell)
        );

        // Pre-hash JSONL archives (no spec_hash field) still parse:
        // drop the field from the serialized line and reparse.
        let line = r1.jsonl().lines().next().unwrap().to_string();
        let needle = format!("\"spec_hash\":{},", r1.records[0].spec_hash);
        assert!(line.contains(&needle), "{line}");
        let stripped = line.replacen(&needle, "", 1);
        let back: CellRecord = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.spec_hash, 0, "missing hash defaults to 0");
    }

    /// The regression the hash-schema bump fixes: campaign-level
    /// machine knobs (`l_tile`, `layout`, `max_cycles`) must change
    /// every cell's address. v1 hashed the cell alone, so two
    /// campaigns differing only in `l_tile` content-addressed their
    /// cells identically and a resume could reuse records simulated on
    /// a different machine.
    #[test]
    fn machine_config_is_part_of_the_spec_hash() {
        let a = tiny();
        let mut b = tiny();
        b.l_tile = 64;
        let mut c = tiny();
        c.max_cycles = Some(123_456);
        let cell = &a.cells()[0];
        assert_eq!(b.cells()[0], *cell, "cells alone do not differ");
        let h = |camp: &Campaign| cell_spec_hash(&camp.machine_spec(), cell);
        assert_ne!(h(&a), h(&b), "l_tile must change the address");
        assert_ne!(h(&a), h(&c), "max_cycles must change the address");
        assert_ne!(h(&b), h(&c));
    }

    #[test]
    fn campaign_round_trips_through_json() {
        let c = tiny().l2_sizes_mb([16, 64]).max_cycles(1_000_000);
        let json = serde_json::to_string(&c).unwrap();
        let back: Campaign = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn policy_named_resolves_registry() {
        let c = Campaign::new("n")
            .policy_named("dynmg+BMA")
            .unwrap()
            .policy_named("dyncta+B")
            .unwrap();
        assert_eq!(c.policies[0], PolicySpec::dynmg_bma());
        assert!(Campaign::new("n").policy_named("bogus").is_err());
    }

    /// The warm-up-and-fork fast path must be invisible in the output:
    /// same campaign, same bytes — solo cells, mix cells, fairness
    /// references and baseline speedups included, in both step modes.
    #[test]
    fn forked_run_is_byte_identical_to_straight_line() {
        for mode in [StepMode::Cycle, StepMode::Skip] {
            let straight = tiny().mix(tiny_mix()).step_mode(mode).run().unwrap();
            let forked = tiny()
                .mix(tiny_mix())
                .step_mode(mode)
                .fork_scenarios(true)
                .run()
                .unwrap();
            assert_eq!(
                straight.jsonl(),
                forked.jsonl(),
                "fork fast path changed the stream ({mode:?})"
            );
        }
    }

    /// Solo fairness references are deduplicated across mixes and
    /// cells by a hash-map index. Shared references must collapse to
    /// one run each (identical solo_cycles wherever they are used) and
    /// the stream must stay deterministic across repeated runs.
    #[test]
    fn solo_reference_dedup_is_deterministic_across_a_mix_grid() {
        use llamcat_trace::workloads::WorkloadSpec;
        // Mix 2 repeats the 70b@128 request twice, and shares it with
        // mix 1 — three uses of one solo reference per policy.
        let grid = || {
            tiny().mix(tiny_mix()).mix(
                MixSpec::partitioned()
                    .request(WorkloadSpec::llama3_70b(), 128, 0)
                    .request(WorkloadSpec::llama3_70b(), 128, 0),
            )
        };
        let a = grid().run().unwrap();
        let b = grid().run().unwrap();
        assert_eq!(a.jsonl(), b.jsonl(), "mix grid must be deterministic");
        // Cells: solo ×2 policies, mix1 ×2, mix2 ×2. Per policy
        // column, the 70b@128 reference is request 0 of mix1 and both
        // requests of mix2.
        assert_eq!(a.records.len(), 6);
        for p in 0..2 {
            let f1 = a.records[2 + p].fairness.as_ref().expect("mix1 fairness");
            let f2 = a.records[4 + p].fairness.as_ref().expect("mix2 fairness");
            let solo = f1.per_request[0].solo_cycles;
            assert!(solo > 0);
            assert_eq!(f2.per_request[0].solo_cycles, solo);
            assert_eq!(f2.per_request[1].solo_cycles, solo);
        }
    }

    fn tmp_archive(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("llamcat-campaign-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    /// Kill-and-resume: a run that died halfway (archive holds half
    /// the stream plus a torn final line) resumes into a merged JSONL
    /// byte-identical to an uninterrupted run.
    #[test]
    fn resume_after_partial_archive_merges_byte_identically() {
        let campaign = tiny().mix(tiny_mix()); // 4 cells
        let clean = campaign.run().unwrap();
        let lines: Vec<String> = clean.jsonl().lines().map(String::from).collect();
        let path = tmp_archive("partial");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, format!("{}\n{}\n{{\"cell\":", lines[0], lines[1])).unwrap();

        let resumed = campaign.run_resumable(&path).unwrap();
        assert_eq!(
            resumed.jsonl(),
            clean.jsonl(),
            "merge must be byte-identical to a clean run"
        );
        assert!(
            resumed.warnings.iter().any(|w| w.contains("truncated")),
            "torn line must be surfaced: {:?}",
            resumed.warnings
        );

        // The archive now holds every cell: a second resume simulates
        // nothing and still reproduces the stream.
        let again = campaign.run_resumable(&path).unwrap();
        assert_eq!(again.jsonl(), clean.jsonl());
        assert!(
            again
                .warnings
                .iter()
                .any(|w| w.contains("4 of 4") && w.contains("running 0")),
            "{:?}",
            again.warnings
        );
        std::fs::remove_file(&path).ok();
    }

    /// Archived cells are *reused*, not re-simulated: tamper with an
    /// archived record's cycles and the merged report carries the
    /// tampered value through, proving the cell was skipped.
    #[test]
    fn resume_skips_archived_cells_without_rerunning() {
        let campaign = tiny(); // 2 cells
        let clean = campaign.run().unwrap();
        let mut rec = clean.records[1].clone();
        rec.report.cycles = 123_456_789; // spec_hash still describes the spec
        let path = tmp_archive("skip");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, format!("{}\n", serde_json::to_string(&rec).unwrap())).unwrap();

        let resumed = campaign.run_resumable(&path).unwrap();
        assert_eq!(
            resumed.records[1].report.cycles, 123_456_789,
            "archived cell must not re-run"
        );
        // The cell missing from the archive ran fresh and matches the
        // clean run exactly.
        assert_eq!(
            serde_json::to_string(&resumed.records[0]).unwrap(),
            serde_json::to_string(&clean.records[0]).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    /// Pre-schema records (serde-default `spec_hash: 0`) are never
    /// trusted on resume: the cell re-runs instead of reusing a record
    /// whose machine is unknown.
    #[test]
    fn zero_spec_hash_never_matches_on_resume() {
        let campaign = tiny();
        let clean = campaign.run().unwrap();
        let mut rec = clean.records[0].clone();
        rec.spec_hash = 0;
        rec.report.cycles = 1; // would poison the merge if trusted
        let path = tmp_archive("zero-hash");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, format!("{}\n", serde_json::to_string(&rec).unwrap())).unwrap();

        let resumed = campaign.run_resumable(&path).unwrap();
        assert_eq!(
            resumed.jsonl(),
            clean.jsonl(),
            "pre-schema record must be ignored and its cell re-run"
        );
        assert!(
            resumed.warnings.iter().any(|w| w.contains("pre-schema")),
            "{:?}",
            resumed.warnings
        );
        std::fs::remove_file(&path).ok();
    }

    /// An `i/n` shard split over one shared archive: after every shard
    /// has run, the merged stream is byte-identical to an unsharded
    /// run — baseline speedups included, even when a cell's baseline
    /// ran in a different shard (its cycles come from the archive).
    #[test]
    fn sharded_runs_merge_byte_identically() {
        let campaign = tiny().mix(tiny_mix()); // 4 cells
        let clean = campaign.run().unwrap();
        let path = tmp_archive("shards");
        let _ = std::fs::remove_file(&path);

        let first = campaign.run_resumable_shard(&path, 0, 2).unwrap();
        assert_eq!(first.records.len(), 2, "half the grid is pending");
        assert!(
            first
                .warnings
                .iter()
                .any(|w| w.contains("pending in other shards")),
            "{:?}",
            first.warnings
        );
        let second = campaign.run_resumable_shard(&path, 1, 2).unwrap();
        assert_eq!(
            second.jsonl(),
            clean.jsonl(),
            "shard merge must equal the unsharded run"
        );

        // Degenerate shard arguments are rejected.
        assert!(campaign.run_resumable_shard(&path, 2, 2).is_err());
        assert!(campaign.run_resumable_shard(&path, 0, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
