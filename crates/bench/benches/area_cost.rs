//! Section 6.1: hardware cost of the added structures.
//!
//! The paper synthesizes the arbiter (including the request queue) and
//! the hit buffer in a 15 nm library at 1.96 GHz. We substitute a
//! calibrated analytical bit/gate model (see `llamcat::area`) and report
//! the same two numbers plus scaling curves the synthesis flow cannot
//! cheaply produce.

use llamcat::area::{
    arbiter_area, default_report, hit_buffer_area, ArbiterGeometry, AreaConstants,
    HitBufferGeometry, PAPER_ARBITER_UM2, PAPER_HIT_BUFFER_UM2,
};

fn main() {
    println!("# Section 6.1 — hardware cost (15 nm, 1.96 GHz)");
    let r = default_report();
    println!(
        "\n{:<28} {:>12} {:>12} {:>8}",
        "structure", "model (um^2)", "paper (um^2)", "error"
    );
    println!(
        "{:<28} {:>12.2} {:>12.2} {:>7.2}%",
        "arbiter (incl. req queue)",
        r.arbiter_um2,
        PAPER_ARBITER_UM2,
        (r.arbiter_um2 - PAPER_ARBITER_UM2).abs() / PAPER_ARBITER_UM2 * 100.0
    );
    println!(
        "{:<28} {:>12.2} {:>12.2} {:>7.2}%",
        "hit buffer",
        r.hit_buffer_um2,
        PAPER_HIT_BUFFER_UM2,
        (r.hit_buffer_um2 - PAPER_HIT_BUFFER_UM2).abs() / PAPER_HIT_BUFFER_UM2 * 100.0
    );

    let k = AreaConstants::default();
    println!("\n### Scaling: hit-buffer entries");
    println!("{:<10} {:>12}", "entries", "area (um^2)");
    for entries in [16usize, 32, 48, 64, 96] {
        let g = HitBufferGeometry {
            entries,
            addr_bits: 42,
        };
        println!(
            "{:<10} {:>12.2}{}",
            entries,
            hit_buffer_area(&g, &k),
            if entries == 48 {
                "   <- evaluated design"
            } else {
                ""
            }
        );
    }

    println!("\n### Scaling: request-queue depth (arbiter)");
    println!("{:<10} {:>12}", "req_q", "area (um^2)");
    for depth in [8usize, 12, 16, 24] {
        let g = ArbiterGeometry {
            req_q_entries: depth,
            ..Default::default()
        };
        println!(
            "{:<10} {:>12.2}{}",
            depth,
            arbiter_area(&g, &k),
            if depth == 12 {
                "   <- Table 5 value"
            } else {
                ""
            }
        );
    }

    println!(
        "\nNote: per-slice overhead (~{:.1}k um^2) is negligible against a \
         2 MB SRAM slice, which is the paper's point.",
        (r.arbiter_um2 + r.hit_buffer_um2) / 1000.0
    );
}
