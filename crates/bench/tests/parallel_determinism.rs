//! The figure benches fan experiments out with `run_cells` (rayon).
//! Parallel execution must not perturb results: each cell's report has
//! to match a sequential run of the same experiment, in input order,
//! every time.

use llamcat::experiment::{Experiment, Model, Policy};
use llamcat_bench::{run_cells, Cell};

fn small_grid() -> Vec<Cell> {
    let policies = [
        Policy::unoptimized(),
        Policy::dynmg(),
        Policy::dynmg_bma(),
        Policy::lcs(),
    ];
    policies
        .iter()
        .map(|&policy| Cell {
            model: Model::Llama3_70b,
            seq_len: 128,
            policy,
            l2_mb: 16,
        })
        .collect()
}

#[test]
fn parallel_sweep_matches_sequential_runs() {
    let cells = small_grid();
    let parallel = run_cells(&cells);
    let sequential: Vec<_> = cells
        .iter()
        .map(|c| {
            Experiment::new(c.model, c.seq_len)
                .policy(c.policy)
                .l2_mb(c.l2_mb)
                .run()
        })
        .collect();
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.policy_label, s.policy_label, "order not preserved");
        assert_eq!(
            p.cycles, s.cycles,
            "{}: parallel != sequential",
            p.policy_label
        );
        assert_eq!(
            serde_json::to_string(p).unwrap(),
            serde_json::to_string(s).unwrap()
        );
    }
}

#[test]
fn parallel_sweep_is_repeatable() {
    let cells = small_grid();
    let a = run_cells(&cells);
    let b = run_cells(&cells);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.cycles, y.cycles,
            "{}: repeat run diverged",
            x.policy_label
        );
    }
}
