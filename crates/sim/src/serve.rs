//! Open-system serving: mid-run request injection.
//!
//! PR 4's serving mixes are a *closed* system — every request is
//! pre-tagged into the [`Program`] with a fixed arrival cycle. This
//! module opens the system: a [`RequestInjector`] holds the request
//! arrival schedule (drawn from a seeded arrival process upstream) and
//! a [`ServePolicy`] — the third policy axis beside arbitration ×
//! throttling — and decides, mid-run, when each request's thread
//! blocks become visible to the [`TbScheduler`].
//!
//! ## Injection contract (never-late, like every other wake bound)
//!
//! The fast-forward engine may only skip a cycle range if no component
//! changes state inside it. Admission changes scheduler state, so the
//! injector exports a wake bound with the same discipline as the NoC
//! queues and the throttle sampler:
//!
//! * **queue empty** → no bound (the injector is drained);
//! * **admission capacity available** → the front request's arrival
//!   cycle: nothing can be admitted earlier, and the bound cannot move
//!   earlier because the schedule is fixed up front;
//! * **capacity-blocked** → no bound from the injector itself; the
//!   *completion* that frees capacity is a retirement event the engine
//!   already executes, and the system re-arms the injector wake to
//!   `now + 1` at that retirement.
//!
//! Admissions run as **phase 0** of the tick (before NoC delivery), so
//! a block admitted at cycle `t` is fetchable by its core's phase-4
//! tick of the same cycle — in both step modes, at the same cycles,
//! which is what keeps `StepMode::Skip` byte-identical to `Cycle`.
//!
//! ## Overload admission and preemption
//!
//! Under overload "when to admit" stops being the whole question; the
//! serving axis grows to "whether, and at whose expense":
//!
//! * [`ServePolicy::RejectAboveQueue`] terminally rejects an arrival
//!   that finds `depth` requests already waiting — a rejection is a
//!   phase-0 event at the request's own arrival cycle, so the wake
//!   bound covers *every* future arrival while slots are full;
//! * [`ServePolicy::DeadlineDrop`] drops a still-queued request the
//!   cycle its age reaches the TTFT deadline (a request that cannot
//!   start in time has already missed its SLO) — the wake bound is the
//!   earliest queued expiry, fixed once the schedule is known;
//! * [`ServePolicy::PriorityPreempt`] admits a higher-class arrival by
//!   withholding a lowest-class victim's *unissued* blocks back to the
//!   admission queue (no mid-block rollback: blocks already issued to
//!   cores run to retirement; the victim re-enters the queue at its
//!   original `(arrival, id)` position and re-injects only the
//!   withdrawn blocks when re-admitted).
//!
//! All three are deterministic functions of `(now, schedule, scheduler
//! state)` evaluated at phase 0, and every wake bound stays never-late
//! (preemption bounds are optimistic: a class-feasible preemption may
//! turn out block-infeasible at fire time, which costs a spurious wake,
//! never a missed one) — so `StepMode::Skip` stays byte-identical with
//! rejection, deadline drops and preemption attached.
//!
//! ## Determinism
//!
//! The admission queue is statically sorted by `(arrival, request id)`,
//! so two requests landing on the same cycle are admitted in request-id
//! order — there is no tie to break at run time.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::prog::{Program, RequestId, TbId};
use crate::sched::TbScheduler;
use crate::types::{CoreId, Cycle, WindowId};

/// Serving-scheduler admission policy: when does a queued request's
/// work become visible to the thread-block scheduler?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Admit every request the cycle it arrives, onto its home cores.
    /// The machine is time-shared by the thread-block scheduler alone.
    Fcfs,
    /// Admit in FCFS order but keep at most `max` requests in flight;
    /// later arrivals wait in the admission queue until a completion
    /// frees a slot.
    MaxConcurrency { max: usize },
    /// Continuous batching: the cores are split into `slots` contiguous
    /// groups; each admitted request owns one group until it completes,
    /// and a completion immediately hands the freed group to the next
    /// queued request (lowest-numbered free slot, FCFS order).
    ContinuousBatching { slots: usize },
    /// Continuous batching with a bounded waiting line: an arrival that
    /// finds every slot busy and `depth` requests already waiting is
    /// *terminally rejected* at its own arrival cycle (reported, never
    /// admitted) instead of stalling the queue without bound.
    RejectAboveQueue { slots: usize, depth: usize },
    /// Continuous batching that drops a still-waiting request the cycle
    /// its queueing age reaches `ttft_deadline`: a request that cannot
    /// even *start* inside its TTFT budget has already missed its SLO,
    /// so the drop sheds the load the deadline made worthless.
    DeadlineDrop { slots: usize, ttft_deadline: Cycle },
    /// Continuous batching with priority classes: an arrived request of
    /// a strictly higher class claims a busy slot by preempting the
    /// lowest-class occupant with withdrawable (unissued) blocks. The
    /// victim's unissued blocks return to the admission queue and
    /// re-inject on re-admission; issued blocks run to retirement.
    PriorityPreempt { slots: usize },
}

impl ServePolicy {
    /// Stable name (labels, JSONL).
    pub fn label(&self) -> String {
        match self {
            ServePolicy::Fcfs => "fcfs".into(),
            ServePolicy::MaxConcurrency { max } => format!("maxc{max}"),
            ServePolicy::ContinuousBatching { slots } => format!("cb{slots}"),
            ServePolicy::RejectAboveQueue { slots, depth } => format!("rej{slots}q{depth}"),
            ServePolicy::DeadlineDrop {
                slots,
                ttft_deadline,
            } => format!("ddl{slots}d{ttft_deadline}"),
            ServePolicy::PriorityPreempt { slots } => format!("prio{slots}"),
        }
    }

    /// Whether the policy partitions the cores into admission slots
    /// (every policy except the whole-machine FCFS / max-concurrency
    /// disciplines).
    fn slot_count(&self) -> usize {
        match *self {
            ServePolicy::Fcfs | ServePolicy::MaxConcurrency { .. } => 0,
            ServePolicy::ContinuousBatching { slots }
            | ServePolicy::RejectAboveQueue { slots, .. }
            | ServePolicy::DeadlineDrop { slots, .. }
            | ServePolicy::PriorityPreempt { slots } => slots,
        }
    }
}

/// Per-request admission ledgers the injector stamps at phase 0:
/// admission cycles (first admission survives preemption), terminal
/// rejection/drop cycles, and preemption counts. All owned by the
/// system and byte-compared across step modes.
pub struct AdmissionLedger<'a> {
    pub admitted: &'a mut [Cycle],
    pub rejected: &'a mut [Cycle],
    pub preemptions: &'a mut [u32],
}

/// Per-block injection target: `(block, relative home core, window)`,
/// precomputed at construction so admission allocates nothing.
type InjectPlan = Vec<(TbId, CoreId, WindowId)>;

/// The open-system request injector: arrival schedule + admission
/// queue + serving policy.
///
/// Built against an *open* program — request-tagged, arrival-free,
/// home cores relative to `0..cores_per_request()` (see
/// `llamcat_trace::mix::generate_serve_set`). Attach to a system with
/// `System::attach_injector` before running.
#[derive(Clone)]
pub struct RequestInjector {
    policy: ServePolicy,
    /// Arrival cycle per request (the open-system schedule). Immutable
    /// after construction and `Arc`-shared, so forking a system for a
    /// policy grid clones a refcount, not the schedule.
    arrivals: Arc<Vec<Cycle>>,
    /// Requests not yet admitted, sorted by `(arrival, request id)`.
    queue: VecDeque<RequestId>,
    /// Injection plan per request, in `TbId` order. Immutable after
    /// construction and `Arc`-shared like `arrivals` (withdrawn
    /// remainders after a preemption live in `pending`, per fork).
    plan: Arc<Vec<InjectPlan>>,
    /// Width of the relative home-core range each request was traced on.
    cores_per_request: usize,
    /// Requests admitted but not yet completed.
    in_flight: usize,
    /// Slot-based policies: which request owns each core group (empty
    /// for FCFS / max-concurrency).
    slots: Vec<Option<RequestId>>,
    /// Slot-based policies: the slot each request was last admitted
    /// into.
    slot_of: Vec<usize>,
    /// Priority class per request (higher preempts lower); all zero
    /// unless [`RequestInjector::with_classes`] set them. Immutable
    /// after construction and `Arc`-shared like `arrivals`.
    classes: Arc<Vec<u8>>,
    /// Per request: the blocks still to inject at (re-)admission.
    /// `None` means the full plan (the common, never-preempted case);
    /// `Some` holds the withdrawn remainder after a preemption.
    pending: Vec<Option<InjectPlan>>,
    /// Thread blocks belonging to terminally rejected/dropped requests
    /// — blocks that will never be injected, and therefore never
    /// retire. Feeds [`crate::system::System::is_done`]'s O(1) counter
    /// guard.
    blocks_shed: u64,
}

impl RequestInjector {
    /// Builds the injector for `program` with the given arrival
    /// schedule. `num_cores` / `num_windows` must match the system the
    /// injector will attach to; the per-request chunking mirrors
    /// [`TbScheduler::new`] so an FCFS-admitted request is queued
    /// exactly as a closed program would queue it.
    pub fn new(
        program: &Program,
        arrivals: Vec<Cycle>,
        policy: ServePolicy,
        num_cores: usize,
        num_windows: usize,
    ) -> Result<Self, String> {
        let n = program.num_requests();
        if arrivals.len() != n {
            return Err(format!(
                "arrival schedule covers {} requests, program has {n}",
                arrivals.len()
            ));
        }
        if !program.arrivals.is_empty() {
            return Err("open-system programs must not carry per-block arrivals".into());
        }
        let cores_per_request = match policy {
            ServePolicy::Fcfs => num_cores,
            ServePolicy::MaxConcurrency { max } => {
                if max == 0 {
                    return Err("max-concurrency policy needs max >= 1".into());
                }
                num_cores
            }
            ServePolicy::ContinuousBatching { slots }
            | ServePolicy::RejectAboveQueue { slots, .. }
            | ServePolicy::DeadlineDrop { slots, .. }
            | ServePolicy::PriorityPreempt { slots } => {
                if slots == 0 || slots > num_cores {
                    return Err(format!(
                        "slot-based serving policy {} needs 1 <= slots <= num_cores ({num_cores}), got {slots}",
                        policy.label()
                    ));
                }
                if let ServePolicy::DeadlineDrop { ttft_deadline, .. } = policy {
                    if ttft_deadline == 0 {
                        return Err("deadline-drop policy needs ttft_deadline >= 1".into());
                    }
                }
                num_cores / slots
            }
        };
        // Group each request's blocks per relative home core, then
        // split each core's list into `num_windows` contiguous chunks —
        // the same strided-window layout TbScheduler::new builds.
        let mut per_core: Vec<Vec<Vec<TbId>>> = vec![vec![Vec::new(); cores_per_request]; n];
        for (tb, &core) in program.assignment.iter().enumerate() {
            if core >= cores_per_request {
                return Err(format!(
                    "block {tb} homes on relative core {core}, policy {} allows 0..{cores_per_request}",
                    policy.label()
                ));
            }
            per_core[program.request_of(tb) as usize][core].push(tb);
        }
        let mut plan: Vec<InjectPlan> = Vec::with_capacity(n);
        for (r, cores) in per_core.into_iter().enumerate() {
            let mut p = InjectPlan::new();
            for (core, list) in cores.into_iter().enumerate() {
                let len = list.len();
                let chunk = len.div_ceil(num_windows).max(1);
                for (i, tb) in list.into_iter().enumerate() {
                    p.push((tb, core, (i / chunk).min(num_windows - 1)));
                }
            }
            if p.is_empty() {
                return Err(format!("request {r} contributed no thread blocks"));
            }
            plan.push(p);
        }
        let mut order: Vec<RequestId> = (0..n as RequestId).collect();
        order.sort_by_key(|&r| (arrivals[r as usize], r));
        let slot_count = policy.slot_count();
        Ok(RequestInjector {
            policy,
            arrivals: Arc::new(arrivals),
            queue: order.into(),
            plan: Arc::new(plan),
            cores_per_request,
            in_flight: 0,
            slots: vec![None; slot_count],
            slot_of: vec![0; n],
            classes: Arc::new(vec![0; n]),
            pending: vec![None; n],
            blocks_shed: 0,
        })
    }

    /// Sets the priority class of each request (higher preempts lower
    /// under [`ServePolicy::PriorityPreempt`]; other policies carry the
    /// classes through to the reports untouched).
    pub fn with_classes(mut self, classes: Vec<u8>) -> Result<Self, String> {
        if classes.len() != self.plan.len() {
            return Err(format!(
                "class list covers {} requests, program has {}",
                classes.len(),
                self.plan.len()
            ));
        }
        self.classes = Arc::new(classes);
        Ok(self)
    }

    /// Priority class per request id.
    pub fn classes(&self) -> &[u8] {
        &self.classes
    }

    /// The arrival schedule, indexed by request id.
    pub fn arrivals(&self) -> &[Cycle] {
        &self.arrivals
    }

    pub fn num_requests(&self) -> usize {
        self.plan.len()
    }

    /// Whether every request has been admitted (not necessarily
    /// completed — in-flight work lives in the scheduler and cores).
    pub fn drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Thread blocks belonging to terminally rejected/dropped requests
    /// (never injected, never retiring). See
    /// [`crate::system::System::is_done`].
    pub fn blocks_shed(&self) -> u64 {
        self.blocks_shed
    }

    /// Whether the policy could admit one more request right now.
    fn has_capacity(&self) -> bool {
        match self.policy {
            ServePolicy::Fcfs => true,
            ServePolicy::MaxConcurrency { max } => self.in_flight < max,
            _ => self.slots.iter().any(|s| s.is_none()),
        }
    }

    /// Claims admission capacity for `r` and returns its base core, or
    /// `None` when the policy is capacity-blocked.
    fn try_claim_capacity(&mut self, r: RequestId) -> Option<usize> {
        match self.policy {
            ServePolicy::Fcfs => Some(0),
            ServePolicy::MaxConcurrency { max } => (self.in_flight < max).then_some(0),
            _ => {
                let slot = self.slots.iter().position(|s| s.is_none())?;
                self.slots[slot] = Some(r);
                self.slot_of[r as usize] = slot;
                Some(slot * self.cores_per_request)
            }
        }
    }

    /// Injects `r`'s pending blocks at `base_core` and stamps the
    /// ledger. A re-admitted preemption victim keeps its first
    /// admission cycle and injects only its withdrawn remainder.
    fn admit(
        &mut self,
        r: RequestId,
        base_core: usize,
        now: Cycle,
        sched: &mut TbScheduler,
        ledger: &mut AdmissionLedger,
    ) {
        self.in_flight += 1;
        if ledger.admitted[r as usize] == Cycle::MAX {
            ledger.admitted[r as usize] = now;
        }
        match self.pending[r as usize].take() {
            Some(rest) => {
                for &(tb, core, window) in &rest {
                    sched.inject(tb, base_core + core, window);
                }
            }
            None => {
                for &(tb, core, window) in &self.plan[r as usize] {
                    sched.inject(tb, base_core + core, window);
                }
            }
        }
    }

    /// Removes the queue entry holding `r` (present by construction).
    fn unqueue(&mut self, r: RequestId) {
        let pos = self
            .queue
            .iter()
            .position(|&q| q == r)
            .expect("request is queued");
        self.queue.remove(pos);
    }

    /// Returns `r` to the admission queue at its `(arrival, id)`
    /// position — the statically-sorted order every policy admits in.
    fn requeue(&mut self, r: RequestId) {
        let key = (self.arrivals[r as usize], r);
        let pos = self
            .queue
            .iter()
            .position(|&q| (self.arrivals[q as usize], q) > key)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, r);
    }

    /// Admits every due request at cycle `now`, pushing its blocks into
    /// the scheduler and stamping the ledger; overload policies also
    /// reject, drop or preempt here (phase 0, both step modes, same
    /// cycles). Returns whether anything was *injected* (the caller
    /// must then re-arm core wake bounds — newly injected work is
    /// fetchable *this* cycle).
    pub fn run_admissions(
        &mut self,
        now: Cycle,
        sched: &mut TbScheduler,
        ledger: &mut AdmissionLedger,
    ) -> bool {
        if matches!(self.policy, ServePolicy::PriorityPreempt { .. }) {
            return self.run_priority_admissions(now, sched, ledger);
        }
        let mut any = false;
        while let Some(&r) = self.queue.front() {
            if self.arrivals[r as usize] > now {
                break;
            }
            let Some(base_core) = self.try_claim_capacity(r) else {
                break;
            };
            self.queue.pop_front();
            self.admit(r, base_core, now, sched, ledger);
            any = true;
        }
        match self.policy {
            ServePolicy::RejectAboveQueue { depth, .. } => {
                // Arrived requests beyond the `depth` allowed waiters
                // found a full line *at their own arrival cycle* (the
                // wake bound covers every arrival): terminal rejection.
                let mut waiting = 0;
                let mut i = 0;
                while i < self.queue.len() {
                    let r = self.queue[i];
                    if self.arrivals[r as usize] > now {
                        break;
                    }
                    if waiting < depth {
                        waiting += 1;
                        i += 1;
                        continue;
                    }
                    self.queue.remove(i);
                    ledger.rejected[r as usize] = now;
                    self.blocks_shed += self.plan[r as usize].len() as u64;
                }
            }
            ServePolicy::DeadlineDrop { ttft_deadline, .. } => {
                // Still-waiting requests whose age reached the TTFT
                // deadline can no longer meet their SLO: drop them.
                // Admissions ran first, so a request admittable exactly
                // at its expiry cycle is served, not shed.
                let mut i = 0;
                while i < self.queue.len() {
                    let r = self.queue[i];
                    let arrival = self.arrivals[r as usize];
                    if arrival > now {
                        break;
                    }
                    if now >= arrival + ttft_deadline {
                        self.queue.remove(i);
                        ledger.rejected[r as usize] = now;
                        self.blocks_shed += self.plan[r as usize].len() as u64;
                    } else {
                        i += 1;
                    }
                }
            }
            _ => {}
        }
        any
    }

    /// Priority admissions: among the *arrived* queue, the highest
    /// class admits first (earliest `(arrival, id)` inside a class);
    /// when every slot is busy, a strictly-lower-class occupant with
    /// withdrawable blocks is preempted to make room.
    fn run_priority_admissions(
        &mut self,
        now: Cycle,
        sched: &mut TbScheduler,
        ledger: &mut AdmissionLedger,
    ) -> bool {
        let mut any = false;
        loop {
            // Highest-class arrived request; `>` keeps the earliest
            // (arrival, id) entry on class ties.
            let mut best: Option<RequestId> = None;
            for &r in &self.queue {
                if self.arrivals[r as usize] > now {
                    break;
                }
                if best.is_none_or(|b| self.classes[r as usize] > self.classes[b as usize]) {
                    best = Some(r);
                }
            }
            let Some(best) = best else { break };
            if let Some(base_core) = self.try_claim_capacity(best) {
                self.unqueue(best);
                self.admit(best, base_core, now, sched, ledger);
                any = true;
                continue;
            }
            if !self.preempt_for(best, sched, ledger) {
                break;
            }
            // The freed slot admits `best` on the next loop turn.
        }
        any
    }

    /// Preempts the best victim for `preemptor`: the lowest-class slot
    /// occupant strictly below the preemptor's class (youngest
    /// admission, then highest id on ties) whose unissued blocks can
    /// actually be withdrawn. Returns whether a slot was freed.
    fn preempt_for(
        &mut self,
        preemptor: RequestId,
        sched: &mut TbScheduler,
        ledger: &mut AdmissionLedger,
    ) -> bool {
        let class = self.classes[preemptor as usize];
        let mut victims: Vec<RequestId> = self
            .slots
            .iter()
            .flatten()
            .copied()
            .filter(|&v| self.classes[v as usize] < class)
            .collect();
        // Lowest class first; youngest admission (then highest id) on
        // ties — the cheapest work to redo.
        victims.sort_by_key(|&v| {
            (
                self.classes[v as usize],
                std::cmp::Reverse(ledger.admitted[v as usize]),
                std::cmp::Reverse(v),
            )
        });
        for v in victims {
            let mut tbs: Vec<TbId> = self.plan[v as usize].iter().map(|e| e.0).collect();
            tbs.sort_unstable();
            let mut withdrawn = sched.withdraw(|tb| tbs.binary_search(&tb).is_ok());
            withdrawn.sort_unstable();
            if withdrawn.is_empty() {
                // Every block already issued: nothing to withhold, the
                // victim runs to completion. Try the next candidate.
                continue;
            }
            self.pending[v as usize] = Some(
                self.plan[v as usize]
                    .iter()
                    .filter(|e| withdrawn.binary_search(&e.0).is_ok())
                    .copied()
                    .collect(),
            );
            self.slots[self.slot_of[v as usize]] = None;
            self.in_flight = self.in_flight.saturating_sub(1);
            ledger.preemptions[v as usize] += 1;
            self.requeue(v);
            return true;
        }
        false
    }

    /// Records the completion of request `r`, freeing its admission
    /// capacity (and, for slot-based policies, its core group).
    pub fn note_completion(&mut self, r: RequestId) {
        self.in_flight = self.in_flight.saturating_sub(1);
        if !self.slots.is_empty() {
            let slot = self.slot_of[r as usize];
            if self.slots[slot] == Some(r) {
                self.slots[slot] = None;
            }
        }
    }

    /// Never-late wake bound: the earliest future cycle (>= `now`) at
    /// which the injector could act, or `None` when it is drained or
    /// nothing short of a completion can unblock it (the completion
    /// re-arms the bound).
    ///
    /// * admission capacity available → the front arrival;
    /// * [`ServePolicy::RejectAboveQueue`] capacity-blocked → the next
    ///   *future* arrival (it may have to be rejected at that cycle);
    /// * [`ServePolicy::DeadlineDrop`] → additionally the earliest
    ///   queued expiry `arrival + ttft_deadline`;
    /// * [`ServePolicy::PriorityPreempt`] capacity-blocked → the
    ///   earliest arrival of a queued request whose class exceeds the
    ///   lowest active class (optimistic: the preemption may be
    ///   block-infeasible at fire time — a spurious wake, never a late
    ///   one).
    pub fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        let &front = self.queue.front()?;
        let mut wake: Option<Cycle> = None;
        let mut note = |c: Cycle| {
            wake = Some(wake.map_or(c, |w: Cycle| w.min(c)));
        };
        if self.has_capacity() {
            note(self.arrivals[front as usize].max(now));
        }
        match self.policy {
            ServePolicy::RejectAboveQueue { .. } if !self.has_capacity() => {
                if let Some(&r) = self
                    .queue
                    .iter()
                    .find(|&&r| self.arrivals[r as usize] > now)
                {
                    note(self.arrivals[r as usize]);
                }
            }
            ServePolicy::DeadlineDrop { ttft_deadline, .. } => {
                for &r in &self.queue {
                    note((self.arrivals[r as usize] + ttft_deadline).max(now));
                }
            }
            ServePolicy::PriorityPreempt { .. } if !self.has_capacity() => {
                if let Some(floor) = self
                    .slots
                    .iter()
                    .flatten()
                    .map(|&v| self.classes[v as usize])
                    .min()
                {
                    for &r in &self.queue {
                        if self.classes[r as usize] > floor {
                            note(self.arrivals[r as usize].max(now));
                            break;
                        }
                    }
                }
            }
            _ => {}
        }
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::ThreadBlock;

    /// 2 requests x 2 blocks each, relative core 0..2, arrival-free.
    fn open_program(requests: usize, blocks_per: usize, cores: usize) -> Program {
        let n = requests * blocks_per;
        let blocks = vec![ThreadBlock::default(); n];
        let assignment = (0..n).map(|i| i % cores).collect();
        let tags = (0..n).map(|i| (i / blocks_per) as RequestId).collect();
        Program::with_requests(blocks, assignment, tags, Vec::new())
    }

    fn sched_of(p: &Program, cores: usize, windows: usize) -> TbScheduler {
        let mut s = TbScheduler::new(p, cores, windows);
        s.withhold_all();
        s
    }

    /// Per-request ledgers for an `n`-request run.
    struct Ledgers {
        admitted: Vec<Cycle>,
        rejected: Vec<Cycle>,
        preemptions: Vec<u32>,
    }

    impl Ledgers {
        fn new(n: usize) -> Self {
            Ledgers {
                admitted: vec![Cycle::MAX; n],
                rejected: vec![Cycle::MAX; n],
                preemptions: vec![0; n],
            }
        }

        fn as_mut(&mut self) -> AdmissionLedger<'_> {
            AdmissionLedger {
                admitted: &mut self.admitted,
                rejected: &mut self.rejected,
                preemptions: &mut self.preemptions,
            }
        }
    }

    #[test]
    fn fcfs_admits_on_arrival_in_id_order() {
        let p = open_program(3, 2, 4);
        let mut inj =
            RequestInjector::new(&p, vec![100, 100, 400], ServePolicy::Fcfs, 4, 2).unwrap();
        let mut sched = sched_of(&p, 4, 2);
        let mut led = Ledgers::new(3);
        assert_eq!(inj.next_wake(0), Some(100));
        assert!(!inj.run_admissions(50, &mut sched, &mut led.as_mut()));
        // Both cycle-100 requests admitted together, id order is the
        // queue order; request 2 stays queued.
        assert!(inj.run_admissions(100, &mut sched, &mut led.as_mut()));
        assert_eq!(led.admitted, vec![100, 100, Cycle::MAX]);
        assert_eq!(sched.remaining(), 4);
        assert_eq!(inj.next_wake(101), Some(400));
        assert!(inj.run_admissions(400, &mut sched, &mut led.as_mut()));
        assert!(inj.drained());
        assert_eq!(inj.next_wake(401), None);
    }

    #[test]
    fn max_concurrency_blocks_until_completion() {
        let p = open_program(3, 1, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 0, 0],
            ServePolicy::MaxConcurrency { max: 2 },
            2,
            1,
        )
        .unwrap();
        let mut sched = sched_of(&p, 2, 1);
        let mut led = Ledgers::new(3);
        inj.run_admissions(0, &mut sched, &mut led.as_mut());
        assert_eq!(led.admitted, vec![0, 0, Cycle::MAX]);
        // Capacity-blocked: no wake bound of its own.
        assert_eq!(inj.next_wake(1), None);
        inj.note_completion(0);
        assert_eq!(inj.next_wake(5), Some(5));
        inj.run_admissions(5, &mut sched, &mut led.as_mut());
        assert_eq!(led.admitted[2], 5);
    }

    #[test]
    fn continuous_batching_reassigns_freed_slots() {
        // 4 cores, 2 slots of 2 cores; blocks on relative cores 0..2.
        let p = open_program(3, 2, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 0, 0],
            ServePolicy::ContinuousBatching { slots: 2 },
            4,
            1,
        )
        .unwrap();
        let mut sched = sched_of(&p, 4, 1);
        let mut led = Ledgers::new(3);
        inj.run_admissions(0, &mut sched, &mut led.as_mut());
        // Requests 0, 1 take slots 0, 1; request 2 waits.
        assert_eq!(led.admitted, vec![0, 0, Cycle::MAX]);
        assert_eq!(sched.queue_len(0) + sched.queue_len(1), 2, "slot 0");
        assert_eq!(sched.queue_len(2) + sched.queue_len(3), 2, "slot 1");
        // Request 1 completes: its slot (cores 2..4) goes to request 2.
        inj.note_completion(1);
        inj.run_admissions(7, &mut sched, &mut led.as_mut());
        assert_eq!(led.admitted[2], 7);
        assert_eq!(sched.queue_len(2) + sched.queue_len(3), 4, "reused slot 1");
    }

    #[test]
    fn reject_above_queue_terminally_rejects_overflow() {
        // 1 slot over 2 cores, 1 waiter allowed. Requests 0..4 arrive
        // at 0, 0, 0, 50: 0 admits, 1 waits, 2 rejects at its arrival;
        // 3 rejects at cycle 50 (slot still busy, 1 still waiting).
        let p = open_program(4, 1, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 0, 0, 50],
            ServePolicy::RejectAboveQueue { slots: 1, depth: 1 },
            2,
            1,
        )
        .unwrap();
        let mut sched = sched_of(&p, 2, 1);
        let mut led = Ledgers::new(4);
        assert!(inj.run_admissions(0, &mut sched, &mut led.as_mut()));
        assert_eq!(led.admitted, vec![0, Cycle::MAX, Cycle::MAX, Cycle::MAX]);
        assert_eq!(led.rejected, vec![Cycle::MAX, Cycle::MAX, 0, Cycle::MAX]);
        // Capacity-blocked, but the wake still covers request 3's
        // arrival: it must be rejected *at* cycle 50.
        assert_eq!(inj.next_wake(1), Some(50));
        assert!(!inj.run_admissions(50, &mut sched, &mut led.as_mut()));
        assert_eq!(led.rejected[3], 50);
        // Rejected requests leave the queue: only request 1 waits.
        assert!(!inj.drained());
        inj.note_completion(0);
        assert!(inj.run_admissions(60, &mut sched, &mut led.as_mut()));
        assert_eq!(led.admitted[1], 60);
        assert!(inj.drained());
    }

    #[test]
    fn deadline_drop_sheds_expired_waiters() {
        // 1 slot; request 1 waits from cycle 0 and its age reaches the
        // 100-cycle TTFT deadline before the slot frees.
        let p = open_program(2, 1, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 0],
            ServePolicy::DeadlineDrop {
                slots: 1,
                ttft_deadline: 100,
            },
            2,
            1,
        )
        .unwrap();
        let mut sched = sched_of(&p, 2, 1);
        let mut led = Ledgers::new(2);
        inj.run_admissions(0, &mut sched, &mut led.as_mut());
        assert_eq!(led.admitted, vec![0, Cycle::MAX]);
        // The wake bound is the queued expiry, not a completion.
        assert_eq!(inj.next_wake(1), Some(100));
        assert!(!inj.run_admissions(100, &mut sched, &mut led.as_mut()));
        assert_eq!(led.rejected, vec![Cycle::MAX, 100]);
        assert!(inj.drained(), "dropped requests leave the queue");
    }

    #[test]
    fn deadline_drop_admission_beats_expiry_on_the_same_cycle() {
        let p = open_program(2, 1, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 0],
            ServePolicy::DeadlineDrop {
                slots: 1,
                ttft_deadline: 100,
            },
            2,
            1,
        )
        .unwrap();
        let mut sched = sched_of(&p, 2, 1);
        let mut led = Ledgers::new(2);
        inj.run_admissions(0, &mut sched, &mut led.as_mut());
        inj.note_completion(0);
        // At exactly cycle 100 the slot is free: admission runs before
        // the drop pass, so the request is served.
        assert!(inj.run_admissions(100, &mut sched, &mut led.as_mut()));
        assert_eq!(led.admitted[1], 100);
        assert_eq!(led.rejected[1], Cycle::MAX);
    }

    #[test]
    fn priority_preempts_lowest_class_victim() {
        // 1 slot over 2 cores; request 0 (class 0, 3 blocks) admits at
        // cycle 0, request 1 (class 2) arrives at cycle 10 and preempts
        // it: the unissued blocks return to the queue.
        let p = open_program(2, 3, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 10],
            ServePolicy::PriorityPreempt { slots: 1 },
            2,
            1,
        )
        .unwrap()
        .with_classes(vec![0, 2])
        .unwrap();
        let mut sched = sched_of(&p, 2, 1);
        let mut led = Ledgers::new(2);
        inj.run_admissions(0, &mut sched, &mut led.as_mut());
        assert_eq!(led.admitted, vec![0, Cycle::MAX]);
        assert_eq!(sched.remaining(), 3);
        // Capacity-blocked, but a higher-class arrival is due at 10.
        assert_eq!(inj.next_wake(1), Some(10));
        // Simulate the cores having issued request 0's first block.
        let first = sched.next_for(0, 0, 5).expect("block ready");
        assert_eq!(first, 0);
        assert!(inj.run_admissions(10, &mut sched, &mut led.as_mut()));
        // Request 1's 3 blocks are in; request 0's 2 unissued ones out.
        assert_eq!(led.admitted, vec![0, 10]);
        assert_eq!(led.preemptions, vec![1, 0]);
        assert_eq!(sched.remaining(), 3);
        assert!(!inj.drained(), "the victim re-queued");
        // No second preemption: the occupant now outranks the victim.
        assert_eq!(inj.next_wake(11), None);
        // Victim re-admits once the preemptor completes, injecting only
        // the withdrawn remainder (keeping its first admission cycle).
        inj.note_completion(1);
        assert_eq!(inj.next_wake(20), Some(20));
        assert!(inj.run_admissions(20, &mut sched, &mut led.as_mut()));
        assert_eq!(led.admitted, vec![0, 10], "first admission sticks");
        assert_eq!(sched.remaining(), 5);
        assert!(inj.drained());
    }

    #[test]
    fn priority_preemption_needs_withdrawable_blocks() {
        // Victim has a single block, already issued to a core: nothing
        // to withhold, so the high-class arrival must wait.
        let p = open_program(2, 1, 2);
        let mut inj = RequestInjector::new(
            &p,
            vec![0, 10],
            ServePolicy::PriorityPreempt { slots: 1 },
            2,
            1,
        )
        .unwrap()
        .with_classes(vec![0, 1])
        .unwrap();
        let mut sched = sched_of(&p, 2, 1);
        let mut led = Ledgers::new(2);
        inj.run_admissions(0, &mut sched, &mut led.as_mut());
        assert_eq!(sched.next_for(0, 0, 1), Some(0), "block issued");
        assert!(!inj.run_admissions(10, &mut sched, &mut led.as_mut()));
        assert_eq!(led.admitted[1], Cycle::MAX);
        assert_eq!(led.preemptions, vec![0, 0]);
        inj.note_completion(0);
        assert!(inj.run_admissions(12, &mut sched, &mut led.as_mut()));
        assert_eq!(led.admitted[1], 12);
    }

    #[test]
    fn construction_rejects_degenerate_setups() {
        let p = open_program(2, 1, 2);
        assert!(
            RequestInjector::new(&p, vec![0], ServePolicy::Fcfs, 2, 1).is_err(),
            "short arrival schedule"
        );
        assert!(
            RequestInjector::new(&p, vec![0, 0], ServePolicy::MaxConcurrency { max: 0 }, 2, 1)
                .is_err()
        );
        assert!(RequestInjector::new(
            &p,
            vec![0, 0],
            ServePolicy::ContinuousBatching { slots: 8 },
            4,
            1
        )
        .is_err());
        // CB with 2 slots over 4 cores leaves relative cores 0..2: a
        // block homed on core 3 cannot fit a slot.
        let wide = open_program(2, 4, 4);
        assert!(RequestInjector::new(
            &wide,
            vec![0, 0],
            ServePolicy::ContinuousBatching { slots: 2 },
            4,
            1
        )
        .is_err());
        let gated = Program::with_requests(
            vec![ThreadBlock::default(); 2],
            vec![0, 1],
            vec![0, 1],
            vec![0, 50],
        );
        assert!(
            RequestInjector::new(&gated, vec![0, 50], ServePolicy::Fcfs, 2, 1).is_err(),
            "pre-tagged arrivals must be rejected"
        );
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(ServePolicy::Fcfs.label(), "fcfs");
        assert_eq!(ServePolicy::MaxConcurrency { max: 4 }.label(), "maxc4");
        assert_eq!(ServePolicy::ContinuousBatching { slots: 8 }.label(), "cb8");
        assert_eq!(
            ServePolicy::RejectAboveQueue { slots: 2, depth: 4 }.label(),
            "rej2q4"
        );
        assert_eq!(
            ServePolicy::DeadlineDrop {
                slots: 2,
                ttft_deadline: 50_000
            }
            .label(),
            "ddl2d50000"
        );
        assert_eq!(ServePolicy::PriorityPreempt { slots: 4 }.label(), "prio4");
    }
}
