//! Offline stand-in for `rayon`, covering the `par_iter().map().collect()`
//! pattern this workspace uses.
//!
//! Unlike a work-stealing pool, this shim splits the input slice into one
//! contiguous chunk per available core and runs them on scoped threads.
//! Results come back in input order, matching rayon's indexed collect
//! semantics. For the workspace's workloads (independent, similarly-sized
//! simulations) static chunking is within noise of work stealing.

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Entry point mirroring `rayon::prelude::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// A mapped parallel iterator; consumed by `collect`.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            for (input, output) in self.slice.chunks(chunk).zip(results.chunks_mut(chunk)) {
                let f = &self.f;
                s.spawn(move || {
                    for (x, slot) in input.iter().zip(output.iter_mut()) {
                        *slot = Some(f(x));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker thread filled every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let xs: Vec<u64> = vec![];
        let ys: Vec<u64> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
        let one = [7u64];
        let ys: Vec<u64> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![8]);
    }
}
