//! Pluggable policy interfaces: request arbitration and thread throttling.
//!
//! The simulator substrate defines the *traits* plus the trivial default
//! policies (FIFO arbitration, no throttling). The paper's contribution —
//! balanced/MSHR-aware arbitration and two-level dynamic multi-gear
//! throttling — and the published baselines (DYNCTA, LCS, COBRRA) are
//! implemented in the `llamcat` crate on top of these interfaces.

use crate::mshr::MshrSnapshot;
use crate::pool::{ReqHandle, ReqPool};
use crate::types::{Cycle, MemReq};

/// Everything an arbiter may consult when choosing a request
/// (Fig 4/Fig 5 of the paper: the queue itself, the per-core served
/// counters, and the real-time MSHR snapshot wire).
///
/// The request queue is handle-based (see [`crate::pool`]): `queue`
/// lists the live requests in FIFO order (index 0 is oldest) and
/// [`ArbiterCtx::req`] resolves one against the pool. Indices returned
/// by [`RequestArbiter::select`] are positions in `queue`.
pub struct ArbiterCtx<'a> {
    /// Request-queue handles in FIFO order (index 0 is oldest).
    pub queue: &'a [ReqHandle],
    /// The arena the handles point into.
    pub pool: &'a ReqPool,
    /// Real-time MSHR summary for this slice.
    pub mshr: &'a MshrSnapshot,
    /// Requests served per core by this slice since operator start
    /// (the `cnt` registers of Fig 4).
    pub served: &'a [u64],
    /// Per serving request: whether its KV is mid-promotion in the
    /// tiered KV store (see [`crate::kv`]). Empty when no tier is
    /// attached — index with [`ArbiterCtx::kv_busy_of`], which treats
    /// out-of-range as not busy.
    pub kv_busy: &'a [bool],
    /// Current core cycle.
    pub cycle: Cycle,
}

impl<'a> ArbiterCtx<'a> {
    /// Queue length.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue holds no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The queued request at FIFO position `i`.
    #[inline]
    pub fn req(&self, i: usize) -> &'a MemReq {
        self.pool.get(self.queue[i])
    }

    /// Iterates the queued requests in FIFO order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &'a MemReq> + '_ {
        self.queue.iter().map(|&h| self.pool.get(h))
    }

    /// Whether the request at FIFO position `i` belongs to a tenant
    /// whose KV is mid-promotion (always false without a KV tier).
    #[inline]
    pub fn kv_busy_of(&self, i: usize) -> bool {
        self.kv_busy
            .get(self.req(i).request as usize)
            .copied()
            .unwrap_or(false)
    }
}

/// Which path gets the shared storage port this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPreference {
    Response,
    Request,
}

/// Request-selection policy for one LLC slice.
///
/// `select` is consulted only on cycles where the slice can actually
/// accept a new request, so a returned index is a commitment: the slice
/// removes that entry and feeds it to the tag pipeline. Implementations
/// keep their own speculation state (hit buffer, sent_reqs) up to date in
/// the callbacks.
pub trait RequestArbiter {
    /// Chooses the index of the request to service, or `None` to idle.
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize>;

    /// Called when the tag lookup of a request resolves to a cache hit.
    fn note_hit(&mut self, _line_addr: u64) {}

    /// Called when a DRAM fill installs a line into this slice.
    fn note_fill(&mut self, _line_addr: u64) {}

    /// Called once per core cycle (ages speculation FIFOs).
    fn tick(&mut self) {}

    /// Called at operator start; clears all history.
    fn reset(&mut self) {}

    /// Whether this arbiter reads the MSHR snapshot wire
    /// ([`ArbiterCtx::mshr`]). When false, the slice skips rebuilding
    /// the snapshot before `select` and the ctx carries a stale one —
    /// a pure hot-path optimization for policies that are blind to MSHR
    /// state (FIFO, B, COBRRA). Implementations returning false must
    /// never read `ctx.mshr`.
    fn wants_mshr_snapshot(&self) -> bool {
        true
    }

    /// Optional dynamic override of the request/response storage-port
    /// arbitration (used by the COBRRA baseline). `None` keeps the
    /// statically configured policy.
    fn port_preference(
        &mut self,
        _req_q_len: usize,
        _resp_q_len: usize,
        _resp_q_cap: usize,
    ) -> Option<PortPreference> {
        None
    }

    /// Event bound for the fast-forward engine ([`crate::system::StepMode::Skip`]).
    ///
    /// Returns a lower bound on the first cycle `>= now` at which this
    /// arbiter's autonomous evolution (its per-cycle [`RequestArbiter::tick`]
    /// aging, or state mutated by [`RequestArbiter::port_preference`] under
    /// unchanged queue lengths) could influence a future decision in a way
    /// that [`RequestArbiter::skip`] does not reproduce. `None` means
    /// "never": skipping `k` cycles and calling `skip(k)` is exactly
    /// equivalent to `k` ticks. `Some(now)` disables skipping entirely —
    /// the conservative default for implementations that have not audited
    /// their per-cycle state.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Fast-forwards `cycles` consecutive idle cycles: must leave the
    /// arbiter in exactly the state `cycles` calls to
    /// [`RequestArbiter::tick`] (with no intervening `select`/`note_*`
    /// callbacks) would. The default replays `tick` literally, which is
    /// always correct; implementations with aging state should provide a
    /// closed form.
    fn skip(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    fn name(&self) -> &'static str;
}

/// Object-safe cloning hook for type-erased arbiters.
///
/// `Box<dyn RequestArbiter>` cannot be `Clone` (plain trait objects
/// carry no clone entry), which would lock open-world policies out of
/// the snapshot/fork layer ([`crate::system::System::snapshot`]).
/// Boxing as `Box<dyn CloneArbiter>` instead keeps type erasure *and*
/// deep-copy support: the blanket impl covers every `Clone` arbiter, so
/// no policy opts in manually.
pub trait CloneArbiter: RequestArbiter {
    /// Deep-copies the arbiter behind the reference.
    fn clone_box(&self) -> Box<dyn CloneArbiter>;
}

impl<A: RequestArbiter + Clone + 'static> CloneArbiter for A {
    fn clone_box(&self) -> Box<dyn CloneArbiter> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn CloneArbiter> {
    fn clone(&self) -> Self {
        (**self).clone_box()
    }
}

/// Forwarding impl so boxed (type-erased) arbiters plug into the
/// monomorphized [`crate::llc::LlcSlice`]/[`crate::system::System`]
/// generics: `Box<dyn RequestArbiter>` remains the open-world default,
/// while closed-world callers (the experiment layer's enum dispatch)
/// pay no virtual calls on the per-tick path.
impl<A: RequestArbiter + ?Sized> RequestArbiter for Box<A> {
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        (**self).select(ctx)
    }

    fn note_hit(&mut self, line_addr: u64) {
        (**self).note_hit(line_addr);
    }

    fn note_fill(&mut self, line_addr: u64) {
        (**self).note_fill(line_addr);
    }

    fn tick(&mut self) {
        (**self).tick();
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn wants_mshr_snapshot(&self) -> bool {
        (**self).wants_mshr_snapshot()
    }

    fn port_preference(
        &mut self,
        req_q_len: usize,
        resp_q_len: usize,
        resp_q_cap: usize,
    ) -> Option<PortPreference> {
        (**self).port_preference(req_q_len, resp_q_len, resp_q_cap)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (**self).next_event(now)
    }

    fn skip(&mut self, cycles: u64) {
        (**self).skip(cycles);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Default arbitration: first-come, first-served.
#[derive(Debug, Default, Clone)]
pub struct FifoArbiter;

impl RequestArbiter for FifoArbiter {
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        if ctx.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn wants_mshr_snapshot(&self) -> bool {
        false
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None // stateless: ticking it is a no-op
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Observable system state handed to a throttle controller every cycle.
///
/// All counters are *cumulative*; controllers compute deltas over their
/// own sampling periods.
pub struct ThrottleInputs<'a> {
    pub cycle: Cycle,
    /// Instruction windows per core (upper bound for `max_tb`).
    pub num_windows: usize,
    /// Number of LLC slices (for normalizing stall cycles into t_cs).
    pub num_slices: usize,
    /// Per-core progress: requests served across all LLC slices.
    pub progress: &'a [u64],
    /// Per-core cycles in which *all* resident thread blocks were waiting
    /// on memory (C_mem).
    pub c_mem: &'a [u64],
    /// Per-core cycles with no thread block resident (C_idle).
    pub c_idle: &'a [u64],
    /// Total LLC stall cycles summed over slices (for t_cs).
    pub llc_stall_cycles: u64,
    /// Thread blocks currently resident per core.
    pub active_tbs: &'a [usize],
    /// Thread blocks completed per core (cumulative; used by LCS to
    /// detect first-block completion).
    pub tbs_completed: &'a [u64],
}

/// Thread-throttling policy: decides, every cycle, the maximum number of
/// concurrently resident thread blocks per core.
pub trait ThrottleController {
    /// Updates `max_tb[c]` in place; entries must remain in
    /// `1..=num_windows`.
    fn tick(&mut self, inputs: &ThrottleInputs<'_>, max_tb: &mut [usize]);

    /// Called at operator start.
    fn reset(&mut self, _num_cores: usize) {}

    /// Event bound for the fast-forward engine ([`crate::system::StepMode::Skip`]).
    ///
    /// Returns a lower bound on the first cycle `>= now` at which a call
    /// to [`ThrottleController::tick`] could either mutate controller
    /// state or produce a different `max_tb` than the previous call,
    /// assuming the cumulative inputs keep accruing at their current
    /// per-cycle rates (which is exactly what holds inside a skip
    /// window). Period-driven controllers return their next sampling
    /// boundary; `None` means the controller only reacts to discrete
    /// system events (which are never skipped). `Some(now)` — the
    /// conservative default — disables skipping.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    fn name(&self) -> &'static str;
}

/// Cloning hook for type-erased throttle controllers (the
/// [`CloneArbiter`] counterpart).
pub trait CloneThrottle: ThrottleController {
    /// Deep-copies the controller behind the reference.
    fn clone_box(&self) -> Box<dyn CloneThrottle>;
}

impl<T: ThrottleController + Clone + 'static> CloneThrottle for T {
    fn clone_box(&self) -> Box<dyn CloneThrottle> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn CloneThrottle> {
    fn clone(&self) -> Self {
        (**self).clone_box()
    }
}

/// Forwarding impl mirroring the [`RequestArbiter`] one: keeps
/// `Box<dyn ThrottleController>` working as the open-world default for
/// the generic [`crate::system::System`].
impl<T: ThrottleController + ?Sized> ThrottleController for Box<T> {
    fn tick(&mut self, inputs: &ThrottleInputs<'_>, max_tb: &mut [usize]) {
        (**self).tick(inputs, max_tb);
    }

    fn reset(&mut self, num_cores: usize) {
        (**self).reset(num_cores);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (**self).next_event(now)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Default: no throttling (all windows usable).
#[derive(Debug, Default, Clone)]
pub struct NoThrottle;

impl ThrottleController for NoThrottle {
    fn tick(&mut self, inputs: &ThrottleInputs<'_>, max_tb: &mut [usize]) {
        for m in max_tb.iter_mut() {
            *m = inputs.num_windows;
        }
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None // stateless, constant output
    }

    fn name(&self) -> &'static str {
        "unoptimized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mshr::MshrSnapshot;

    fn pool_with(reqs: &[(usize, u64)]) -> (ReqPool, Vec<ReqHandle>) {
        let mut pool = ReqPool::default();
        let handles = reqs
            .iter()
            .map(|&(core, addr)| {
                pool.alloc(MemReq {
                    id: addr,
                    core,
                    request: 0,
                    line_addr: addr,
                    is_write: false,
                    issued_at: 0,
                })
            })
            .collect();
        (pool, handles)
    }

    #[test]
    fn fifo_picks_oldest() {
        let mut a = FifoArbiter;
        let snap = MshrSnapshot::default();
        let (pool, q) = pool_with(&[(1, 0x40), (0, 0x80)]);
        let ctx = ArbiterCtx {
            queue: &q,
            pool: &pool,
            mshr: &snap,
            served: &[0, 0],
            kv_busy: &[],
            cycle: 0,
        };
        assert_eq!(a.select(&ctx), Some(0));
        let ctx = ArbiterCtx {
            queue: &[],
            pool: &pool,
            mshr: &snap,
            served: &[0, 0],
            kv_busy: &[],
            cycle: 0,
        };
        assert_eq!(a.select(&ctx), None);
    }

    #[test]
    fn no_throttle_grants_all_windows() {
        let mut t = NoThrottle;
        let mut max_tb = vec![1usize; 4];
        let inputs = ThrottleInputs {
            cycle: 0,
            num_windows: 4,
            num_slices: 8,
            progress: &[0; 4],
            c_mem: &[0; 4],
            c_idle: &[0; 4],
            llc_stall_cycles: 0,
            active_tbs: &[0; 4],
            tbs_completed: &[0; 4],
        };
        t.tick(&inputs, &mut max_tb);
        assert!(max_tb.iter().all(|&m| m == 4));
    }
}
