//! Fig 9 (a)/(b): throttling and arbitration policies under cache-size
//! pressure — 32K sequences with L2 of 16 / 32 / 64 MB, normalized
//! against the unoptimized configuration at 32 MB.

use llamcat::experiment::{Model, Policy};
use llamcat_bench::{
    fig9_policies, print_speedup_table, run_cells, scale_divisor, scale_label, Cell,
};

fn main() {
    let seq = 32768 / scale_divisor();
    let sizes = [16u64, 32, 64];
    let xlabels: Vec<String> = sizes.iter().map(|s| format!("{s}MB")).collect();
    println!(
        "# Fig 9 — cache-size sweep @ {}K (scale: {})",
        seq / 1024,
        scale_label()
    );

    for model in [Model::Llama3_70b, Model::Llama3_405b] {
        let mlabel = match model {
            Model::Llama3_70b => "llama3 70b",
            Model::Llama3_405b => "llama3 405b",
        };
        // Reference: unoptimized @ 32 MB.
        let cells: Vec<Cell> = sizes
            .iter()
            .map(|&mb| Cell {
                model,
                seq_len: seq,
                policy: Policy::unoptimized(),
                l2_mb: mb,
            })
            .collect();
        let unopt = run_cells(&cells);
        let ref_cycles = unopt[1].cycles;

        let mut rows = vec![(
            "unoptimized".to_string(),
            unopt
                .iter()
                .map(|r| ref_cycles as f64 / r.cycles as f64)
                .collect::<Vec<_>>(),
        )];
        for p in fig9_policies() {
            let cells: Vec<Cell> = sizes
                .iter()
                .map(|&mb| Cell {
                    model,
                    seq_len: seq,
                    policy: p,
                    l2_mb: mb,
                })
                .collect();
            let reports = run_cells(&cells);
            rows.push((
                p.label(),
                reports
                    .iter()
                    .map(|r| ref_cycles as f64 / r.cycles as f64)
                    .collect(),
            ));
        }
        print_speedup_table(
            &format!("Fig 9 {mlabel} @ {}K", seq / 1024),
            &xlabels,
            &rows,
            "normalized against unoptimized @ 32MB",
        );
    }
    println!(
        "\nPaper reference: @32MB dynmg+BMA reaches 1.50-1.66x (geomean \
         1.58x) over unoptimized and 1.18-1.35x (geomean 1.26x) over the \
         best baseline (dyncta); unoptimized degrades sharply at 16MB \
         while dynmg+BMA nearly saturates."
    );
}
