//! Golden-baseline regression test.
//!
//! One small configuration (Llama3 70b, seq_len 128, 16 MB L2) per
//! `ArbPolicy` × `ThrottlePolicy` cell, with the cycle count and the
//! headline rates recorded from the seed implementation. Future
//! performance PRs diff against this table instead of merely checking
//! "it still completes"; an intentional behavior change must update the
//! table in the same commit and justify the delta.
//!
//! Regenerate the table after an intentional change with:
//! ```text
//! cargo test --test golden -- --ignored --nocapture
//! ```
//! and paste the printed rows over `GOLDEN`.

use llamcat::experiment::{ArbPolicy, Experiment, Model, Policy, ThrottlePolicy};
use llamcat::spec::{MixSpec, PolicySpec};
use llamcat_trace::workloads::WorkloadSpec;

const MODEL: Model = Model::Llama3_70b;
const SEQ_LEN: usize = 128;

const ARBS: [ArbPolicy; 5] = [
    ArbPolicy::Fifo,
    ArbPolicy::Balanced,
    ArbPolicy::MshrAware,
    ArbPolicy::BalancedMshrAware,
    ArbPolicy::Cobrra,
];

const THROTTLES: [ThrottlePolicy; 4] = [
    ThrottlePolicy::None,
    ThrottlePolicy::Dyncta,
    ThrottlePolicy::Lcs,
    ThrottlePolicy::DynMg,
];

/// Recorded seed behavior: (arb, throttle, cycles, l2_hit_rate,
/// mshr_hit_rate). Rates are exact f64 values as printed by `{:?}`;
/// the simulator is deterministic, so equality is exact.
#[rustfmt::skip]
const GOLDEN: &[(ArbPolicy, ThrottlePolicy, u64, f64, f64)] = &[
    (ArbPolicy::Fifo, ThrottlePolicy::None, 12269, 0.004743889989791629, 0.8609870882104501),
    (ArbPolicy::Fifo, ThrottlePolicy::Dyncta, 12269, 0.004743889989791629, 0.8609870882104501),
    (ArbPolicy::Fifo, ThrottlePolicy::Lcs, 12269, 0.004743889989791629, 0.8609870882104501),
    (ArbPolicy::Fifo, ThrottlePolicy::DynMg, 12668, 0.13891220916286878, 0.83947909049758),
    (ArbPolicy::Balanced, ThrottlePolicy::None, 12786, 0.2341198366954851, 0.8187590640065848),
    (ArbPolicy::Balanced, ThrottlePolicy::Dyncta, 12786, 0.2341198366954851, 0.8187590640065848),
    (ArbPolicy::Balanced, ThrottlePolicy::Lcs, 12786, 0.2341198366954851, 0.8187590640065848),
    (ArbPolicy::Balanced, ThrottlePolicy::DynMg, 14691, 0.3732421816437288, 0.7785485337032961),
    (ArbPolicy::MshrAware, ThrottlePolicy::None, 12376, 0.012585778070780018, 0.8600345968255895),
    (ArbPolicy::MshrAware, ThrottlePolicy::Dyncta, 12376, 0.012585778070780018, 0.8600345968255895),
    (ArbPolicy::MshrAware, ThrottlePolicy::Lcs, 12376, 0.012585778070780018, 0.8600345968255895),
    (ArbPolicy::MshrAware, ThrottlePolicy::DynMg, 12756, 0.1283430494621071, 0.8411417933602234),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::None, 12688, 0.008498753716327818, 0.8604313060334383),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::Dyncta, 12688, 0.008498753716327818, 0.8604313060334383),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::Lcs, 12688, 0.008498753716327818, 0.8604313060334383),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::DynMg, 12874, 0.12300717566877833, 0.8422458062307429),
    (ArbPolicy::Cobrra, ThrottlePolicy::None, 11966, 0.005396006954853408, 0.8609922237627343),
    (ArbPolicy::Cobrra, ThrottlePolicy::Dyncta, 11966, 0.005396006954853408, 0.8609922237627343),
    (ArbPolicy::Cobrra, ThrottlePolicy::Lcs, 11966, 0.005396006954853408, 0.8609922237627343),
    (ArbPolicy::Cobrra, ThrottlePolicy::DynMg, 12872, 0.17450769138684383, 0.8319254613348802),
];

fn run_cell(arb: ArbPolicy, throttle: ThrottlePolicy) -> (u64, f64, f64) {
    let report = Experiment::new(MODEL, SEQ_LEN)
        .policy(Policy::new(arb, throttle))
        .run();
    assert!(
        report.completed,
        "golden cell {:?}/{:?} did not complete",
        arb, throttle
    );
    (report.cycles, report.l2_hit_rate, report.mshr_hit_rate)
}

#[test]
fn golden_baselines_match_recorded_seed_behavior() {
    assert_eq!(
        GOLDEN.len(),
        ARBS.len() * THROTTLES.len(),
        "golden table must cover every policy cell"
    );
    for &(arb, throttle, cycles, l2_hit, mshr_hit) in GOLDEN {
        let (got_cycles, got_l2, got_mshr) = run_cell(arb, throttle);
        assert_eq!(
            got_cycles, cycles,
            "{:?}/{:?}: cycles changed (recorded {cycles}, got {got_cycles})",
            arb, throttle
        );
        assert_eq!(
            got_l2, l2_hit,
            "{:?}/{:?}: L2 hit rate changed",
            arb, throttle
        );
        assert_eq!(
            got_mshr, mshr_hit,
            "{:?}/{:?}: MSHR hit rate changed",
            arb, throttle
        );
    }
}

/// The policy registry's canonical names must match the paper-figure
/// labels this file pins — one name per named point of the ladder,
/// resolving to the same (arb, throttle) cell the golden table records.
#[test]
fn registry_labels_match_paper_figure_labels() {
    let figure_policies = [
        Policy::unoptimized(),
        Policy::dyncta(),
        Policy::lcs(),
        Policy::cobrra(),
        Policy::dynmg(),
        Policy::dynmg_b(),
        Policy::dynmg_ma(),
        Policy::dynmg_bma(),
        Policy::dynmg_cobrra(),
    ];
    let names = PolicySpec::registry_names();
    assert_eq!(
        names.len(),
        figure_policies.len(),
        "registry must cover exactly the named figure points"
    );
    for (name, policy) in names.iter().zip(figure_policies) {
        assert_eq!(
            *name,
            policy.label(),
            "registry order must follow the figure ladder"
        );
        let spec = PolicySpec::from_name(name)
            .unwrap_or_else(|| panic!("registry name `{name}` must resolve"));
        assert_eq!(spec, policy.spec(), "`{name}` resolves to the wrong cell");
        assert_eq!(spec.label(), *name, "label/name round trip for `{name}`");
        // The golden table covers this cell: the registry points into
        // the pinned 5 × 4 matrix, not outside it.
        assert!(
            GOLDEN
                .iter()
                .any(|&(arb, thr, ..)| Policy::new(arb, thr).spec() == spec),
            "registry name `{name}` must map into the golden matrix"
        );
    }
}

/// Prints the current table in `GOLDEN` literal syntax.
#[test]
#[ignore = "regenerates the golden table; run with --ignored --nocapture"]
fn print_golden_table() {
    for &arb in &ARBS {
        for &throttle in &THROTTLES {
            let (cycles, l2, mshr) = run_cell(arb, throttle);
            println!(
                "    (ArbPolicy::{arb:?}, ThrottlePolicy::{throttle:?}, {cycles}, {l2:?}, {mshr:?}),"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Serving-mix golden table: the multi-tenant analogue of `GOLDEN`.
// ---------------------------------------------------------------------

/// The canonical 2-request serving mix: the paper's decode Logit
/// co-scheduled (interleaved) with a chunked-prefill request on the
/// same machine — the smallest scenario where requests contend for
/// cores, MSHRs and the LLC at once.
fn canonical_mix() -> MixSpec {
    MixSpec::interleaved()
        .request(WorkloadSpec::llama3_70b(), SEQ_LEN, 0)
        .request(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 4,
            },
            SEQ_LEN,
            0,
        )
}

/// Recorded mix behavior per policy cell: (arb, throttle, machine
/// cycles, decode-request cycles-to-completion, prefill-request
/// cycles-to-completion, l2_hit_rate). Exact values — the simulator is
/// deterministic and both step modes are byte-identical.
#[rustfmt::skip]
const GOLDEN_MIX: &[(ArbPolicy, ThrottlePolicy, u64, u64, u64, f64)] = &[
    (ArbPolicy::Fifo, ThrottlePolicy::None, 37906, 37509, 37819, 0.5032210855560497),
    (ArbPolicy::Fifo, ThrottlePolicy::Dyncta, 37906, 37509, 37819, 0.5032210855560497),
    (ArbPolicy::Fifo, ThrottlePolicy::Lcs, 37906, 37509, 37819, 0.5032210855560497),
    (ArbPolicy::Fifo, ThrottlePolicy::DynMg, 37644, 36303, 37393, 0.39732885751994035),
    (ArbPolicy::Balanced, ThrottlePolicy::None, 39751, 39158, 39671, 0.6325438609074868),
    (ArbPolicy::Balanced, ThrottlePolicy::Dyncta, 39751, 39158, 39671, 0.6325438609074868),
    (ArbPolicy::Balanced, ThrottlePolicy::Lcs, 39751, 39158, 39671, 0.6325438609074868),
    (ArbPolicy::Balanced, ThrottlePolicy::DynMg, 40172, 39613, 39924, 0.5130677747528299),
    (ArbPolicy::MshrAware, ThrottlePolicy::None, 39055, 38349, 38786, 0.5695312836876374),
    (ArbPolicy::MshrAware, ThrottlePolicy::Dyncta, 39055, 38349, 38786, 0.5695312836876374),
    (ArbPolicy::MshrAware, ThrottlePolicy::Lcs, 39055, 38349, 38786, 0.5695312836876374),
    (ArbPolicy::MshrAware, ThrottlePolicy::DynMg, 38460, 37336, 38321, 0.5467932877420838),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::None, 36184, 35688, 36084, 0.4770563143608083),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::Dyncta, 36184, 35688, 36084, 0.4770563143608083),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::Lcs, 36184, 35688, 36084, 0.4770563143608083),
    (ArbPolicy::BalancedMshrAware, ThrottlePolicy::DynMg, 39831, 37178, 39492, 0.5042102248317342),
    (ArbPolicy::Cobrra, ThrottlePolicy::None, 38918, 37849, 38321, 0.45194224178723524),
    (ArbPolicy::Cobrra, ThrottlePolicy::Dyncta, 38918, 37849, 38321, 0.45194224178723524),
    (ArbPolicy::Cobrra, ThrottlePolicy::Lcs, 38918, 37849, 38321, 0.45194224178723524),
    (ArbPolicy::Cobrra, ThrottlePolicy::DynMg, 39796, 39145, 39332, 0.46688846186938937),
];

fn run_mix_cell(arb: ArbPolicy, throttle: ThrottlePolicy) -> (u64, u64, u64, f64) {
    let report = Experiment::from_mix_spec(&canonical_mix())
        .expect("canonical mix is valid")
        .policy(Policy::new(arb, throttle))
        .run();
    assert!(
        report.completed,
        "golden mix cell {:?}/{:?} did not complete",
        arb, throttle
    );
    assert_eq!(report.requests.len(), 2);
    assert!(report.requests.iter().all(|r| r.completed));
    report.stats.as_ref().unwrap().check_consistency().unwrap();
    (
        report.cycles,
        report.requests[0].cycles,
        report.requests[1].cycles,
        report.l2_hit_rate,
    )
}

#[test]
fn golden_mix_baselines_match_recorded_behavior() {
    assert_eq!(
        GOLDEN_MIX.len(),
        ARBS.len() * THROTTLES.len(),
        "golden mix table must cover every policy cell"
    );
    for &(arb, throttle, cycles, decode_cycles, prefill_cycles, l2_hit) in GOLDEN_MIX {
        let (got_cycles, got_decode, got_prefill, got_l2) = run_mix_cell(arb, throttle);
        assert_eq!(
            got_cycles, cycles,
            "{:?}/{:?}: mix cycles changed (recorded {cycles}, got {got_cycles})",
            arb, throttle
        );
        assert_eq!(
            got_decode, decode_cycles,
            "{:?}/{:?}: decode request completion changed",
            arb, throttle
        );
        assert_eq!(
            got_prefill, prefill_cycles,
            "{:?}/{:?}: prefill request completion changed",
            arb, throttle
        );
        assert_eq!(
            got_l2, l2_hit,
            "{:?}/{:?}: L2 hit rate changed",
            arb, throttle
        );
    }
}

/// A single-request partitioned mix IS the solo experiment: it must
/// reproduce the recorded solo golden table bit-for-bit — the
/// no-behavioural-drift guarantee for every legacy experiment.
#[test]
fn single_request_mix_reproduces_solo_golden_table() {
    for &(arb, throttle, cycles, l2_hit, mshr_hit) in GOLDEN {
        let spec = MixSpec::partitioned().request(WorkloadSpec::llama3_70b(), SEQ_LEN, 0);
        let report = Experiment::from_mix_spec(&spec)
            .expect("solo mix is valid")
            .policy(Policy::new(arb, throttle))
            .run();
        assert!(report.completed);
        assert_eq!(
            report.cycles, cycles,
            "{:?}/{:?}: single-request mix drifted from the solo golden cycles",
            arb, throttle
        );
        assert_eq!(report.l2_hit_rate, l2_hit);
        assert_eq!(report.mshr_hit_rate, mshr_hit);
        assert_eq!(report.requests.len(), 1);
        assert!(report.requests[0].completed);
    }
}

/// Prints the current mix table in `GOLDEN_MIX` literal syntax.
#[test]
#[ignore = "regenerates the golden mix table; run with --ignored --nocapture"]
fn print_golden_mix_table() {
    for &arb in &ARBS {
        for &throttle in &THROTTLES {
            let (cycles, decode, prefill, l2) = run_mix_cell(arb, throttle);
            println!(
                "    (ArbPolicy::{arb:?}, ThrottlePolicy::{throttle:?}, {cycles}, {decode}, {prefill}, {l2:?}),"
            );
        }
    }
}
