//! Benchmark harness: regenerates every table and figure of the LLaMCAT
//! evaluation (Section 6) on top of the declarative [`campaign`] engine.
//!
//! Each `[[bench]]` target (harness = false) prints the rows/series of
//! one paper artifact:
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig7` | Fig 7(a–f): throttling, arbitration and cumulative speedups for 70b/405b over sequence lengths |
//! | `fig8` | Fig 8: mechanism metrics for 70b @ 8K across the policy ladder |
//! | `fig9` | Fig 9(a,b): L2-capacity sweep at 32K |
//! | `table_sweeps` | Tables 2–4: throttling parameter sweeps |
//! | `area_cost` | Section 6.1 hardware-cost comparison |
//! | `sim_speed` | Criterion micro-benchmarks of the substrate itself |
//!
//! Scale is controlled with `LLAMCAT_SCALE` = `full` | `half` (default) |
//! `quick`: sequence lengths divide by 1 / 2 / 8. Orderings are stable
//! across scales; EXPERIMENTS.md records which scale produced the
//! committed numbers.
//!
//! The grid logic itself lives in [`campaign::Campaign`]: a serde
//! round-trippable definition of workloads × seq_lens × L2 sizes ×
//! [`PolicySpec`]s that executes in parallel (deterministically) and
//! streams JSONL records. The figure targets are thin wrappers over it.

pub mod campaign;

use std::time::Instant;

use llamcat::experiment::{geomean, Experiment, Model, Policy, RunReport};
use llamcat::spec::PolicySpec;

pub use campaign::{
    cell_spec_hash, run_experiments, Campaign, CampaignCell, CampaignReport, CellRecord,
    MachineSpec,
};

/// Sequence-length scale factor from `LLAMCAT_SCALE`.
pub fn scale_divisor() -> usize {
    match std::env::var("LLAMCAT_SCALE").as_deref() {
        Ok("full") => 1,
        Ok("quick") => 8,
        _ => 2,
    }
}

/// Human-readable scale label for output headers.
pub fn scale_label() -> String {
    let d = scale_divisor();
    match d {
        1 => "full".into(),
        2 => "half".into(),
        8 => "quick".into(),
        other => format!("1/{other}"),
    }
}

/// One grid cell to simulate (legacy shim over [`CampaignCell`]).
#[derive(Debug, Clone)]
pub struct Cell {
    pub model: Model,
    pub seq_len: usize,
    pub policy: Policy,
    pub l2_mb: u64,
}

impl Cell {
    /// The open-world cell this legacy shim stands for.
    pub fn to_campaign_cell(&self) -> CampaignCell {
        CampaignCell {
            workload: self.model.spec(),
            seq_len: self.seq_len,
            l2_mb: self.l2_mb,
            policy: self.policy.into(),
            mix: None,
            serve: None,
            kv: None,
        }
    }
}

/// Runs a set of cells in parallel (simulations are independent and
/// deterministic) and returns the reports in input order. Thin wrapper
/// over the campaign executor ([`run_experiments`]).
pub fn run_cells(cells: &[Cell]) -> Vec<RunReport> {
    let experiments: Vec<Experiment> = cells
        .iter()
        .map(|c| {
            Experiment::new(c.model, c.seq_len)
                .policy(c.policy)
                .l2_mb(c.l2_mb)
        })
        .collect();
    run_experiments(&experiments).expect("legacy cells are never degenerate")
}

/// Runs one experiment, timing the wall clock.
pub fn run_one(model: Model, seq_len: usize, policy: Policy, l2_mb: u64) -> (RunReport, f64) {
    let t0 = Instant::now();
    let r = Experiment::new(model, seq_len)
        .policy(policy)
        .l2_mb(l2_mb)
        .run();
    (r, t0.elapsed().as_secs_f64())
}

/// Formats a speedup table: one row per policy, one column per x value.
pub fn print_speedup_table(
    title: &str,
    xlabels: &[String],
    rows: &[(String, Vec<f64>)],
    note: &str,
) {
    println!("\n### {title}");
    if !note.is_empty() {
        println!("    ({note})");
    }
    print!("{:<16}", "policy");
    for x in xlabels {
        print!("{x:>10}");
    }
    println!("{:>10}", "geomean");
    for (name, values) in rows {
        print!("{name:<16}");
        for v in values {
            print!("{v:>9.3}x");
        }
        println!("{:>9.3}x", geomean(values));
    }
}

/// The standard policy ladder of Fig 7/8.
pub fn throttling_policies() -> Vec<PolicySpec> {
    vec![PolicySpec::dyncta(), PolicySpec::lcs(), PolicySpec::dynmg()]
}

/// Arbitration policies, each run on top of dynmg (Fig 7(b)/(e)).
pub fn arbitration_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::dynmg_cobrra(),
        PolicySpec::dynmg_b(),
        PolicySpec::dynmg_ma(),
        PolicySpec::dynmg_bma(),
    ]
}

/// Cumulative ladder (Fig 7(c)/(f)).
pub fn cumulative_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::dynmg(),
        PolicySpec::dynmg_b(),
        PolicySpec::dynmg_ma(),
        PolicySpec::dynmg_bma(),
    ]
}

/// Fig 9's policy set.
pub fn fig9_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::dyncta(),
        PolicySpec::lcs(),
        PolicySpec::cobrra(),
        PolicySpec::dynmg(),
        PolicySpec::dynmg_cobrra(),
        PolicySpec::dynmg_bma(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_half() {
        // Unless the env var says otherwise in this test environment.
        if std::env::var("LLAMCAT_SCALE").is_err() {
            assert_eq!(scale_divisor(), 2);
            assert_eq!(scale_label(), "half");
        }
    }

    #[test]
    fn policy_sets_are_complete() {
        assert_eq!(throttling_policies().len(), 3);
        assert_eq!(arbitration_policies().len(), 4);
        assert_eq!(cumulative_policies().len(), 4);
        assert_eq!(fig9_policies().len(), 6);
    }

    #[test]
    fn run_cells_preserves_order() {
        let cells = vec![
            Cell {
                model: Model::Llama3_70b,
                seq_len: 128,
                policy: Policy::unoptimized(),
                l2_mb: 16,
            },
            Cell {
                model: Model::Llama3_405b,
                seq_len: 128,
                policy: Policy::unoptimized(),
                l2_mb: 16,
            },
        ];
        let reports = run_cells(&cells);
        assert_eq!(reports[0].workload_label, "llama3 70b");
        assert_eq!(reports[1].workload_label, "llama3 405b");
    }

    #[test]
    fn legacy_cell_converts_to_campaign_cell() {
        let cell = Cell {
            model: Model::Llama3_70b,
            seq_len: 256,
            policy: Policy::dynmg_bma(),
            l2_mb: 32,
        };
        let cc = cell.to_campaign_cell();
        assert_eq!(cc.policy, PolicySpec::dynmg_bma());
        assert_eq!(cc.seq_len, 256);
        assert_eq!(cc.l2_mb, 32);
    }
}
