//! Thread-throttling policies (Sections 2.5 and 4.2).
//!
//! * [`dynmg::DynMg`] — the paper's two-level dynamic multi-gear
//!   controller (the throttling contribution).
//! * [`dyncta::Dyncta`] — the DYNCTA baseline (per-core ±1, no spatial
//!   dimension).
//! * [`lcs::Lcs`] — the LCS baseline (static decision from the first
//!   thread block).

pub mod dyncta;
pub mod dynmg;
pub mod lcs;

pub use dyncta::{Dyncta, DynctaConfig};
pub use dynmg::{Contention, DynMg, DynMgConfig, InCoreConfig};
pub use lcs::Lcs;

use llamcat_sim::arb::{NoThrottle, ThrottleController, ThrottleInputs};
use llamcat_sim::types::Cycle;

/// Closed-world enum over every throttle controller this crate knows
/// (the monomorphization counterpart of
/// [`crate::arbiter::ArbiterKind`]).
#[derive(Clone)]
pub enum ThrottleKind {
    None(NoThrottle),
    Dyncta(Dyncta),
    Lcs(Lcs),
    DynMg(DynMg),
}

macro_rules! each_throttle {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            ThrottleKind::None($inner) => $body,
            ThrottleKind::Dyncta($inner) => $body,
            ThrottleKind::Lcs($inner) => $body,
            ThrottleKind::DynMg($inner) => $body,
        }
    };
}

impl ThrottleController for ThrottleKind {
    #[inline]
    fn tick(&mut self, inputs: &ThrottleInputs<'_>, max_tb: &mut [usize]) {
        each_throttle!(self, t => t.tick(inputs, max_tb))
    }

    #[inline]
    fn reset(&mut self, num_cores: usize) {
        each_throttle!(self, t => t.reset(num_cores))
    }

    #[inline]
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        each_throttle!(self, t => t.next_event(now))
    }

    fn name(&self) -> &'static str {
        each_throttle!(self, t => t.name())
    }
}
