//! Fig 7 (a)–(f): speedups of the Logit operator for Llama3 70b and
//! Llama3 405b across sequence lengths.
//!
//! * (a)/(d) throttling policies (dyncta, lcs, dynmg) vs unoptimized;
//! * (b)/(e) arbitration policies (cobrra, B, MA, BMA), each aided by
//!   dynmg, normalized against dynmg alone;
//! * (c)/(f) cumulative speedup of dynmg, dynmg+B, dynmg+MA, dynmg+BMA
//!   vs unoptimized.

use llamcat::experiment::{Model, Policy};
use llamcat_bench::{
    arbitration_policies, cumulative_policies, print_speedup_table, run_cells, scale_divisor,
    scale_label, throttling_policies, Cell,
};

fn main() {
    let div = scale_divisor();
    let seqs: Vec<usize> = [4096, 8192, 16384].iter().map(|s| s / div).collect();
    let xlabels: Vec<String> = seqs.iter().map(|s| format!("{}K", s / 1024)).collect();
    println!(
        "# Fig 7 — Logit operator speedups (scale: {}, seqs {:?})",
        scale_label(),
        seqs
    );

    for model in [Model::Llama3_70b, Model::Llama3_405b] {
        let mlabel = match model {
            Model::Llama3_70b => "llama3 70b",
            Model::Llama3_405b => "llama3 405b",
        };

        // Baseline and dynmg runs per sequence length.
        let base_cells: Vec<Cell> = seqs
            .iter()
            .map(|&s| Cell {
                model,
                seq_len: s,
                policy: Policy::unoptimized(),
                l2_mb: 16,
            })
            .collect();
        let base = run_cells(&base_cells);
        let dynmg_cells: Vec<Cell> = seqs
            .iter()
            .map(|&s| Cell {
                model,
                seq_len: s,
                policy: Policy::dynmg(),
                l2_mb: 16,
            })
            .collect();
        let dynmg = run_cells(&dynmg_cells);

        // Panel (a)/(d): throttling policies vs unoptimized.
        let mut rows = Vec::new();
        for p in throttling_policies() {
            if p == Policy::dynmg() {
                rows.push((
                    p.label(),
                    dynmg
                        .iter()
                        .zip(&base)
                        .map(|(r, b)| r.speedup_over(b))
                        .collect(),
                ));
                continue;
            }
            let cells: Vec<Cell> = seqs
                .iter()
                .map(|&s| Cell {
                    model,
                    seq_len: s,
                    policy: p,
                    l2_mb: 16,
                })
                .collect();
            let reports = run_cells(&cells);
            rows.push((
                p.label(),
                reports
                    .iter()
                    .zip(&base)
                    .map(|(r, b)| r.speedup_over(b))
                    .collect(),
            ));
        }
        print_speedup_table(
            &format!("Fig 7 {mlabel}: throttling policies"),
            &xlabels,
            &rows,
            "normalized against unoptimized",
        );

        // Panel (b)/(e): arbitration policies (each + dynmg) vs dynmg.
        let mut rows = Vec::new();
        for p in arbitration_policies() {
            let cells: Vec<Cell> = seqs
                .iter()
                .map(|&s| Cell {
                    model,
                    seq_len: s,
                    policy: p,
                    l2_mb: 16,
                })
                .collect();
            let reports = run_cells(&cells);
            rows.push((
                p.label(),
                reports
                    .iter()
                    .zip(&dynmg)
                    .map(|(r, d)| r.speedup_over(d))
                    .collect(),
            ));
        }
        print_speedup_table(
            &format!("Fig 7 {mlabel}: arbitration policies (with dynmg)"),
            &xlabels,
            &rows,
            "normalized against dynmg alone",
        );

        // Panel (c)/(f): cumulative speedups vs unoptimized.
        let mut rows = Vec::new();
        for p in cumulative_policies() {
            let cells: Vec<Cell> = seqs
                .iter()
                .map(|&s| Cell {
                    model,
                    seq_len: s,
                    policy: p,
                    l2_mb: 16,
                })
                .collect();
            let reports = run_cells(&cells);
            rows.push((
                p.label(),
                reports
                    .iter()
                    .zip(&base)
                    .map(|(r, b)| r.speedup_over(b))
                    .collect(),
            ));
        }
        print_speedup_table(
            &format!("Fig 7 {mlabel}: cumulative speedup"),
            &xlabels,
            &rows,
            "normalized against unoptimized",
        );
    }
    println!(
        "\nPaper reference: dynmg 1.08-1.44x (geomean 1.19x); BMA +1.04-1.07x \
         over dynmg; final dynmg+BMA 1.15-1.54x (geomean 1.26x)."
    );
}
