//! Fig 8: detailed mechanism comparison for the llama3 70b 8K benchmark.
//!
//! Reports, for each policy in the unoptimized → dynmg → dynmg+BMA
//! ladder (plus the baselines), the quantities the paper plots:
//! normalized performance, MSHR entry utilization, L2 hit rate, MSHR hit
//! rate and average DRAM bandwidth. The paper's reading: performance
//! correlates with MSHR entry utilization and DRAM bandwidth; moving
//! from unoptimized to dynmg to dynmg+BMA converts cache hits into MSHR
//! hits (locality captured in the MSHRs rather than in storage).

use llamcat::experiment::{Model, Policy};
use llamcat_bench::{run_one, scale_divisor, scale_label};

fn main() {
    let seq = 8192 / scale_divisor();
    println!(
        "# Fig 8 — mechanism metrics, llama3 70b @ {}K (scale: {})",
        seq / 1024,
        scale_label()
    );
    let policies = [
        Policy::unoptimized(),
        Policy::dyncta(),
        Policy::lcs(),
        Policy::dynmg(),
        Policy::dynmg_b(),
        Policy::dynmg_ma(),
        Policy::dynmg_bma(),
    ];
    println!(
        "{:<14} {:>11} {:>8} {:>9} {:>8} {:>9} {:>11} {:>8} {:>9}",
        "policy",
        "perf(norm)",
        "entutil",
        "l2hit",
        "mshrhit",
        "t_cs",
        "dram(GB/s)",
        "dramacc",
        "migrations"
    );
    let mut base_cycles = None;
    for p in policies {
        let (r, _) = run_one(Model::Llama3_70b, seq, p, 16);
        let base = *base_cycles.get_or_insert(r.cycles);
        println!(
            "{:<14} {:>10.3}x {:>8.3} {:>9.3} {:>8.3} {:>9.3} {:>11.2} {:>8} {:>9}",
            r.policy_label,
            base as f64 / r.cycles as f64,
            r.mshr_entry_util,
            r.l2_hit_rate,
            r.mshr_hit_rate,
            r.t_cs,
            r.dram_bandwidth_gbs,
            r.dram_accesses,
            r.tb_migrations,
        );
    }
    println!(
        "\nPaper reference (shape): DRAM accesses roughly constant across \
         policies; MSHR hit rate rises and L2 hit rate falls along \
         unoptimized -> dynmg -> dynmg+BMA; performance tracks MSHR entry \
         utilization and DRAM bandwidth."
    );
}
