//! Open workload layer: operators as pluggable trait objects.
//!
//! The paper evaluates one operator (decode Logit, Q·Kᵀ) on two model
//! shapes, and the seed API hardcoded that closed world as a two-variant
//! `Model` enum. This module replaces it with an open one:
//!
//! * [`Workload`] — the trait an operator implements to participate in
//!   experiments: an {H, G, L, D} iteration space plus a per-thread-block
//!   instruction-stream builder. Mapping construction and thread-block
//!   enumeration are shared (see [`Layout`] and
//!   [`crate::tracegen::generate_with`]); only the memory behavior of
//!   one block is operator-specific.
//! * [`LogitWorkload`] — the paper's decode Logit operator (the former
//!   `Model` path).
//! * [`AttnOutputWorkload`] — the attention-output GEMV `A·V`: consumes
//!   the probabilities the Logit operator produced and streams the V
//!   cache, with the same GQA sharing structure (the G query heads of a
//!   group read the same `V[h]`).
//! * [`PrefillLogitWorkload`] — a chunked-prefill variant: several query
//!   tokens score against the K cache per pass, raising arithmetic
//!   intensity and widening each block's store footprint.
//! * [`WorkloadSpec`] — the serde-round-trippable description of a
//!   workload *family* (everything but the sequence length), so campaign
//!   definitions can cross workloads × sequence lengths as data.
//!
//! All three workloads share the {H, G, L, D} space, so every [`Layout`]
//! loop nest, the mapper and the legality constraints apply unchanged.

use std::fmt;
use std::sync::Arc;

use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::types::Addr;
use serde::{Deserialize, Serialize};

use crate::mapping::{Layout, Mapping};
use crate::tracegen::{
    generate_with, logit_block, push_vector_accesses, TraceGenConfig, TraceMeta,
};
use crate::workload::{LogitOp, ELEM_BYTES};

/// Base virtual address of the V cache (attention-output workload).
/// Sits above the score region; tensors never overlap for realistic
/// shapes (the score region tops out well below at 2·H·G·L bytes).
pub const V_BASE: Addr = 0x10_0000_0000;
/// Base virtual address of the attention-output partial results.
pub const OUT_BASE: Addr = 0x80_0000_0000;

/// An operator that can be lowered to per-core memory traces.
///
/// A workload is the pairing of an iteration space (`shape`, reusing
/// [`LogitOp`]'s {H, G, L, D} dimensions) with a block builder
/// (`build_block`). The provided methods derive everything else —
/// legal mappings per [`Layout`] and full [`Program`] generation — so
/// implementing a new operator means implementing two methods.
pub trait Workload: fmt::Debug + Send + Sync {
    /// Stable label, used in reports, campaign JSONL and figures.
    fn label(&self) -> String;

    /// The {H, G, L, D} iteration space the mapping machinery tiles.
    fn shape(&self) -> LogitOp;

    /// Builds the instruction stream of one thread block
    /// (`(h, g, l_tile_index, l_tile_extent)`).
    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock;

    /// Validates the workload shape (graceful error, no panics).
    fn validate(&self) -> Result<(), String> {
        self.shape().validate()
    }

    /// The loop nest of `layout` over this workload's iteration space.
    fn mapping(&self, layout: Layout, l_tile: usize, num_cores: usize) -> Mapping {
        layout.mapping(&self.shape(), l_tile, num_cores)
    }

    /// Walks `mapping` into an executable program.
    ///
    /// Panics if the mapping is invalid for the shape; validate first
    /// ([`Mapping::validate`]) for a graceful error.
    fn generate(&self, mapping: &Mapping, cfg: &TraceGenConfig) -> (Program, TraceMeta) {
        let shape = self.shape();
        generate_with(&shape, mapping, cfg, |h, g, lt, l_tile| {
            self.build_block(cfg, h, g, lt, l_tile)
        })
    }
}

/// The paper's evaluated operator: decode-stage Logit (Q·Kᵀ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogitWorkload {
    pub op: LogitOp,
}

impl LogitWorkload {
    pub fn new(op: LogitOp) -> Self {
        LogitWorkload { op }
    }
}

impl Workload for LogitWorkload {
    fn label(&self) -> String {
        match (self.op.heads, self.op.group_size, self.op.head_dim) {
            (8, 8, 128) => "llama3 70b".to_string(),
            (8, 16, 128) => "llama3 405b".to_string(),
            (h, g, d) => format!("logit h{h} g{g} d{d}"),
        }
    }

    fn shape(&self) -> LogitOp {
        self.op
    }

    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock {
        logit_block(&self.op, cfg, h, g, lt, l_tile)
    }
}

/// Attention-output GEMV `A·V`: for each (h, g) pair,
/// `out[d] = Σ_l A[h][g][l] · V[h][l][d]`.
///
/// The memory shape mirrors the Logit operator with roles swapped: the
/// small per-pair probability row `A[h][g]` replaces Q, the streamed V
/// cache replaces K (same footprint, same per-row bytes), and each
/// block writes its L-tile's *partial* output row (split-L partial sums
/// materialized for a later reduction pass), so stores never alias
/// across blocks. GQA temporal locality is identical: the G query heads
/// of a group stream the same `V[h]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnOutputWorkload {
    pub op: LogitOp,
}

impl AttnOutputWorkload {
    pub fn new(op: LogitOp) -> Self {
        AttnOutputWorkload { op }
    }

    /// Address of element `d` of `V[h][l]` (row-major `[h][l][d]`).
    pub fn v_addr(&self, h: usize, l: usize, d: usize) -> Addr {
        debug_assert!(h < self.op.heads && l < self.op.seq_len && d < self.op.head_dim);
        V_BASE + (((h * self.op.seq_len + l) * self.op.head_dim + d) as u64) * ELEM_BYTES
    }

    /// Address of the partial output row of block (h, g, l-tile).
    pub fn partial_out_addr(&self, h: usize, g: usize, lt: usize, n_ltiles: usize) -> Addr {
        OUT_BASE + (((h * self.op.group_size + g) * n_ltiles + lt) as u64) * self.op.k_row_bytes()
    }
}

impl Workload for AttnOutputWorkload {
    fn label(&self) -> String {
        format!(
            "attn-out h{} g{} d{}",
            self.op.heads, self.op.group_size, self.op.head_dim
        )
    }

    fn shape(&self) -> LogitOp {
        self.op
    }

    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock {
        let op = &self.op;
        let vlen = cfg.vector_len_bytes;
        let row_bytes = op.k_row_bytes();
        let n_ltiles = op.seq_len / l_tile;
        let l0 = lt * l_tile;
        let mut instrs = Vec::with_capacity(l_tile * 2 + l_tile / 2 + 8);

        // Load the probability tile A[h][g][l0 .. l0+l_tile] (produced
        // by the Logit operator at the same addresses).
        push_vector_accesses(
            &mut instrs,
            op.score_addr(h, g, l0),
            l_tile as u64 * ELEM_BYTES,
            vlen,
            false,
        );

        // Stream the V rows of the tile, interleaving amortized compute.
        let mut pending_compute = 0u32;
        for li in 0..l_tile {
            push_vector_accesses(
                &mut instrs,
                self.v_addr(h, l0 + li, 0),
                row_bytes,
                vlen,
                false,
            );
            pending_compute += cfg.compute_cycles_per_row;
            if (li + 1) % cfg.compute_flush_rows == 0 && pending_compute > 0 {
                instrs.push(Instr::Compute {
                    cycles: pending_compute,
                });
                pending_compute = 0;
            }
        }
        if pending_compute > 0 {
            instrs.push(Instr::Compute {
                cycles: pending_compute,
            });
        }

        // Reduce, then store this tile's partial output row.
        instrs.push(Instr::Barrier);
        push_vector_accesses(
            &mut instrs,
            self.partial_out_addr(h, g, lt, n_ltiles),
            row_bytes,
            vlen,
            true,
        );
        ThreadBlock { instrs }
    }
}

/// Chunked-prefill Logit: `query_tokens` query rows score against the K
/// cache per pass (`score[t][l] = Σ_d q[t][d] · k[l][d]`).
///
/// Each thread block loads its pair's `query_tokens` Q rows, streams
/// the K rows of its L tile once (K traffic is *shared* across the
/// chunk — the higher arithmetic intensity that makes prefill
/// compute-friendlier than decode), and stores one score tile per query
/// token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillLogitWorkload {
    pub op: LogitOp,
    /// Query tokens scored per pass (the prefill chunk size).
    pub query_tokens: usize,
}

impl PrefillLogitWorkload {
    pub fn new(op: LogitOp, query_tokens: usize) -> Self {
        PrefillLogitWorkload { op, query_tokens }
    }

    /// Address of element `d` of query row `t` of pair (h, g)
    /// (row-major `[h][g][t][d]`).
    pub fn q_addr(&self, h: usize, g: usize, t: usize, d: usize) -> Addr {
        use crate::workload::Q_BASE;
        Q_BASE
            + ((((h * self.op.group_size + g) * self.query_tokens + t) * self.op.head_dim + d)
                as u64)
                * ELEM_BYTES
    }

    /// Address of `score[h][g][t][l]` (row-major `[h][g][t][l]`).
    pub fn score_addr(&self, h: usize, g: usize, t: usize, l: usize) -> Addr {
        use crate::workload::SCORE_BASE;
        SCORE_BASE
            + ((((h * self.op.group_size + g) * self.query_tokens + t) * self.op.seq_len + l)
                as u64)
                * ELEM_BYTES
    }
}

impl Workload for PrefillLogitWorkload {
    fn label(&self) -> String {
        format!(
            "prefill h{} g{} d{} q{}",
            self.op.heads, self.op.group_size, self.op.head_dim, self.query_tokens
        )
    }

    fn shape(&self) -> LogitOp {
        self.op
    }

    fn validate(&self) -> Result<(), String> {
        self.op.validate()?;
        if self.query_tokens == 0 {
            return Err("prefill chunk must cover at least one query token".into());
        }
        if self.query_tokens > 64 {
            return Err(format!(
                "prefill chunk of {} query tokens would overflow the instruction window",
                self.query_tokens
            ));
        }
        Ok(())
    }

    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock {
        let op = &self.op;
        let t_count = self.query_tokens;
        let vlen = cfg.vector_len_bytes;
        let row_bytes = op.k_row_bytes();
        let l0 = lt * l_tile;
        let mut instrs = Vec::with_capacity(l_tile * 2 + t_count * 3 + 8);

        // Load the chunk's Q rows for (h, g).
        for t in 0..t_count {
            push_vector_accesses(&mut instrs, self.q_addr(h, g, t, 0), row_bytes, vlen, false);
        }

        // Stream the K rows of the tile once; every row feeds
        // `query_tokens` dot products.
        let mut pending_compute = 0u32;
        for li in 0..l_tile {
            push_vector_accesses(
                &mut instrs,
                op.k_addr(h, l0 + li, 0),
                row_bytes,
                vlen,
                false,
            );
            pending_compute += cfg.compute_cycles_per_row * t_count as u32;
            if (li + 1) % cfg.compute_flush_rows == 0 && pending_compute > 0 {
                instrs.push(Instr::Compute {
                    cycles: pending_compute,
                });
                pending_compute = 0;
            }
        }
        if pending_compute > 0 {
            instrs.push(Instr::Compute {
                cycles: pending_compute,
            });
        }

        // Barrier, then one score tile per query token.
        instrs.push(Instr::Barrier);
        for t in 0..t_count {
            push_vector_accesses(
                &mut instrs,
                self.score_addr(h, g, t, l0),
                l_tile as u64 * ELEM_BYTES,
                vlen,
                true,
            );
        }
        ThreadBlock { instrs }
    }
}

/// Serde-round-trippable description of a workload family: every
/// parameter except the sequence length, which campaign grids cross
/// separately. [`WorkloadSpec::instantiate`] turns (spec, seq_len) into
/// a runnable [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Decode-stage Logit (Q·Kᵀ).
    Logit {
        heads: usize,
        group_size: usize,
        head_dim: usize,
    },
    /// Attention-output GEMV (A·V).
    AttnOutput {
        heads: usize,
        group_size: usize,
        head_dim: usize,
    },
    /// Chunked-prefill Logit (`query_tokens` queries per pass).
    PrefillLogit {
        heads: usize,
        group_size: usize,
        head_dim: usize,
        query_tokens: usize,
    },
}

impl WorkloadSpec {
    /// Llama3 70b decode Logit (H=8, G=8, D=128).
    pub fn llama3_70b() -> Self {
        WorkloadSpec::Logit {
            heads: 8,
            group_size: 8,
            head_dim: 128,
        }
    }

    /// Llama3 405b decode Logit (H=8, G=16, D=128).
    pub fn llama3_405b() -> Self {
        WorkloadSpec::Logit {
            heads: 8,
            group_size: 16,
            head_dim: 128,
        }
    }

    fn op(&self, seq_len: usize) -> LogitOp {
        let (heads, group_size, head_dim) = match *self {
            WorkloadSpec::Logit {
                heads,
                group_size,
                head_dim,
            }
            | WorkloadSpec::AttnOutput {
                heads,
                group_size,
                head_dim,
            }
            | WorkloadSpec::PrefillLogit {
                heads,
                group_size,
                head_dim,
                ..
            } => (heads, group_size, head_dim),
        };
        LogitOp {
            heads,
            group_size,
            seq_len,
            head_dim,
        }
    }

    /// Builds the runnable workload for one sequence length.
    pub fn instantiate(&self, seq_len: usize) -> Arc<dyn Workload> {
        let op = self.op(seq_len);
        match *self {
            WorkloadSpec::Logit { .. } => Arc::new(LogitWorkload::new(op)),
            WorkloadSpec::AttnOutput { .. } => Arc::new(AttnOutputWorkload::new(op)),
            WorkloadSpec::PrefillLogit { query_tokens, .. } => {
                Arc::new(PrefillLogitWorkload::new(op, query_tokens))
            }
        }
    }

    /// The label an instantiated workload will report (seq-independent).
    pub fn label(&self) -> String {
        // Labels must not depend on seq_len; probe with a nominal one.
        self.instantiate(128).label()
    }

    /// Validates the family parameters without a sequence length.
    pub fn validate(&self) -> Result<(), String> {
        self.instantiate(128).validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{K_BASE, SCORE_BASE};
    use llamcat_sim::types::LINE_BYTES;
    use std::collections::HashSet;

    fn small_op() -> LogitOp {
        LogitOp {
            heads: 2,
            group_size: 4,
            seq_len: 128,
            head_dim: 128,
        }
    }

    #[test]
    fn preset_labels_are_stable() {
        assert_eq!(WorkloadSpec::llama3_70b().label(), "llama3 70b");
        assert_eq!(WorkloadSpec::llama3_405b().label(), "llama3 405b");
        assert_eq!(
            WorkloadSpec::AttnOutput {
                heads: 8,
                group_size: 8,
                head_dim: 128
            }
            .label(),
            "attn-out h8 g8 d128"
        );
        assert_eq!(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 4
            }
            .label(),
            "prefill h8 g8 d128 q4"
        );
    }

    #[test]
    fn logit_workload_matches_legacy_generate() {
        let op = small_op();
        let w = LogitWorkload::new(op);
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p_new, meta_new) = w.generate(&mapping, &cfg);
        let (p_old, meta_old) = crate::tracegen::generate(&op, &mapping, &cfg);
        assert_eq!(meta_new, meta_old);
        assert_eq!(p_new.blocks.len(), p_old.blocks.len());
        for (a, b) in p_new.blocks.iter().zip(&p_old.blocks) {
            assert_eq!(a.instrs, b.instrs);
        }
    }

    #[test]
    fn attn_output_streams_v_not_k() {
        let w = AttnOutputWorkload::new(small_op());
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p, meta) = w.generate(&mapping, &cfg);
        // Same stream volume as the logit operator's K traffic, but all
        // bulk loads land in the V region and the per-pair row loads in
        // the score (A) region; nothing touches K.
        for b in &p.blocks {
            for i in &b.instrs {
                if let Instr::Load { addr, .. } = i {
                    let in_v = (V_BASE..OUT_BASE).contains(addr);
                    let in_a = (SCORE_BASE..V_BASE).contains(addr);
                    assert!(in_v || in_a, "load at {addr:#x} outside V/A regions");
                    assert!(!(K_BASE..SCORE_BASE).contains(addr));
                }
            }
        }
        let op = small_op();
        // V streamed once per query head + A read once per pair.
        assert_eq!(
            meta.total_load_bytes,
            op.k_bytes() * op.group_size as u64 + op.score_bytes()
        );
        // One partial output row per block.
        assert_eq!(
            meta.total_store_bytes,
            meta.num_blocks as u64 * op.k_row_bytes()
        );
    }

    #[test]
    fn attn_output_partial_stores_never_alias() {
        let w = AttnOutputWorkload::new(small_op());
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p, _) = w.generate(&mapping, &cfg);
        let mut lines = HashSet::new();
        for b in &p.blocks {
            for i in &b.instrs {
                if let Instr::Store { addr, bytes } = i {
                    let mut a = *addr;
                    while a < addr + *bytes as u64 {
                        assert!(lines.insert(a / LINE_BYTES), "partial line stored twice");
                        a += LINE_BYTES;
                    }
                }
            }
        }
    }

    #[test]
    fn prefill_shares_k_across_query_tokens() {
        let op = small_op();
        let chunk = 4;
        let w = PrefillLogitWorkload::new(op, chunk);
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (_, meta) = w.generate(&mapping, &cfg);
        // K streamed once per (h, g) — NOT once per query token — while
        // Q and score traffic scale with the chunk.
        let k_traffic = op.k_bytes() * op.group_size as u64;
        let q_traffic =
            (op.heads * op.group_size * (op.seq_len / 32) * chunk) as u64 * op.k_row_bytes();
        assert_eq!(meta.total_load_bytes, k_traffic + q_traffic);
        assert_eq!(meta.total_store_bytes, op.score_bytes() * chunk as u64);
    }

    #[test]
    fn prefill_blocks_fit_instruction_window() {
        let w = PrefillLogitWorkload::new(LogitOp::llama3_70b(4096), 4);
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (_, meta) = w.generate(&mapping, &cfg);
        assert!(
            meta.max_block_instrs <= 128,
            "prefill blocks must fit the 128-deep instruction window, got {}",
            meta.max_block_instrs
        );
    }

    #[test]
    fn prefill_validation_bounds_chunk() {
        let op = small_op();
        assert!(PrefillLogitWorkload::new(op, 0).validate().is_err());
        assert!(PrefillLogitWorkload::new(op, 65).validate().is_err());
        assert!(PrefillLogitWorkload::new(op, 8).validate().is_ok());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let specs = [
            WorkloadSpec::llama3_70b(),
            WorkloadSpec::llama3_405b(),
            WorkloadSpec::AttnOutput {
                heads: 4,
                group_size: 2,
                head_dim: 64,
            },
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 8,
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "round-trip failed for {json}");
        }
    }

    #[test]
    fn all_workloads_run_under_all_layouts() {
        let op = small_op();
        let workloads: Vec<Arc<dyn Workload>> = vec![
            Arc::new(LogitWorkload::new(op)),
            Arc::new(AttnOutputWorkload::new(op)),
            Arc::new(PrefillLogitWorkload::new(op, 2)),
        ];
        let cfg = TraceGenConfig::default();
        for w in &workloads {
            w.validate().unwrap();
            for layout in Layout::ALL {
                let mapping = w.mapping(layout, 32, cfg.num_cores);
                mapping.validate(&w.shape()).unwrap();
                let (p, meta) = w.generate(&mapping, &cfg);
                assert_eq!(p.num_blocks(), meta.num_blocks);
                assert!(meta.total_load_bytes > 0);
            }
        }
    }
}
