//! LLC request-arbitration policies (Section 4 of the paper).
//!
//! * [`balanced::BalancedArbiter`] — policy **B**: serve the core with
//!   the smallest progress counter first.
//! * [`mshr_aware::MshrAwareArbiter`] — policies **MA** / **BMA**:
//!   prioritize speculated cache hits and MSHR hits using the hit
//!   buffer, the MSHR snapshot and the `sent_reqs` FIFO.
//! * [`cobrra::CobrraArbiter`] — the COBRRA baseline (adaptive
//!   request-response arbitration, bypass disabled).
//! * [`prefix_aware::PrefixAwareArbiter`] — policy **PFA**: deprioritize
//!   tenants whose KV blocks are mid-promotion from the slow tier.

pub mod balanced;
pub mod cobrra;
pub mod hit_buffer;
pub mod mshr_aware;
pub mod prefix_aware;
pub mod sent_reqs;

pub use balanced::BalancedArbiter;
pub use cobrra::CobrraArbiter;
pub use hit_buffer::HitBuffer;
pub use mshr_aware::{MshrAwareArbiter, MshrAwareConfig, TieBreak};
pub use prefix_aware::PrefixAwareArbiter;
pub use sent_reqs::SentReqs;

use llamcat_sim::arb::{ArbiterCtx, FifoArbiter, PortPreference, RequestArbiter};
use llamcat_sim::types::Cycle;

/// Closed-world enum over every arbiter this crate knows, used to
/// monomorphize the simulator's per-tick dispatch: the experiment layer
/// builds a `System<ArbiterKind, ThrottleKind>` so the hot loop issues
/// no virtual calls (the variant check is a predictable branch — every
/// slice holds the same variant for a whole run). `Box<dyn
/// RequestArbiter>` remains available for policies outside this set.
#[derive(Clone)]
pub enum ArbiterKind {
    Fifo(FifoArbiter),
    Balanced(BalancedArbiter),
    MshrAware(MshrAwareArbiter),
    Cobrra(CobrraArbiter),
    PrefixAware(PrefixAwareArbiter),
}

macro_rules! each_arbiter {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            ArbiterKind::Fifo($inner) => $body,
            ArbiterKind::Balanced($inner) => $body,
            ArbiterKind::MshrAware($inner) => $body,
            ArbiterKind::Cobrra($inner) => $body,
            ArbiterKind::PrefixAware($inner) => $body,
        }
    };
}

impl RequestArbiter for ArbiterKind {
    #[inline]
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        each_arbiter!(self, a => a.select(ctx))
    }

    #[inline]
    fn note_hit(&mut self, line_addr: u64) {
        each_arbiter!(self, a => a.note_hit(line_addr))
    }

    #[inline]
    fn note_fill(&mut self, line_addr: u64) {
        each_arbiter!(self, a => a.note_fill(line_addr))
    }

    #[inline]
    fn tick(&mut self) {
        each_arbiter!(self, a => a.tick())
    }

    #[inline]
    fn reset(&mut self) {
        each_arbiter!(self, a => a.reset())
    }

    #[inline]
    fn wants_mshr_snapshot(&self) -> bool {
        each_arbiter!(self, a => a.wants_mshr_snapshot())
    }

    #[inline]
    fn port_preference(
        &mut self,
        req_q_len: usize,
        resp_q_len: usize,
        resp_q_cap: usize,
    ) -> Option<PortPreference> {
        each_arbiter!(self, a => a.port_preference(req_q_len, resp_q_len, resp_q_cap))
    }

    #[inline]
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        each_arbiter!(self, a => a.next_event(now))
    }

    #[inline]
    fn skip(&mut self, cycles: u64) {
        each_arbiter!(self, a => a.skip(cycles))
    }

    fn name(&self) -> &'static str {
        each_arbiter!(self, a => a.name())
    }
}
