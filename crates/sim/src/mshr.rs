//! Miss Status Holding Registers (Section 2.4 of the paper).
//!
//! The MSHR file has two dimensions that both cause pipeline stalls when
//! exhausted:
//!
//! * `numEntry` — distinct outstanding cache misses (one DRAM fetch each);
//! * `numTarget` — requests merged onto one outstanding miss.
//!
//! A *merge* ("MSHR hit") rides an already-pending DRAM access: its lookup
//! latency overlaps DRAM latency, which is exactly why the paper's MA
//! arbitration policy prioritizes predicted MSHR hits. A read-only
//! [`MshrSnapshot`] of the file is exported to the arbiter every cycle,
//! modelling the paper's "direct wire connection" (Section 4.3.1).

use crate::types::{Addr, CoreId, ReqId};

/// Outcome of attempting to register a miss in the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; a DRAM fetch must be issued.
    Allocated,
    /// The miss was merged into an existing entry for the same line.
    Merged,
    /// All entries are in use and the line is not pending: stall.
    FullEntries,
    /// The line is pending but its target list is full: stall.
    FullTargets,
}

/// One requester waiting on an outstanding line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrTarget {
    pub req_id: ReqId,
    pub core: CoreId,
    pub is_write: bool,
}

#[derive(Debug, Clone)]
struct MshrEntry {
    line_addr: Addr,
    targets: Vec<MshrTarget>,
}

/// The MSHR file of one LLC slice.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Option<MshrEntry>>,
    num_targets: usize,
    occupied: usize,
}

impl MshrFile {
    pub fn new(num_entries: usize, num_targets: usize) -> Self {
        assert!(num_entries > 0 && num_targets > 0);
        MshrFile {
            entries: vec![None; num_entries],
            num_targets,
            occupied: 0,
        }
    }

    /// Attempts to register a miss for `line_addr` on behalf of `target`.
    pub fn register(&mut self, line_addr: Addr, target: MshrTarget) -> MshrOutcome {
        // Merge path first: the line may already be pending.
        if let Some(entry) = self
            .entries
            .iter_mut()
            .flatten()
            .find(|e| e.line_addr == line_addr)
        {
            if entry.targets.len() >= self.num_targets {
                return MshrOutcome::FullTargets;
            }
            entry.targets.push(target);
            return MshrOutcome::Merged;
        }
        // Allocate a fresh entry.
        match self.entries.iter_mut().find(|e| e.is_none()) {
            Some(slot) => {
                *slot = Some(MshrEntry {
                    line_addr,
                    targets: vec![target],
                });
                self.occupied += 1;
                MshrOutcome::Allocated
            }
            None => MshrOutcome::FullEntries,
        }
    }

    /// Frees the entry for `line_addr` (DRAM fill arrived) and returns its
    /// waiting targets. Returns `None` if no entry matches (e.g. a
    /// write-back completion).
    pub fn complete(&mut self, line_addr: Addr) -> Option<Vec<MshrTarget>> {
        for slot in self.entries.iter_mut() {
            if slot.as_ref().is_some_and(|e| e.line_addr == line_addr) {
                let entry = slot.take().expect("checked above");
                self.occupied -= 1;
                return Some(entry.targets);
            }
        }
        None
    }

    /// What [`MshrFile::register`] would return for `line_addr`, without
    /// mutating the file. Used by the fast-forward engine to classify a
    /// ready pipeline head as "would advance" vs "stalls every cycle".
    pub fn probe(&self, line_addr: Addr) -> MshrOutcome {
        if let Some(entry) = self
            .entries
            .iter()
            .flatten()
            .find(|e| e.line_addr == line_addr)
        {
            if entry.targets.len() >= self.num_targets {
                MshrOutcome::FullTargets
            } else {
                MshrOutcome::Merged
            }
        } else if self.occupied == self.entries.len() {
            MshrOutcome::FullEntries
        } else {
            MshrOutcome::Allocated
        }
    }

    /// Whether `line_addr` currently has a pending entry.
    pub fn contains(&self, line_addr: Addr) -> bool {
        self.entries
            .iter()
            .flatten()
            .any(|e| e.line_addr == line_addr)
    }

    /// Remaining target slots for a pending line (None if not pending).
    pub fn free_targets(&self, line_addr: Addr) -> Option<usize> {
        self.entries
            .iter()
            .flatten()
            .find(|e| e.line_addr == line_addr)
            .map(|e| self.num_targets - e.targets.len())
    }

    /// Occupied entries.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Total entries (`numEntry`).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    pub fn is_full(&self) -> bool {
        self.occupied == self.entries.len()
    }

    /// Builds a snapshot for the arbiter "direct wire" (addr + target
    /// count per live entry).
    pub fn snapshot_into(&self, snap: &mut MshrSnapshot) {
        snap.entries.clear();
        for e in self.entries.iter().flatten() {
            snap.entries.push(SnapshotEntry {
                line_addr: e.line_addr,
                num_targets: e.targets.len(),
            });
        }
        snap.capacity = self.entries.len();
        snap.num_targets = self.num_targets;
    }
}

/// One row of the arbiter-visible MSHR summary (Fig 5: "addr | num").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotEntry {
    pub line_addr: Addr,
    pub num_targets: usize,
}

/// Real-time summary of the MSHR passed to the arbiter each cycle.
#[derive(Debug, Clone, Default)]
pub struct MshrSnapshot {
    pub entries: Vec<SnapshotEntry>,
    /// `numEntry` of the underlying file.
    pub capacity: usize,
    /// `numTarget` of the underlying file.
    pub num_targets: usize,
}

impl MshrSnapshot {
    /// Whether the snapshot shows a pending entry for `line_addr`.
    pub fn contains(&self, line_addr: Addr) -> bool {
        self.entries.iter().any(|e| e.line_addr == line_addr)
    }

    /// Target slots still free for `line_addr`, if pending.
    pub fn free_targets(&self, line_addr: Addr) -> Option<usize> {
        self.entries
            .iter()
            .find(|e| e.line_addr == line_addr)
            .map(|e| self.num_targets.saturating_sub(e.num_targets))
    }

    /// Entries still free in the file according to the snapshot.
    pub fn free_entries(&self) -> usize {
        self.capacity - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: ReqId) -> MshrTarget {
        MshrTarget {
            req_id: id,
            core: (id % 4) as usize,
            is_write: false,
        }
    }

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(2, 2);
        assert_eq!(m.register(0x40, t(1)), MshrOutcome::Allocated);
        assert_eq!(m.register(0x40, t(2)), MshrOutcome::Merged);
        assert_eq!(m.occupancy(), 1);
        assert!(m.contains(0x40));
    }

    #[test]
    fn target_exhaustion_stalls() {
        let mut m = MshrFile::new(2, 2);
        m.register(0x40, t(1));
        m.register(0x40, t(2));
        assert_eq!(m.register(0x40, t(3)), MshrOutcome::FullTargets);
        // A different line can still allocate.
        assert_eq!(m.register(0x80, t(4)), MshrOutcome::Allocated);
    }

    #[test]
    fn entry_exhaustion_stalls() {
        let mut m = MshrFile::new(2, 8);
        m.register(0x40, t(1));
        m.register(0x80, t(2));
        assert!(m.is_full());
        assert_eq!(m.register(0xc0, t(3)), MshrOutcome::FullEntries);
        // Merging into a pending line still works while full.
        assert_eq!(m.register(0x40, t(4)), MshrOutcome::Merged);
    }

    #[test]
    fn complete_returns_all_targets_in_order() {
        let mut m = MshrFile::new(2, 4);
        m.register(0x40, t(1));
        m.register(0x40, t(2));
        m.register(0x40, t(3));
        let targets = m.complete(0x40).unwrap();
        assert_eq!(
            targets.iter().map(|x| x.req_id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(m.occupancy(), 0);
        assert!(!m.contains(0x40));
        assert!(m.complete(0x40).is_none());
    }

    #[test]
    fn free_targets_tracking() {
        let mut m = MshrFile::new(2, 3);
        assert_eq!(m.free_targets(0x40), None);
        m.register(0x40, t(1));
        assert_eq!(m.free_targets(0x40), Some(2));
        m.register(0x40, t(2));
        assert_eq!(m.free_targets(0x40), Some(1));
    }

    #[test]
    fn snapshot_reflects_file() {
        let mut m = MshrFile::new(3, 4);
        m.register(0x40, t(1));
        m.register(0x40, t(2));
        m.register(0x100, t(3));
        let mut s = MshrSnapshot::default();
        m.snapshot_into(&mut s);
        assert_eq!(s.entries.len(), 2);
        assert!(s.contains(0x40));
        assert!(s.contains(0x100));
        assert!(!s.contains(0x80));
        assert_eq!(s.free_targets(0x40), Some(2));
        assert_eq!(s.free_entries(), 1);
    }

    #[test]
    fn entry_reuse_after_completion() {
        let mut m = MshrFile::new(1, 1);
        assert_eq!(m.register(0x40, t(1)), MshrOutcome::Allocated);
        assert_eq!(m.register(0x80, t(2)), MshrOutcome::FullEntries);
        m.complete(0x40);
        assert_eq!(m.register(0x80, t(2)), MshrOutcome::Allocated);
    }
}
