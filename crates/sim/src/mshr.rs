//! Miss Status Holding Registers (Section 2.4 of the paper).
//!
//! The MSHR file has two dimensions that both cause pipeline stalls when
//! exhausted:
//!
//! * `numEntry` — distinct outstanding cache misses (one DRAM fetch each);
//! * `numTarget` — requests merged onto one outstanding miss.
//!
//! A *merge* ("MSHR hit") rides an already-pending DRAM access: its lookup
//! latency overlaps DRAM latency, which is exactly why the paper's MA
//! arbitration policy prioritizes predicted MSHR hits. A read-only
//! [`MshrSnapshot`] of the file is exported to the arbiter every cycle,
//! modelling the paper's "direct wire connection" (Section 4.3.1).

use crate::types::{Addr, CoreId, ReqId};

/// Outcome of attempting to register a miss in the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; a DRAM fetch must be issued.
    Allocated,
    /// The miss was merged into an existing entry for the same line.
    Merged,
    /// All entries are in use and the line is not pending: stall.
    FullEntries,
    /// The line is pending but its target list is full: stall.
    FullTargets,
}

/// One requester waiting on an outstanding line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrTarget {
    pub req_id: ReqId,
    pub core: CoreId,
    pub is_write: bool,
}

/// The MSHR file of one LLC slice.
///
/// Data-oriented layout: entry metadata lives in small parallel arrays
/// and every entry's target list occupies a fixed-size window of one
/// flat preallocated buffer. The file performs **zero heap allocations
/// after construction** — [`MshrFile::complete`] hands back the
/// retiring entry's targets as a borrowed slice instead of a fresh
/// `Vec` (the seed implementation allocated one `Vec` per LLC miss,
/// which dominated the steady-state tick's allocator traffic).
#[derive(Debug, Clone)]
pub struct MshrFile {
    /// Line address per entry slot (meaningful only where `valid`).
    lines: Vec<Addr>,
    valid: Vec<bool>,
    /// Live target count per entry slot.
    target_len: Vec<usize>,
    /// Flat target storage: slot `i` owns `[i * num_targets ..]`.
    targets: Vec<MshrTarget>,
    num_targets: usize,
    occupied: usize,
}

impl MshrFile {
    pub fn new(num_entries: usize, num_targets: usize) -> Self {
        assert!(num_entries > 0 && num_targets > 0);
        let filler = MshrTarget {
            req_id: 0,
            core: 0,
            is_write: false,
        };
        MshrFile {
            lines: vec![0; num_entries],
            valid: vec![false; num_entries],
            target_len: vec![0; num_entries],
            targets: vec![filler; num_entries * num_targets],
            num_targets,
            occupied: 0,
        }
    }

    /// Slot holding `line_addr`, if pending.
    #[inline]
    fn slot_of(&self, line_addr: Addr) -> Option<usize> {
        (0..self.lines.len()).find(|&i| self.valid[i] && self.lines[i] == line_addr)
    }

    /// Attempts to register a miss for `line_addr` on behalf of `target`.
    pub fn register(&mut self, line_addr: Addr, target: MshrTarget) -> MshrOutcome {
        // Merge path first: the line may already be pending.
        if let Some(slot) = self.slot_of(line_addr) {
            let len = self.target_len[slot];
            if len >= self.num_targets {
                return MshrOutcome::FullTargets;
            }
            self.targets[slot * self.num_targets + len] = target;
            self.target_len[slot] = len + 1;
            return MshrOutcome::Merged;
        }
        // Allocate a fresh entry.
        match self.valid.iter().position(|&v| !v) {
            Some(slot) => {
                self.lines[slot] = line_addr;
                self.valid[slot] = true;
                self.targets[slot * self.num_targets] = target;
                self.target_len[slot] = 1;
                self.occupied += 1;
                MshrOutcome::Allocated
            }
            None => MshrOutcome::FullEntries,
        }
    }

    /// Frees the entry for `line_addr` (DRAM fill arrived) and returns its
    /// waiting targets as a slice borrowed from the file's flat storage
    /// (valid until the next `register`). Returns `None` if no entry
    /// matches (e.g. a write-back completion).
    pub fn complete(&mut self, line_addr: Addr) -> Option<&[MshrTarget]> {
        let slot = self.slot_of(line_addr)?;
        self.valid[slot] = false;
        self.occupied -= 1;
        let base = slot * self.num_targets;
        Some(&self.targets[base..base + self.target_len[slot]])
    }

    /// What [`MshrFile::register`] would return for `line_addr`, without
    /// mutating the file. Used by the fast-forward engine to classify a
    /// ready pipeline head as "would advance" vs "stalls every cycle".
    pub fn probe(&self, line_addr: Addr) -> MshrOutcome {
        if let Some(slot) = self.slot_of(line_addr) {
            if self.target_len[slot] >= self.num_targets {
                MshrOutcome::FullTargets
            } else {
                MshrOutcome::Merged
            }
        } else if self.occupied == self.lines.len() {
            MshrOutcome::FullEntries
        } else {
            MshrOutcome::Allocated
        }
    }

    /// Whether `line_addr` currently has a pending entry.
    pub fn contains(&self, line_addr: Addr) -> bool {
        self.slot_of(line_addr).is_some()
    }

    /// Remaining target slots for a pending line (None if not pending).
    pub fn free_targets(&self, line_addr: Addr) -> Option<usize> {
        self.slot_of(line_addr)
            .map(|slot| self.num_targets - self.target_len[slot])
    }

    /// Occupied entries.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Total entries (`numEntry`).
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    pub fn is_full(&self) -> bool {
        self.occupied == self.lines.len()
    }

    /// Builds a snapshot for the arbiter "direct wire" (addr + target
    /// count per live entry).
    pub fn snapshot_into(&self, snap: &mut MshrSnapshot) {
        snap.entries.clear();
        for i in 0..self.lines.len() {
            if self.valid[i] {
                snap.entries.push(SnapshotEntry {
                    line_addr: self.lines[i],
                    num_targets: self.target_len[i],
                });
            }
        }
        snap.capacity = self.lines.len();
        snap.num_targets = self.num_targets;
    }
}

/// One row of the arbiter-visible MSHR summary (Fig 5: "addr | num").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotEntry {
    pub line_addr: Addr,
    pub num_targets: usize,
}

/// Real-time summary of the MSHR passed to the arbiter each cycle.
#[derive(Debug, Clone, Default)]
pub struct MshrSnapshot {
    pub entries: Vec<SnapshotEntry>,
    /// `numEntry` of the underlying file.
    pub capacity: usize,
    /// `numTarget` of the underlying file.
    pub num_targets: usize,
}

impl MshrSnapshot {
    /// Whether the snapshot shows a pending entry for `line_addr`.
    pub fn contains(&self, line_addr: Addr) -> bool {
        self.entries.iter().any(|e| e.line_addr == line_addr)
    }

    /// Target slots still free for `line_addr`, if pending.
    pub fn free_targets(&self, line_addr: Addr) -> Option<usize> {
        self.entries
            .iter()
            .find(|e| e.line_addr == line_addr)
            .map(|e| self.num_targets.saturating_sub(e.num_targets))
    }

    /// Entries still free in the file according to the snapshot.
    pub fn free_entries(&self) -> usize {
        self.capacity - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: ReqId) -> MshrTarget {
        MshrTarget {
            req_id: id,
            core: (id % 4) as usize,
            is_write: false,
        }
    }

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(2, 2);
        assert_eq!(m.register(0x40, t(1)), MshrOutcome::Allocated);
        assert_eq!(m.register(0x40, t(2)), MshrOutcome::Merged);
        assert_eq!(m.occupancy(), 1);
        assert!(m.contains(0x40));
    }

    #[test]
    fn target_exhaustion_stalls() {
        let mut m = MshrFile::new(2, 2);
        m.register(0x40, t(1));
        m.register(0x40, t(2));
        assert_eq!(m.register(0x40, t(3)), MshrOutcome::FullTargets);
        // A different line can still allocate.
        assert_eq!(m.register(0x80, t(4)), MshrOutcome::Allocated);
    }

    #[test]
    fn entry_exhaustion_stalls() {
        let mut m = MshrFile::new(2, 8);
        m.register(0x40, t(1));
        m.register(0x80, t(2));
        assert!(m.is_full());
        assert_eq!(m.register(0xc0, t(3)), MshrOutcome::FullEntries);
        // Merging into a pending line still works while full.
        assert_eq!(m.register(0x40, t(4)), MshrOutcome::Merged);
    }

    #[test]
    fn complete_returns_all_targets_in_order() {
        let mut m = MshrFile::new(2, 4);
        m.register(0x40, t(1));
        m.register(0x40, t(2));
        m.register(0x40, t(3));
        let targets = m.complete(0x40).unwrap();
        assert_eq!(
            targets.iter().map(|x| x.req_id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(m.occupancy(), 0);
        assert!(!m.contains(0x40));
        assert!(m.complete(0x40).is_none());
    }

    #[test]
    fn free_targets_tracking() {
        let mut m = MshrFile::new(2, 3);
        assert_eq!(m.free_targets(0x40), None);
        m.register(0x40, t(1));
        assert_eq!(m.free_targets(0x40), Some(2));
        m.register(0x40, t(2));
        assert_eq!(m.free_targets(0x40), Some(1));
    }

    #[test]
    fn snapshot_reflects_file() {
        let mut m = MshrFile::new(3, 4);
        m.register(0x40, t(1));
        m.register(0x40, t(2));
        m.register(0x100, t(3));
        let mut s = MshrSnapshot::default();
        m.snapshot_into(&mut s);
        assert_eq!(s.entries.len(), 2);
        assert!(s.contains(0x40));
        assert!(s.contains(0x100));
        assert!(!s.contains(0x80));
        assert_eq!(s.free_targets(0x40), Some(2));
        assert_eq!(s.free_entries(), 1);
    }

    #[test]
    fn entry_reuse_after_completion() {
        let mut m = MshrFile::new(1, 1);
        assert_eq!(m.register(0x40, t(1)), MshrOutcome::Allocated);
        assert_eq!(m.register(0x80, t(2)), MshrOutcome::FullEntries);
        m.complete(0x40);
        assert_eq!(m.register(0x80, t(2)), MshrOutcome::Allocated);
    }
}
