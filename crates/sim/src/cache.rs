//! Set-associative cache storage with LRU replacement.
//!
//! This models the *storage arrays* (tag + data) shared by L1 and L2.
//! Policy differences between the two levels (Table 5) are expressed at
//! the call sites:
//!
//! * L1: streaming insertion (new lines enter at LRU position),
//!   write-no-allocate, write-through — so L1 never holds dirty lines.
//! * L2: write-allocate, write-back — insertions may return a dirty
//!   victim that must be written back to DRAM; alloc-on-fill means
//!   insertion happens on the response path, not at miss time.

use crate::types::{Addr, LINE_BYTES};

/// An evicted line returned by [`SetAssocCache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    pub line_addr: Addr,
    pub dirty: bool,
}

/// How a newly inserted line is positioned in the replacement order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPolicy {
    /// Most-recently-used insertion (default for caches expecting reuse).
    Mru,
    /// Least-recently-used insertion (streaming hint: the line is the
    /// first candidate for eviction unless it is re-referenced).
    Lru,
}

/// Sentinel for an empty way. Safe because a real tag is a line index
/// shifted right by at least the set bits: reaching `u64::MAX` would
/// require a byte address far beyond the simulated physical space.
const INVALID_TAG: u64 = u64::MAX;

/// Set-associative cache storage with true-LRU replacement.
///
/// The cache operates on line-aligned addresses. Set indexing can be
/// offset by `index_shift` so that a sliced LLC can first peel off the
/// slice-select bits (`set = (line >> index_shift) % num_sets`).
///
/// Storage is structure-of-arrays: the lookup path scans a dense
/// `u64` tag row (one host cache line for an 8-way set, and the
/// compiler vectorizes the compare), while LRU stamps and dirty bits —
/// needed only on hits and fills — live in separate arrays. The seed's
/// array-of-`Way`-structs spread each set scan over several cache
/// lines, and these scans are the single hottest memory pattern in the
/// simulator (multi-megabyte LLC models never fit the host cache).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// Way tags, `num_sets * assoc`, [`INVALID_TAG`] = empty way.
    tags: Vec<u64>,
    /// LRU stamps (larger = more recently used), parallel to `tags`.
    lru: Vec<u64>,
    /// Per-set dirty bitmasks (bit `i` = way `i`; assoc <= 64).
    dirty: Vec<u64>,
    num_sets: usize,
    assoc: usize,
    /// Number of low line-index bits consumed by slice selection.
    index_shift: u32,
    /// `log2(num_sets)` when the set count is a power of two — the
    /// common case (every Table 5 geometry); turns the per-access
    /// div/mod pair in `set_of`/`tag_of` into shifts and masks on the
    /// hottest path of the whole simulator.
    sets_log2: Option<u32>,
    stamp: u64,
}

impl SetAssocCache {
    /// Creates a cache with `num_sets` sets of `assoc` ways.
    ///
    /// `index_shift` is the number of line-index bits to skip before the
    /// set index (used by sliced caches; pass 0 for a private cache).
    pub fn new(num_sets: usize, assoc: usize, index_shift: u32) -> Self {
        assert!(num_sets > 0 && assoc > 0);
        assert!(assoc <= 64, "dirty bitmask holds at most 64 ways");
        SetAssocCache {
            tags: vec![INVALID_TAG; num_sets * assoc],
            lru: vec![0; num_sets * assoc],
            dirty: vec![0; num_sets],
            num_sets,
            assoc,
            index_shift,
            sets_log2: num_sets
                .is_power_of_two()
                .then(|| num_sets.trailing_zeros()),
            stamp: 1,
        }
    }

    #[inline]
    fn set_of(&self, line_addr: Addr) -> usize {
        let line = line_addr >> LINE_BYTES.trailing_zeros();
        let idx = line >> self.index_shift;
        match self.sets_log2 {
            Some(b) => (idx & ((1u64 << b) - 1)) as usize,
            None => (idx % self.num_sets as u64) as usize,
        }
    }

    #[inline]
    fn tag_of(&self, line_addr: Addr) -> u64 {
        let line = line_addr >> LINE_BYTES.trailing_zeros();
        let idx = line >> self.index_shift;
        match self.sets_log2 {
            Some(b) => idx >> b,
            None => idx / self.num_sets as u64,
        }
    }

    fn reconstruct(&self, set: usize, tag: u64) -> Addr {
        let line = (tag * self.num_sets as u64 + set as u64) << self.index_shift;
        line << LINE_BYTES.trailing_zeros()
    }

    /// Index of the way holding `tag` within `set`'s tag row, if any.
    /// [`INVALID_TAG`] marks empty ways, so no validity mask is needed
    /// on the lookup path — the scan is a dense `u64` compare.
    #[inline]
    fn way_of(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.assoc;
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == tag)
    }

    /// Hints the host CPU to pull `line_addr`'s set (tag row and LRU
    /// row) into cache. The modelled arrays span megabytes, so every
    /// set touch is a host cache miss unless issued ahead of use; the
    /// slice pipeline knows a line's set several simulated cycles
    /// before the scan (arbitration → tag lookup, fill → response
    /// dequeue) — exactly the window a prefetch needs. Behaviorally a
    /// no-op.
    #[inline]
    pub fn prefetch(&self, line_addr: Addr) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let base = self.set_of(line_addr) * self.assoc;
            _mm_prefetch(self.tags.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(self.lru.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = line_addr;
    }

    /// Probes for `line_addr` without modifying replacement state.
    #[inline]
    pub fn probe(&self, line_addr: Addr) -> bool {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        self.way_of(set, tag).is_some()
    }

    /// Locates `line_addr` without modifying replacement state,
    /// returning its `(set, way)` for a later [`SetAssocCache::touch`].
    /// Lets a caller split the tag scan from the LRU update so a
    /// classify-then-commit sequence scans each set only once.
    #[inline]
    pub fn find(&self, line_addr: Addr) -> Option<(usize, usize)> {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        self.way_of(set, tag).map(|way| (set, way))
    }

    /// Completes the hit that [`SetAssocCache::find`] located: bumps the
    /// LRU stamp (and the dirty bit for writes) exactly as
    /// [`SetAssocCache::access`] would have. Only valid while no other
    /// mutation has intervened since the `find`.
    #[inline]
    pub fn touch(&mut self, set: usize, way: usize, write: bool) {
        self.stamp += 1;
        self.lru[set * self.assoc + way] = self.stamp;
        if write {
            self.dirty[set] |= 1 << way;
        }
    }

    /// Looks up `line_addr`; on hit, updates LRU (and the dirty bit when
    /// `write` is set) and returns true.
    pub fn access(&mut self, line_addr: Addr, write: bool) -> bool {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        self.stamp += 1;
        match self.way_of(set, tag) {
            Some(way) => {
                self.lru[set * self.assoc + way] = self.stamp;
                if write {
                    self.dirty[set] |= 1 << way;
                }
                true
            }
            None => false,
        }
    }

    /// Inserts `line_addr` (replacing the LRU way if the set is full) and
    /// returns the victim if a valid line was evicted.
    ///
    /// If the line is already present this is a no-op hit-update (the
    /// dirty bit is OR-ed in) and `None` is returned.
    pub fn insert(&mut self, line_addr: Addr, dirty: bool, policy: InsertPolicy) -> Option<Victim> {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        let base = set * self.assoc;
        self.stamp += 1;
        let stamp = self.stamp;
        // Already present: refresh.
        if let Some(way) = self.way_of(set, tag) {
            self.lru[base + way] = stamp;
            if dirty {
                self.dirty[set] |= 1 << way;
            }
            return None;
        }
        let insert_lru = match policy {
            InsertPolicy::Mru => stamp,
            // Lower than every live stamp => evicted first.
            InsertPolicy::Lru => 0,
        };
        // Empty way? (First-empty order matches the seed.)
        if let Some(way) = self.way_of(set, INVALID_TAG) {
            self.tags[base + way] = tag;
            self.lru[base + way] = insert_lru;
            if dirty {
                self.dirty[set] |= 1 << way;
            } else {
                self.dirty[set] &= !(1 << way);
            }
            return None;
        }
        // Evict the LRU way (first minimal stamp, as the seed's
        // `min_by_key` returned).
        let vi = (0..self.assoc)
            .min_by_key(|&i| self.lru[base + i])
            .expect("associativity > 0");
        let victim = Victim {
            line_addr: self.reconstruct(set, self.tags[base + vi]),
            dirty: self.dirty[set] & (1 << vi) != 0,
        };
        self.tags[base + vi] = tag;
        self.lru[base + vi] = insert_lru;
        if dirty {
            self.dirty[set] |= 1 << vi;
        } else {
            self.dirty[set] &= !(1 << vi);
        }
        Some(victim)
    }

    /// Removes `line_addr` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line_addr: Addr) -> Option<bool> {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        let way = self.way_of(set, tag)?;
        self.tags[set * self.assoc + way] = INVALID_TAG;
        Some(self.dirty[set] & (1 << way) != 0)
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    pub fn associativity(&self) -> usize {
        self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(line: u64) -> Addr {
        line * LINE_BYTES
    }

    #[test]
    fn hit_after_insert() {
        let mut c = SetAssocCache::new(4, 2, 0);
        assert!(!c.access(addr(0), false));
        c.insert(addr(0), false, InsertPolicy::Mru);
        assert!(c.access(addr(0), false));
        assert!(c.probe(addr(0)));
        assert!(!c.probe(addr(4))); // same set, different tag
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: inserting 3 lines evicts the least recently used.
        let mut c = SetAssocCache::new(1, 2, 0);
        c.insert(addr(1), false, InsertPolicy::Mru);
        c.insert(addr(2), false, InsertPolicy::Mru);
        c.access(addr(1), false); // 2 is now LRU
        let v = c.insert(addr(3), false, InsertPolicy::Mru).unwrap();
        assert_eq!(v.line_addr, addr(2));
        assert!(c.probe(addr(1)));
        assert!(c.probe(addr(3)));
    }

    #[test]
    fn streaming_insert_is_first_victim() {
        let mut c = SetAssocCache::new(1, 2, 0);
        c.insert(addr(1), false, InsertPolicy::Mru);
        c.insert(addr(2), false, InsertPolicy::Lru); // streaming
        let v = c.insert(addr(3), false, InsertPolicy::Mru).unwrap();
        assert_eq!(v.line_addr, addr(2), "streaming line must be evicted first");
    }

    #[test]
    fn streaming_line_promoted_on_reuse() {
        let mut c = SetAssocCache::new(1, 2, 0);
        c.insert(addr(1), false, InsertPolicy::Mru);
        c.insert(addr(2), false, InsertPolicy::Lru);
        c.access(addr(2), false); // promoted by reuse
        let v = c.insert(addr(3), false, InsertPolicy::Mru).unwrap();
        assert_eq!(v.line_addr, addr(1));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = SetAssocCache::new(1, 1, 0);
        c.insert(addr(1), false, InsertPolicy::Mru);
        c.access(addr(1), true); // dirty it
        let v = c.insert(addr(2), false, InsertPolicy::Mru).unwrap();
        assert_eq!(v.line_addr, addr(1));
        assert!(v.dirty);
    }

    #[test]
    fn insert_existing_merges_dirty() {
        let mut c = SetAssocCache::new(1, 2, 0);
        c.insert(addr(1), false, InsertPolicy::Mru);
        assert!(c.insert(addr(1), true, InsertPolicy::Mru).is_none());
        let v = c.insert(addr(2), false, InsertPolicy::Mru);
        assert!(v.is_none());
        let v = c.insert(addr(3), false, InsertPolicy::Mru).unwrap();
        // addr(1) was refreshed by the second insert, so addr(2) is LRU...
        // unless addr(1)'s refresh stamp is older. Insert order: 1, 1, 2, 3.
        // Stamps: 1 gets stamp from second insert (older than 2's).
        assert_eq!(v.line_addr, addr(1));
        assert!(v.dirty, "dirty bit must be merged on re-insert");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(2, 2, 0);
        c.insert(addr(0), true, InsertPolicy::Mru);
        assert_eq!(c.invalidate(addr(0)), Some(true));
        assert_eq!(c.invalidate(addr(0)), None);
        assert!(!c.probe(addr(0)));
    }

    #[test]
    fn victim_address_reconstruction_with_shift() {
        // 4 sets, shift 3 (8 slices): line index bits [3..5] select the set.
        let mut c = SetAssocCache::new(4, 1, 3);
        // Lines 8 and 8 + 4*8 = 40 share slice bits (line % 8 == 0) and set.
        let a = addr(8);
        let b = addr(8 + 32);
        c.insert(a, true, InsertPolicy::Mru);
        let v = c.insert(b, false, InsertPolicy::Mru).unwrap();
        assert_eq!(v.line_addr, a);
        assert!(v.dirty);
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = SetAssocCache::new(4, 2, 0);
        assert_eq!(c.occupancy(), 0);
        c.insert(addr(0), false, InsertPolicy::Mru);
        c.insert(addr(1), false, InsertPolicy::Mru);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = SetAssocCache::new(2, 1, 0);
        c.insert(addr(0), false, InsertPolicy::Mru); // set 0
        c.insert(addr(1), false, InsertPolicy::Mru); // set 1
        assert!(c.probe(addr(0)));
        assert!(c.probe(addr(1)));
    }
}
