//! Executable trace representation: thread blocks of vector instructions.
//!
//! The hybrid framework (Section 5 of the paper) drives each simulated
//! vector core with a memory trace: "cycles of each non-memory
//! operations, memory access addresses, R/W". A trace is partitioned
//! into *thread blocks* — the unit the runtime scheduler assigns to
//! instruction windows and migrates between cores.

use serde::{Deserialize, Serialize};

use crate::types::Addr;

/// One vector instruction of a thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Non-memory work occupying the vector unit for `cycles`.
    Compute { cycles: u32 },
    /// Vector load of `bytes` starting at `addr` (split into line
    /// requests by the L1).
    Load { addr: Addr, bytes: u32 },
    /// Vector store of `bytes` at `addr` (posted; write-through).
    Store { addr: Addr, bytes: u32 },
    /// Wait until all outstanding loads of this thread block returned
    /// (reduction barrier before dependent stores).
    Barrier,
}

/// A schedulable unit: a short sequence of instructions covering 1–2
/// output cache lines (Section 6.2.2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadBlock {
    pub instrs: Vec<Instr>,
}

impl ThreadBlock {
    /// Number of vector loads in the block.
    pub fn num_loads(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count()
    }

    /// Number of vector stores in the block.
    pub fn num_stores(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count()
    }

    /// Total bytes loaded.
    pub fn bytes_loaded(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Load { bytes, .. } => *bytes as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes stored.
    pub fn bytes_stored(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Store { bytes, .. } => *bytes as u64,
                _ => 0,
            })
            .sum()
    }
}

/// Identifier of a thread block within a [`Program`].
pub type TbId = usize;

/// A complete operator trace: thread blocks plus their initial
/// assignment to cores.
///
/// `assignment[i]` is the home core of block `i`; the runtime scheduler
/// may migrate blocks to other cores when their home core falls behind.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    pub blocks: Vec<ThreadBlock>,
    pub assignment: Vec<usize>,
}

impl Program {
    pub fn new(blocks: Vec<ThreadBlock>, assignment: Vec<usize>) -> Self {
        assert_eq!(blocks.len(), assignment.len());
        Program { blocks, assignment }
    }

    /// Round-robin assignment of `blocks` over `num_cores` cores, in
    /// block order (consecutive blocks land on consecutive cores, which
    /// is what keeps GQA-sharing blocks temporally close).
    pub fn round_robin(blocks: Vec<ThreadBlock>, num_cores: usize) -> Self {
        let assignment = (0..blocks.len()).map(|i| i % num_cores).collect();
        Program { blocks, assignment }
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total bytes of load traffic in the program.
    pub fn total_load_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes_loaded()).sum()
    }

    /// Total bytes of store traffic in the program.
    pub fn total_store_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes_stored()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_accounting() {
        let tb = ThreadBlock {
            instrs: vec![
                Instr::Load {
                    addr: 0,
                    bytes: 128,
                },
                Instr::Compute { cycles: 4 },
                Instr::Load {
                    addr: 128,
                    bytes: 128,
                },
                Instr::Barrier,
                Instr::Store {
                    addr: 4096,
                    bytes: 64,
                },
            ],
        };
        assert_eq!(tb.num_loads(), 2);
        assert_eq!(tb.num_stores(), 1);
        assert_eq!(tb.bytes_loaded(), 256);
        assert_eq!(tb.bytes_stored(), 64);
    }

    #[test]
    fn round_robin_assignment() {
        let blocks = vec![ThreadBlock::default(); 5];
        let p = Program::round_robin(blocks, 2);
        assert_eq!(p.assignment, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn serde_round_trip() {
        let p = Program::round_robin(
            vec![ThreadBlock {
                instrs: vec![
                    Instr::Load {
                        addr: 64,
                        bytes: 64,
                    },
                    Instr::Barrier,
                ],
            }],
            1,
        );
        let s = serde_json::to_string(&p).unwrap();
        let q: Program = serde_json::from_str(&s).unwrap();
        assert_eq!(p.blocks, q.blocks);
        assert_eq!(p.assignment, q.assignment);
    }
}
