//! Declarative campaign runner: a JSON-defined sweep, executed in
//! parallel, streamed as JSONL.
//!
//! ```text
//! cargo run --release --example campaign                 # embedded demo grid
//! cargo run --release --example campaign -- grid.json    # your own definition
//! cargo run --release --example campaign -- --print-default > grid.json
//! ```
//!
//! The JSONL records go to stdout (one `CellRecord` per line — cell,
//! full `RunReport`, baseline-relative speedup); a human summary goes
//! to stderr so redirection stays clean:
//!
//! ```text
//! cargo run --release --example campaign | head -1 | python3 -m json.tool
//! ```
//!
//! The embedded demo grid crosses three workload families (decode
//! Logit, attention-output A·V, chunked prefill) with two sequence
//! lengths and three policies — every parameter, including the full
//! DynMg configuration, travels in the JSON.

use llamcat_bench::Campaign;

/// The demo grid. Tiny on purpose: it doubles as the CI smoke job.
const DEFAULT_CAMPAIGN_JSON: &str = r#"{
  "name": "demo-grid",
  "workloads": [
    {"Logit": {"heads": 8, "group_size": 8, "head_dim": 128}},
    {"AttnOutput": {"heads": 8, "group_size": 8, "head_dim": 128}},
    {"PrefillLogit": {"heads": 8, "group_size": 8, "head_dim": 128, "query_tokens": 4}}
  ],
  "seq_lens": [128, 256],
  "l2_mb": [16],
  "policies": [
    {"arb": "Fifo", "throttle": "None"},
    {"arb": "Fifo", "throttle": {"DynMg": {"config": {
      "sampling_period": 6000, "sub_period": 1200, "max_gear": 4,
      "gear_fractions": [0.0, 0.125, 0.25, 0.5, 0.75],
      "in_core": {"c_idle_upper": 4, "c_mem_upper": 250, "c_mem_lower": 180}}}}},
    {"arb": "BalancedMshrAware", "throttle": {"DynMg": {"config": {
      "sampling_period": 6000, "sub_period": 1200, "max_gear": 4,
      "gear_fractions": [0.0, 0.125, 0.25, 0.5, 0.75],
      "in_core": {"c_idle_upper": 4, "c_mem_upper": 250, "c_mem_lower": 180}}}}}
  ],
  "baseline": {"arb": "Fifo", "throttle": "None"},
  "layout": "PairStream",
  "l_tile": 32,
  "max_cycles": null
}"#;

fn main() {
    let arg = std::env::args().nth(1);
    let json = match arg.as_deref() {
        Some("--print-default") => {
            println!("{DEFAULT_CAMPAIGN_JSON}");
            return;
        }
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read campaign file `{path}`: {e}")),
        None => DEFAULT_CAMPAIGN_JSON.to_string(),
    };

    let campaign: Campaign =
        serde_json::from_str(&json).expect("campaign JSON must parse (see --print-default)");
    // Definitions are data: what we run is exactly what re-serializes.
    let canonical = serde_json::to_string(&campaign).expect("campaign serializes");
    let reparsed: Campaign = serde_json::from_str(&canonical).expect("canonical JSON parses");
    assert_eq!(reparsed, campaign, "campaign must round-trip losslessly");

    eprintln!(
        "campaign `{}`: {} workloads x {} seq_lens x {} L2 sizes x {} policies = {} cells",
        campaign.name,
        campaign.workloads.len(),
        campaign.seq_lens.len(),
        campaign.l2_mb.len(),
        campaign.policies.len(),
        campaign.cells().len(),
    );

    let report = campaign
        .run()
        .unwrap_or_else(|e| panic!("campaign failed: {e}"));
    report
        .write_jsonl(std::io::stdout())
        .expect("write JSONL to stdout");

    if campaign.baseline.is_some() {
        eprintln!("\ngeomean speedups over baseline:");
        for (label, g) in report.geomeans() {
            eprintln!("  {label:<16} {g:.3}x");
        }
    }
    eprintln!("\n{} JSONL records written", report.records.len());
}
