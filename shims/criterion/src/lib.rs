//! Offline stand-in for `criterion`, covering the API the `sim_speed`
//! bench uses: `criterion_group!` / `criterion_main!`, `bench_function`,
//! `Bencher::iter`, `Bencher::iter_batched` and `sample_size`.
//!
//! Timing is a plain wall-clock mean over `sample_size` samples after a
//! short calibration pass — no outlier analysis or statistics. Passing
//! `--test` (as `cargo test` does for benchmarks) runs every benchmark
//! body once and skips measurement.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint; the shim runs one batch element per iteration
/// regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: if self.test_mode {
                Mode::Test
            } else {
                Mode::Measure {
                    sample_size: self.sample_size,
                }
            },
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(r) if !self.test_mode => println!(
                "{id:<40} {:>12.1} ns/iter ({} iterations)",
                r.ns_per_iter, r.iters
            ),
            _ => println!("{id:<40} ok (test mode)"),
        }
        self
    }
}

enum Mode {
    Test,
    Measure { sample_size: usize },
}

struct Report {
    ns_per_iter: f64,
    iters: u64,
}

/// Per-benchmark timing loop driver.
pub struct Bencher {
    mode: Mode,
    report: Option<Report>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let t0 = Instant::now();
            black_box(routine());
            t0.elapsed()
        });
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            t0.elapsed()
        });
    }

    /// Runs one timed iteration via `sample` repeatedly and records the
    /// mean. Calibration: keep iterating until either the sample budget
    /// or a 2-second wall-clock budget is exhausted.
    fn run<F: FnMut() -> Duration>(&mut self, mut sample: F) {
        match self.mode {
            Mode::Test => {
                sample();
                self.report = None;
            }
            Mode::Measure { sample_size } => {
                // Warm-up.
                sample();
                let budget = Duration::from_secs(2);
                let started = Instant::now();
                let mut total = Duration::ZERO;
                let mut iters = 0u64;
                while iters < sample_size as u64 && started.elapsed() < budget {
                    total += sample();
                    iters += 1;
                }
                self.report = Some(Report {
                    ns_per_iter: total.as_nanos() as f64 / iters.max(1) as f64,
                    iters,
                });
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
