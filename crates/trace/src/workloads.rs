//! Open workload layer: operators as pluggable trait objects.
//!
//! The paper evaluates one operator (decode Logit, Q·Kᵀ) on two model
//! shapes, and the seed API hardcoded that closed world as a two-variant
//! `Model` enum. This module replaces it with an open one:
//!
//! * [`Workload`] — the trait an operator implements to participate in
//!   experiments: an {H, G, L, D} iteration space plus a per-thread-block
//!   instruction-stream builder. Mapping construction and thread-block
//!   enumeration are shared (see [`Layout`] and
//!   [`crate::tracegen::generate_with`]); only the memory behavior of
//!   one block is operator-specific.
//! * [`LogitWorkload`] — the paper's decode Logit operator (the former
//!   `Model` path).
//! * [`AttnOutputWorkload`] — the attention-output GEMV `A·V`: consumes
//!   the probabilities the Logit operator produced and streams the V
//!   cache, with the same GQA sharing structure (the G query heads of a
//!   group read the same `V[h]`).
//! * [`PrefillLogitWorkload`] — a chunked-prefill variant: several query
//!   tokens score against the K cache per pass, raising arithmetic
//!   intensity and widening each block's store footprint.
//! * [`SharedPrefixWorkload`] — decode Logit over a context whose first
//!   `prefix_len` tokens live in the *shared* KV window (a common system
//!   prompt reused across tenants; see `llamcat_sim::kv`).
//! * [`GqaDecodeWorkload`] — one fused GQA decode step (Logit +
//!   attention-output), streaming K and V back to back.
//! * [`WorkloadSpec`] — the serde-round-trippable description of a
//!   workload *family* (everything but the sequence length), so campaign
//!   definitions can cross workloads × sequence lengths as data.
//!
//! All three workloads share the {H, G, L, D} space, so every [`Layout`]
//! loop nest, the mapper and the legality constraints apply unchanged.

use std::fmt;
use std::sync::Arc;

use llamcat_sim::kv::SHARED_KV_BASE;
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::types::Addr;
use serde::{Deserialize, Serialize};

use crate::mapping::{Layout, Mapping};
use crate::tracegen::{
    generate_with, logit_block, push_vector_accesses, TraceGenConfig, TraceMeta,
};
use crate::workload::{LogitOp, ELEM_BYTES};

/// Base virtual address of the V cache (attention-output workload).
/// Sits above the score region; tensors never overlap for realistic
/// shapes (the score region tops out well below at 2·H·G·L bytes).
pub const V_BASE: Addr = 0x10_0000_0000;
/// Base virtual address of the attention-output partial results.
pub const OUT_BASE: Addr = 0x80_0000_0000;

/// An operator that can be lowered to per-core memory traces.
///
/// A workload is the pairing of an iteration space (`shape`, reusing
/// [`LogitOp`]'s {H, G, L, D} dimensions) with a block builder
/// (`build_block`). The provided methods derive everything else —
/// legal mappings per [`Layout`] and full [`Program`] generation — so
/// implementing a new operator means implementing two methods.
pub trait Workload: fmt::Debug + Send + Sync {
    /// Stable label, used in reports, campaign JSONL and figures.
    fn label(&self) -> String;

    /// The {H, G, L, D} iteration space the mapping machinery tiles.
    fn shape(&self) -> LogitOp;

    /// Builds the instruction stream of one thread block
    /// (`(h, g, l_tile_index, l_tile_extent)`).
    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock;

    /// Validates the workload shape (graceful error, no panics).
    fn validate(&self) -> Result<(), String> {
        self.shape().validate()
    }

    /// The loop nest of `layout` over this workload's iteration space.
    fn mapping(&self, layout: Layout, l_tile: usize, num_cores: usize) -> Mapping {
        layout.mapping(&self.shape(), l_tile, num_cores)
    }

    /// Walks `mapping` into an executable program.
    ///
    /// Panics if the mapping is invalid for the shape; validate first
    /// ([`Mapping::validate`]) for a graceful error.
    fn generate(&self, mapping: &Mapping, cfg: &TraceGenConfig) -> (Program, TraceMeta) {
        let shape = self.shape();
        generate_with(&shape, mapping, cfg, |h, g, lt, l_tile| {
            self.build_block(cfg, h, g, lt, l_tile)
        })
    }
}

/// The paper's evaluated operator: decode-stage Logit (Q·Kᵀ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogitWorkload {
    pub op: LogitOp,
}

impl LogitWorkload {
    pub fn new(op: LogitOp) -> Self {
        LogitWorkload { op }
    }
}

impl Workload for LogitWorkload {
    fn label(&self) -> String {
        match (self.op.heads, self.op.group_size, self.op.head_dim) {
            (8, 8, 128) => "llama3 70b".to_string(),
            (8, 16, 128) => "llama3 405b".to_string(),
            (h, g, d) => format!("logit h{h} g{g} d{d}"),
        }
    }

    fn shape(&self) -> LogitOp {
        self.op
    }

    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock {
        logit_block(&self.op, cfg, h, g, lt, l_tile)
    }
}

/// Attention-output GEMV `A·V`: for each (h, g) pair,
/// `out[d] = Σ_l A[h][g][l] · V[h][l][d]`.
///
/// The memory shape mirrors the Logit operator with roles swapped: the
/// small per-pair probability row `A[h][g]` replaces Q, the streamed V
/// cache replaces K (same footprint, same per-row bytes), and each
/// block writes its L-tile's *partial* output row (split-L partial sums
/// materialized for a later reduction pass), so stores never alias
/// across blocks. GQA temporal locality is identical: the G query heads
/// of a group stream the same `V[h]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnOutputWorkload {
    pub op: LogitOp,
}

impl AttnOutputWorkload {
    pub fn new(op: LogitOp) -> Self {
        AttnOutputWorkload { op }
    }

    /// Address of element `d` of `V[h][l]` (row-major `[h][l][d]`).
    pub fn v_addr(&self, h: usize, l: usize, d: usize) -> Addr {
        debug_assert!(h < self.op.heads && l < self.op.seq_len && d < self.op.head_dim);
        V_BASE + (((h * self.op.seq_len + l) * self.op.head_dim + d) as u64) * ELEM_BYTES
    }

    /// Address of the partial output row of block (h, g, l-tile).
    pub fn partial_out_addr(&self, h: usize, g: usize, lt: usize, n_ltiles: usize) -> Addr {
        OUT_BASE + (((h * self.op.group_size + g) * n_ltiles + lt) as u64) * self.op.k_row_bytes()
    }
}

impl Workload for AttnOutputWorkload {
    fn label(&self) -> String {
        format!(
            "attn-out h{} g{} d{}",
            self.op.heads, self.op.group_size, self.op.head_dim
        )
    }

    fn shape(&self) -> LogitOp {
        self.op
    }

    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock {
        let op = &self.op;
        let vlen = cfg.vector_len_bytes;
        let row_bytes = op.k_row_bytes();
        let n_ltiles = op.seq_len / l_tile;
        let l0 = lt * l_tile;
        let mut instrs = Vec::with_capacity(l_tile * 2 + l_tile / 2 + 8);

        // Load the probability tile A[h][g][l0 .. l0+l_tile] (produced
        // by the Logit operator at the same addresses).
        push_vector_accesses(
            &mut instrs,
            op.score_addr(h, g, l0),
            l_tile as u64 * ELEM_BYTES,
            vlen,
            false,
        );

        // Stream the V rows of the tile, interleaving amortized compute.
        let mut pending_compute = 0u32;
        for li in 0..l_tile {
            push_vector_accesses(
                &mut instrs,
                self.v_addr(h, l0 + li, 0),
                row_bytes,
                vlen,
                false,
            );
            pending_compute += cfg.compute_cycles_per_row;
            if (li + 1) % cfg.compute_flush_rows == 0 && pending_compute > 0 {
                instrs.push(Instr::Compute {
                    cycles: pending_compute,
                });
                pending_compute = 0;
            }
        }
        if pending_compute > 0 {
            instrs.push(Instr::Compute {
                cycles: pending_compute,
            });
        }

        // Reduce, then store this tile's partial output row.
        instrs.push(Instr::Barrier);
        push_vector_accesses(
            &mut instrs,
            self.partial_out_addr(h, g, lt, n_ltiles),
            row_bytes,
            vlen,
            true,
        );
        ThreadBlock { instrs }
    }
}

/// Chunked-prefill Logit: `query_tokens` query rows score against the K
/// cache per pass (`score[t][l] = Σ_d q[t][d] · k[l][d]`).
///
/// Each thread block loads its pair's `query_tokens` Q rows, streams
/// the K rows of its L tile once (K traffic is *shared* across the
/// chunk — the higher arithmetic intensity that makes prefill
/// compute-friendlier than decode), and stores one score tile per query
/// token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillLogitWorkload {
    pub op: LogitOp,
    /// Query tokens scored per pass (the prefill chunk size).
    pub query_tokens: usize,
}

impl PrefillLogitWorkload {
    pub fn new(op: LogitOp, query_tokens: usize) -> Self {
        PrefillLogitWorkload { op, query_tokens }
    }

    /// Address of element `d` of query row `t` of pair (h, g)
    /// (row-major `[h][g][t][d]`).
    pub fn q_addr(&self, h: usize, g: usize, t: usize, d: usize) -> Addr {
        use crate::workload::Q_BASE;
        Q_BASE
            + ((((h * self.op.group_size + g) * self.query_tokens + t) * self.op.head_dim + d)
                as u64)
                * ELEM_BYTES
    }

    /// Address of `score[h][g][t][l]` (row-major `[h][g][t][l]`).
    pub fn score_addr(&self, h: usize, g: usize, t: usize, l: usize) -> Addr {
        use crate::workload::SCORE_BASE;
        SCORE_BASE
            + ((((h * self.op.group_size + g) * self.query_tokens + t) * self.op.seq_len + l)
                as u64)
                * ELEM_BYTES
    }
}

impl Workload for PrefillLogitWorkload {
    fn label(&self) -> String {
        format!(
            "prefill h{} g{} d{} q{}",
            self.op.heads, self.op.group_size, self.op.head_dim, self.query_tokens
        )
    }

    fn shape(&self) -> LogitOp {
        self.op
    }

    fn validate(&self) -> Result<(), String> {
        self.op.validate()?;
        if self.query_tokens == 0 {
            return Err("prefill chunk must cover at least one query token".into());
        }
        if self.query_tokens > 64 {
            return Err(format!(
                "prefill chunk of {} query tokens would overflow the instruction window",
                self.query_tokens
            ));
        }
        Ok(())
    }

    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock {
        let op = &self.op;
        let t_count = self.query_tokens;
        let vlen = cfg.vector_len_bytes;
        let row_bytes = op.k_row_bytes();
        let l0 = lt * l_tile;
        let mut instrs = Vec::with_capacity(l_tile * 2 + t_count * 3 + 8);

        // Load the chunk's Q rows for (h, g).
        for t in 0..t_count {
            push_vector_accesses(&mut instrs, self.q_addr(h, g, t, 0), row_bytes, vlen, false);
        }

        // Stream the K rows of the tile once; every row feeds
        // `query_tokens` dot products.
        let mut pending_compute = 0u32;
        for li in 0..l_tile {
            push_vector_accesses(
                &mut instrs,
                op.k_addr(h, l0 + li, 0),
                row_bytes,
                vlen,
                false,
            );
            pending_compute += cfg.compute_cycles_per_row * t_count as u32;
            if (li + 1) % cfg.compute_flush_rows == 0 && pending_compute > 0 {
                instrs.push(Instr::Compute {
                    cycles: pending_compute,
                });
                pending_compute = 0;
            }
        }
        if pending_compute > 0 {
            instrs.push(Instr::Compute {
                cycles: pending_compute,
            });
        }

        // Barrier, then one score tile per query token.
        instrs.push(Instr::Barrier);
        for t in 0..t_count {
            push_vector_accesses(
                &mut instrs,
                self.score_addr(h, g, t, l0),
                l_tile as u64 * ELEM_BYTES,
                vlen,
                true,
            );
        }
        ThreadBlock { instrs }
    }
}

/// Decode Logit over a context whose first `prefix_len` tokens are a
/// *shared* prefix (a common system prompt): their K rows live in the
/// shared KV window at [`SHARED_KV_BASE`], which the multi-tenant
/// composers deliberately do **not** relocate per tenant — every
/// request with the same shape reads the *same* shared lines, the
/// cross-request reuse a tiered KV store's prefix cache exploits. The
/// per-request remainder of the context streams from the ordinary
/// (relocated) K window.
///
/// Two corners make it a complete KV-pressure family: `prefix_len = 0`
/// with a long `seq_len` is the pure per-request long-context shape
/// that forces warm-tier eviction, and a large `prefix_len` against a
/// small warm tier is the shape where prefix-pinning eviction and
/// prefix-aware arbitration separate from plain LRU/FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedPrefixWorkload {
    pub op: LogitOp,
    /// Tokens of shared prefix (clamped to the sequence length).
    pub prefix_len: usize,
}

impl SharedPrefixWorkload {
    pub fn new(op: LogitOp, prefix_len: usize) -> Self {
        SharedPrefixWorkload { op, prefix_len }
    }

    /// The shared-prefix token count actually used (`prefix_len` clamped
    /// to the sequence length, so one family serves every `seq_len`).
    pub fn effective_prefix(&self) -> usize {
        self.prefix_len.min(self.op.seq_len)
    }

    /// Address of element `d` of shared-prefix row `K[h][l]`
    /// (row-major `[h][l][d]` in the shared window; `l` is the absolute
    /// token index, `l < effective_prefix()`).
    pub fn shared_k_addr(&self, h: usize, l: usize, d: usize) -> Addr {
        debug_assert!(h < self.op.heads && l < self.effective_prefix() && d < self.op.head_dim);
        SHARED_KV_BASE
            + (((h * self.effective_prefix() + l) * self.op.head_dim + d) as u64) * ELEM_BYTES
    }
}

impl Workload for SharedPrefixWorkload {
    fn label(&self) -> String {
        format!(
            "sharedpfx h{} g{} d{} p{}",
            self.op.heads, self.op.group_size, self.op.head_dim, self.prefix_len
        )
    }

    fn shape(&self) -> LogitOp {
        self.op
    }

    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock {
        let op = &self.op;
        let vlen = cfg.vector_len_bytes;
        let row_bytes = op.k_row_bytes();
        let prefix = self.effective_prefix();
        let l0 = lt * l_tile;
        let mut instrs = Vec::with_capacity(l_tile * 2 + l_tile / 2 + 8);

        // Load the Q row for (h, g).
        push_vector_accesses(&mut instrs, op.q_addr(h, g, 0), row_bytes, vlen, false);

        // Stream the K rows of the tile: shared-window rows for the
        // prefix, per-request rows for the rest.
        let mut pending_compute = 0u32;
        for li in 0..l_tile {
            let l = l0 + li;
            let k0 = if l < prefix {
                self.shared_k_addr(h, l, 0)
            } else {
                op.k_addr(h, l, 0)
            };
            push_vector_accesses(&mut instrs, k0, row_bytes, vlen, false);
            pending_compute += cfg.compute_cycles_per_row;
            if (li + 1) % cfg.compute_flush_rows == 0 && pending_compute > 0 {
                instrs.push(Instr::Compute {
                    cycles: pending_compute,
                });
                pending_compute = 0;
            }
        }
        if pending_compute > 0 {
            instrs.push(Instr::Compute {
                cycles: pending_compute,
            });
        }

        // Reduction barrier, then store the tile's scores (per-request).
        instrs.push(Instr::Barrier);
        push_vector_accesses(
            &mut instrs,
            op.score_addr(h, g, l0),
            l_tile as u64 * ELEM_BYTES,
            vlen,
            true,
        );
        ThreadBlock { instrs }
    }
}

/// One fused GQA decode step: Logit and attention-output in a single
/// pass (`out[d] = Σ_l softmax-weight(q·k[l]) · v[l][d]`,
/// FlashDecoding-style) — the scenario `examples/gqa_decode.rs` sweeps,
/// promoted to a first-class workload. Each block loads its pair's Q
/// row, streams the K **and** V rows of its L tile back to back
/// (double the KV traffic of Logit alone — both tensor windows gate on
/// a tiered KV store), and stores only the tile's partial output row;
/// scores never touch memory.
///
/// The fused block carries ~2x the instructions of a Logit block
/// (~141 at the minimum legal `l_tile` of 32), overrunning the nominal
/// 128-deep instruction window. That is a modeling approximation, not
/// an error: a window issues instructions sequentially, so depth bounds
/// in-flight instructions, never block length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GqaDecodeWorkload {
    pub op: LogitOp,
}

impl GqaDecodeWorkload {
    pub fn new(op: LogitOp) -> Self {
        GqaDecodeWorkload { op }
    }

    /// Address of element `d` of `V[h][l]` (same layout as
    /// [`AttnOutputWorkload::v_addr`], so a fused step touches the same
    /// V lines the split operators would).
    pub fn v_addr(&self, h: usize, l: usize, d: usize) -> Addr {
        debug_assert!(h < self.op.heads && l < self.op.seq_len && d < self.op.head_dim);
        V_BASE + (((h * self.op.seq_len + l) * self.op.head_dim + d) as u64) * ELEM_BYTES
    }

    /// Address of the partial output row of block (h, g, l-tile).
    pub fn partial_out_addr(&self, h: usize, g: usize, lt: usize, n_ltiles: usize) -> Addr {
        OUT_BASE + (((h * self.op.group_size + g) * n_ltiles + lt) as u64) * self.op.k_row_bytes()
    }
}

impl Workload for GqaDecodeWorkload {
    fn label(&self) -> String {
        format!(
            "gqa-decode h{} g{} d{}",
            self.op.heads, self.op.group_size, self.op.head_dim
        )
    }

    fn shape(&self) -> LogitOp {
        self.op
    }

    fn build_block(
        &self,
        cfg: &TraceGenConfig,
        h: usize,
        g: usize,
        lt: usize,
        l_tile: usize,
    ) -> ThreadBlock {
        let op = &self.op;
        let vlen = cfg.vector_len_bytes;
        let row_bytes = op.k_row_bytes();
        let n_ltiles = op.seq_len / l_tile;
        let l0 = lt * l_tile;
        let mut instrs = Vec::with_capacity(l_tile * 4 + l_tile / 2 + 8);

        // Load the Q row for (h, g).
        push_vector_accesses(&mut instrs, op.q_addr(h, g, 0), row_bytes, vlen, false);

        // Stream K and V rows of the tile back to back: score the row,
        // then immediately fold it into the output accumulator.
        let mut pending_compute = 0u32;
        for li in 0..l_tile {
            let l = l0 + li;
            push_vector_accesses(&mut instrs, op.k_addr(h, l, 0), row_bytes, vlen, false);
            push_vector_accesses(&mut instrs, self.v_addr(h, l, 0), row_bytes, vlen, false);
            pending_compute += 2 * cfg.compute_cycles_per_row;
            if (li + 1) % cfg.compute_flush_rows == 0 && pending_compute > 0 {
                instrs.push(Instr::Compute {
                    cycles: pending_compute,
                });
                pending_compute = 0;
            }
        }
        if pending_compute > 0 {
            instrs.push(Instr::Compute {
                cycles: pending_compute,
            });
        }

        // Rescale/reduce, then store the tile's partial output row;
        // scores stay in registers.
        instrs.push(Instr::Barrier);
        push_vector_accesses(
            &mut instrs,
            self.partial_out_addr(h, g, lt, n_ltiles),
            row_bytes,
            vlen,
            true,
        );
        ThreadBlock { instrs }
    }
}

/// Serde-round-trippable description of a workload family: every
/// parameter except the sequence length, which campaign grids cross
/// separately. [`WorkloadSpec::instantiate`] turns (spec, seq_len) into
/// a runnable [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Decode-stage Logit (Q·Kᵀ).
    Logit {
        heads: usize,
        group_size: usize,
        head_dim: usize,
    },
    /// Attention-output GEMV (A·V).
    AttnOutput {
        heads: usize,
        group_size: usize,
        head_dim: usize,
    },
    /// Chunked-prefill Logit (`query_tokens` queries per pass).
    PrefillLogit {
        heads: usize,
        group_size: usize,
        head_dim: usize,
        query_tokens: usize,
    },
    /// Decode Logit over a shared system-prompt prefix
    /// (`prefix_len` tokens in the shared KV window, clamped to the
    /// sequence length).
    SharedPrefix {
        heads: usize,
        group_size: usize,
        head_dim: usize,
        prefix_len: usize,
    },
    /// Fused GQA decode step (Logit + attention-output, K and V both
    /// streamed).
    GqaDecode {
        heads: usize,
        group_size: usize,
        head_dim: usize,
    },
}

impl WorkloadSpec {
    /// Llama3 70b decode Logit (H=8, G=8, D=128).
    pub fn llama3_70b() -> Self {
        WorkloadSpec::Logit {
            heads: 8,
            group_size: 8,
            head_dim: 128,
        }
    }

    /// Llama3 405b decode Logit (H=8, G=16, D=128).
    pub fn llama3_405b() -> Self {
        WorkloadSpec::Logit {
            heads: 8,
            group_size: 16,
            head_dim: 128,
        }
    }

    fn op(&self, seq_len: usize) -> LogitOp {
        let (heads, group_size, head_dim) = match *self {
            WorkloadSpec::Logit {
                heads,
                group_size,
                head_dim,
            }
            | WorkloadSpec::AttnOutput {
                heads,
                group_size,
                head_dim,
            }
            | WorkloadSpec::PrefillLogit {
                heads,
                group_size,
                head_dim,
                ..
            }
            | WorkloadSpec::SharedPrefix {
                heads,
                group_size,
                head_dim,
                ..
            }
            | WorkloadSpec::GqaDecode {
                heads,
                group_size,
                head_dim,
            } => (heads, group_size, head_dim),
        };
        LogitOp {
            heads,
            group_size,
            seq_len,
            head_dim,
        }
    }

    /// Builds the runnable workload for one sequence length.
    pub fn instantiate(&self, seq_len: usize) -> Arc<dyn Workload> {
        let op = self.op(seq_len);
        match *self {
            WorkloadSpec::Logit { .. } => Arc::new(LogitWorkload::new(op)),
            WorkloadSpec::AttnOutput { .. } => Arc::new(AttnOutputWorkload::new(op)),
            WorkloadSpec::PrefillLogit { query_tokens, .. } => {
                Arc::new(PrefillLogitWorkload::new(op, query_tokens))
            }
            WorkloadSpec::SharedPrefix { prefix_len, .. } => {
                Arc::new(SharedPrefixWorkload::new(op, prefix_len))
            }
            WorkloadSpec::GqaDecode { .. } => Arc::new(GqaDecodeWorkload::new(op)),
        }
    }

    /// The label an instantiated workload will report (seq-independent).
    pub fn label(&self) -> String {
        // Labels must not depend on seq_len; probe with a nominal one.
        self.instantiate(128).label()
    }

    /// Validates the family parameters without a sequence length.
    pub fn validate(&self) -> Result<(), String> {
        self.instantiate(128).validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{K_BASE, SCORE_BASE};
    use llamcat_sim::types::LINE_BYTES;
    use std::collections::HashSet;

    fn small_op() -> LogitOp {
        LogitOp {
            heads: 2,
            group_size: 4,
            seq_len: 128,
            head_dim: 128,
        }
    }

    #[test]
    fn preset_labels_are_stable() {
        assert_eq!(WorkloadSpec::llama3_70b().label(), "llama3 70b");
        assert_eq!(WorkloadSpec::llama3_405b().label(), "llama3 405b");
        assert_eq!(
            WorkloadSpec::AttnOutput {
                heads: 8,
                group_size: 8,
                head_dim: 128
            }
            .label(),
            "attn-out h8 g8 d128"
        );
        assert_eq!(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 4
            }
            .label(),
            "prefill h8 g8 d128 q4"
        );
        assert_eq!(
            WorkloadSpec::SharedPrefix {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                prefix_len: 256
            }
            .label(),
            "sharedpfx h8 g8 d128 p256"
        );
        assert_eq!(
            WorkloadSpec::GqaDecode {
                heads: 8,
                group_size: 8,
                head_dim: 128
            }
            .label(),
            "gqa-decode h8 g8 d128"
        );
    }

    #[test]
    fn logit_workload_matches_legacy_generate() {
        let op = small_op();
        let w = LogitWorkload::new(op);
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p_new, meta_new) = w.generate(&mapping, &cfg);
        let (p_old, meta_old) = crate::tracegen::generate(&op, &mapping, &cfg);
        assert_eq!(meta_new, meta_old);
        assert_eq!(p_new.blocks.len(), p_old.blocks.len());
        for (a, b) in p_new.blocks.iter().zip(&p_old.blocks) {
            assert_eq!(a.instrs, b.instrs);
        }
    }

    #[test]
    fn attn_output_streams_v_not_k() {
        let w = AttnOutputWorkload::new(small_op());
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p, meta) = w.generate(&mapping, &cfg);
        // Same stream volume as the logit operator's K traffic, but all
        // bulk loads land in the V region and the per-pair row loads in
        // the score (A) region; nothing touches K.
        for b in &p.blocks {
            for i in &b.instrs {
                if let Instr::Load { addr, .. } = i {
                    let in_v = (V_BASE..OUT_BASE).contains(addr);
                    let in_a = (SCORE_BASE..V_BASE).contains(addr);
                    assert!(in_v || in_a, "load at {addr:#x} outside V/A regions");
                    assert!(!(K_BASE..SCORE_BASE).contains(addr));
                }
            }
        }
        let op = small_op();
        // V streamed once per query head + A read once per pair.
        assert_eq!(
            meta.total_load_bytes,
            op.k_bytes() * op.group_size as u64 + op.score_bytes()
        );
        // One partial output row per block.
        assert_eq!(
            meta.total_store_bytes,
            meta.num_blocks as u64 * op.k_row_bytes()
        );
    }

    #[test]
    fn attn_output_partial_stores_never_alias() {
        let w = AttnOutputWorkload::new(small_op());
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p, _) = w.generate(&mapping, &cfg);
        let mut lines = HashSet::new();
        for b in &p.blocks {
            for i in &b.instrs {
                if let Instr::Store { addr, bytes } = i {
                    let mut a = *addr;
                    while a < addr + *bytes as u64 {
                        assert!(lines.insert(a / LINE_BYTES), "partial line stored twice");
                        a += LINE_BYTES;
                    }
                }
            }
        }
    }

    #[test]
    fn prefill_shares_k_across_query_tokens() {
        let op = small_op();
        let chunk = 4;
        let w = PrefillLogitWorkload::new(op, chunk);
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (_, meta) = w.generate(&mapping, &cfg);
        // K streamed once per (h, g) — NOT once per query token — while
        // Q and score traffic scale with the chunk.
        let k_traffic = op.k_bytes() * op.group_size as u64;
        let q_traffic =
            (op.heads * op.group_size * (op.seq_len / 32) * chunk) as u64 * op.k_row_bytes();
        assert_eq!(meta.total_load_bytes, k_traffic + q_traffic);
        assert_eq!(meta.total_store_bytes, op.score_bytes() * chunk as u64);
    }

    #[test]
    fn prefill_blocks_fit_instruction_window() {
        let w = PrefillLogitWorkload::new(LogitOp::llama3_70b(4096), 4);
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (_, meta) = w.generate(&mapping, &cfg);
        assert!(
            meta.max_block_instrs <= 128,
            "prefill blocks must fit the 128-deep instruction window, got {}",
            meta.max_block_instrs
        );
    }

    #[test]
    fn prefill_validation_bounds_chunk() {
        let op = small_op();
        assert!(PrefillLogitWorkload::new(op, 0).validate().is_err());
        assert!(PrefillLogitWorkload::new(op, 65).validate().is_err());
        assert!(PrefillLogitWorkload::new(op, 8).validate().is_ok());
    }

    #[test]
    fn shared_prefix_splits_k_between_windows() {
        let op = small_op();
        let prefix = 64; // half the 128-token context
        let w = SharedPrefixWorkload::new(op, prefix);
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p, meta) = w.generate(&mapping, &cfg);
        let (mut shared_bytes, mut private_bytes) = (0u64, 0u64);
        for b in &p.blocks {
            for i in &b.instrs {
                match i {
                    Instr::Load { addr, bytes } if *addr >= SHARED_KV_BASE => {
                        shared_bytes += *bytes as u64;
                    }
                    Instr::Load { addr, bytes } => {
                        assert!(
                            (crate::workload::Q_BASE..SCORE_BASE).contains(addr),
                            "non-prefix load at {addr:#x} outside Q/K regions"
                        );
                        private_bytes += *bytes as u64;
                    }
                    Instr::Store { addr, .. } => {
                        assert!(*addr < SHARED_KV_BASE, "stores never hit the shared window");
                    }
                    _ => {}
                }
            }
        }
        // Half the K stream comes from the shared window, and K is
        // streamed once per query head under PairStream.
        assert_eq!(shared_bytes, op.k_bytes() / 2 * op.group_size as u64);
        assert_eq!(
            shared_bytes + private_bytes,
            meta.total_load_bytes,
            "every load is classified"
        );
        // Same traffic volume as plain decode Logit: only placement moved.
        let logit = LogitWorkload::new(op);
        let (_, logit_meta) = logit.generate(&mapping, &cfg);
        assert_eq!(meta.total_load_bytes, logit_meta.total_load_bytes);
        assert_eq!(meta.total_store_bytes, logit_meta.total_store_bytes);
    }

    #[test]
    fn shared_prefix_addresses_are_tenant_invariant_and_clamped() {
        let op = small_op();
        let w = SharedPrefixWorkload::new(op, 64);
        // Shared rows are pure functions of (shape, prefix): two
        // instantiations agree, which is what makes them shareable.
        assert_eq!(w.shared_k_addr(1, 63, 0), {
            SharedPrefixWorkload::new(op, 64).shared_k_addr(1, 63, 0)
        });
        assert!(w.shared_k_addr(0, 0, 0) >= SHARED_KV_BASE);
        // prefix_len clamps to seq_len: the whole context is shared.
        let all = SharedPrefixWorkload::new(op, 10_000);
        assert_eq!(all.effective_prefix(), op.seq_len);
        let cfg = TraceGenConfig::default();
        let mapping = all.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p, _) = all.generate(&mapping, &cfg);
        for b in &p.blocks {
            for i in &b.instrs {
                if let Instr::Load { addr, .. } = i {
                    let in_q = *addr < K_BASE;
                    assert!(
                        in_q || *addr >= SHARED_KV_BASE,
                        "fully-shared context: every K load at {addr:#x} is shared"
                    );
                }
            }
        }
        // prefix_len = 0 degrades to plain decode Logit placement.
        let none = SharedPrefixWorkload::new(op, 0);
        let (p, _) = none.generate(&mapping, &cfg);
        for b in &p.blocks {
            for i in &b.instrs {
                if let Instr::Load { addr, .. } = i {
                    assert!(*addr < SCORE_BASE, "no shared traffic at p0");
                }
            }
        }
    }

    #[test]
    fn gqa_decode_streams_k_and_v_stores_only_output() {
        let op = small_op();
        let w = GqaDecodeWorkload::new(op);
        let cfg = TraceGenConfig::default();
        let mapping = w.mapping(Layout::PairStream, 32, cfg.num_cores);
        let (p, meta) = w.generate(&mapping, &cfg);
        // Fused step: K and V each streamed once per query head, plus Q
        // once per block.
        let q_traffic = meta.num_blocks as u64 * op.k_row_bytes();
        assert_eq!(
            meta.total_load_bytes,
            2 * op.k_bytes() * op.group_size as u64 + q_traffic
        );
        // Scores never touch memory: one partial out row per block.
        assert_eq!(
            meta.total_store_bytes,
            meta.num_blocks as u64 * op.k_row_bytes()
        );
        for b in &p.blocks {
            for i in &b.instrs {
                match i {
                    Instr::Load { addr, .. } => assert!(
                        *addr < SCORE_BASE || (V_BASE..OUT_BASE).contains(addr),
                        "load at {addr:#x} outside Q/K/V"
                    ),
                    Instr::Store { addr, .. } => {
                        assert!(*addr >= OUT_BASE, "store at {addr:#x} below OUT_BASE")
                    }
                    _ => {}
                }
            }
        }
        // Fused blocks overrun the nominal window by a bounded margin
        // (see the workload doc); pin the margin so it cannot creep.
        assert!(
            meta.max_block_instrs <= 160,
            "gqa-decode blocks must stay near the 128-deep window, got {}",
            meta.max_block_instrs
        );
    }

    #[test]
    fn kv_tier_classifies_every_kv_tensor_window() {
        use llamcat_sim::kv::is_kv_addr;
        let op = small_op();
        // The KV tier's address classifier and the trace tensor map are
        // two views of one contract: K and V windows (and the shared
        // prefix) gate on the tier; Q, scores and outputs bypass it.
        assert!(is_kv_addr(op.k_addr(0, 0, 0)));
        assert!(is_kv_addr(op.k_addr(
            op.heads - 1,
            op.seq_len - 1,
            op.head_dim - 1
        )));
        assert!(!is_kv_addr(op.q_addr(0, 0, 0)));
        assert!(!is_kv_addr(op.score_addr(0, 0, 0)));
        let attn = AttnOutputWorkload::new(op);
        assert!(is_kv_addr(attn.v_addr(0, 0, 0)));
        assert!(is_kv_addr(attn.v_addr(
            op.heads - 1,
            op.seq_len - 1,
            op.head_dim - 1
        )));
        assert!(!is_kv_addr(attn.partial_out_addr(0, 0, 0, 4)));
        let spfx = SharedPrefixWorkload::new(op, 64);
        assert!(is_kv_addr(spfx.shared_k_addr(0, 0, 0)));
        let gqa = GqaDecodeWorkload::new(op);
        assert!(is_kv_addr(gqa.v_addr(0, 0, 0)));
        assert!(!is_kv_addr(gqa.partial_out_addr(0, 0, 0, 4)));
        // Tenant relocation preserves the classification (the in-slot
        // window test is stride-periodic).
        use crate::mix::REQUEST_VA_STRIDE;
        assert!(is_kv_addr(op.k_addr(0, 0, 0) + 3 * REQUEST_VA_STRIDE));
        assert!(!is_kv_addr(op.q_addr(0, 0, 0) + 3 * REQUEST_VA_STRIDE));
        assert!(!is_kv_addr(op.score_addr(0, 0, 0) + 3 * REQUEST_VA_STRIDE));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let specs = [
            WorkloadSpec::llama3_70b(),
            WorkloadSpec::llama3_405b(),
            WorkloadSpec::AttnOutput {
                heads: 4,
                group_size: 2,
                head_dim: 64,
            },
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 8,
            },
            WorkloadSpec::SharedPrefix {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                prefix_len: 256,
            },
            WorkloadSpec::GqaDecode {
                heads: 8,
                group_size: 8,
                head_dim: 128,
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "round-trip failed for {json}");
        }
    }

    #[test]
    fn all_workloads_run_under_all_layouts() {
        let op = small_op();
        let workloads: Vec<Arc<dyn Workload>> = vec![
            Arc::new(LogitWorkload::new(op)),
            Arc::new(AttnOutputWorkload::new(op)),
            Arc::new(PrefillLogitWorkload::new(op, 2)),
            Arc::new(SharedPrefixWorkload::new(op, 32)),
            Arc::new(GqaDecodeWorkload::new(op)),
        ];
        let cfg = TraceGenConfig::default();
        for w in &workloads {
            w.validate().unwrap();
            for layout in Layout::ALL {
                let mapping = w.mapping(layout, 32, cfg.num_cores);
                mapping.validate(&w.shape()).unwrap();
                let (p, meta) = w.generate(&mapping, &cfg);
                assert_eq!(p.num_blocks(), meta.num_blocks);
                assert!(meta.total_load_bytes > 0);
            }
        }
    }
}
