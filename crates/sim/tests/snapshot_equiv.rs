//! Differential suite for the snapshot/fork layer.
//!
//! The contract: a system forked (or restored) from a snapshot taken at
//! any cycle T and then run to its budget is **byte-identical** — same
//! serialized `SimStats` including per-request admission/TTFT/KV
//! counters, same `RunOutcome` — to the straight-line run that never
//! paused, in both step modes. Every component a snapshot must capture
//! is exercised: stateful arbiters and throttles (BMA + DynMg), the
//! MSHR files, DRAM timing registers mid-refresh, the KV tier
//! mid-promotion, and the request injector mid-queue.
//!
//! This is the guarantee the resumable campaign runner
//! (`llamcat-bench`) builds on, and what makes bisection debugging
//! (snapshot, run, rewind, re-run) trustworthy.

use proptest::prelude::*;

use llamcat::experiment::{Experiment, Model, Policy};
use llamcat_sim::arb::{CloneArbiter, CloneThrottle, FifoArbiter, NoThrottle};
use llamcat_sim::config::SystemConfig;
use llamcat_sim::kv::{KvEviction, KvTierConfig};
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::serve::{RequestInjector, ServePolicy};
use llamcat_sim::stats::SimStats;
use llamcat_sim::system::{RunOutcome, StepMode, System};

const BUDGET: u64 = 50_000_000;

fn stats_json(stats: &SimStats) -> String {
    serde_json::to_string(stats).expect("stats serialize")
}

// ---------------------------------------------------------------------
// Closed-set workload under the paper's stateful policy pair.
// ---------------------------------------------------------------------

/// The paper's final policy (BMA arbiter + DynMg throttle) on a real
/// generated trace: both policies carry history that the snapshot must
/// capture exactly.
fn rich_system() -> System<llamcat::arbiter::ArbiterKind, llamcat::throttle::ThrottleKind> {
    let e = Experiment::new(Model::Llama3_70b, 128).policy(Policy::dynmg_bma());
    let program = e.build_program();
    let arb = e.policy.arb.clone();
    System::new(
        e.config,
        program,
        &move |_| arb.build_kind(),
        e.policy.throttle.build_kind(),
    )
}

/// Fork-at-T ≡ straight-line, and restore-after-overrun ≡ straight-line,
/// at several cut points, in one step mode.
fn assert_fork_equivalent(mode: StepMode) {
    let mut reference = rich_system();
    let (stats_ref, out_ref) = reference.run_with_mode(BUDGET, mode);
    assert_eq!(out_ref, RunOutcome::Completed);
    let total = stats_ref.cycles;
    let json_ref = stats_json(&stats_ref);

    for frac in [1u64, 2, 3] {
        let t = total * frac / 4;
        let mut sys = rich_system();
        sys.run_with_mode(t, mode);
        assert_eq!(sys.cycle(), t, "paused exactly at the cut point");
        let snap = sys.snapshot();
        assert_eq!(snap.cycle(), t);

        // Fork an independent continuation.
        let mut fork = snap.fork();
        let (stats_f, out_f) = fork.run_with_mode(BUDGET, mode);
        assert_eq!(out_f, out_ref, "fork@{t} ({mode:?}): outcome diverged");
        assert_eq!(
            stats_json(&stats_f),
            json_ref,
            "fork@{t} ({mode:?}): SimStats diverged from straight line"
        );

        // Rewind the original after it ran past the cut point.
        sys.run_with_mode(BUDGET, mode);
        sys.restore(&snap);
        assert_eq!(sys.cycle(), t, "restore rewound to the snapshot cycle");
        let (stats_r, out_r) = sys.run_with_mode(BUDGET, mode);
        assert_eq!(out_r, out_ref, "restore@{t} ({mode:?}): outcome diverged");
        assert_eq!(
            stats_json(&stats_r),
            json_ref,
            "restore@{t} ({mode:?}): SimStats diverged from straight line"
        );
    }
}

#[test]
fn fork_at_cycle_t_matches_straight_line_cycle_mode() {
    assert_fork_equivalent(StepMode::Cycle);
}

#[test]
fn fork_at_cycle_t_matches_straight_line_skip_mode() {
    assert_fork_equivalent(StepMode::Skip);
}

/// A snapshot is mode-agnostic: pausing in one mode and resuming in the
/// other still lands on the straight-line Cycle-mode statistics (the
/// step-mode equivalence extends across the cut).
#[test]
fn cross_mode_fork_matches_straight_line() {
    let mut reference = rich_system();
    let (stats_ref, _) = reference.run_with_mode(BUDGET, StepMode::Cycle);
    let json_ref = stats_json(&stats_ref);
    let t = stats_ref.cycles / 2;
    for (pause, resume) in [
        (StepMode::Cycle, StepMode::Skip),
        (StepMode::Skip, StepMode::Cycle),
    ] {
        let mut sys = rich_system();
        sys.run_with_mode(t, pause);
        let mut fork = sys.snapshot().fork();
        let (stats, outcome) = fork.run_with_mode(BUDGET, resume);
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(
            stats_json(&stats),
            json_ref,
            "pause {pause:?} / resume {resume:?} diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Open system with a KV tier: snapshot mid-queue and mid-promotion.
// ---------------------------------------------------------------------

fn small_cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::table5();
    cfg.num_cores = cores;
    cfg
}

fn tight_kv() -> KvTierConfig {
    KvTierConfig {
        warm_capacity_blocks: 4,
        block_bytes: 256,
        slow_latency: 400,
        slow_bytes_per_cycle: 16,
        max_inflight: 2,
        eviction: KvEviction::Lru,
    }
}

/// `n` request-tagged blocks-per-request, each mixing plain and
/// KV-window loads inside the request's VA slot (so the tier engages
/// and keeps promotions in flight).
fn open_kv_program(n: u32, blocks_per: usize) -> Program {
    let mut blocks = Vec::new();
    let mut tags = Vec::new();
    for r in 0..n {
        let slot = (r as u64) << 40;
        for b in 0..blocks_per {
            blocks.push(ThreadBlock {
                instrs: vec![
                    Instr::Load {
                        addr: slot + (b as u64) * 256,
                        bytes: 128,
                    },
                    Instr::Load {
                        addr: slot + (1 << 32) + (b as u64) * 256,
                        bytes: 128,
                    },
                    Instr::Barrier,
                ],
            });
            tags.push(r);
        }
    }
    let assignment = vec![0; blocks.len()];
    Program::with_requests(blocks, assignment, tags, Vec::new())
}

fn open_kv_system(p: &Program, arrivals: Vec<u64>) -> System<FifoArbiter, NoThrottle> {
    let cfg = small_cfg(2);
    let injector = RequestInjector::new(
        p,
        arrivals,
        ServePolicy::ContinuousBatching { slots: 2 },
        2,
        cfg.core.num_inst_windows,
    )
    .expect("valid injector");
    let mut sys = System::new(cfg, p.clone(), &|_| FifoArbiter, NoThrottle);
    sys.attach_injector(injector);
    sys.attach_kv(tight_kv());
    sys
}

/// Snapshot between arrivals — admission queue populated, promotions in
/// flight — and resume: byte-identical to the straight line in both
/// modes, including per-request KV and latency counters.
#[test]
fn open_kv_fork_mid_injection_matches_straight_line() {
    let p = open_kv_program(3, 3);
    let arrivals = vec![0, 1_000, 2_500];
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let mut reference = open_kv_system(&p, arrivals.clone());
        let (stats_ref, out_ref) = reference.run_with_mode(BUDGET, mode);
        assert_eq!(out_ref, RunOutcome::Completed);
        let json_ref = stats_json(&stats_ref);
        assert!(
            stats_ref.kv.as_ref().is_some_and(|kv| kv.promotions > 0),
            "scenario must exercise the slow tier"
        );

        for t in [500, 1_500, 2_600, stats_ref.cycles / 2] {
            let mut sys = open_kv_system(&p, arrivals.clone());
            sys.run_with_mode(t, mode);
            let snap = sys.snapshot();
            let mut fork = snap.fork();
            let (stats_f, out_f) = fork.run_with_mode(BUDGET, mode);
            assert_eq!(out_f, out_ref);
            assert_eq!(
                stats_json(&stats_f),
                json_ref,
                "open+KV fork@{t} ({mode:?}) diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Type-erased policies stay snapshot-able via the dyn-clone traits.
// ---------------------------------------------------------------------

#[test]
fn boxed_clone_policies_snapshot_and_fork() {
    let p = open_kv_program(2, 2);
    let make = |_| -> Box<dyn CloneArbiter> { Box::new(FifoArbiter) };
    let throttle: Box<dyn CloneThrottle> = Box::new(NoThrottle);
    let mut sys = System::new(small_cfg(2), p.clone(), &make, throttle);
    let mut reference = System::new(
        small_cfg(2),
        p,
        &make,
        Box::new(NoThrottle) as Box<dyn CloneThrottle>,
    );
    let (stats_ref, _) = reference.run_with_mode(BUDGET, StepMode::Cycle);

    sys.run_with_mode(stats_ref.cycles / 2, StepMode::Cycle);
    let mut fork = sys.snapshot().fork();
    let (stats, outcome) = fork.run_with_mode(BUDGET, StepMode::Cycle);
    assert_eq!(outcome, RunOutcome::Completed);
    assert_eq!(stats_json(&stats), stats_json(&stats_ref));
}

// ---------------------------------------------------------------------
// Proptest: restore(snapshot()) at a random cycle of a random open
// program (KV tier + injector attached) resumes byte-identically.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn snapshot_restore_at_random_cycle_resumes_identically(
        shape in proptest::collection::vec((1usize..4, any::<bool>()), 2..5),
        gaps in proptest::collection::vec(0u64..2_000, 2..5),
        t_frac in 0u64..100,
        skip_mode in any::<bool>(),
    ) {
        let mode = if skip_mode { StepMode::Skip } else { StepMode::Cycle };
        // One request per `shape` entry: 1–3 blocks, optionally KV-heavy.
        let mut blocks = Vec::new();
        let mut tags = Vec::new();
        for (r, &(nblocks, kv_heavy)) in shape.iter().enumerate() {
            let slot = (r as u64) << 40;
            for b in 0..nblocks {
                let kv_base = if kv_heavy { 1u64 << 32 } else { 1u64 << 36 };
                blocks.push(ThreadBlock {
                    instrs: vec![
                        Instr::Load { addr: slot + (b as u64) * 512, bytes: 128 },
                        Instr::Load {
                            addr: slot + kv_base + (b as u64) * 256,
                            bytes: 128,
                        },
                        Instr::Barrier,
                    ],
                });
                tags.push(r as u32);
            }
        }
        let assignment = vec![0; blocks.len()];
        let p = Program::with_requests(blocks, assignment, tags, Vec::new());
        let arrivals: Vec<u64> = gaps
            .iter()
            .take(shape.len())
            .chain(std::iter::repeat(&0))
            .take(shape.len())
            .scan(0u64, |acc, g| {
                *acc += g;
                Some(*acc)
            })
            .collect();

        let mut sys = open_kv_system(&p, arrivals.clone());
        let (stats_ref, out_ref) = sys.run_with_mode(BUDGET, mode);
        prop_assert_eq!(out_ref, RunOutcome::Completed);
        let json_ref = stats_json(&stats_ref);
        let t = stats_ref.cycles * t_frac / 100;

        // Fresh run paused at T, snapshotted, run to completion …
        let mut sys = open_kv_system(&p, arrivals);
        sys.run_with_mode(t, mode);
        let snap = sys.snapshot();
        let (stats_a, out_a) = sys.run_with_mode(BUDGET, mode);
        prop_assert_eq!(out_a, out_ref);
        prop_assert_eq!(&stats_json(&stats_a), &json_ref, "paused run diverged");

        // … then rewound to T and re-run: byte-identical again.
        sys.restore(&snap);
        prop_assert_eq!(sys.cycle(), t);
        let (stats_b, out_b) = sys.run_with_mode(BUDGET, mode);
        prop_assert_eq!(out_b, out_ref);
        prop_assert_eq!(&stats_json(&stats_b), &json_ref, "restored run diverged");
    }
}
