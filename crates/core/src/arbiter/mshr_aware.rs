//! MSHR-aware arbitration — policies "MA" and "BMA" (Section 4.3).
//!
//! Two observations drive the policy: (1) cache hits never stall the
//! pipeline, and (2) the MSHR lookup of an *MSHR hit* (merge) overlaps
//! DRAM latency — so hits of both kinds should be let into the cache
//! ahead of entry-allocating misses, keeping the pipeline flowing and
//! the MSHR entries working. The arbiter predicts request type using the
//! hit buffer (recent hits + fills) and the combination of the real-time
//! MSHR snapshot with `sent_reqs` (Fig 5):
//!
//! 1. inferred cache hit → highest priority;
//! 2. inferred MSHR hit → second priority;
//! 3. tie-break: FIFO ("MA") or the balanced pick ("BMA").

use llamcat_sim::arb::{ArbiterCtx, RequestArbiter};
use llamcat_sim::types::Addr;

use super::balanced::balanced_pick;
use super::hit_buffer::HitBuffer;
use super::sent_reqs::SentReqs;

/// Tie-breaking rule when speculation ranks requests equally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Default request arbitration (FIFO) — policy "MA".
    Fifo,
    /// Balanced progress-counter arbitration — policy "BMA".
    Balanced,
}

/// Configuration of the speculation hardware.
#[derive(Debug, Clone, Copy)]
pub struct MshrAwareConfig {
    /// Hit-buffer entries (each one line address).
    pub hit_buffer_entries: usize,
    /// Record DRAM fills in the hit buffer as predicted future hits
    /// (the `inform` path of Fig 4).
    pub record_fills: bool,
    /// LLC tag-pipeline latency (sent_reqs residency component).
    pub hit_latency: u64,
    /// LLC MSHR-lookup latency (sent_reqs residency component).
    pub mshr_latency: u64,
}

impl Default for MshrAwareConfig {
    fn default() -> Self {
        MshrAwareConfig {
            hit_buffer_entries: 48,
            record_fills: true,
            hit_latency: 3,
            mshr_latency: 5,
        }
    }
}

/// The MA / BMA arbiter.
#[derive(Clone)]
pub struct MshrAwareArbiter {
    cfg: MshrAwareConfig,
    tie: TieBreak,
    hit_buffer: HitBuffer,
    sent: SentReqs,
    scratch: Vec<usize>,
}

impl MshrAwareArbiter {
    pub fn new(cfg: MshrAwareConfig, tie: TieBreak) -> Self {
        MshrAwareArbiter {
            hit_buffer: HitBuffer::new(cfg.hit_buffer_entries),
            sent: SentReqs::new(cfg.hit_latency, cfg.mshr_latency),
            cfg,
            tie,
            scratch: Vec::new(),
        }
    }

    /// Policy MA with default (FIFO) tie-breaking.
    pub fn ma() -> Self {
        Self::new(MshrAwareConfig::default(), TieBreak::Fifo)
    }

    /// Policy BMA: MA with balanced tie-breaking.
    pub fn bma() -> Self {
        Self::new(MshrAwareConfig::default(), TieBreak::Balanced)
    }

    /// Step 2 of Fig 5: speculate whether `line` is a cache hit.
    fn spec_hit(&self, line: Addr) -> bool {
        self.hit_buffer.contains(line)
    }

    /// Step 3 of Fig 5: speculate whether `line` will merge into the
    /// MSHR. True when the combined MSHR ∪ sent_reqs view shows the line
    /// pending *and* its target list still has room (merging into a full
    /// entry stalls, which is what we are trying to avoid).
    fn spec_mshr_hit(&self, ctx: &ArbiterCtx<'_>, line: Addr) -> bool {
        if let Some(free) = ctx.mshr.free_targets(line) {
            return free > 0;
        }
        self.sent.pending_miss(line)
    }
}

impl RequestArbiter for MshrAwareArbiter {
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        if ctx.is_empty() {
            return None;
        }
        // Rank: 0 = inferred cache hit, 1 = inferred MSHR hit, 2 = rest.
        let mut best_rank = u8::MAX;
        self.scratch.clear();
        for (i, req) in ctx.iter().enumerate() {
            let line = req.line_addr;
            let rank = if self.spec_hit(line) {
                0
            } else if self.spec_mshr_hit(ctx, line) {
                1
            } else {
                2
            };
            match rank.cmp(&best_rank) {
                std::cmp::Ordering::Less => {
                    best_rank = rank;
                    self.scratch.clear();
                    self.scratch.push(i);
                }
                std::cmp::Ordering::Equal => self.scratch.push(i),
                std::cmp::Ordering::Greater => {}
            }
        }
        let choice = match self.tie {
            TieBreak::Fifo => self.scratch.first().copied(),
            TieBreak::Balanced => balanced_pick(ctx, &self.scratch),
        }?;
        // Step 4 of Fig 5: the chosen request enters sent_reqs with its
        // spec_hit_result bit.
        let line = ctx.req(choice).line_addr;
        self.sent.push(line, best_rank == 0);
        Some(choice)
    }

    fn note_hit(&mut self, line_addr: u64) {
        self.hit_buffer.record(line_addr);
    }

    fn note_fill(&mut self, line_addr: u64) {
        if self.cfg.record_fills {
            self.hit_buffer.record(line_addr);
        }
    }

    fn tick(&mut self) {
        self.sent.tick();
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        // The only autonomous state is sent_reqs aging, which `skip`
        // fast-forwards exactly — so skipping never needs to wake us.
        None
    }

    fn skip(&mut self, cycles: u64) {
        self.sent.skip(cycles);
    }

    fn reset(&mut self) {
        self.hit_buffer.clear();
        self.sent.clear();
    }

    fn name(&self) -> &'static str {
        match self.tie {
            TieBreak::Fifo => "MA",
            TieBreak::Balanced => "BMA",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamcat_sim::mshr::{MshrFile, MshrSnapshot, MshrTarget};
    use llamcat_sim::pool::{ReqHandle, ReqPool};
    use llamcat_sim::types::MemReq;

    fn pool_with(reqs: &[(usize, u64)]) -> (ReqPool, Vec<ReqHandle>) {
        let mut pool = ReqPool::default();
        let handles = reqs
            .iter()
            .map(|&(core, addr)| {
                pool.alloc(MemReq {
                    id: addr,
                    core,
                    request: 0,
                    line_addr: addr,
                    is_write: false,
                    issued_at: 0,
                })
            })
            .collect();
        (pool, handles)
    }

    fn snapshot_with(lines: &[(u64, usize)], targets: usize) -> MshrSnapshot {
        let mut f = MshrFile::new(8, targets);
        for &(line, n) in lines {
            for k in 0..n {
                f.register(
                    line,
                    MshrTarget {
                        req_id: k as u64,
                        core: 0,
                        is_write: false,
                    },
                );
            }
        }
        let mut s = MshrSnapshot::default();
        f.snapshot_into(&mut s);
        s
    }

    fn ctx<'a>(
        queue: &'a [ReqHandle],
        pool: &'a ReqPool,
        snap: &'a MshrSnapshot,
        served: &'a [u64],
    ) -> ArbiterCtx<'a> {
        ArbiterCtx {
            queue,
            pool,
            mshr: snap,
            served,
            kv_busy: &[],
            cycle: 0,
        }
    }

    #[test]
    fn prefers_inferred_cache_hit() {
        let mut a = MshrAwareArbiter::ma();
        a.note_hit(0xc0);
        let snap = MshrSnapshot::default();
        let (pool, queue) = pool_with(&[(0, 0x40), (1, 0x80), (2, 0xc0)]);
        let served = vec![0, 0, 0];
        assert_eq!(a.select(&ctx(&queue, &pool, &snap, &served)), Some(2));
    }

    #[test]
    fn prefers_mshr_hit_over_plain_miss() {
        let mut a = MshrAwareArbiter::ma();
        let snap = snapshot_with(&[(0x80, 1)], 8);
        let (pool, queue) = pool_with(&[(0, 0x40), (1, 0x80)]);
        let served = vec![0, 0];
        assert_eq!(a.select(&ctx(&queue, &pool, &snap, &served)), Some(1));
    }

    #[test]
    fn full_target_entry_not_preferred() {
        let mut a = MshrAwareArbiter::ma();
        // Entry with all 4 targets used: merging would stall.
        let snap = snapshot_with(&[(0x80, 4)], 4);
        let (pool, queue) = pool_with(&[(0, 0x40), (1, 0x80)]);
        let served = vec![0, 0];
        assert_eq!(
            a.select(&ctx(&queue, &pool, &snap, &served)),
            Some(0),
            "FIFO among plain requests when merge would stall"
        );
    }

    #[test]
    fn sent_reqs_predicts_mshr_hit_before_snapshot_updates() {
        let mut a = MshrAwareArbiter::ma();
        let snap = MshrSnapshot::default();
        let served = vec![0, 0];
        // First selection: plain miss to 0x40 goes into sent_reqs.
        let (pool, queue) = pool_with(&[(0, 0x40)]);
        assert_eq!(a.select(&ctx(&queue, &pool, &snap, &served)), Some(0));
        // Second selection: another request to 0x40 is predicted to merge
        // even though the snapshot is still empty.
        let (pool, queue) = pool_with(&[(1, 0x80), (0, 0x40)]);
        assert_eq!(
            a.select(&ctx(&queue, &pool, &snap, &served)),
            Some(1 /* 0x40 */)
        );
    }

    #[test]
    fn spec_hit_masks_sent_reqs() {
        let mut a = MshrAwareArbiter::ma();
        a.note_hit(0x40);
        let snap = MshrSnapshot::default();
        let served = vec![0, 0];
        // 0x40 chosen as a speculated hit: it must NOT count as a pending
        // miss afterwards.
        let (pool, queue) = pool_with(&[(0, 0x40)]);
        assert_eq!(a.select(&ctx(&queue, &pool, &snap, &served)), Some(0));
        // A plain miss to 0x80 vs a second 0x40 (still predicted hit via
        // the hit buffer): 0x40 wins by rank 0, not by pending-miss.
        let (pool, queue) = pool_with(&[(1, 0x80), (0, 0x40)]);
        assert_eq!(a.select(&ctx(&queue, &pool, &snap, &served)), Some(1));
    }

    #[test]
    fn bma_tie_breaks_by_progress() {
        let mut a = MshrAwareArbiter::bma();
        let snap = MshrSnapshot::default();
        // No speculation info: all requests tie at rank 2.
        let (pool, queue) = pool_with(&[(0, 0x40), (1, 0x80), (2, 0xc0)]);
        let served = vec![9, 1, 5];
        assert_eq!(a.select(&ctx(&queue, &pool, &snap, &served)), Some(1));
    }

    #[test]
    fn ma_tie_breaks_fifo() {
        let mut a = MshrAwareArbiter::ma();
        let snap = MshrSnapshot::default();
        let (pool, queue) = pool_with(&[(0, 0x40), (1, 0x80)]);
        let served = vec![9, 1];
        assert_eq!(a.select(&ctx(&queue, &pool, &snap, &served)), Some(0));
    }

    #[test]
    fn sent_reqs_ages_out() {
        let mut a = MshrAwareArbiter::ma();
        let snap = MshrSnapshot::default();
        let served = vec![0, 0];
        let (pool, queue) = pool_with(&[(0, 0x40)]);
        a.select(&ctx(&queue, &pool, &snap, &served));
        for _ in 0..8 {
            a.tick();
        }
        // After hit+mshr latency the prediction expires; 0x40 no longer
        // preferred.
        let (pool, queue) = pool_with(&[(1, 0x80), (0, 0x40)]);
        assert_eq!(a.select(&ctx(&queue, &pool, &snap, &served)), Some(0));
    }

    #[test]
    fn reset_clears_speculation() {
        let mut a = MshrAwareArbiter::bma();
        a.note_hit(0x40);
        a.reset();
        let snap = MshrSnapshot::default();
        let (pool, queue) = pool_with(&[(1, 0x80), (0, 0x40)]);
        let served = vec![0, 0];
        assert_eq!(
            a.select(&ctx(&queue, &pool, &snap, &served)),
            Some(0),
            "FIFO"
        );
    }

    #[test]
    fn names() {
        assert_eq!(MshrAwareArbiter::ma().name(), "MA");
        assert_eq!(MshrAwareArbiter::bma().name(), "BMA");
    }
}
